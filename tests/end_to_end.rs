//! End-to-end integration tests: the full publish pipeline across every
//! workspace crate, exercising the claims the paper makes about the
//! composed system.

use traj_freq_dp::attacks::{HmmMapMatcher, LinkingAttack, SignatureType};
use traj_freq_dp::baselines::{sc, w4m, W4mConfig};
use traj_freq_dp::core::freq::FrequencyAnalysis;
use traj_freq_dp::core::{anonymize, FreqDpConfig, Model};
use traj_freq_dp::metrics::{information_loss, mutual_information, recovery_metrics};
use traj_freq_dp::model::codec::{decode_dataset, encode_dataset};
use traj_freq_dp::synth::{generate, GeneratorConfig};

fn world(n: usize, len: usize, seed: u64) -> traj_freq_dp::synth::generator::SyntheticWorld {
    generate(&GeneratorConfig::tdrive_profile(n, len, seed))
}

#[test]
fn gl_realizes_both_perturbed_distributions() {
    let w = world(30, 80, 1);
    let cfg = FreqDpConfig { m: 5, seed: 9, ..Default::default() };
    let out = anonymize(&w.dataset, Model::Combined, &cfg).expect("valid config");
    // Global mechanism ran first: its TF targets were satisfied at that
    // point. The local mechanism then changed PF *within* trajectories;
    // local plans must be exactly realized in the final dataset.
    let local = out.local.as_ref().expect("combined model ran local phase");
    for (slot, plan) in local.plans.iter().enumerate() {
        for &(p, _, f_star) in &plan.entries {
            assert_eq!(
                out.dataset.trajectories[slot].count_point(p),
                f_star as usize,
                "local PF plan not realized at slot {slot}"
            );
        }
    }
    assert!((out.epsilon_spent - 1.0).abs() < 1e-12);
}

#[test]
fn pure_global_realizes_tf_exactly() {
    let w = world(25, 60, 2);
    let cfg = FreqDpConfig { m: 5, seed: 3, ..Default::default() };
    let out = anonymize(&w.dataset, Model::PureGlobal, &cfg).expect("valid config");
    let report = out.global.as_ref().expect("global phase ran");
    for (p, &(_, target)) in &report.tf_changes {
        assert_eq!(
            out.dataset.trajectory_frequency(*p) as u64,
            target,
            "TF target not realized for {p:?}"
        );
    }
}

#[test]
fn anonymization_reduces_linking_accuracy() {
    let w = world(60, 150, 3);
    let attack = LinkingAttack::new(SignatureType::Spatial);
    let baseline = attack.linking_accuracy(&w.dataset, &w.dataset);
    assert!(baseline > 0.95, "original data must be linkable, got {baseline}");
    let cfg = FreqDpConfig { m: 10, seed: 4, ..Default::default() };
    let out = anonymize(&w.dataset, Model::Combined, &cfg).expect("valid config");
    let la = attack.linking_accuracy(&w.dataset, &out.dataset);
    assert!(la < baseline * 0.7, "GL should cut spatial linking substantially: {la} vs {baseline}");
}

#[test]
fn anonymized_release_survives_serialization() {
    let w = world(20, 60, 5);
    let cfg = FreqDpConfig { m: 5, seed: 5, ..Default::default() };
    let out = anonymize(&w.dataset, Model::Combined, &cfg).expect("valid config");
    let decoded = decode_dataset(encode_dataset(&out.dataset)).expect("roundtrip");
    assert_eq!(decoded, out.dataset);
}

#[test]
fn frequency_models_resist_recovery_better_than_sc() {
    // The paper's core §V-B3 claim: SC leaves the route recoverable by
    // map-matching; frequency randomization does not.
    let w = world(100, 150, 6);
    let matcher = HmmMapMatcher::new(&w.network);
    let cfg = FreqDpConfig { m: 10, seed: 7, ..Default::default() };

    let sc_out = sc(&w.dataset, 10);
    let sc_rec: Vec<_> = sc_out.trajectories.iter().map(|t| matcher.recover(t)).collect();
    let sc_m = recovery_metrics(&w.dataset.trajectories, &sc_rec, 50.0);

    let gl_out = anonymize(&w.dataset, Model::Combined, &cfg).expect("valid config");
    let gl_rec: Vec<_> = gl_out.dataset.trajectories.iter().map(|t| matcher.recover(t)).collect();
    let gl_m = recovery_metrics(&w.dataset.trajectories, &gl_rec, 50.0);

    assert!(
        gl_m.accuracy < sc_m.accuracy,
        "GL point-recovery accuracy {} should be below SC {}",
        gl_m.accuracy,
        sc_m.accuracy
    );
    assert!(gl_m.rmf > sc_m.rmf, "GL route mismatch {} should exceed SC {}", gl_m.rmf, sc_m.rmf);
}

#[test]
fn signature_analysis_dimensionality_bound() {
    let w = world(20, 60, 8);
    for m in [1, 3, 8] {
        let fa = FrequencyAnalysis::compute(&w.dataset, m);
        assert!(fa.dimensionality() <= w.dataset.len() * m, "d ≤ |D|·m violated for m={m}");
        for sig in &fa.signatures {
            assert!(sig.len() <= m);
        }
    }
}

#[test]
fn w4m_baseline_integrates_with_metrics() {
    let w = world(20, 60, 9);
    let out = w4m(&w.dataset, &W4mConfig { k: 4, delta: 400.0 });
    let mi = mutual_information(&w.dataset, &out, 32);
    let inf = information_loss(&w.dataset, &out);
    assert!((0.0..=1.0).contains(&mi));
    assert!((0.0..=1.0).contains(&inf));
    // W4M moves points without deleting them, so nothing is "retained"
    // only if it moved; both extremes are possible, but the dataset
    // keeps its shape.
    assert_eq!(out.len(), w.dataset.len());
    assert_eq!(out.total_points(), w.dataset.total_points());
}

#[test]
fn budget_is_model_dependent() {
    let w = world(10, 40, 10);
    let cfg = FreqDpConfig { m: 3, eps_global: 0.3, eps_local: 0.7, seed: 1, ..Default::default() };
    let g = anonymize(&w.dataset, Model::PureGlobal, &cfg).expect("valid config");
    let l = anonymize(&w.dataset, Model::PureLocal, &cfg).expect("valid config");
    let c = anonymize(&w.dataset, Model::Combined, &cfg).expect("valid config");
    assert!((g.epsilon_spent - 0.3).abs() < 1e-12);
    assert!((l.epsilon_spent - 0.7).abs() < 1e-12);
    assert!((c.epsilon_spent - 1.0).abs() < 1e-12);
}

#[test]
fn exchangeable_composition_orders_both_work() {
    let w = world(15, 50, 11);
    let cfg = FreqDpConfig { m: 4, seed: 2, ..Default::default() };
    let a = anonymize(&w.dataset, Model::Combined, &cfg).expect("valid config");
    let b = anonymize(&w.dataset, Model::CombinedLocalFirst, &cfg).expect("valid config");
    assert_eq!(a.epsilon_spent, b.epsilon_spent);
    assert_eq!(a.dataset.len(), b.dataset.len());
    // Different order ⇒ different RNG path ⇒ (almost surely) different
    // output, but both valid releases.
    assert!(a.global.is_some() && a.local.is_some());
    assert!(b.global.is_some() && b.local.is_some());
}

//! Property-style integration tests: randomized cross-crate invariants.
//!
//! Originally written against `proptest`; the offline build environment
//! cannot fetch it, so each property runs as a seeded loop over randomly
//! generated inputs instead — same invariants, deterministic cases.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use traj_freq_dp::core::{anonymize, FreqDpConfig, Model};
use traj_freq_dp::index::{
    HierGrid, LinearScan, SegmentEntry, SegmentIndex, Strategy as SearchStrategy, UniformGrid,
};
use traj_freq_dp::metrics::recovery::recovery_metrics_single;
use traj_freq_dp::model::codec::{decode_dataset, encode_dataset};
use traj_freq_dp::model::{Dataset, Point, Rect, Sample, Segment, Trajectory};

const DOMAIN: f64 = 4096.0;
const CASES: usize = 24;

fn arb_point(rng: &mut StdRng) -> Point {
    Point::new(rng.gen_range(0.0..DOMAIN), rng.gen_range(0.0..DOMAIN))
}

fn arb_segment(rng: &mut StdRng) -> Segment {
    Segment::new(arb_point(rng), arb_point(rng))
}

fn arb_trajectory(rng: &mut StdRng, id: u64, max_len: usize) -> Trajectory {
    let len = rng.gen_range(1..max_len);
    Trajectory::new(id, (0..len).map(|i| Sample::new(arb_point(rng), i as i64 * 30)).collect())
}

fn arb_dataset(rng: &mut StdRng, max_trajs: usize, max_len: usize) -> Dataset {
    let n = rng.gen_range(1..max_trajs);
    let ts = (0..n).map(|i| arb_trajectory(rng, i as u64, max_len)).collect();
    Dataset::new(Rect::new(0.0, 0.0, DOMAIN, DOMAIN), ts)
}

/// Every index variant returns exactly the linear-scan KNN distances.
#[test]
fn all_indexes_agree_with_linear() {
    let mut rng = StdRng::seed_from_u64(0xA11);
    for case in 0..CASES {
        let segs: Vec<Segment> =
            (0..rng.gen_range(1..120)).map(|_| arb_segment(&mut rng)).collect();
        let q = arb_point(&mut rng);
        let k = rng.gen_range(1usize..12);
        let entries: Vec<SegmentEntry> =
            segs.iter().enumerate().map(|(i, &s)| SegmentEntry::new(i as u64, s)).collect();
        let domain = Rect::new(0.0, 0.0, DOMAIN, DOMAIN);
        let lin = LinearScan::from_entries(entries.clone());
        let expected: Vec<f64> = lin.knn(&q, k).iter().map(|n| n.dist).collect();

        let ug = UniformGrid::from_entries(domain, 64, entries.clone());
        let got: Vec<f64> = ug.knn(&q, k).iter().map(|n| n.dist).collect();
        assert_eq!(got.len(), expected.len(), "case {case}");
        for (a, b) in got.iter().zip(&expected) {
            assert!((a - b).abs() < 1e-9, "case {case}: UG disagrees: {a} vs {b}");
        }

        let hg = HierGrid::from_entries(domain, 256, entries);
        for s in [SearchStrategy::TopDown, SearchStrategy::BottomUp, SearchStrategy::BottomUpDown] {
            let got: Vec<f64> =
                hg.knn_with_stats(&q, k, s, None).0.iter().map(|n| n.dist).collect();
            assert_eq!(got.len(), expected.len(), "case {case}");
            for (a, b) in got.iter().zip(&expected) {
                assert!((a - b).abs() < 1e-9, "case {case}: {s:?} disagrees: {a} vs {b}");
            }
        }
    }
}

/// Anonymization never loses or reorders objects, never exceeds the
/// budget, and keeps timestamps monotone.
#[test]
fn anonymize_structural_invariants() {
    let mut rng = StdRng::seed_from_u64(0xA12);
    for case in 0..CASES {
        let ds = arb_dataset(&mut rng, 8, 20);
        let seed = rng.gen_range(0u64..1000);
        let cfg = FreqDpConfig { m: 3, seed, ..Default::default() };
        for model in [Model::PureGlobal, Model::PureLocal, Model::Combined] {
            let out = anonymize(&ds, model, &cfg).expect("valid config");
            assert_eq!(out.dataset.len(), ds.len(), "case {case} {model:?}");
            for (a, b) in out.dataset.trajectories.iter().zip(&ds.trajectories) {
                assert_eq!(a.id, b.id, "case {case} {model:?}");
                assert!(
                    a.samples.windows(2).all(|w| w[0].t <= w[1].t),
                    "case {case} {model:?}: timestamps must stay sorted"
                );
            }
            assert!(out.epsilon_spent <= cfg.eps_global + cfg.eps_local + 1e-9);
            assert!(out.utility_loss().is_finite());
        }
    }
}

/// The local plan is always realized exactly: for every planned point
/// the output PF equals the perturbed target.
#[test]
fn local_plan_realized() {
    let mut rng = StdRng::seed_from_u64(0xA13);
    for case in 0..CASES {
        let ds = arb_dataset(&mut rng, 5, 16);
        let seed = rng.gen_range(0u64..1000);
        let cfg = FreqDpConfig { m: 2, seed, ..Default::default() };
        let out = anonymize(&ds, Model::PureLocal, &cfg).expect("valid config");
        let report = out.local.as_ref().expect("local ran");
        for (slot, plan) in report.plans.iter().enumerate() {
            for &(p, _, f_star) in &plan.entries {
                assert_eq!(
                    out.dataset.trajectories[slot].count_point(p),
                    f_star as usize,
                    "case {case} slot {slot}"
                );
            }
        }
    }
}

/// Codec roundtrip is lossless for arbitrary datasets.
#[test]
fn codec_roundtrip() {
    let mut rng = StdRng::seed_from_u64(0xA14);
    for case in 0..CASES {
        let ds = arb_dataset(&mut rng, 6, 24);
        let decoded = decode_dataset(encode_dataset(&ds)).expect("roundtrip");
        assert_eq!(decoded, ds, "case {case}");
    }
}

/// Recovery metrics stay within their mathematical bounds.
#[test]
fn recovery_metric_bounds() {
    let mut rng = StdRng::seed_from_u64(0xA15);
    for case in 0..CASES {
        let a = arb_trajectory(&mut rng, 0, 20);
        let b = arb_trajectory(&mut rng, 0, 20);
        let m = recovery_metrics_single(&a, &b, 25.0);
        assert!((0.0..=1.0).contains(&m.precision), "case {case}");
        assert!((0.0..=1.0).contains(&m.recall), "case {case}");
        assert!((0.0..=1.0).contains(&m.f_score), "case {case}");
        assert!((0.0..=1.0).contains(&m.accuracy), "case {case}");
        assert!(m.rmf >= 0.0 && m.rmf.is_finite(), "case {case}");
    }
}

/// TF realization: PureGlobal's reported targets always hold in the
/// output dataset.
#[test]
fn global_tf_realized() {
    let mut rng = StdRng::seed_from_u64(0xA16);
    for case in 0..CASES {
        let ds = arb_dataset(&mut rng, 6, 16);
        let seed = rng.gen_range(0u64..1000);
        let cfg = FreqDpConfig { m: 2, seed, ..Default::default() };
        let out = anonymize(&ds, Model::PureGlobal, &cfg).expect("valid config");
        let report = out.global.as_ref().expect("global ran");
        for (p, &(_, target)) in &report.tf_changes {
            assert_eq!(
                out.dataset.trajectory_frequency(*p) as u64,
                target,
                "case {case} point {p:?}"
            );
        }
    }
}

//! Property-based integration tests: randomized cross-crate invariants.

use proptest::prelude::*;
use traj_freq_dp::core::{anonymize, FreqDpConfig, Model};
use traj_freq_dp::index::{
    HierGrid, LinearScan, SegmentEntry, SegmentIndex, Strategy as SearchStrategy, UniformGrid,
};
use traj_freq_dp::metrics::recovery::recovery_metrics_single;
use traj_freq_dp::model::codec::{decode_dataset, encode_dataset};
use traj_freq_dp::model::{Dataset, Point, Rect, Sample, Segment, Trajectory};

const DOMAIN: f64 = 4096.0;

fn arb_point() -> impl Strategy<Value = Point> {
    (0.0..DOMAIN, 0.0..DOMAIN).prop_map(|(x, y)| Point::new(x, y))
}

fn arb_segment() -> impl Strategy<Value = Segment> {
    (arb_point(), arb_point()).prop_map(|(a, b)| Segment::new(a, b))
}

fn arb_trajectory(id: u64, max_len: usize) -> impl Strategy<Value = Trajectory> {
    proptest::collection::vec(arb_point(), 1..max_len).prop_map(move |pts| {
        Trajectory::new(
            id,
            pts.into_iter().enumerate().map(|(i, p)| Sample::new(p, i as i64 * 30)).collect(),
        )
    })
}

fn arb_dataset(max_trajs: usize, max_len: usize) -> impl Strategy<Value = Dataset> {
    proptest::collection::vec(arb_trajectory(0, max_len), 1..max_trajs).prop_map(|mut ts| {
        for (i, t) in ts.iter_mut().enumerate() {
            t.id = i as u64;
        }
        Dataset::new(Rect::new(0.0, 0.0, DOMAIN, DOMAIN), ts)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Every index variant returns exactly the linear-scan KNN distances.
    #[test]
    fn all_indexes_agree_with_linear(
        segs in proptest::collection::vec(arb_segment(), 1..120),
        q in arb_point(),
        k in 1usize..12,
    ) {
        let entries: Vec<SegmentEntry> =
            segs.iter().enumerate().map(|(i, &s)| SegmentEntry::new(i as u64, s)).collect();
        let domain = Rect::new(0.0, 0.0, DOMAIN, DOMAIN);
        let lin = LinearScan::from_entries(entries.clone());
        let expected: Vec<f64> = lin.knn(&q, k).iter().map(|n| n.dist).collect();

        let ug = UniformGrid::from_entries(domain, 64, entries.clone());
        let got: Vec<f64> = ug.knn(&q, k).iter().map(|n| n.dist).collect();
        prop_assert_eq!(got.len(), expected.len());
        for (a, b) in got.iter().zip(&expected) {
            prop_assert!((a - b).abs() < 1e-9, "UG disagrees: {} vs {}", a, b);
        }

        let hg = HierGrid::from_entries(domain, 256, entries);
        for s in [SearchStrategy::TopDown, SearchStrategy::BottomUp, SearchStrategy::BottomUpDown] {
            let got: Vec<f64> =
                hg.knn_with_stats(&q, k, s, None).0.iter().map(|n| n.dist).collect();
            prop_assert_eq!(got.len(), expected.len());
            for (a, b) in got.iter().zip(&expected) {
                prop_assert!((a - b).abs() < 1e-9, "{:?} disagrees: {} vs {}", s, a, b);
            }
        }
    }

    /// Anonymization never loses or reorders objects, never exceeds the
    /// budget, and keeps timestamps monotone.
    #[test]
    fn anonymize_structural_invariants(ds in arb_dataset(8, 20), seed in 0u64..1000) {
        let cfg = FreqDpConfig { m: 3, seed, ..Default::default() };
        for model in [Model::PureGlobal, Model::PureLocal, Model::Combined] {
            let out = anonymize(&ds, model, &cfg).expect("valid config");
            prop_assert_eq!(out.dataset.len(), ds.len());
            for (a, b) in out.dataset.trajectories.iter().zip(&ds.trajectories) {
                prop_assert_eq!(a.id, b.id);
                prop_assert!(a.samples.windows(2).all(|w| w[0].t <= w[1].t),
                    "timestamps must stay sorted");
            }
            prop_assert!(out.epsilon_spent <= cfg.eps_global + cfg.eps_local + 1e-9);
            prop_assert!(out.utility_loss().is_finite());
        }
    }

    /// The local plan is always realized exactly: for every planned
    /// point the output PF equals the perturbed target.
    #[test]
    fn local_plan_realized(ds in arb_dataset(5, 16), seed in 0u64..1000) {
        let cfg = FreqDpConfig { m: 2, seed, ..Default::default() };
        let out = anonymize(&ds, Model::PureLocal, &cfg).expect("valid config");
        let report = out.local.as_ref().expect("local ran");
        for (slot, plan) in report.plans.iter().enumerate() {
            for &(p, _, f_star) in &plan.entries {
                prop_assert_eq!(out.dataset.trajectories[slot].count_point(p), f_star as usize);
            }
        }
    }

    /// Codec roundtrip is lossless for arbitrary datasets.
    #[test]
    fn codec_roundtrip(ds in arb_dataset(6, 24)) {
        let decoded = decode_dataset(encode_dataset(&ds)).expect("roundtrip");
        prop_assert_eq!(decoded, ds);
    }

    /// Recovery metrics stay within their mathematical bounds.
    #[test]
    fn recovery_metric_bounds(a in arb_trajectory(0, 20), b in arb_trajectory(0, 20)) {
        let m = recovery_metrics_single(&a, &b, 25.0);
        prop_assert!((0.0..=1.0).contains(&m.precision));
        prop_assert!((0.0..=1.0).contains(&m.recall));
        prop_assert!((0.0..=1.0).contains(&m.f_score));
        prop_assert!((0.0..=1.0).contains(&m.accuracy));
        prop_assert!(m.rmf >= 0.0 && m.rmf.is_finite());
    }

    /// TF realization: PureGlobal's reported targets always hold in the
    /// output dataset.
    #[test]
    fn global_tf_realized(ds in arb_dataset(6, 16), seed in 0u64..1000) {
        let cfg = FreqDpConfig { m: 2, seed, ..Default::default() };
        let out = anonymize(&ds, Model::PureGlobal, &cfg).expect("valid config");
        let report = out.global.as_ref().expect("global ran");
        for (p, &(_, target)) in &report.tf_changes {
            prop_assert_eq!(out.dataset.trajectory_frequency(*p) as u64, target);
        }
    }
}

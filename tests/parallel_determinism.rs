//! Cross-crate determinism: the sharded executor must reproduce the
//! serial pipeline **byte for byte** (as released CSV) at every worker
//! count, for every model, on realistic synthetic data.

use traj_freq_dp::core::{anonymize, FreqDpConfig, Model};
use traj_freq_dp::model::csv::to_csv;
use traj_freq_dp::server::anonymize_parallel;
use traj_freq_dp::synth::{generate, GeneratorConfig};

#[test]
fn parallel_csv_is_byte_identical_to_serial() {
    let world = generate(&GeneratorConfig::tdrive_profile(30, 60, 17));
    let cfg = FreqDpConfig { m: 5, seed: 0xD1CE, ..Default::default() };
    for model in [Model::PureGlobal, Model::PureLocal, Model::Combined] {
        let serial_csv = to_csv(&anonymize(&world.dataset, model, &cfg).unwrap().dataset);
        for workers in [1usize, 2, 8] {
            let parallel_csv =
                to_csv(&anonymize_parallel(&world.dataset, model, &cfg, workers).unwrap().dataset);
            assert_eq!(
                parallel_csv, serial_csv,
                "{model:?} with {workers} workers must match serial byte-for-byte"
            );
        }
    }
}

#[test]
fn parallel_modification_is_byte_identical_for_combined_models() {
    // The global modification phase (`GlobalEdit`) is parallelized via
    // `cfg.workers`; both full combined pipelines must release the exact
    // same bytes at every worker count, through both the serial pipeline
    // and the sharded executor.
    let world = generate(&GeneratorConfig::tdrive_profile(35, 70, 29));
    for model in [Model::Combined, Model::CombinedLocalFirst] {
        let base_cfg = FreqDpConfig { m: 6, seed: 0xBEEF, ..Default::default() };
        let serial_csv = to_csv(&anonymize(&world.dataset, model, &base_cfg).unwrap().dataset);
        for workers in [1usize, 2, 3, 8] {
            let cfg = FreqDpConfig { workers, ..base_cfg };
            let pipeline_csv = to_csv(&anonymize(&world.dataset, model, &cfg).unwrap().dataset);
            assert_eq!(
                pipeline_csv, serial_csv,
                "{model:?}: pipeline with cfg.workers={workers} diverged"
            );
            let executor_csv =
                to_csv(&anonymize_parallel(&world.dataset, model, &cfg, workers).unwrap().dataset);
            assert_eq!(
                executor_csv, serial_csv,
                "{model:?}: executor with {workers} workers diverged"
            );
        }
    }
}

#[test]
fn parallel_modification_with_bbox_pruning_is_byte_identical() {
    let world = generate(&GeneratorConfig::tdrive_profile(25, 50, 31));
    let base_cfg = FreqDpConfig { m: 5, seed: 0xACE, bbox_pruning: true, ..Default::default() };
    let serial_csv =
        to_csv(&anonymize(&world.dataset, Model::Combined, &base_cfg).unwrap().dataset);
    for workers in [2usize, 3, 8] {
        let cfg = FreqDpConfig { workers, ..base_cfg };
        let csv = to_csv(&anonymize(&world.dataset, Model::Combined, &cfg).unwrap().dataset);
        assert_eq!(csv, serial_csv, "bbox-pruned modification diverged at {workers} workers");
    }
}

#[test]
fn different_seeds_still_differ_in_parallel() {
    let world = generate(&GeneratorConfig::tdrive_profile(15, 40, 23));
    let a = anonymize_parallel(
        &world.dataset,
        Model::Combined,
        &FreqDpConfig { m: 4, seed: 1, ..Default::default() },
        8,
    )
    .unwrap();
    let b = anonymize_parallel(
        &world.dataset,
        Model::Combined,
        &FreqDpConfig { m: 4, seed: 2, ..Default::default() },
        8,
    )
    .unwrap();
    assert_ne!(to_csv(&a.dataset), to_csv(&b.dataset));
}

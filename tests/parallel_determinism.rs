//! Cross-crate determinism: the sharded executor must reproduce the
//! serial pipeline **byte for byte** (as released CSV) at every worker
//! count, for every model, on realistic synthetic data.

use traj_freq_dp::core::{anonymize, FreqDpConfig, Model};
use traj_freq_dp::model::csv::to_csv;
use traj_freq_dp::server::anonymize_parallel;
use traj_freq_dp::synth::{generate, GeneratorConfig};

#[test]
fn parallel_csv_is_byte_identical_to_serial() {
    let world = generate(&GeneratorConfig::tdrive_profile(30, 60, 17));
    let cfg = FreqDpConfig { m: 5, seed: 0xD1CE, ..Default::default() };
    for model in [Model::PureGlobal, Model::PureLocal, Model::Combined] {
        let serial_csv = to_csv(&anonymize(&world.dataset, model, &cfg).unwrap().dataset);
        for workers in [1usize, 2, 8] {
            let parallel_csv =
                to_csv(&anonymize_parallel(&world.dataset, model, &cfg, workers).unwrap().dataset);
            assert_eq!(
                parallel_csv, serial_csv,
                "{model:?} with {workers} workers must match serial byte-for-byte"
            );
        }
    }
}

#[test]
fn different_seeds_still_differ_in_parallel() {
    let world = generate(&GeneratorConfig::tdrive_profile(15, 40, 23));
    let a = anonymize_parallel(
        &world.dataset,
        Model::Combined,
        &FreqDpConfig { m: 4, seed: 1, ..Default::default() },
        8,
    )
    .unwrap();
    let b = anonymize_parallel(
        &world.dataset,
        Model::Combined,
        &FreqDpConfig { m: 4, seed: 2, ..Default::default() },
        8,
    )
    .unwrap();
    assert_ne!(to_csv(&a.dataset), to_csv(&b.dataset));
}

#!/usr/bin/env bash
# End-to-end smoke test of the trajdp service layer, driving the real
# binary over TCP: serve in the background, chunked `submit --file
# --data`, poll `status`, `fetch` the stored result, and diff it against
# the inline CLI output. Then exercise the storage lifecycle at the
# dataset cap (LRU eviction, `delete` freeing a slot, re-upload),
# restart the server on the same --state-dir and check that the
# compacted journal still resolves the finished job and its stored
# result. A final two-tenant phase spends a dataset's ε budget to the
# brim, kills the server, and proves the replayed ledger still refuses
# further spend. Exercises the code paths `cargo test` cannot: the
# actual process boundary, CLI flag plumbing, and journal
# replay/compaction across a process death.
#
# Usage: scripts/smoke.sh   (expects target/release/trajdp to exist)
set -euo pipefail

BIN=${BIN:-target/release/trajdp}
ADDR=${ADDR:-127.0.0.1:7943}
ADDR2=${ADDR2:-127.0.0.1:7944} # restart on a fresh port: no TIME_WAIT races
ADDR3=${ADDR3:-127.0.0.1:7945} # tenancy phase
ADDR4=${ADDR4:-127.0.0.1:7946} # tenancy phase, after the kill
TMP=$(mktemp -d)
SERVER_PID=""

cleanup() {
    [ -n "$SERVER_PID" ] && kill "$SERVER_PID" 2>/dev/null || true
    rm -rf "$TMP"
}
trap cleanup EXIT

wait_healthy() {
    for _ in $(seq 1 100); do
        if echo '{"cmd":"health"}' | "$BIN" submit --addr "$1" >/dev/null 2>&1; then
            return 0
        fi
        sleep 0.1
    done
    echo "FAIL: server at $1 never became healthy" >&2
    exit 1
}

# Reference: the offline CLI pipeline.
"$BIN" gen --size 40 --len 60 --seed 7 --out "$TMP/private.csv"
"$BIN" anonymize --model gl --m 4 --seed 9 --input "$TMP/private.csv" \
    --out "$TMP/inline.csv"

# A tiny --max-datasets cap so the lifecycle phase below can hit it with
# a handful of uploads.
"$BIN" serve --addr "$ADDR" --workers 2 --state-dir "$TMP/state" \
    --max-datasets 4 &
SERVER_PID=$!
wait_healthy "$ADDR"

# Async anonymize with the dataset spliced in from --data; the tiny
# --chunk-threshold forces the upload/chunk/commit path, and store:true
# keeps the release server-side for a chunked fetch.
printf '%s\n' '{"cmd":"anonymize","model":"gl","m":4,"seed":9,"async":true,"store":true}' \
    > "$TMP/req.json"
RESP=$("$BIN" submit --addr "$ADDR" --file "$TMP/req.json" \
    --data "$TMP/private.csv" --chunk-threshold 1000)
JOB=$(printf '%s' "$RESP" | grep -o '"job":"[^"]*"' | head -1 | cut -d'"' -f4)
[ -n "$JOB" ] || { echo "FAIL: no job id in: $RESP" >&2; exit 1; }

# Journal-by-handle: the submit event must reference the uploaded
# handle, not re-record the multi-KB CSV text.
grep -q '"dataset":"ds-1"' "$TMP/state/jobs.jsonl" \
    || { echo "FAIL: submit event does not journal the dataset handle" >&2; exit 1; }
JOURNAL_BYTES=$(wc -c < "$TMP/state/jobs.jsonl")
CSV_BYTES=$(wc -c < "$TMP/private.csv")
[ "$JOURNAL_BYTES" -lt "$CSV_BYTES" ] \
    || { echo "FAIL: journal ($JOURNAL_BYTES B) re-records the CSV ($CSV_BYTES B)" >&2; exit 1; }

STATUS=""
for i in $(seq 1 600); do
    STATUS=$(echo "{\"cmd\":\"status\",\"job\":\"$JOB\"}" | "$BIN" submit --addr "$ADDR")
    STATE=$(printf '%s' "$STATUS" | grep -o '"state":"[^"]*"' | head -1 | cut -d'"' -f4)
    [ "$STATE" = done ] && break
    [ "$i" = 600 ] && { echo "FAIL: job never finished: $STATUS" >&2; exit 1; }
    sleep 0.1
done
DS=$(printf '%s' "$STATUS" | grep -o '"dataset":"[^"]*"' | head -1 | cut -d'"' -f4)
[ -n "$DS" ] || { echo "FAIL: no result dataset in: $STATUS" >&2; exit 1; }

"$BIN" fetch --addr "$ADDR" --dataset "$DS" --out "$TMP/remote.csv"
cmp "$TMP/inline.csv" "$TMP/remote.csv" \
    || { echo "FAIL: chunked service output differs from inline CLI output" >&2; exit 1; }

# ---- storage lifecycle at the cap -----------------------------------
# State: ds-1 (input upload, cold) + $DS (result, warm from the fetch).
# Fill the two remaining slots with pending uploads.
P3=$(echo '{"cmd":"upload"}' | "$BIN" submit --addr "$ADDR" \
    | grep -o '"dataset":"[^"]*"' | cut -d'"' -f4)
P4=$(echo '{"cmd":"upload"}' | "$BIN" submit --addr "$ADDR" \
    | grep -o '"dataset":"[^"]*"' | cut -d'"' -f4)
[ -n "$P3" ] && [ -n "$P4" ] || { echo "FAIL: uploads below the cap must succeed" >&2; exit 1; }

# At the cap, the next upload evicts the LRU unpinned committed handle —
# the cold input ds-1 — and succeeds; the warm result survives.
EVICT=$(echo '{"cmd":"upload"}' | "$BIN" submit --addr "$ADDR")
printf '%s' "$EVICT" | grep -q '"ok":true' \
    || { echo "FAIL: upload at the cap must LRU-evict and succeed: $EVICT" >&2; exit 1; }
GONE=$(echo '{"cmd":"download","dataset":"ds-1"}' | "$BIN" submit --addr "$ADDR")
printf '%s' "$GONE" | grep -q 'unknown dataset' \
    || { echo "FAIL: cold input should have been evicted: $GONE" >&2; exit 1; }

# `delete` frees a slot explicitly: abort one pending upload, and the
# next upload succeeds without evicting anything committed.
echo "{\"cmd\":\"delete\",\"dataset\":\"$P3\"}" | "$BIN" submit --addr "$ADDR" \
    | grep -q '"ok":true' || { echo "FAIL: delete of a pending upload refused" >&2; exit 1; }
echo '{"cmd":"upload"}' | "$BIN" submit --addr "$ADDR" | grep -q '"ok":true' \
    || { echo "FAIL: upload after delete must reuse the freed slot" >&2; exit 1; }
"$BIN" fetch --addr "$ADDR" --dataset "$DS" --out "$TMP/survivor.csv"
cmp "$TMP/inline.csv" "$TMP/survivor.csv" \
    || { echo "FAIL: stored result was disturbed by the lifecycle churn" >&2; exit 1; }

# ---- restart: compaction + replay -----------------------------------
# Kill the server and restart on the same state dir: startup compacts
# the journal to snapshot form, the finished job must still resolve and
# the persisted result must still fetch byte-identically.
kill "$SERVER_PID"
wait "$SERVER_PID" 2>/dev/null || true
SERVER_PID=""
"$BIN" serve --addr "$ADDR2" --workers 2 --state-dir "$TMP/state" \
    --max-datasets 4 &
SERVER_PID=$!
wait_healthy "$ADDR2"

grep -q '"event":"snapshot"' "$TMP/state/jobs.jsonl" \
    || { echo "FAIL: restart did not compact the journal" >&2; exit 1; }
grep -q '"event":"finish"' "$TMP/state/jobs.jsonl" \
    && { echo "FAIL: compacted journal still carries raw finish events" >&2; exit 1; }

STATUS=$(echo "{\"cmd\":\"status\",\"job\":\"$JOB\"}" | "$BIN" submit --addr "$ADDR2")
printf '%s' "$STATUS" | grep -q '"state":"done"' \
    || { echo "FAIL: replayed status wrong: $STATUS" >&2; exit 1; }
"$BIN" fetch --addr "$ADDR2" --dataset "$DS" --out "$TMP/remote2.csv"
cmp "$TMP/inline.csv" "$TMP/remote2.csv" \
    || { echo "FAIL: restarted server serves different bytes" >&2; exit 1; }
"$BIN" delete --addr "$ADDR2" --dataset "$DS" \
    || { echo "FAIL: delete CLI verb failed on the restarted server" >&2; exit 1; }

# ---- protocol v2: envelope, id echo, stable error codes -------------
V2OK=$(echo '{"cmd":"health","v":2,"id":"smoke-1"}' | "$BIN" submit --addr "$ADDR2")
printf '%s' "$V2OK" | grep -q '"id":"smoke-1"' && printf '%s' "$V2OK" | grep -q '"ok":true' \
    || { echo "FAIL: v2 success must echo the id: $V2OK" >&2; exit 1; }
V2MISS=$(echo '{"cmd":"download","dataset":"ds-404","v":2,"id":"smoke-2"}' \
    | "$BIN" submit --addr "$ADDR2")
printf '%s' "$V2MISS" | grep -q '"code":"dataset-not-found"' \
    && printf '%s' "$V2MISS" | grep -q '"id":"smoke-2"' \
    || { echo "FAIL: v2 error must carry code + id: $V2MISS" >&2; exit 1; }
V2VERB=$(echo '{"cmd":"bogus","v":2,"id":"smoke-3"}' | "$BIN" submit --addr "$ADDR2")
printf '%s' "$V2VERB" | grep -q '"code":"unknown-verb"' \
    || { echo "FAIL: unknown verb must code unknown-verb: $V2VERB" >&2; exit 1; }
# The same failure without "v":2 keeps the bare v1 string shape.
V1MISS=$(echo '{"cmd":"download","dataset":"ds-404"}' | "$BIN" submit --addr "$ADDR2")
printf '%s' "$V1MISS" | grep -q '"error":"unknown dataset' \
    || { echo "FAIL: v1 error shape changed: $V1MISS" >&2; exit 1; }

# ---- info: discoverable caps drive the download chunk size ----------
INFO=$("$BIN" info --addr "$ADDR2")
MAXCHUNK=$(printf '%s\n' "$INFO" | grep '^max_download_chunk_bytes=' | cut -d= -f2)
DEFCHUNK=$(printf '%s\n' "$INFO" | grep '^default_download_chunk_bytes=' | cut -d= -f2)
printf '%s\n' "$INFO" | grep -q '^protocol_versions=1,2$' \
    || { echo "FAIL: info must report protocol versions 1,2: $INFO" >&2; exit 1; }
[ -n "$MAXCHUNK" ] && [ -n "$DEFCHUNK" ] && [ "$MAXCHUNK" -ge "$DEFCHUNK" ] \
    || { echo "FAIL: info must report usable chunk caps: $INFO" >&2; exit 1; }
# A fresh upload, then a download sized by the info-reported cap.
DS2=$(echo '{"cmd":"upload","v":2,"id":"smoke-4"}' | "$BIN" submit --addr "$ADDR2" \
    | grep -o '"dataset":"[^"]*"' | cut -d'"' -f4)
echo "{\"cmd\":\"chunk\",\"dataset\":\"$DS2\",\"data\":\"traj_id,x,y,t\\n\",\"v\":2,\"id\":\"smoke-5\"}" \
    | "$BIN" submit --addr "$ADDR2" | grep -q '"ok":true' \
    || { echo "FAIL: v2 chunk refused" >&2; exit 1; }
echo "{\"cmd\":\"commit\",\"dataset\":\"$DS2\",\"v\":2,\"id\":\"smoke-6\"}" \
    | "$BIN" submit --addr "$ADDR2" | grep -q '"ok":true' \
    || { echo "FAIL: v2 commit refused" >&2; exit 1; }
V2DL=$(echo "{\"cmd\":\"download\",\"dataset\":\"$DS2\",\"max_bytes\":$MAXCHUNK,\"v\":2,\"id\":\"smoke-7\"}" \
    | "$BIN" submit --addr "$ADDR2")
printf '%s' "$V2DL" | grep -q '"eof":true' && printf '%s' "$V2DL" | grep -q '"id":"smoke-7"' \
    || { echo "FAIL: info-cap-sized download failed: $V2DL" >&2; exit 1; }

# ---- metrics: the v2 session above must be visible in the scrape ----
METRICS=$("$BIN" metrics --addr "$ADDR2")
printf '%s\n' "$METRICS" | grep -q '^trajdp_uptime_seconds ' \
    || { echo "FAIL: metrics must report uptime: $METRICS" >&2; exit 1; }
HEALTHN=$(printf '%s\n' "$METRICS" | grep '^trajdp_requests_total{verb="health"}' \
    | grep -o '[0-9]*$')
[ -n "$HEALTHN" ] && [ "$HEALTHN" -ge 1 ] \
    || { echo "FAIL: health requests of this session must be counted" >&2; exit 1; }
NOTFOUND=$(printf '%s\n' "$METRICS" | grep '^trajdp_errors_total{code="dataset-not-found"}' \
    | grep -o '[0-9]*$')
# smoke-2 and the v1 replay of the same failure each hit this code.
[ -n "$NOTFOUND" ] && [ "$NOTFOUND" -ge 2 ] \
    || { echo "FAIL: dataset-not-found rejections must be counted (got ${NOTFOUND:-none})" >&2; exit 1; }
printf '%s\n' "$METRICS" | grep '^trajdp_errors_total{code="unknown-verb"}' \
    | grep -q ' [1-9]' || { echo "FAIL: unknown-verb rejection must be counted" >&2; exit 1; }
# The JSON exposition parses and carries the same sections.
"$BIN" metrics --addr "$ADDR2" --json | grep -q '"requests":' \
    || { echo "FAIL: metrics --json must emit the wire shape" >&2; exit 1; }

# ---- parallel burst: the reactor serves concurrent clients ----------
# A thread-per-connection server with a small worker cap serializes (or
# refuses) this; the readiness loop must answer every one.
BURST=24
: > "$TMP/burst.out"
BURST_PIDS=""
for _ in $(seq 1 "$BURST"); do
    ( echo '{"cmd":"health"}' | "$BIN" submit --addr "$ADDR2" >> "$TMP/burst.out" 2>&1 ) &
    BURST_PIDS="$BURST_PIDS $!"
done
for pid in $BURST_PIDS; do
    wait "$pid" || { echo "FAIL: a burst client exited non-zero" >&2; exit 1; }
done
OKS=$(grep -c '"ok":true' "$TMP/burst.out" || true)
[ "$OKS" = "$BURST" ] \
    || { echo "FAIL: only $OKS/$BURST burst clients got a healthy answer" >&2; exit 1; }

# ---- CLI exit-code classes ------------------------------------------
rc=0; "$BIN" delete --addr "$ADDR2" --dataset ds-nope 2>/dev/null || rc=$?
[ "$rc" = 4 ] || { echo "FAIL: server-rejected request must exit 4 (got $rc)" >&2; exit 1; }
rc=0; "$BIN" fetch --addr 127.0.0.1:1 --dataset ds-1 --out "$TMP/none.csv" 2>/dev/null || rc=$?
[ "$rc" = 3 ] || { echo "FAIL: connection failure must exit 3 (got $rc)" >&2; exit 1; }
rc=0; "$BIN" gen --sizee 5 --out "$TMP/x.csv" 2>/dev/null || rc=$?
[ "$rc" = 2 ] || { echo "FAIL: usage error must exit 2 (got $rc)" >&2; exit 1; }
rc=0; "$BIN" stats --input "$TMP/definitely-missing.csv" 2>/dev/null || rc=$?
[ "$rc" = 1 ] || { echo "FAIL: local failure must exit 1 (got $rc)" >&2; exit 1; }

# ---- tenancy + ε ledger: spend survives a kill ----------------------
# Two tenants and a per-dataset ε budget of 0.5. acme spends its
# dataset to exactly the budget, the server dies, and the restarted
# process must still refuse further spend — the ledger replays from
# the journal bit-for-bit. globex's own dataset is untouched.
kill "$SERVER_PID"
wait "$SERVER_PID" 2>/dev/null || true
SERVER_PID=""
printf '# smoke registry\nacme:sesame\nglobex:gx-token\n' > "$TMP/tenants.txt"
"$BIN" serve --addr "$ADDR3" --workers 2 --state-dir "$TMP/tstate" \
    --tenants "$TMP/tenants.txt" --eps-budget 0.5 &
SERVER_PID=$!
wait_healthy "$ADDR3"

BADTOK=$(echo '{"cmd":"health","v":2,"id":"smoke-t1","tenant":"acme:nope"}' \
    | "$BIN" submit --addr "$ADDR3")
printf '%s' "$BADTOK" | grep -q '"code":"tenant-unknown"' \
    || { echo "FAIL: bad token must code tenant-unknown: $BADTOK" >&2; exit 1; }

ADS=$(echo '{"cmd":"gen","size":6,"len":30,"seed":11,"store":true,"v":2,"tenant":"acme:sesame"}' \
    | "$BIN" submit --addr "$ADDR3" | grep -o '"dataset":"[^"]*"' | cut -d'"' -f4)
GDS=$(echo '{"cmd":"gen","size":6,"len":30,"seed":12,"store":true,"v":2,"tenant":"globex:gx-token"}' \
    | "$BIN" submit --addr "$ADDR3" | grep -o '"dataset":"[^"]*"' | cut -d'"' -f4)
[ -n "$ADS" ] && [ -n "$GDS" ] || { echo "FAIL: tenant gen-store uploads failed" >&2; exit 1; }

echo "{\"cmd\":\"anonymize\",\"dataset\":\"$ADS\",\"model\":\"gl\",\"m\":4,\"seed\":9,\"epsilon\":0.5,\"v\":2,\"tenant\":\"acme:sesame\"}" \
    | "$BIN" submit --addr "$ADDR3" | grep -q '"ok":true' \
    || { echo "FAIL: in-budget anonymize refused" >&2; exit 1; }
OVER=$(echo "{\"cmd\":\"anonymize\",\"dataset\":\"$ADS\",\"model\":\"gl\",\"m\":4,\"seed\":9,\"epsilon\":0.25,\"v\":2,\"id\":\"smoke-t2\",\"tenant\":\"acme:sesame\"}" \
    | "$BIN" submit --addr "$ADDR3")
printf '%s' "$OVER" | grep -q '"code":"budget-exhausted"' \
    || { echo "FAIL: over-budget spend must be refused: $OVER" >&2; exit 1; }
echo "{\"cmd\":\"anonymize\",\"dataset\":\"$GDS\",\"model\":\"gl\",\"m\":4,\"seed\":9,\"epsilon\":0.25,\"v\":2,\"tenant\":\"globex:gx-token\"}" \
    | "$BIN" submit --addr "$ADDR3" | grep -q '"ok":true' \
    || { echo "FAIL: second tenant must be unaffected by acme's exhaustion" >&2; exit 1; }
grep -q '"event":"spend"' "$TMP/tstate/jobs.jsonl" \
    || { echo "FAIL: ε spend must be journaled" >&2; exit 1; }

kill "$SERVER_PID"
wait "$SERVER_PID" 2>/dev/null || true
SERVER_PID=""
"$BIN" serve --addr "$ADDR4" --workers 2 --state-dir "$TMP/tstate" \
    --tenants "$TMP/tenants.txt" --eps-budget 0.5 &
SERVER_PID=$!
wait_healthy "$ADDR4"

LISTED=$(echo '{"cmd":"list","v":2,"id":"smoke-t3","tenant":"acme:sesame"}' \
    | "$BIN" submit --addr "$ADDR4")
printf '%s' "$LISTED" | grep -q '"eps_spent":0.5' \
    || { echo "FAIL: replayed ledger must report the exact spend: $LISTED" >&2; exit 1; }
# The credential must never round-trip into any response.
printf '%s' "$LISTED" | grep -q 'sesame' \
    && { echo "FAIL: responses must never echo tenant tokens: $LISTED" >&2; exit 1; }
STILL=$(echo "{\"cmd\":\"anonymize\",\"dataset\":\"$ADS\",\"model\":\"gl\",\"m\":4,\"seed\":9,\"epsilon\":0.25,\"v\":2,\"id\":\"smoke-t4\",\"tenant\":\"acme:sesame\"}" \
    | "$BIN" submit --addr "$ADDR4")
printf '%s' "$STILL" | grep -q '"code":"budget-exhausted"' \
    || { echo "FAIL: ε spend must survive the restart: $STILL" >&2; exit 1; }

echo "smoke test passed: chunked transfer byte-identical, lifecycle at the cap OK, compacted journal replays, v2 envelope + error codes + metrics scrape + parallel burst + exit classes OK, tenant budget survives kill+restart"

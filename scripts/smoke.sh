#!/usr/bin/env bash
# End-to-end smoke test of the trajdp service layer, driving the real
# binary over TCP: serve in the background, chunked `submit --file
# --data`, poll `status`, `fetch` the stored result, and diff it against
# the inline CLI output. Then restart the server on the same --state-dir
# and check that the finished job id still resolves and its result is
# still downloadable. Exercises the code paths `cargo test` cannot: the
# actual process boundary, CLI flag plumbing, and journal replay across
# a process death.
#
# Usage: scripts/smoke.sh   (expects target/release/trajdp to exist)
set -euo pipefail

BIN=${BIN:-target/release/trajdp}
ADDR=${ADDR:-127.0.0.1:7943}
ADDR2=${ADDR2:-127.0.0.1:7944} # restart on a fresh port: no TIME_WAIT races
TMP=$(mktemp -d)
SERVER_PID=""

cleanup() {
    [ -n "$SERVER_PID" ] && kill "$SERVER_PID" 2>/dev/null || true
    rm -rf "$TMP"
}
trap cleanup EXIT

wait_healthy() {
    for _ in $(seq 1 100); do
        if echo '{"cmd":"health"}' | "$BIN" submit --addr "$1" >/dev/null 2>&1; then
            return 0
        fi
        sleep 0.1
    done
    echo "FAIL: server at $1 never became healthy" >&2
    exit 1
}

# Reference: the offline CLI pipeline.
"$BIN" gen --size 40 --len 60 --seed 7 --out "$TMP/private.csv"
"$BIN" anonymize --model gl --m 4 --seed 9 --input "$TMP/private.csv" \
    --out "$TMP/inline.csv"

"$BIN" serve --addr "$ADDR" --workers 2 --state-dir "$TMP/state" &
SERVER_PID=$!
wait_healthy "$ADDR"

# Async anonymize with the dataset spliced in from --data; the tiny
# --chunk-threshold forces the upload/chunk/commit path, and store:true
# keeps the release server-side for a chunked fetch.
printf '%s\n' '{"cmd":"anonymize","model":"gl","m":4,"seed":9,"async":true,"store":true}' \
    > "$TMP/req.json"
RESP=$("$BIN" submit --addr "$ADDR" --file "$TMP/req.json" \
    --data "$TMP/private.csv" --chunk-threshold 1000)
JOB=$(printf '%s' "$RESP" | grep -o '"job":"[^"]*"' | head -1 | cut -d'"' -f4)
[ -n "$JOB" ] || { echo "FAIL: no job id in: $RESP" >&2; exit 1; }

STATUS=""
for i in $(seq 1 600); do
    STATUS=$(echo "{\"cmd\":\"status\",\"job\":\"$JOB\"}" | "$BIN" submit --addr "$ADDR")
    STATE=$(printf '%s' "$STATUS" | grep -o '"state":"[^"]*"' | head -1 | cut -d'"' -f4)
    [ "$STATE" = done ] && break
    [ "$i" = 600 ] && { echo "FAIL: job never finished: $STATUS" >&2; exit 1; }
    sleep 0.1
done
DS=$(printf '%s' "$STATUS" | grep -o '"dataset":"[^"]*"' | head -1 | cut -d'"' -f4)
[ -n "$DS" ] || { echo "FAIL: no result dataset in: $STATUS" >&2; exit 1; }

"$BIN" fetch --addr "$ADDR" --dataset "$DS" --out "$TMP/remote.csv"
cmp "$TMP/inline.csv" "$TMP/remote.csv" \
    || { echo "FAIL: chunked service output differs from inline CLI output" >&2; exit 1; }

# Kill the server and restart on the same state dir: the journal must
# resolve the finished job and the persisted dataset must still fetch.
kill "$SERVER_PID"
wait "$SERVER_PID" 2>/dev/null || true
SERVER_PID=""
"$BIN" serve --addr "$ADDR2" --workers 2 --state-dir "$TMP/state" &
SERVER_PID=$!
wait_healthy "$ADDR2"

STATUS=$(echo "{\"cmd\":\"status\",\"job\":\"$JOB\"}" | "$BIN" submit --addr "$ADDR2")
printf '%s' "$STATUS" | grep -q '"state":"done"' \
    || { echo "FAIL: replayed status wrong: $STATUS" >&2; exit 1; }
"$BIN" fetch --addr "$ADDR2" --dataset "$DS" --out "$TMP/remote2.csv"
cmp "$TMP/inline.csv" "$TMP/remote2.csv" \
    || { echo "FAIL: restarted server serves different bytes" >&2; exit 1; }

echo "smoke test passed: chunked transfer byte-identical to inline, journal replay OK"

#!/usr/bin/env bash
# Run the workspace invariant linter (crates/analysis) against the
# repository root. Exit 0 means every invariant holds; exit 1 prints
# one `file:line: [check] message` finding per line; exit 2 is a
# usage/IO error in the linter itself. Arguments are passed through:
#   scripts/analyze.sh --check lock-order     # run a single check
#   scripts/analyze.sh --format json          # machine-readable output
set -euo pipefail
cd "$(dirname "$0")/.."
exec cargo run -q -p trajdp-analysis --release -- "$@"

//! Wire-contract tests.
//!
//! * **v1 parity**: version-less requests must produce responses
//!   *byte-identical* to the pre-redesign server, for success and error
//!   paths alike — the expected strings below were captured verbatim
//!   from the last release before error codes existed, and the typed
//!   [`trajdp_server::api::Response`] layer must reproduce them
//!   exactly. A mismatch here is a compatibility break for every v1
//!   client and script.
//! * **v2 envelope**: `"v":2` requests get the enveloped shapes — id
//!   echo on success and failure, `error.code`/`error.message` objects
//!   — and every documented wire error code is reachable and asserted
//!   in both shapes.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use trajdp_server::api::ErrorCode;
use trajdp_server::client::JobPhase;
use trajdp_server::json::Json;
use trajdp_server::{Client, Server, ServerConfig};

/// A raw line-level connection: no client-side parsing, so responses
/// can be compared byte-for-byte.
struct Raw {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Raw {
    fn connect(addr: std::net::SocketAddr) -> Raw {
        let stream = TcpStream::connect(addr).unwrap();
        let writer = stream.try_clone().unwrap();
        Raw { reader: BufReader::new(stream), writer }
    }

    /// Sends one request line, returns the exact response line (without
    /// the terminating newline).
    fn send(&mut self, line: &str) -> String {
        self.writer.write_all(format!("{line}\n").as_bytes()).unwrap();
        self.writer.flush().unwrap();
        let mut response = String::new();
        self.reader.read_line(&mut response).unwrap();
        assert!(response.ends_with('\n'), "unterminated response for {line}");
        response.pop();
        response
    }
}

/// The fixed server shape all parity expectations were captured
/// against: no job workers (submitted jobs freeze in `queued`, so
/// status/pin state is deterministic) and a 2-handle store (so the
/// full condition is reachable with two uploads).
fn parity_server() -> Server {
    Server::start(ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        workers: 0,
        max_connections: 8,
        max_datasets: 2,
        ..ServerConfig::default()
    })
    .unwrap()
}

/// Version-less requests replay the exact capture transcript of the
/// pre-redesign server — success and error paths, byte for byte.
#[test]
fn v1_shapes_are_byte_identical_to_the_pre_redesign_server() {
    let server = parity_server();
    let mut c = Raw::connect(server.local_addr());
    // (request, expected exact response) in capture order — later
    // entries depend on the state earlier ones build (ds-1 committed
    // and pinned by queued job-1, ds-2 committed then deleted).
    let transcript: &[(&str, &str)] = &[
        (
            r#"{"cmd":"health"}"#,
            r#"{"ok":true,"outstanding_jobs":0,"status":"healthy","stored_datasets":0}"#,
        ),
        (
            r#"{"cmd":"gen","size":2,"len":3,"seed":1}"#,
            r#"{"csv":"traj_id,x,y,t\n0,1141.2367616580602,635.1383962771993,54288\n0,1860.3840232737234,628.7608007479209,54474\n0,2983.0790240096994,646.127614129725,54846\n1,3589.3152939852434,3570.182645854136,39565\n1,4222.730818205579,3566.7249114140577,39751\n1,5339.740115405461,3671.810180393583,40123\n","distinct_locations":6,"ok":true,"points":6,"trajectories":2}"#,
        ),
        (
            r#"{"cmd":"gen","size":2,"len":3,"seed":1,"store":true}"#,
            r#"{"bytes":282,"dataset":"ds-1","distinct_locations":6,"ok":true,"points":6,"trajectories":2}"#,
        ),
        (
            r#"{"cmd":"stats","dataset":"ds-1"}"#,
            r#"{"avg_point_spacing":899.342824197189,"avg_sampling_period":279,"avg_traj_len":3,"distinct_locations":6,"ok":true,"points":6,"trajectories":2}"#,
        ),
        (r#"{"cmd":"upload"}"#, r#"{"dataset":"ds-2","ok":true}"#),
        (
            r#"{"cmd":"chunk","dataset":"ds-2","data":"traj_id,x,y,t\n0,1.0,2.0,3\n"}"#,
            r#"{"bytes":26,"dataset":"ds-2","ok":true}"#,
        ),
        (r#"{"cmd":"commit","dataset":"ds-2"}"#, r#"{"bytes":26,"dataset":"ds-2","ok":true}"#),
        (
            r#"{"cmd":"anonymize","model":"purel","epsilon":1.0,"m":2,"seed":5,"dataset":"ds-1"}"#,
            r#"{"csv":"traj_id,x,y,t\n0,2983.0790240096994,646.127614129725,54846\n0,2983.0790240096994,646.127614129725,54847\n0,2983.0790240096994,646.127614129725,54848\n1,5339.740115405461,3671.810180393583,40123\n1,5339.740115405461,3671.810180393583,40124\n","edits":7,"epsilon_spent":1,"ok":true,"utility_loss":0,"workers":1}"#,
        ),
        (
            r#"{"cmd":"anonymize","model":"purel","epsilon":1.0,"m":2,"seed":5,"dataset":"ds-1","async":true}"#,
            r#"{"job":"job-1","ok":true,"state":"queued"}"#,
        ),
        (r#"{"cmd":"status","job":"job-1"}"#, r#"{"job":"job-1","ok":true,"state":"queued"}"#),
        (
            r#"{"cmd":"evaluate","original_dataset":"ds-1","anonymized_dataset":"ds-1"}"#,
            r#"{"de":0,"ffp":1,"inf":0,"mi":1,"ok":true,"te":0}"#,
        ),
        (
            r#"{"cmd":"download","dataset":"ds-2","offset":0,"max_bytes":10}"#,
            r#"{"bytes":10,"data":"traj_id,x,","dataset":"ds-2","eof":false,"offset":0,"ok":true,"total_bytes":26}"#,
        ),
        (
            r#"{"cmd":"list"}"#,
            r#"{"datasets":[{"bytes":282,"dataset":"ds-1","pins":1,"state":"committed"},{"bytes":26,"dataset":"ds-2","pins":0,"state":"committed"}],"jobs":[{"job":"job-1","state":"queued"}],"ok":true}"#,
        ),
        (r#"{"cmd":"delete","dataset":"ds-2"}"#, r#"{"bytes":26,"dataset":"ds-2","ok":true}"#),
        // ---- error paths: the frozen v1 string shapes ----
        ("not json", r#"{"error":"JSON parse error at byte 0: expected null","ok":false}"#),
        (r#"{"nocmd":1}"#, r#"{"error":"missing string member \"cmd\"","ok":false}"#),
        (r#"{"cmd":"bogus"}"#, r#"{"error":"unknown cmd \"bogus\"","ok":false}"#),
        (
            r#"{"cmd":"health","extra":1}"#,
            r#"{"error":"unknown member \"extra\" for cmd \"health\" (accepted: none besides \"cmd\")","ok":false}"#,
        ),
        (r#"{"cmd":"gen","size":0}"#, r#"{"error":"size and len must be at least 1","ok":false}"#),
        (
            r#"{"cmd":"gen","size":9007199254740991,"len":150}"#,
            r#"{"error":"size * len must not exceed 20000000 points","ok":false}"#,
        ),
        (
            r#"{"cmd":"anonymize","model":"zzz","csv":""}"#,
            r#"{"error":"unknown model \"zzz\" (pureg|purel|gl|lg)","ok":false}"#,
        ),
        (
            r#"{"cmd":"anonymize","model":"gl","epsilon":-1,"csv":""}"#,
            r#"{"error":"epsilon must be positive","ok":false}"#,
        ),
        (
            r#"{"cmd":"anonymize","model":"gl","eps_split":0,"csv":""}"#,
            r#"{"error":"--eps-split must lie in (0, 1), got 0","ok":false}"#,
        ),
        (
            r#"{"cmd":"anonymize","model":"gl","m":0,"csv":""}"#,
            r#"{"error":"m must lie in [1, 100000]","ok":false}"#,
        ),
        (
            r#"{"cmd":"anonymize","model":"gl","workers":0,"csv":""}"#,
            r#"{"error":"workers must be at least 1","ok":false}"#,
        ),
        (
            r#"{"cmd":"anonymize","model":"gl","workers":100000,"csv":""}"#,
            r#"{"error":"workers must not exceed 1024","ok":false}"#,
        ),
        (
            r#"{"cmd":"anonymize","model":"gl","csv":"","dataset":"ds-1"}"#,
            r#"{"error":"members \"csv\" and \"dataset\" are mutually exclusive","ok":false}"#,
        ),
        (
            r#"{"cmd":"anonymize","model":"gl"}"#,
            r#"{"error":"missing member \"csv\" or \"dataset\"","ok":false}"#,
        ),
        (
            r#"{"cmd":"anonymize","model":"gl","csv":"","epsilom":2.0}"#,
            r#"{"error":"unknown member \"epsilom\" for cmd \"anonymize\" (accepted: \"model\", \"csv\", \"dataset\", \"epsilon\", \"eps_split\", \"m\", \"seed\", \"workers\", \"async\", \"store\")","ok":false}"#,
        ),
        (
            r#"{"cmd":"anonymize","model":"gl","csv":"","async":1}"#,
            r#"{"error":"async must be a boolean (true or false)","ok":false}"#,
        ),
        (
            r#"{"cmd":"anonymize","model":"gl","dataset":"ds-404"}"#,
            r#"{"error":"unknown dataset \"ds-404\"","ok":false}"#,
        ),
        (
            r#"{"cmd":"anonymize","model":"gl","csv":"garbage csv"}"#,
            r#"{"error":"cannot parse csv: invalid record: unexpected header: \"garbage csv\"","ok":false}"#,
        ),
        (
            r#"{"cmd":"status","job":"job-404"}"#,
            r#"{"error":"unknown job \"job-404\"","ok":false}"#,
        ),
        (
            r#"{"cmd":"download","dataset":"ds-404"}"#,
            r#"{"error":"unknown dataset \"ds-404\"","ok":false}"#,
        ),
        (
            r#"{"cmd":"download","dataset":"ds-2","offset":0}"#,
            r#"{"error":"unknown dataset \"ds-2\"","ok":false}"#,
        ),
        (
            r#"{"cmd":"delete","dataset":"ds-1"}"#,
            r#"{"error":"dataset \"ds-1\" is referenced by a queued or running job; delete is rejected until the job finishes","ok":false}"#,
        ),
        (
            r#"{"cmd":"download","dataset":"ds-1","offset":999999,"max_bytes":5}"#,
            r#"{"error":"offset 999999 is not a piece boundary of dataset \"ds-1\" (282 bytes)","ok":false}"#,
        ),
        (
            r#"{"cmd":"download","dataset":"ds-1","max_bytes":0}"#,
            r#"{"error":"max_bytes must be at least 1","ok":false}"#,
        ),
        (r#"{"cmd":"upload"}"#, r#"{"dataset":"ds-3","ok":true}"#),
        (
            r#"{"cmd":"upload"}"#,
            r#"{"error":"dataset store is full (2 handles, none evictable); delete a dataset or commit/abandon pending uploads","ok":false}"#,
        ),
        (
            r#"{"cmd":"commit","dataset":"ds-1"}"#,
            r#"{"error":"dataset \"ds-1\" is already committed","ok":false}"#,
        ),
    ];
    for (request, expected) in transcript {
        let got = c.send(request);
        assert_eq!(&got, expected, "v1 byte parity broken for request: {request}");
    }
    drop(c);
    server.shutdown();
}

/// Every wire error code is reachable over the wire, and the same
/// failure renders the frozen v1 string shape without `"v":2` and the
/// coded envelope with it. (`shutting-down`, `io-error`, and
/// `payload-too-large` need fault injection or multi-GB payloads and
/// are asserted at the unit level in `jobs`, `store`, and `service`.)
#[test]
fn error_codes_render_in_both_shapes() {
    let server = parity_server();
    let mut c = Raw::connect(server.local_addr());
    // Build the state the error cases need: a committed handle pinned
    // by a frozen queued job, and a second committed handle.
    assert!(c.send(r#"{"cmd":"gen","size":2,"len":3,"seed":1,"store":true}"#).contains("ds-1"));
    let submitted = c.send(
        r#"{"cmd":"anonymize","model":"purel","m":2,"dataset":"ds-1","async":true,"v":2,"id":"setup"}"#,
    );
    assert!(submitted.contains(r#""ok":true"#) && submitted.contains(r#""id":"setup""#));

    // (members-without-v, expected code, message fragment)
    let cases: &[(&str, ErrorCode, &str)] = &[
        (
            r#""cmd":"anonymize","model":"gl","csv":"","epsilom":2.0"#,
            ErrorCode::BadRequest,
            "epsilom",
        ),
        (r#""cmd":"bogus""#, ErrorCode::UnknownVerb, "unknown cmd"),
        (
            r#""cmd":"anonymize","model":"gl","csv":"garbage csv""#,
            ErrorCode::InvalidDataset,
            "cannot parse csv",
        ),
        (r#""cmd":"download","dataset":"ds-404""#, ErrorCode::DatasetNotFound, "unknown dataset"),
        (r#""cmd":"commit","dataset":"ds-1""#, ErrorCode::DatasetState, "already committed"),
        (r#""cmd":"delete","dataset":"ds-1""#, ErrorCode::DatasetInUse, "queued or running job"),
        (r#""cmd":"status","job":"job-404""#, ErrorCode::JobNotFound, "unknown job"),
    ];
    for (i, (members, code, fragment)) in cases.iter().enumerate() {
        // v1: the frozen flat string shape, no code anywhere.
        let v1 = Json::Obj(match trajdp_server::json::parse(&format!("{{{members}}}")) {
            Ok(Json::Obj(m)) => m,
            other => panic!("bad case {members}: {other:?}"),
        });
        let r1 = trajdp_server::json::parse(&c.send(&v1.to_string())).unwrap();
        assert_eq!(r1.get("ok"), Some(&Json::Bool(false)), "{members}");
        let message = r1
            .get("error")
            .and_then(Json::as_str)
            .unwrap_or_else(|| panic!("{members}: v1 error must be a bare string, got {r1}"));
        assert!(message.contains(fragment), "{members}: {message}");
        // v2: enveloped, coded, id echoed — same message text.
        let id = format!("case-{i}");
        let line = format!(r#"{{{members},"v":2,"id":"{id}"}}"#);
        let r2 = trajdp_server::json::parse(&c.send(&line)).unwrap();
        assert_eq!(r2.get("ok"), Some(&Json::Bool(false)), "{line}");
        assert_eq!(r2.get("id").and_then(Json::as_str), Some(id.as_str()), "{r2}");
        let error = r2.get("error").expect("v2 error object");
        assert_eq!(
            error.get("code").and_then(Json::as_str),
            Some(code.as_str()),
            "{members} must map to {code}: {r2}"
        );
        assert_eq!(
            error.get("message").and_then(Json::as_str),
            Some(message),
            "v1 and v2 must carry the same message text"
        );
    }

    // store-full needs the last slot burned first (ds-1 + pending +
    // pending hits the 2-handle cap ... capacity is 2, ds-1 holds one
    // slot, one upload fills it, the next upload reports full in both
    // shapes).
    assert!(c.send(r#"{"cmd":"upload"}"#).contains(r#""ok":true"#));
    let v1_full = trajdp_server::json::parse(&c.send(r#"{"cmd":"upload"}"#)).unwrap();
    assert!(v1_full.get("error").and_then(Json::as_str).unwrap().contains("full"));
    let v2_full =
        trajdp_server::json::parse(&c.send(r#"{"cmd":"upload","v":2,"id":"full"}"#)).unwrap();
    assert_eq!(
        v2_full.get("error").and_then(|e| e.get("code")).and_then(Json::as_str),
        Some(ErrorCode::StoreFull.as_str()),
        "{v2_full}"
    );

    drop(c);
    server.shutdown();
}

/// The v2 success envelope over the wire: id echo on every verb shape,
/// the `info` verb's discoverable limits, and a full typed-client
/// session (upload → async anonymize → status with nested result →
/// download) matching the synchronous inline run byte for byte.
#[test]
fn v2_envelope_session_end_to_end() {
    let server = Server::start(ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        workers: 2,
        max_connections: 8,
        ..ServerConfig::default()
    })
    .unwrap();

    // Raw v2: ids echo on success; "v":1 and version-less shapes are
    // identical (the explicit version member is not itself echoed).
    let mut raw = Raw::connect(server.local_addr());
    let r = trajdp_server::json::parse(&raw.send(r#"{"cmd":"health","v":2,"id":"h-1"}"#)).unwrap();
    assert_eq!(r.get("ok"), Some(&Json::Bool(true)));
    assert_eq!(r.get("id").and_then(Json::as_str), Some("h-1"));
    assert_eq!(
        raw.send(r#"{"cmd":"health","v":1}"#),
        raw.send(r#"{"cmd":"health"}"#),
        "an explicit v:1 must not change the v1 shape"
    );
    // The info verb names the caps clients used to hard-code.
    let info = trajdp_server::json::parse(&raw.send(r#"{"cmd":"info","v":2,"id":"i-1"}"#)).unwrap();
    assert_eq!(info.get("id").and_then(Json::as_str), Some("i-1"));
    for key in [
        "version",
        "protocol_versions",
        "workers",
        "max_datasets",
        "max_dataset_bytes",
        "max_request_bytes",
        "max_download_chunk_bytes",
        "default_download_chunk_bytes",
        "max_gen_points",
        "max_m",
        "max_workers",
        "uptime_secs",
        "started_at",
        "state_dir",
    ] {
        assert!(info.get(key).is_some(), "info must report {key}: {info}");
    }
    drop(raw);

    // Typed client session.
    let mut client = Client::connect(server.local_addr()).unwrap();
    let gen = client.request_line(r#"{"cmd":"gen","size":8,"len":30,"seed":3}"#).unwrap();
    let csv = gen.get("csv").and_then(Json::as_str).unwrap().to_string();
    let sync = client
        .request(&Json::obj([
            ("cmd", Json::from("anonymize")),
            ("model", Json::from("gl")),
            ("m", Json::from(4u64)),
            ("seed", Json::from(9u64)),
            ("csv", Json::from(csv.clone())),
        ]))
        .unwrap();
    let reference = sync.get("csv").and_then(Json::as_str).unwrap().to_string();

    let uploaded = client.upload_dataset(&csv, 512).unwrap();
    assert_eq!(uploaded.bytes, csv.len() as u64);
    let receipt = client
        .submit(&Json::obj([
            ("model", Json::from("gl")),
            ("m", Json::from(4u64)),
            ("seed", Json::from(9u64)),
            ("dataset", Json::from(uploaded.dataset.clone())),
            ("store", Json::Bool(true)),
        ]))
        .unwrap();
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(60);
    let done = loop {
        let status = client.status(&receipt.job).unwrap();
        match status.phase {
            JobPhase::Done => break status,
            _ => {
                assert!(std::time::Instant::now() < deadline, "job stuck");
                std::thread::sleep(std::time::Duration::from_millis(20));
            }
        }
    };
    // The v2 done-status nests the result; the job succeeded and its
    // release went behind a handle.
    let result = done.result.expect("done status nests the result");
    assert_eq!(result.get("ok"), Some(&Json::Bool(true)), "{result}");
    let handle = result.get("dataset").and_then(Json::as_str).unwrap().to_string();
    assert_eq!(
        client.download_dataset(&handle).unwrap(),
        reference,
        "v2 session must produce the same bytes as the synchronous inline run"
    );
    // Typed delete returns the freed byte count; a second delete fails
    // with the typed not-found code.
    let freed = client.delete_dataset(&handle).unwrap();
    assert_eq!(freed.bytes, reference.len() as u64);
    let err = client.delete_dataset(&handle).unwrap_err();
    assert_eq!(err.code, ErrorCode::DatasetNotFound);

    // Typed health sees through the envelope too.
    let health = client.health().unwrap();
    assert_eq!(health.outstanding_jobs, 0);

    drop(client);
    server.shutdown();
}

/// The `metrics` verb over the wire: the same section shape in v1 and
/// v2 (only the id echo differs), snapshots move monotonically with
/// traffic, and each wire error triggered bumps exactly its own code's
/// counter by the observed amount.
#[test]
fn metrics_verb_snapshots_are_monotonic_and_count_errors() {
    let server = parity_server();
    let mut c = Raw::connect(server.local_addr());

    let scrape = |c: &mut Raw, line: &str| trajdp_server::json::parse(&c.send(line)).unwrap();
    let m1 = scrape(&mut c, r#"{"cmd":"metrics"}"#);
    assert_eq!(m1.get("ok"), Some(&Json::Bool(true)), "{m1}");
    let m2 = scrape(&mut c, r#"{"cmd":"metrics","v":2,"id":"m-1"}"#);
    assert_eq!(m2.get("id").and_then(Json::as_str), Some("m-1"), "{m2}");
    for key in
        ["uptime_secs", "requests", "errors", "jobs", "store", "journal", "connections", "bytes"]
    {
        assert!(m1.get(key).is_some(), "v1 metrics must report {key}: {m1}");
        assert!(m2.get(key).is_some(), "v2 metrics must report {key}: {m2}");
    }
    // v1 and v2 carry the identical snapshot shape: stripping the v2
    // envelope id leaves the same member set.
    if let (Json::Obj(o1), Json::Obj(mut o2)) = (m1.clone(), m2.clone()) {
        o2.remove("id");
        assert_eq!(
            o1.keys().collect::<Vec<_>>(),
            o2.keys().collect::<Vec<_>>(),
            "metrics members must match across versions"
        );
    } else {
        panic!("metrics responses must be objects");
    }

    let verb_count = |m: &Json, verb: &str| {
        m.get("requests")
            .and_then(|r| r.get(verb))
            .and_then(|v| v.get("count"))
            .and_then(Json::as_u64)
            .unwrap_or_else(|| panic!("metrics must count verb {verb}: {m}"))
    };
    let error_count = |m: &Json, code: &str| {
        m.get("errors")
            .and_then(|e| e.get(code))
            .and_then(Json::as_u64)
            .unwrap_or_else(|| panic!("metrics must count code {code}: {m}"))
    };

    // Drive known traffic: 3 health calls, 2 dataset-not-found errors,
    // 1 unknown verb, 1 unparseable line.
    for _ in 0..3 {
        assert!(c.send(r#"{"cmd":"health"}"#).contains(r#""ok":true"#));
    }
    for _ in 0..2 {
        assert!(c.send(r#"{"cmd":"download","dataset":"ds-404"}"#).contains("unknown dataset"));
    }
    assert!(c.send(r#"{"cmd":"bogus"}"#).contains("unknown cmd"));
    assert!(c.send("not json").contains("parse error"));

    let m3 = scrape(&mut c, r#"{"cmd":"metrics"}"#);
    assert_eq!(verb_count(&m3, "health"), verb_count(&m1, "health") + 3);
    assert_eq!(verb_count(&m3, "metrics"), verb_count(&m1, "metrics") + 2);
    // The unparseable line lands in the "invalid" bucket; the unknown
    // verb and the parse failure each count their error code once.
    assert_eq!(verb_count(&m3, "invalid"), verb_count(&m1, "invalid") + 2);
    assert_eq!(
        error_count(&m3, ErrorCode::DatasetNotFound.as_str()),
        error_count(&m1, ErrorCode::DatasetNotFound.as_str()) + 2
    );
    assert_eq!(
        error_count(&m3, ErrorCode::UnknownVerb.as_str()),
        error_count(&m1, ErrorCode::UnknownVerb.as_str()) + 1
    );
    assert_eq!(
        error_count(&m3, ErrorCode::BadRequest.as_str()),
        error_count(&m1, ErrorCode::BadRequest.as_str()) + 1
    );

    // Monotonicity: every per-verb counter and every error counter in
    // the later snapshot is >= its earlier value, and traffic gauges
    // only grew.
    for verb in ["health", "metrics", "download", "invalid", "gen", "status"] {
        assert!(verb_count(&m3, verb) >= verb_count(&m1, verb), "{verb} went backwards");
    }
    if let Some(Json::Obj(errors)) = m1.get("errors").cloned() {
        for code in errors.keys() {
            assert!(
                error_count(&m3, code) >= error_count(&m1, code),
                "error counter {code} went backwards"
            );
        }
    }
    let bytes = |m: &Json, dir: &str| {
        m.get("bytes").and_then(|b| b.get(dir)).and_then(Json::as_u64).unwrap()
    };
    assert!(bytes(&m3, "in") > bytes(&m1, "in"));
    assert!(bytes(&m3, "out") > bytes(&m1, "out"));

    // The typed client parses the same snapshot the raw scrape saw.
    let mut client = Client::connect(server.local_addr()).unwrap();
    let snap = client.metrics().unwrap();
    let health = snap.requests.iter().find(|r| r.verb == "health").unwrap();
    assert_eq!(health.count, verb_count(&m3, "health"));

    drop(client);
    drop(c);
    server.shutdown();
}

/// The tenancy wire contract: v1 stays tenant-free (a `tenant` member
/// is rejected with the frozen flat shape, byte for byte), each new
/// code — `tenant-unknown`, `quota-exceeded`, `budget-exhausted` — is
/// reachable and rendered in its documented shape, the credential is
/// never echoed, and per-tenant metrics attribute the traffic.
#[test]
fn tenancy_codes_render_in_both_shapes_and_v1_stays_tenant_free() {
    let dir = std::env::temp_dir().join("trajdp-wire-tenancy-test");
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let tenants = dir.join("tenants.txt");
    // acme: 2 handles, 40 bytes, 1 concurrent job. globex: unlimited.
    std::fs::write(&tenants, "# test registry\nacme:sesame:2:40:1\nglobex:gx-token\n").unwrap();
    let server = Server::start(ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        workers: 0,
        max_connections: 8,
        tenants: Some(tenants),
        eps_budget: Some(1.0),
        ..ServerConfig::default()
    })
    .unwrap();
    let mut c = Raw::connect(server.local_addr());

    // v1 must never grow a tenant member: the rejection shape is flat
    // and byte-frozen, and carries no error code.
    assert_eq!(
        c.send(r#"{"cmd":"health","tenant":"acme:sesame"}"#),
        r#"{"error":"member \"tenant\" requires \"v\": 2","ok":false}"#,
    );
    // v2 type and credential-shape errors.
    let send_json = |c: &mut Raw, line: &str| trajdp_server::json::parse(&c.send(line)).unwrap();
    let code_of = |r: &Json| {
        r.get("error").and_then(|e| e.get("code")).and_then(Json::as_str).map(str::to_string)
    };
    let message_of = |r: &Json| {
        r.get("error").and_then(|e| e.get("message")).and_then(Json::as_str).map(str::to_string)
    };
    let r = send_json(&mut c, r#"{"cmd":"health","v":2,"tenant":7}"#);
    assert_eq!(code_of(&r).as_deref(), Some(ErrorCode::BadRequest.as_str()), "{r}");
    assert!(message_of(&r).unwrap().contains("tenant must be a string"), "{r}");
    let r = send_json(&mut c, r#"{"cmd":"health","v":2,"tenant":"no-colon"}"#);
    assert_eq!(code_of(&r).as_deref(), Some(ErrorCode::TenantUnknown.as_str()), "{r}");
    assert!(message_of(&r).unwrap().contains("name:token"), "{r}");
    let r = send_json(&mut c, r#"{"cmd":"health","v":2,"id":"t-1","tenant":"acme:wrong"}"#);
    assert_eq!(code_of(&r).as_deref(), Some(ErrorCode::TenantUnknown.as_str()), "{r}");
    assert_eq!(message_of(&r).as_deref(), Some("unknown tenant or bad token"), "{r}");
    assert_eq!(r.get("id").and_then(Json::as_str), Some("t-1"), "ids echo on tenant rejections");

    // An authenticated acme session. The credential must never be
    // echoed back in any response.
    let acme = |members: &str| format!(r#"{{{members},"v":2,"tenant":"acme:sesame"}}"#);
    let acme_send = |c: &mut Raw, members: &str| {
        let line = acme(members);
        let raw = c.send(&line);
        assert!(!raw.contains("sesame") && !raw.contains("tenant\":"), "credential echoed: {raw}");
        trajdp_server::json::parse(&raw).unwrap()
    };
    let r = acme_send(&mut c, r#""cmd":"upload""#);
    let ds = r.get("dataset").and_then(Json::as_str).expect("upload handle").to_string();
    let chunk = format!(r#""cmd":"chunk","dataset":"{ds}","data":"traj_id,x,y,t\n0,1.0,2.0,3\n""#);
    assert_eq!(acme_send(&mut c, &chunk).get("ok"), Some(&Json::Bool(true)));
    // 26 bytes stored; another 26 would cross the 40-byte cap.
    let r = acme_send(&mut c, &chunk);
    assert_eq!(code_of(&r).as_deref(), Some(ErrorCode::QuotaExceeded.as_str()), "{r}");
    assert!(message_of(&r).unwrap().contains("40-byte quota"), "{r}");
    let commit = format!(r#""cmd":"commit","dataset":"{ds}""#);
    assert_eq!(acme_send(&mut c, &commit).get("ok"), Some(&Json::Bool(true)));

    // Job-slot quota: the first half-ε job queues (no workers, so it
    // stays in flight); a second submit fits the ε budget exactly but
    // trips max_jobs=1; a larger third request trips the budget check,
    // which runs first.
    let submit = |eps: &str| {
        format!(
            r#""cmd":"anonymize","model":"purel","m":2,"epsilon":{eps},"dataset":"{ds}","async":true"#
        )
    };
    let r = acme_send(&mut c, &submit("0.5"));
    assert_eq!(r.get("state").and_then(Json::as_str), Some("queued"), "{r}");
    let r = acme_send(&mut c, &submit("0.5"));
    assert_eq!(code_of(&r).as_deref(), Some(ErrorCode::QuotaExceeded.as_str()), "{r}");
    assert!(message_of(&r).unwrap().contains("max_jobs"), "{r}");
    let r = acme_send(&mut c, &submit("0.6"));
    assert_eq!(code_of(&r).as_deref(), Some(ErrorCode::BudgetExhausted.as_str()), "{r}");
    assert!(message_of(&r).unwrap().contains("privacy budget exhausted"), "{r}");

    // Dataset-count quota: the committed handle plus one pending handle
    // reach acme's cap of 2; a third upload is refused.
    assert!(acme_send(&mut c, r#""cmd":"upload""#).get("dataset").is_some());
    let r = acme_send(&mut c, r#""cmd":"upload""#);
    assert_eq!(code_of(&r).as_deref(), Some(ErrorCode::QuotaExceeded.as_str()), "{r}");
    assert!(message_of(&r).unwrap().contains("max_datasets"), "{r}");

    // budget-exhausted is the one tenancy code reachable from v1: the
    // server-wide --eps-budget default gates the tenant-less path too,
    // and the flat string shape carries the same message text.
    assert!(c.send(r#"{"cmd":"gen","size":2,"len":3,"seed":1,"store":true}"#).contains("dataset"));
    let v1 = send_json(
        &mut c,
        r#"{"cmd":"anonymize","model":"purel","m":2,"epsilon":2.0,"dataset":"ds-3"}"#,
    );
    assert_eq!(v1.get("ok"), Some(&Json::Bool(false)), "{v1}");
    let flat = v1.get("error").and_then(Json::as_str).expect("v1 error is a bare string");
    assert!(flat.contains("privacy budget exhausted for ds-3"), "{flat}");

    // Discoverability: v2 info reports the registry size and the
    // default budget; v2 list rows carry the ledger columns while the
    // frozen v1 list shape stays without them.
    let info = send_json(&mut c, r#"{"cmd":"info","v":2}"#);
    assert_eq!(info.get("tenants").and_then(Json::as_u64), Some(2), "{info}");
    assert_eq!(info.get("eps_budget").and_then(Json::as_f64), Some(1.0), "{info}");
    let v1_list = c.send(r#"{"cmd":"list"}"#);
    assert!(!v1_list.contains("eps_spent"), "v1 list must stay ledger-free: {v1_list}");
    let v2_list = send_json(&mut c, r#"{"cmd":"list","v":2}"#);
    let rows = match v2_list.get("datasets") {
        Some(Json::Arr(rows)) => rows,
        other => panic!("list datasets: {other:?}"),
    };
    let row = rows
        .iter()
        .find(|r| r.get("dataset").and_then(Json::as_str) == Some(ds.as_str()))
        .unwrap_or_else(|| panic!("{ds} missing from {v2_list}"));
    assert_eq!(row.get("eps_spent").and_then(Json::as_f64), Some(0.5), "{row}");
    assert_eq!(row.get("eps_budget").and_then(Json::as_f64), Some(1.0), "{row}");

    // Attribution: every authenticated acme request counted, and
    // exactly the four quota/budget refusals above counted as
    // rejections. The queued job's in-flight ε is published as a gauge.
    let metrics = send_json(&mut c, r#"{"cmd":"metrics","v":2}"#);
    let tenant_stat = |kind: &str, name: &str| {
        metrics
            .get("tenants")
            .and_then(|t| t.get(kind))
            .and_then(|m| m.get(name))
            .and_then(Json::as_u64)
    };
    assert_eq!(tenant_stat("requests", "acme"), Some(9), "{metrics}");
    assert_eq!(tenant_stat("rejections", "acme"), Some(4), "{metrics}");
    assert_eq!(
        metrics.get("eps_spent").and_then(|e| e.get(&ds)).and_then(Json::as_f64),
        Some(0.5),
        "{metrics}"
    );

    drop(c);
    server.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}

/// The `cancel` verb's wire shapes (frozen v1 flat form and the v2
/// envelope) and `--max-queue` back-pressure: submits past the cap are
/// shed with `overloaded`, counted in the jobs metrics, and a
/// cancellation frees the slot.
#[test]
fn cancel_shapes_and_max_queue_back_pressure() {
    let server = Server::start(ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        workers: 0,
        max_connections: 8,
        max_queue: Some(1),
        ..ServerConfig::default()
    })
    .unwrap();
    let mut c = Raw::connect(server.local_addr());

    assert!(c.send(r#"{"cmd":"gen","size":2,"len":3,"seed":1,"store":true}"#).contains("ds-1"));
    let submit = r#"{"cmd":"anonymize","model":"purel","m":2,"dataset":"ds-1","async":true}"#;
    assert_eq!(c.send(submit), r#"{"job":"job-1","ok":true,"state":"queued"}"#);
    // The queue is at its cap of 1: the next submit is shed in the
    // frozen v1 flat shape, and again with the v2 code.
    assert_eq!(
        c.send(submit),
        r#"{"error":"job queue is full (1 outstanding jobs); retry later","ok":false}"#,
    );
    let shed = trajdp_server::json::parse(
        &c.send(r#"{"cmd":"anonymize","model":"purel","m":2,"dataset":"ds-1","async":true,"v":2,"id":"s-1"}"#),
    )
    .unwrap();
    assert_eq!(shed.get("id").and_then(Json::as_str), Some("s-1"), "{shed}");
    assert_eq!(
        shed.get("error").and_then(|e| e.get("code")).and_then(Json::as_str),
        Some(ErrorCode::Overloaded.as_str()),
        "{shed}"
    );
    let metrics = trajdp_server::json::parse(&c.send(r#"{"cmd":"metrics"}"#)).unwrap();
    assert_eq!(
        metrics.get("jobs").and_then(|j| j.get("shed")).and_then(Json::as_u64),
        Some(2),
        "both shed submits must be counted: {metrics}"
    );

    // Cancel: the frozen v1 flat shape, then the job is gone for
    // status and repeat cancels alike — and its queue slot is free.
    assert_eq!(
        c.send(r#"{"cmd":"cancel","job":"job-1"}"#),
        r#"{"job":"job-1","ok":true,"state":"cancelled"}"#,
    );
    assert_eq!(
        c.send(r#"{"cmd":"status","job":"job-1"}"#),
        r#"{"error":"unknown job \"job-1\"","ok":false}"#,
    );
    assert_eq!(
        c.send(r#"{"cmd":"cancel","job":"job-1"}"#),
        r#"{"error":"unknown job \"job-1\"","ok":false}"#,
    );
    assert_eq!(c.send(submit), r#"{"job":"job-2","ok":true,"state":"queued"}"#);

    // v2: id echo on the success envelope and the job-not-found code.
    let cancelled =
        trajdp_server::json::parse(&c.send(r#"{"cmd":"cancel","job":"job-2","v":2,"id":"c-1"}"#))
            .unwrap();
    assert_eq!(cancelled.get("ok"), Some(&Json::Bool(true)), "{cancelled}");
    assert_eq!(cancelled.get("id").and_then(Json::as_str), Some("c-1"), "{cancelled}");
    assert_eq!(cancelled.get("state").and_then(Json::as_str), Some("cancelled"), "{cancelled}");
    let missing =
        trajdp_server::json::parse(&c.send(r#"{"cmd":"cancel","job":"job-404","v":2}"#)).unwrap();
    assert_eq!(
        missing.get("error").and_then(|e| e.get("code")).and_then(Json::as_str),
        Some(ErrorCode::JobNotFound.as_str()),
        "{missing}"
    );

    // The typed client drives the same verb.
    let mut client = Client::connect(server.local_addr()).unwrap();
    let receipt = client
        .submit(&Json::obj([
            ("model", Json::from("purel")),
            ("m", Json::from(2u64)),
            ("dataset", Json::from("ds-1")),
        ]))
        .unwrap();
    assert_eq!(client.cancel(&receipt.job).unwrap(), receipt.job);
    let err = client.cancel(&receipt.job).unwrap_err();
    assert_eq!(err.code, ErrorCode::JobNotFound);

    drop(client);
    drop(c);
    server.shutdown();
}

//! End-to-end integration tests: a real `Server` on a real TCP socket,
//! driven by concurrent JSON-lines clients.

use trajdp_server::json::Json;
use trajdp_server::{Client, Server, ServerConfig};

fn start() -> Server {
    Server::start(ServerConfig { addr: "127.0.0.1:0".to_string(), workers: 2, max_connections: 8 })
        .expect("bind on loopback")
}

/// One client walks the full verb set over a single connection.
#[test]
fn full_verb_walk_over_one_connection() {
    let server = start();
    let mut client = Client::connect(server.local_addr()).unwrap();

    let health = client.request_line(r#"{"cmd":"health"}"#).unwrap();
    assert_eq!(health.get("ok"), Some(&Json::Bool(true)));

    let gen = client.request_line(r#"{"cmd":"gen","size":8,"len":30,"seed":3}"#).unwrap();
    assert_eq!(gen.get("ok"), Some(&Json::Bool(true)), "{gen}");
    assert_eq!(gen.get("trajectories").and_then(Json::as_u64), Some(8));
    let csv = gen.get("csv").and_then(Json::as_str).unwrap().to_string();

    let req = Json::obj([
        ("cmd", Json::from("anonymize")),
        ("model", Json::from("gl")),
        ("epsilon", Json::from(1.0)),
        ("m", Json::from(4u64)),
        ("seed", Json::from(9u64)),
        ("workers", Json::from(4u64)),
        ("csv", Json::from(csv.clone())),
    ]);
    let anon = client.request(&req).unwrap();
    assert_eq!(anon.get("ok"), Some(&Json::Bool(true)), "{anon}");
    let released = anon.get("csv").and_then(Json::as_str).unwrap().to_string();
    assert!((anon.get("epsilon_spent").and_then(Json::as_f64).unwrap() - 1.0).abs() < 1e-9);

    let eval = client
        .request(&Json::obj([
            ("cmd", Json::from("evaluate")),
            ("original", Json::from(csv.clone())),
            ("anonymized", Json::from(released.clone())),
        ]))
        .unwrap();
    assert_eq!(eval.get("ok"), Some(&Json::Bool(true)), "{eval}");
    for metric in ["mi", "inf", "de", "te", "ffp"] {
        assert!(eval.get(metric).and_then(Json::as_f64).is_some(), "missing {metric}");
    }

    let stats = client
        .request(&Json::obj([("cmd", Json::from("stats")), ("csv", Json::from(released))]))
        .unwrap();
    assert_eq!(stats.get("trajectories").and_then(Json::as_u64), Some(8));

    drop(client);
    server.shutdown();
}

/// Several clients hammer the server concurrently; every response must
/// be well-formed, and identical requests must get identical answers
/// (the executor is deterministic per seed even under concurrency).
#[test]
fn concurrent_clients_get_consistent_answers() {
    let server = start();
    let addr = server.local_addr();

    // All clients anonymize the same dataset with the same seed but
    // different worker counts — the released CSVs must all agree.
    let mut seed_client = Client::connect(addr).unwrap();
    let gen = seed_client.request_line(r#"{"cmd":"gen","size":10,"len":40,"seed":21}"#).unwrap();
    let csv = gen.get("csv").and_then(Json::as_str).unwrap().to_string();
    drop(seed_client);

    let handles: Vec<_> = (0..4)
        .map(|i| {
            let csv = csv.clone();
            std::thread::spawn(move || {
                let mut client = Client::connect(addr).expect("connect");
                let req = Json::obj([
                    ("cmd", Json::from("anonymize")),
                    ("model", Json::from("gl")),
                    ("m", Json::from(4u64)),
                    ("seed", Json::from(77u64)),
                    ("workers", Json::from(1u64 + i as u64 * 2)), // 1, 3, 5, 7
                    ("csv", Json::from(csv)),
                ]);
                let resp = client.request(&req).expect("response");
                assert_eq!(resp.get("ok"), Some(&Json::Bool(true)), "{resp}");
                resp.get("csv").and_then(Json::as_str).unwrap().to_string()
            })
        })
        .collect();
    let outputs: Vec<String> = handles.into_iter().map(|h| h.join().unwrap()).collect();
    for out in &outputs[1..] {
        assert_eq!(
            out, &outputs[0],
            "same seed must give identical releases at every worker count"
        );
    }
    server.shutdown();
}

/// The async job path: submit, poll status until done, and check the
/// job's result matches the synchronous answer for the same request.
#[test]
fn async_jobs_complete_and_match_sync() {
    let server = start();
    let mut client = Client::connect(server.local_addr()).unwrap();
    let gen = client.request_line(r#"{"cmd":"gen","size":6,"len":25,"seed":4}"#).unwrap();
    let csv = gen.get("csv").and_then(Json::as_str).unwrap().to_string();

    let mut base = std::collections::BTreeMap::new();
    base.insert("cmd".to_string(), Json::from("anonymize"));
    base.insert("model".to_string(), Json::from("purel"));
    base.insert("m".to_string(), Json::from(3u64));
    base.insert("seed".to_string(), Json::from(13u64));
    base.insert("workers".to_string(), Json::from(2u64));
    base.insert("csv".to_string(), Json::from(csv));

    let sync = client.request(&Json::Obj(base.clone())).unwrap();
    assert_eq!(sync.get("ok"), Some(&Json::Bool(true)));

    let mut async_req = base;
    async_req.insert("async".to_string(), Json::Bool(true));
    let submitted = client.request(&Json::Obj(async_req)).unwrap();
    assert_eq!(submitted.get("ok"), Some(&Json::Bool(true)), "{submitted}");
    assert_eq!(submitted.get("state").and_then(Json::as_str), Some("queued"));
    let job = submitted.get("job").and_then(Json::as_str).unwrap().to_string();

    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(60);
    let done = loop {
        let status = client
            .request(&Json::obj([("cmd", Json::from("status")), ("job", Json::from(job.clone()))]))
            .unwrap();
        match status.get("state").and_then(Json::as_str) {
            Some("done") => break status,
            Some("queued" | "running") => {
                assert!(std::time::Instant::now() < deadline, "job stuck");
                std::thread::sleep(std::time::Duration::from_millis(20));
            }
            other => panic!("unexpected state {other:?} in {status}"),
        }
    };
    assert_eq!(
        done.get("csv").and_then(Json::as_str),
        sync.get("csv").and_then(Json::as_str),
        "async job result must equal the synchronous release"
    );

    // Unknown jobs report an error, not a hang.
    let missing = client.request_line(r#"{"cmd":"status","job":"job-99999"}"#).unwrap();
    assert_eq!(missing.get("ok"), Some(&Json::Bool(false)));

    drop(client);
    server.shutdown();
}

//! End-to-end integration tests: a real `Server` on a real TCP socket,
//! driven by concurrent JSON-lines clients.

use trajdp_server::json::Json;
use trajdp_server::{Client, Server, ServerConfig};

fn start() -> Server {
    Server::start(ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        workers: 2,
        max_connections: 8,
        ..ServerConfig::default()
    })
    .expect("bind on loopback")
}

fn start_durable(state_dir: &std::path::Path) -> Server {
    Server::start(ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        workers: 2,
        max_connections: 8,
        state_dir: Some(state_dir.to_path_buf()),
        ..ServerConfig::default()
    })
    .expect("bind on loopback with state dir")
}

/// Polls `status` until the job reports done, returning the final
/// response.
fn wait_done(client: &mut Client, job: &str) -> Json {
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(60);
    loop {
        let status = client
            .request(&Json::obj([("cmd", Json::from("status")), ("job", Json::from(job))]))
            .unwrap();
        match status.get("state").and_then(Json::as_str) {
            Some("done") => return status,
            Some("queued" | "running") => {
                assert!(std::time::Instant::now() < deadline, "job stuck");
                std::thread::sleep(std::time::Duration::from_millis(20));
            }
            other => panic!("unexpected state {other:?} in {status}"),
        }
    }
}

/// One client walks the full verb set over a single connection.
#[test]
fn full_verb_walk_over_one_connection() {
    let server = start();
    let mut client = Client::connect(server.local_addr()).unwrap();

    let health = client.request_line(r#"{"cmd":"health"}"#).unwrap();
    assert_eq!(health.get("ok"), Some(&Json::Bool(true)));

    let gen = client.request_line(r#"{"cmd":"gen","size":8,"len":30,"seed":3}"#).unwrap();
    assert_eq!(gen.get("ok"), Some(&Json::Bool(true)), "{gen}");
    assert_eq!(gen.get("trajectories").and_then(Json::as_u64), Some(8));
    let csv = gen.get("csv").and_then(Json::as_str).unwrap().to_string();

    let req = Json::obj([
        ("cmd", Json::from("anonymize")),
        ("model", Json::from("gl")),
        ("epsilon", Json::from(1.0)),
        ("m", Json::from(4u64)),
        ("seed", Json::from(9u64)),
        ("workers", Json::from(4u64)),
        ("csv", Json::from(csv.clone())),
    ]);
    let anon = client.request(&req).unwrap();
    assert_eq!(anon.get("ok"), Some(&Json::Bool(true)), "{anon}");
    let released = anon.get("csv").and_then(Json::as_str).unwrap().to_string();
    assert!((anon.get("epsilon_spent").and_then(Json::as_f64).unwrap() - 1.0).abs() < 1e-9);

    let eval = client
        .request(&Json::obj([
            ("cmd", Json::from("evaluate")),
            ("original", Json::from(csv.clone())),
            ("anonymized", Json::from(released.clone())),
        ]))
        .unwrap();
    assert_eq!(eval.get("ok"), Some(&Json::Bool(true)), "{eval}");
    for metric in ["mi", "inf", "de", "te", "ffp"] {
        assert!(eval.get(metric).and_then(Json::as_f64).is_some(), "missing {metric}");
    }

    let stats = client
        .request(&Json::obj([("cmd", Json::from("stats")), ("csv", Json::from(released))]))
        .unwrap();
    assert_eq!(stats.get("trajectories").and_then(Json::as_u64), Some(8));

    drop(client);
    server.shutdown();
}

/// Several clients hammer the server concurrently; every response must
/// be well-formed, and identical requests must get identical answers
/// (the executor is deterministic per seed even under concurrency).
#[test]
fn concurrent_clients_get_consistent_answers() {
    let server = start();
    let addr = server.local_addr();

    // All clients anonymize the same dataset with the same seed but
    // different worker counts — the released CSVs must all agree.
    let mut seed_client = Client::connect(addr).unwrap();
    let gen = seed_client.request_line(r#"{"cmd":"gen","size":10,"len":40,"seed":21}"#).unwrap();
    let csv = gen.get("csv").and_then(Json::as_str).unwrap().to_string();
    drop(seed_client);

    let handles: Vec<_> = (0..4)
        .map(|i| {
            let csv = csv.clone();
            std::thread::spawn(move || {
                let mut client = Client::connect(addr).expect("connect");
                let req = Json::obj([
                    ("cmd", Json::from("anonymize")),
                    ("model", Json::from("gl")),
                    ("m", Json::from(4u64)),
                    ("seed", Json::from(77u64)),
                    ("workers", Json::from(1u64 + i as u64 * 2)), // 1, 3, 5, 7
                    ("csv", Json::from(csv)),
                ]);
                let resp = client.request(&req).expect("response");
                assert_eq!(resp.get("ok"), Some(&Json::Bool(true)), "{resp}");
                resp.get("csv").and_then(Json::as_str).unwrap().to_string()
            })
        })
        .collect();
    let outputs: Vec<String> = handles.into_iter().map(|h| h.join().unwrap()).collect();
    for out in &outputs[1..] {
        assert_eq!(
            out, &outputs[0],
            "same seed must give identical releases at every worker count"
        );
    }
    server.shutdown();
}

/// The async job path: submit, poll status until done, and check the
/// job's result matches the synchronous answer for the same request.
#[test]
fn async_jobs_complete_and_match_sync() {
    let server = start();
    let mut client = Client::connect(server.local_addr()).unwrap();
    let gen = client.request_line(r#"{"cmd":"gen","size":6,"len":25,"seed":4}"#).unwrap();
    let csv = gen.get("csv").and_then(Json::as_str).unwrap().to_string();

    let mut base = std::collections::BTreeMap::new();
    base.insert("cmd".to_string(), Json::from("anonymize"));
    base.insert("model".to_string(), Json::from("purel"));
    base.insert("m".to_string(), Json::from(3u64));
    base.insert("seed".to_string(), Json::from(13u64));
    base.insert("workers".to_string(), Json::from(2u64));
    base.insert("csv".to_string(), Json::from(csv));

    let sync = client.request(&Json::Obj(base.clone())).unwrap();
    assert_eq!(sync.get("ok"), Some(&Json::Bool(true)));

    let mut async_req = base;
    async_req.insert("async".to_string(), Json::Bool(true));
    let submitted = client.request(&Json::Obj(async_req)).unwrap();
    assert_eq!(submitted.get("ok"), Some(&Json::Bool(true)), "{submitted}");
    assert_eq!(submitted.get("state").and_then(Json::as_str), Some("queued"));
    let job = submitted.get("job").and_then(Json::as_str).unwrap().to_string();

    let done = wait_done(&mut client, &job);
    assert_eq!(
        done.get("csv").and_then(Json::as_str),
        sync.get("csv").and_then(Json::as_str),
        "async job result must equal the synchronous release"
    );

    // Unknown jobs report an error, not a hang.
    let missing = client.request_line(r#"{"cmd":"status","job":"job-99999"}"#).unwrap();
    assert_eq!(missing.get("ok"), Some(&Json::Bool(false)));

    drop(client);
    server.shutdown();
}

/// Tentpole round-trip: a dataset far larger than the transfer piece
/// size goes up chunked, is anonymized by handle, and comes back down
/// chunked — byte-identical to the all-inline path.
#[test]
fn chunked_upload_anonymize_download_matches_inline() {
    let server = start();
    let mut client = Client::connect(server.local_addr()).unwrap();

    // ~30k points of CSV, moved in 1 KiB pieces (dozens of chunks).
    let gen = client.request_line(r#"{"cmd":"gen","size":20,"len":60,"seed":11}"#).unwrap();
    let csv = gen.get("csv").and_then(Json::as_str).unwrap().to_string();
    assert!(csv.len() > 10 * 1024, "dataset must dwarf the piece size ({})", csv.len());

    let inline_req = Json::obj([
        ("cmd", Json::from("anonymize")),
        ("model", Json::from("gl")),
        ("m", Json::from(4u64)),
        ("seed", Json::from(31u64)),
        ("workers", Json::from(2u64)),
        ("csv", Json::from(csv.clone())),
    ]);
    let inline = client.request(&inline_req).unwrap();
    assert_eq!(inline.get("ok"), Some(&Json::Bool(true)), "{inline}");
    let inline_release = inline.get("csv").and_then(Json::as_str).unwrap().to_string();

    let handle = client.upload_dataset(&csv, 1024).unwrap().dataset;
    let by_handle = client
        .request(&Json::obj([
            ("cmd", Json::from("anonymize")),
            ("model", Json::from("gl")),
            ("m", Json::from(4u64)),
            ("seed", Json::from(31u64)),
            ("workers", Json::from(2u64)),
            ("dataset", Json::from(handle.clone())),
            ("store", Json::Bool(true)),
        ]))
        .unwrap();
    assert_eq!(by_handle.get("ok"), Some(&Json::Bool(true)), "{by_handle}");
    assert!(by_handle.get("csv").is_none(), "store:true must not inline the release");
    let result_handle = by_handle.get("dataset").and_then(Json::as_str).unwrap().to_string();
    assert_eq!(by_handle.get("bytes").and_then(Json::as_u64), Some(inline_release.len() as u64));

    let downloaded = client.download_dataset(&result_handle).unwrap();
    assert_eq!(
        downloaded, inline_release,
        "handle-based release must be byte-identical to the inline path"
    );

    // Handles also work for stats and evaluate.
    let stats = client
        .request(&Json::obj([
            ("cmd", Json::from("stats")),
            ("dataset", Json::from(handle.clone())),
        ]))
        .unwrap();
    assert_eq!(stats.get("trajectories").and_then(Json::as_u64), Some(20), "{stats}");
    let eval = client
        .request(&Json::obj([
            ("cmd", Json::from("evaluate")),
            ("original_dataset", Json::from(handle)),
            ("anonymized_dataset", Json::from(result_handle)),
        ]))
        .unwrap();
    assert_eq!(eval.get("ok"), Some(&Json::Bool(true)), "{eval}");

    drop(client);
    server.shutdown();
}

/// Protocol strictness over the wire: misspelled members, non-bool
/// `async`, and an unknown dataset handle all answer errors — and the
/// connection survives each one.
#[test]
fn strict_protocol_errors_over_the_wire() {
    let server = start();
    let mut client = Client::connect(server.local_addr()).unwrap();
    for (req, needle) in [
        (r#"{"cmd":"anonymize","model":"gl","csv":"","epsilom":2.0}"#, "epsilom"),
        (r#"{"cmd":"anonymize","model":"gl","csv":"","async":1}"#, "async must be a boolean"),
        (r#"{"cmd":"anonymize","model":"gl","dataset":"ds-404"}"#, "unknown dataset"),
        (r#"{"cmd":"download","dataset":"ds-404"}"#, "unknown dataset"),
        (r#"{"cmd":"chunk","dataset":"ds-404","data":"x"}"#, "unknown dataset"),
        (r#"{"cmd":"health","verbose":true}"#, "verbose"),
        // The delete verb validates its member set like every other
        // command, and names the accepted set in the error.
        (r#"{"cmd":"delete","dataset":"ds-1","force":true}"#, "force"),
        (r#"{"cmd":"delete"}"#, "dataset"),
        (r#"{"cmd":"delete","dataset":"ds-404"}"#, "unknown dataset"),
        (r#"{"cmd":"list","all":true}"#, "all"),
    ] {
        let r = client.request_line(req).unwrap();
        assert_eq!(r.get("ok"), Some(&Json::Bool(false)), "{req} -> {r}");
        let msg = r.get("error").and_then(Json::as_str).unwrap();
        assert!(msg.contains(needle), "{req}: {msg}");
    }
    let health = client.request_line(r#"{"cmd":"health"}"#).unwrap();
    assert_eq!(health.get("ok"), Some(&Json::Bool(true)));
    drop(client);
    server.shutdown();
}

/// Storage lifecycle over the wire: a store at capacity frees a slot
/// via `delete` and the next upload succeeds; deleting a handle that a
/// queued job pins answers the distinct in-use error; `list` reports
/// jobs and handles.
#[test]
fn delete_frees_slots_and_pinned_handles_are_protected() {
    let server = Server::start(ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        workers: 0, // no job workers: submitted jobs stay queued
        max_connections: 8,
        max_datasets: 3,
        ..ServerConfig::default()
    })
    .unwrap();
    let mut client = Client::connect(server.local_addr()).unwrap();

    // One committed dataset + fill the rest of the store with pending
    // uploads (not evictable), hitting the cap.
    let committed = client.upload_dataset("traj_id,x,y,t\n0,1.0,2.0,3\n", 1 << 20).unwrap().dataset;
    let p1 = client.request_line(r#"{"cmd":"upload"}"#).unwrap();
    let p1 = p1.get("dataset").and_then(Json::as_str).unwrap().to_string();
    let _p2 = client.request_line(r#"{"cmd":"upload"}"#).unwrap();

    // A queued job pins the committed handle: the store is full and
    // even the LRU eviction may not take it.
    let submitted = client
        .request(&Json::obj([
            ("cmd", Json::from("anonymize")),
            ("model", Json::from("gl")),
            ("dataset", Json::from(committed.clone())),
            ("async", Json::Bool(true)),
        ]))
        .unwrap();
    assert_eq!(submitted.get("ok"), Some(&Json::Bool(true)), "{submitted}");

    // At the cap with nothing evictable, upload fails...
    let full = client.request_line(r#"{"cmd":"upload"}"#).unwrap();
    assert_eq!(full.get("ok"), Some(&Json::Bool(false)), "{full}");
    assert!(full.get("error").and_then(Json::as_str).unwrap().contains("full"), "{full}");
    // ...and deleting the pinned input is rejected with the distinct
    // in-use error, not "unknown" and not success.
    let pinned = client
        .request(&Json::obj([
            ("cmd", Json::from("delete")),
            ("dataset", Json::from(committed.clone())),
        ]))
        .unwrap();
    assert_eq!(pinned.get("ok"), Some(&Json::Bool(false)));
    let msg = pinned.get("error").and_then(Json::as_str).unwrap();
    assert!(msg.contains("queued or running job"), "{msg}");

    // `list` shows the queued job and every handle, with the pin.
    let listed = client.request_line(r#"{"cmd":"list"}"#).unwrap();
    assert_eq!(listed.get("ok"), Some(&Json::Bool(true)), "{listed}");
    let Some(Json::Arr(jobs)) = listed.get("jobs") else { panic!("{listed}") };
    assert_eq!(jobs.len(), 1);
    assert_eq!(jobs[0].get("state").and_then(Json::as_str), Some("queued"));
    let Some(Json::Arr(datasets)) = listed.get("datasets") else { panic!("{listed}") };
    assert_eq!(datasets.len(), 3);
    let pins: f64 = datasets
        .iter()
        .filter(|d| d.get("dataset").and_then(Json::as_str) == Some(committed.as_str()))
        .filter_map(|d| d.get("pins").and_then(Json::as_f64))
        .sum();
    assert_eq!(pins, 1.0, "{listed}");

    // Deleting an (unpinned) pending upload frees the slot: the next
    // upload succeeds and the committed data is untouched.
    let deleted = client
        .request(&Json::obj([("cmd", Json::from("delete")), ("dataset", Json::from(p1))]))
        .unwrap();
    assert_eq!(deleted.get("ok"), Some(&Json::Bool(true)), "{deleted}");
    let reopened = client.request_line(r#"{"cmd":"upload"}"#).unwrap();
    assert_eq!(reopened.get("ok"), Some(&Json::Bool(true)), "{reopened}");
    assert_eq!(client.download_dataset(&committed).unwrap(), "traj_id,x,y,t\n0,1.0,2.0,3\n");

    drop(client);
    server.shutdown();
}

/// Durable jobs: a server restarted on the same `--state-dir` answers
/// `status` for jobs finished before the restart, still serves their
/// stored result datasets, completes work that was queued at the kill,
/// and never reuses old job ids.
#[test]
fn restarted_server_replays_journal_and_completes_queued_jobs() {
    let dir = std::env::temp_dir().join("trajdp-restart-test");
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();

    let server = start_durable(&dir);
    let mut client = Client::connect(server.local_addr()).unwrap();
    let gen = client.request_line(r#"{"cmd":"gen","size":6,"len":25,"seed":14}"#).unwrap();
    let csv = gen.get("csv").and_then(Json::as_str).unwrap().to_string();
    let req = Json::obj([
        ("cmd", Json::from("anonymize")),
        ("model", Json::from("purel")),
        ("m", Json::from(3u64)),
        ("seed", Json::from(8u64)),
        ("csv", Json::from(csv.clone())),
        ("async", Json::Bool(true)),
        ("store", Json::Bool(true)),
    ]);
    let submitted = client.request(&req).unwrap();
    let finished_job = submitted.get("job").and_then(Json::as_str).unwrap().to_string();
    let done = wait_done(&mut client, &finished_job);
    let result_handle = done.get("dataset").and_then(Json::as_str).unwrap().to_string();
    let release = client.download_dataset(&result_handle).unwrap();
    drop(client);
    server.shutdown();

    // Simulate a crash with work still queued: append a submit event
    // with no matching finish, exactly what a mid-queue kill leaves.
    let sync_reference = {
        let mut inline = std::collections::BTreeMap::new();
        inline.insert("cmd".to_string(), Json::from("anonymize"));
        inline.insert("model".to_string(), Json::from("gl"));
        inline.insert("m".to_string(), Json::from(3u64));
        inline.insert("seed".to_string(), Json::from(77u64));
        inline.insert("csv".to_string(), Json::from(csv.clone()));
        Json::Obj(inline)
    };
    let spec = Json::obj([
        ("model", Json::from("gl")),
        ("epsilon", Json::from(1.0)),
        ("eps_split", Json::from(0.5)),
        ("m", Json::from(3u64)),
        ("seed", Json::from(77u64)),
        ("workers", Json::from(1u64)),
        ("store", Json::Bool(false)),
        ("csv", Json::from(csv.clone())),
    ]);
    let killed_job = "job-17";
    let event = Json::obj([
        ("event", Json::from("submit")),
        ("job", Json::from(killed_job)),
        ("spec", spec),
    ]);
    use std::io::Write;
    let mut journal =
        std::fs::OpenOptions::new().append(true).open(dir.join("jobs.jsonl")).unwrap();
    journal.write_all(format!("{event}\n").as_bytes()).unwrap();
    drop(journal);

    // Restart on the same state dir.
    let server = start_durable(&dir);
    let mut client = Client::connect(server.local_addr()).unwrap();

    // Finished-before-restart job still answers status, and its stored
    // result is still downloadable, byte-identical.
    let replayed = client
        .request(&Json::obj([("cmd", Json::from("status")), ("job", Json::from(finished_job))]))
        .unwrap();
    assert_eq!(replayed.get("state").and_then(Json::as_str), Some("done"), "{replayed}");
    assert_eq!(
        replayed.get("dataset").and_then(Json::as_str),
        Some(result_handle.as_str()),
        "{replayed}"
    );
    assert_eq!(client.download_dataset(&result_handle).unwrap(), release);

    // The mid-queue job completes without any client resubmission, to
    // the same bytes a direct synchronous run produces.
    let done = wait_done(&mut client, killed_job);
    let direct = client.request(&sync_reference).unwrap();
    assert_eq!(
        done.get("csv"),
        direct.get("csv"),
        "replayed queued job must match the synchronous run byte for byte"
    );

    // Fresh submits never collide with replayed ids.
    let mut async_req = sync_reference;
    if let Json::Obj(m) = &mut async_req {
        m.insert("async".to_string(), Json::Bool(true));
    }
    let fresh = client.request(&async_req).unwrap();
    let fresh_id = fresh.get("job").and_then(Json::as_str).unwrap();
    let fresh_n: u64 = fresh_id.strip_prefix("job-").unwrap().parse().unwrap();
    assert!(fresh_n > 17, "fresh id {fresh_id} must come after the replayed ids");
    wait_done(&mut client, fresh_id);

    drop(client);
    server.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}

/// Two authenticated tenants and the open default path share one
/// server: quotas bind only the tenant that exhausted them, and every
/// other identity keeps full service.
#[test]
fn tenant_quotas_isolate_tenants_from_each_other() {
    let dir = std::env::temp_dir().join("trajdp-tenant-isolation-test");
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let tenants = dir.join("tenants.txt");
    std::fs::write(&tenants, "acme:sesame:1:100:\nglobex:gx-token\n").unwrap();
    let server = Server::start(ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        workers: 2,
        max_connections: 8,
        tenants: Some(tenants),
        ..ServerConfig::default()
    })
    .unwrap();
    let addr = server.local_addr();
    let csv = "traj_id,x,y,t\n0,1.0,2.0,3\n";

    let mut acme = Client::connect(addr).unwrap().with_tenant("acme:sesame");
    let mut globex = Client::connect(addr).unwrap().with_tenant("globex:gx-token");
    let mut open = Client::connect(addr).unwrap();

    // acme fills its single-dataset quota; the refusal names the quota
    // and does not consume a handle.
    let held = acme.upload_dataset(csv, 1 << 20).unwrap().dataset;
    let err = acme.upload_dataset(csv, 1 << 20).unwrap_err();
    assert_eq!(err.code, trajdp_server::api::ErrorCode::QuotaExceeded, "{err}");
    assert!(err.message.contains("max_datasets"), "{err}");

    // The other tenant and the open path are untouched by acme's cap —
    // globex is unlimited, and the default tenant can never be quota'd.
    let g1 = globex.upload_dataset(csv, 1 << 20).unwrap().dataset;
    let g2 = globex.upload_dataset(csv, 1 << 20).unwrap().dataset;
    assert_ne!(g1, g2);
    let o1 = open.upload_dataset(csv, 1 << 20).unwrap().dataset;

    // acme's byte quota (100) refuses an over-cap chunk mid-stream
    // without wedging the pending handle; globex streams the same
    // payload freely. (`request` sends lines verbatim, so the v2
    // members are spelled out here.)
    let acme_raw = |client: &mut Client, members: Vec<(&'static str, Json)>| {
        let mut members = members;
        members.push(("v", Json::from(2u64)));
        members.push(("tenant", Json::from("acme:sesame")));
        client.request(&Json::obj(members)).unwrap()
    };
    let big: String = std::iter::once("traj_id,x,y,t\n".to_string())
        .chain((0..10).map(|i| format!("0,1.0,2.0,{i}\n")))
        .collect();
    assert!(big.len() > 100, "payload must cross acme's byte cap");
    // The count quota is on held handles, so free acme's slot first.
    acme.delete_dataset(&held).unwrap();
    let r = acme_raw(&mut acme, vec![("cmd", Json::from("upload"))]);
    let pending = r.get("dataset").and_then(Json::as_str).unwrap().to_string();
    let refused = acme_raw(
        &mut acme,
        vec![
            ("cmd", Json::from("chunk")),
            ("dataset", Json::from(pending.clone())),
            ("data", Json::from(big.clone())),
        ],
    );
    assert_eq!(
        refused.get("error").and_then(|e| e.get("code")).and_then(Json::as_str),
        Some("quota-exceeded"),
        "{refused}"
    );
    // The refusal left the handle usable: an under-cap stream commits.
    let r = acme_raw(
        &mut acme,
        vec![
            ("cmd", Json::from("chunk")),
            ("dataset", Json::from(pending.clone())),
            ("data", Json::from(csv)),
        ],
    );
    assert_eq!(r.get("ok"), Some(&Json::Bool(true)), "{r}");
    let r = acme_raw(
        &mut acme,
        vec![("cmd", Json::from("commit")), ("dataset", Json::from(pending.clone()))],
    );
    assert_eq!(r.get("ok"), Some(&Json::Bool(true)), "{r}");
    assert_eq!(acme.download_dataset(&pending).unwrap(), csv);
    let g3 = globex.upload_dataset(&big, 1 << 20).unwrap();
    assert_eq!(g3.bytes, big.len() as u64);

    // Everyone still gets answers: the caps never poisoned the shared
    // queue or store.
    for client in [&mut acme, &mut globex, &mut open] {
        assert_eq!(client.health().unwrap().outstanding_jobs, 0);
    }
    assert_eq!(open.download_dataset(&o1).unwrap(), csv);

    drop((acme, globex, open));
    server.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}

/// The ε ledger across a restart: spend accumulated before the kill is
/// reported bit-for-bit identically after replay, and the budget keeps
/// refusing exactly where it did before.
#[test]
fn eps_spend_survives_restart_bit_for_bit() {
    let dir = std::env::temp_dir().join("trajdp-eps-restart-test");
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let start = || {
        Server::start(ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 2,
            max_connections: 8,
            state_dir: Some(dir.clone()),
            eps_budget: Some(0.5),
            ..ServerConfig::default()
        })
        .expect("bind on loopback with state dir")
    };
    // One row of the v2 `list` response, `(eps_spent, eps_budget)`.
    let eps_row = |client: &mut Client, handle: &str| {
        let listed = client.request_line(r#"{"cmd":"list","v":2}"#).unwrap();
        let Some(Json::Arr(rows)) = listed.get("datasets") else { panic!("{listed}") };
        let row = rows
            .iter()
            .find(|r| r.get("dataset").and_then(Json::as_str) == Some(handle))
            .unwrap_or_else(|| panic!("{handle} missing from {listed}"));
        (
            row.get("eps_spent").and_then(Json::as_f64).unwrap(),
            row.get("eps_budget").and_then(Json::as_f64),
        )
    };

    let server = start();
    let mut client = Client::connect(server.local_addr()).unwrap();
    // An explicit per-dataset budget (journaled at upload) over the
    // 0.5 server default, then two synchronous spends whose f64 sum is
    // not representable exactly — the replay fidelity probe.
    // Points need spatial extent: a zero-area domain is rejected by the
    // model layer, and this test is about the ledger, not the model.
    let csv = "traj_id,x,y,t\n0,1.0,2.0,3\n0,500.0,600.0,40\n1,1000.0,1200.0,5\n1,40.0,900.0,17\n";
    let handle = client.upload_dataset_with_budget(csv, 1 << 20, Some(2.0)).unwrap().dataset;
    for eps in ["0.1", "0.2"] {
        let r = client
            .request_line(&format!(
                r#"{{"cmd":"anonymize","model":"purel","m":2,"seed":1,"epsilon":{eps},"dataset":"{handle}"}}"#
            ))
            .unwrap();
        assert_eq!(r.get("ok"), Some(&Json::Bool(true)), "{r}");
    }
    let before = eps_row(&mut client, &handle);
    assert_eq!(before, (0.1 + 0.2, Some(2.0)), "the inexact sum is the point");
    drop(client);
    server.shutdown();

    let server = start();
    let mut client = Client::connect(server.local_addr()).unwrap();
    assert_eq!(
        eps_row(&mut client, &handle),
        before,
        "replayed spend must be bit-identical, not re-rounded"
    );
    // The replayed ledger still enforces: 0.30000000000000004 + 1.71
    // exceeds 2.0, while a smaller request fits — the boundary survives
    // the restart exactly. (1.7 would NOT be refused: its f64 error
    // cancels the sum's and lands on 2.0 on the nose.)
    let refused = client
        .request_line(&format!(
            r#"{{"cmd":"anonymize","model":"purel","m":2,"seed":1,"epsilon":1.71,"dataset":"{handle}"}}"#
        ))
        .unwrap();
    assert_eq!(refused.get("ok"), Some(&Json::Bool(false)), "{refused}");
    assert!(
        refused.get("error").and_then(Json::as_str).unwrap().contains("privacy budget exhausted"),
        "{refused}"
    );
    let fits = client
        .request_line(&format!(
            r#"{{"cmd":"anonymize","model":"purel","m":2,"seed":1,"epsilon":1.69,"dataset":"{handle}"}}"#
        ))
        .unwrap();
    assert_eq!(fits.get("ok"), Some(&Json::Bool(true)), "{fits}");

    drop(client);
    server.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}

//! Tenancy and privacy-budget accounting.
//!
//! Differential privacy composes: every release against a dataset
//! spends part of one cumulative ε, and the guarantee the paper proves
//! only holds if that *total* is bounded. Before this module the server
//! enforced per-request budgets and nothing across requests — any
//! client could re-run `anonymize` against the same handle until the
//! noise averaged out. This module makes the budget a first-class,
//! durable resource:
//!
//! * [`TenantRegistry`] — who may talk to the server. Loaded once at
//!   startup from `serve --tenants FILE` (simple `name:token` lines);
//!   requests present `"tenant": "name:token"` on the v2 envelope.
//!   Tenant-less requests (and every v1 request) map to
//!   [`DEFAULT_TENANT`], which always exists and has no caps.
//! * [`TenantLimits`] — optional per-tenant caps on dataset handles,
//!   stored bytes, and concurrent job slots, enforced at
//!   `upload`/`submit` dispatch with the `quota-exceeded` code.
//! * [`EpsLedger`] — the per-dataset ε accumulator. Pure data: it holds
//!   no lock and does no I/O, so it can live *inside* the job queue's
//!   existing mutex and journal through the existing `jobs.jsonl`
//!   machinery (see `jobs.rs`) without adding a lock to the documented
//!   hierarchy. Spend is charged when a job is accepted — not when it
//!   finishes — so a crash between the journal fsync and the ack can
//!   re-run the job but never under-count its spend.
//!
//! The ledger distinguishes *settled* spend (jobs that finished, plus
//! synchronous runs) from *in-flight* charges (accepted jobs that have
//! not finished yet, derived from the queue's live specs). Keeping the
//! two separate means replay reconstructs the accumulator exactly —
//! settled spend is re-derived from the same journal events, in-flight
//! charges from the re-enqueued submits — with no floating-point
//! subtract-then-re-add drift.

use crate::api::ApiError;
use crate::json::Json;
use std::collections::BTreeMap;

/// The tenant every v1 request and every tenant-less v2 request maps
/// to. Always known, never listed in a registry file, never capped.
pub const DEFAULT_TENANT: &str = "default";

/// Optional per-tenant resource caps; `None` means unlimited.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TenantLimits {
    /// Cap on dataset handles the tenant may hold (pending and
    /// committed).
    pub max_datasets: Option<usize>,
    /// Cap on the tenant's total stored bytes.
    pub max_bytes: Option<usize>,
    /// Cap on the tenant's queued + running jobs.
    pub max_jobs: Option<usize>,
}

impl TenantLimits {
    /// No caps at all — the default tenant's limits.
    pub const UNLIMITED: TenantLimits =
        TenantLimits { max_datasets: None, max_bytes: None, max_jobs: None };
}

struct TenantEntry {
    token: String,
    limits: TenantLimits,
}

/// The startup-loaded tenant registry: name → (token, limits).
///
/// File format, one tenant per line (`#` comments and blank lines
/// ignored):
///
/// ```text
/// name:token[:max_datasets[:max_bytes[:max_jobs]]]
/// ```
///
/// Trailing cap fields may be omitted or left empty for "unlimited":
/// `acme:s3cret:4::2` caps acme at 4 handles and 2 concurrent jobs
/// with no byte cap.
#[derive(Default)]
pub struct TenantRegistry {
    tenants: BTreeMap<String, TenantEntry>,
}

// Hand-written so tokens can never leak through a debug format: only
// the tenant names are shown.
impl std::fmt::Debug for TenantRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TenantRegistry")
            .field("tenants", &self.tenants.keys().collect::<Vec<_>>())
            .finish()
    }
}

/// Constant-time-shaped token comparison: the loop never exits early
/// on a mismatched byte, so response timing does not leak how much of
/// a guessed token was right.
fn token_eq(a: &str, b: &str) -> bool {
    if a.len() != b.len() {
        return false;
    }
    a.bytes().zip(b.bytes()).fold(0u8, |acc, (x, y)| acc | (x ^ y)) == 0
}

fn parse_cap(field: &str, what: &str, lineno: usize) -> Result<Option<usize>, String> {
    if field.is_empty() {
        return Ok(None);
    }
    match field.parse::<usize>() {
        Ok(n) => Ok(Some(n)),
        Err(_) => Err(format!("line {lineno}: {what} must be a non-negative integer")),
    }
}

impl TenantRegistry {
    /// The empty registry: no named tenants; every request maps to the
    /// default tenant and credentialed requests are rejected.
    pub fn empty() -> TenantRegistry {
        TenantRegistry::default()
    }

    /// Parses registry text (the `--tenants` file contents).
    pub fn parse(text: &str) -> Result<TenantRegistry, String> {
        let mut tenants = BTreeMap::new();
        for (idx, raw) in text.lines().enumerate() {
            let lineno = idx + 1;
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let mut fields = line.split(':');
            let name = fields.next().unwrap_or("").trim();
            let token = fields.next().unwrap_or("").trim();
            if name.is_empty() || token.is_empty() {
                return Err(format!("line {lineno}: expected name:token[:caps...]"));
            }
            if name == DEFAULT_TENANT {
                return Err(format!(
                    "line {lineno}: {DEFAULT_TENANT:?} is the built-in tenant and cannot \
                     be registered"
                ));
            }
            if name.chars().any(char::is_whitespace) {
                return Err(format!("line {lineno}: tenant name must not contain whitespace"));
            }
            let limits = TenantLimits {
                max_datasets: parse_cap(fields.next().unwrap_or(""), "max_datasets", lineno)?,
                max_bytes: parse_cap(fields.next().unwrap_or(""), "max_bytes", lineno)?,
                max_jobs: parse_cap(fields.next().unwrap_or(""), "max_jobs", lineno)?,
            };
            if fields.next().is_some() {
                return Err(format!("line {lineno}: too many fields (at most 5)"));
            }
            let entry = TenantEntry { token: token.to_string(), limits };
            if tenants.insert(name.to_string(), entry).is_some() {
                return Err(format!("line {lineno}: duplicate tenant {name:?}"));
            }
        }
        Ok(TenantRegistry { tenants })
    }

    /// Loads and parses a registry file.
    pub fn load(path: &std::path::Path) -> Result<TenantRegistry, String> {
        let text = std::fs::read_to_string(path)
            .map_err(|e| format!("cannot read tenants file {}: {e}", path.display()))?;
        TenantRegistry::parse(&text)
    }

    /// Registered tenant count (the default tenant is not counted).
    pub fn len(&self) -> usize {
        self.tenants.len()
    }

    /// Whether no tenants are registered.
    pub fn is_empty(&self) -> bool {
        self.tenants.is_empty()
    }

    /// Resolves a request's optional `"tenant"` credential to a tenant
    /// name. `None` (and every v1 request) is the default tenant; a
    /// credential must be `"name:token"` and match the registry. The
    /// rejection message never says *which* of name/token was wrong.
    pub fn authenticate<'a>(&'a self, credential: Option<&str>) -> Result<&'a str, ApiError> {
        let Some(cred) = credential else { return Ok(DEFAULT_TENANT) };
        let Some((name, token)) = cred.split_once(':') else {
            return Err(ApiError::tenant_unknown("tenant credential must be \"name:token\""));
        };
        match self.tenants.get_key_value(name) {
            Some((key, entry)) if token_eq(&entry.token, token) => Ok(key),
            _ => Err(ApiError::tenant_unknown("unknown tenant or bad token")),
        }
    }

    /// The caps of a tenant; unknown names (and the default tenant)
    /// are unlimited — quota enforcement applies to *registered*
    /// tenants only.
    pub fn limits(&self, tenant: &str) -> TenantLimits {
        self.tenants.get(tenant).map_or(TenantLimits::UNLIMITED, |e| e.limits)
    }
}

/// One dataset's ledger row: cumulative settled ε and the handle's
/// explicit budget, if one was set at upload time.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct LedgerRow {
    /// ε spent by finished jobs and synchronous runs against the
    /// handle. In-flight charges are *not* included — the queue derives
    /// those from its live specs, so replay reconstructs this value
    /// exactly from journal events.
    pub spent: f64,
    /// Explicit per-handle budget (`upload` `eps_budget`). `None`
    /// falls back to the server-wide `--eps-budget` default.
    pub budget: Option<f64>,
}

/// The per-dataset ε accumulator. Pure data — no lock, no I/O; the
/// owner (the job queue) guards it with its existing mutex and
/// journals every mutation.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct EpsLedger {
    rows: BTreeMap<String, LedgerRow>,
}

impl EpsLedger {
    /// The row for a handle, if the ledger has ever touched it.
    pub fn row(&self, handle: &str) -> Option<LedgerRow> {
        self.rows.get(handle).copied()
    }

    /// Settled ε spent against a handle.
    pub fn spent(&self, handle: &str) -> f64 {
        self.rows.get(handle).map_or(0.0, |r| r.spent)
    }

    /// The handle's effective budget under a server-wide default.
    pub fn effective_budget(&self, handle: &str, default: Option<f64>) -> Option<f64> {
        self.rows.get(handle).and_then(|r| r.budget).or(default)
    }

    /// Adds settled spend (a finished job or a synchronous run).
    pub fn settle(&mut self, handle: &str, eps: f64) {
        self.rows.entry(handle.to_string()).or_default().spent += eps;
    }

    /// Sets a handle's explicit budget.
    pub fn set_budget(&mut self, handle: &str, budget: f64) {
        self.rows.entry(handle.to_string()).or_default().budget = Some(budget);
    }

    /// Drops a handle's row (the dataset was deleted; a later handle
    /// reusing the id after a restart must not inherit its spend).
    pub fn forget(&mut self, handle: &str) {
        self.rows.remove(handle);
    }

    /// Would charging `eps` more — on top of settled spend and
    /// `in_flight` (the sum of accepted-but-unfinished charges) — push
    /// the handle past its effective budget? Spend may *reach* the
    /// budget exactly; only exceeding it is refused.
    pub fn check(
        &self,
        handle: &str,
        in_flight: f64,
        eps: f64,
        default_budget: Option<f64>,
    ) -> Result<(), ApiError> {
        let Some(budget) = self.effective_budget(handle, default_budget) else {
            return Ok(());
        };
        let spent = self.spent(handle) + in_flight;
        if spent + eps > budget {
            return Err(ApiError::budget_exhausted(format!(
                "privacy budget exhausted for {handle}: {spent} of {budget} spent, \
                 request needs {eps}"
            )));
        }
        Ok(())
    }

    /// Whether the ledger has no rows at all.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// All rows in handle order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, LedgerRow)> {
        self.rows.iter().map(|(k, v)| (k.as_str(), *v))
    }

    /// The journal/snapshot form: `{"ds-1":{"spent":1.5,"budget":3}}`.
    /// Budget-less rows omit `budget`. Rust's shortest-round-trip float
    /// formatting means spend survives the JSON round trip bit-exactly.
    pub fn to_json(&self) -> Json {
        let mut obj = BTreeMap::new();
        for (handle, row) in &self.rows {
            let mut m = BTreeMap::new();
            m.insert("spent".to_string(), Json::from(row.spent));
            if let Some(b) = row.budget {
                m.insert("budget".to_string(), Json::from(b));
            }
            obj.insert(handle.clone(), Json::Obj(m));
        }
        Json::Obj(obj)
    }

    /// Strict inverse of [`Self::to_json`] — a snapshot ledger that
    /// does not parse is journal corruption, not something to guess
    /// around.
    pub fn from_json(v: &Json) -> Result<EpsLedger, String> {
        let Json::Obj(obj) = v else { return Err("ledger must be an object".to_string()) };
        let mut rows = BTreeMap::new();
        for (handle, row) in obj {
            let spent = row
                .get("spent")
                .and_then(Json::as_f64)
                .ok_or_else(|| format!("ledger row {handle:?} missing numeric \"spent\""))?;
            let budget = match row.get("budget") {
                None => None,
                Some(b) => Some(
                    b.as_f64()
                        .ok_or_else(|| format!("ledger row {handle:?} has non-numeric budget"))?,
                ),
            };
            rows.insert(handle.clone(), LedgerRow { spent, budget });
        }
        Ok(EpsLedger { rows })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api::ErrorCode;

    #[test]
    fn registry_parses_tokens_caps_and_comments() {
        let reg = TenantRegistry::parse(
            "# fleet tenants\n\
             \n\
             acme:s3cret\n\
             beta:tok:4::2\n\
             gamma:g:1:1024:1\n",
        )
        .unwrap();
        assert_eq!(reg.len(), 3);
        assert_eq!(reg.limits("acme"), TenantLimits::UNLIMITED);
        assert_eq!(
            reg.limits("beta"),
            TenantLimits { max_datasets: Some(4), max_bytes: None, max_jobs: Some(2) }
        );
        assert_eq!(
            reg.limits("gamma"),
            TenantLimits { max_datasets: Some(1), max_bytes: Some(1024), max_jobs: Some(1) }
        );
        // Unknown tenants and the default tenant are unlimited.
        assert_eq!(reg.limits("nobody"), TenantLimits::UNLIMITED);
        assert_eq!(reg.limits(DEFAULT_TENANT), TenantLimits::UNLIMITED);
    }

    #[test]
    fn registry_rejects_malformed_lines() {
        for (text, needle) in [
            ("acme", "name:token"),
            ("acme:", "name:token"),
            (":tok", "name:token"),
            ("default:tok", "built-in"),
            ("a b:tok", "whitespace"),
            ("acme:tok:x", "non-negative integer"),
            ("acme:tok:1:2:3:4", "too many fields"),
            ("acme:t1\nacme:t2", "duplicate"),
        ] {
            let err = TenantRegistry::parse(text).unwrap_err();
            assert!(err.contains(needle), "{text:?}: {err}");
        }
    }

    #[test]
    fn authenticate_resolves_default_and_rejects_bad_credentials() {
        let reg = TenantRegistry::parse("acme:s3cret\n").unwrap();
        assert_eq!(reg.authenticate(None).unwrap(), DEFAULT_TENANT);
        assert_eq!(reg.authenticate(Some("acme:s3cret")).unwrap(), "acme");
        for bad in ["acme:wrong", "nobody:s3cret", "acme", "acme:s3cret2", "acme:s3cre"] {
            let err = reg.authenticate(Some(bad)).unwrap_err();
            assert_eq!(err.code, ErrorCode::TenantUnknown, "{bad}");
        }
        // The empty registry still serves the default tenant but knows
        // no names at all.
        let empty = TenantRegistry::empty();
        assert_eq!(empty.authenticate(None).unwrap(), DEFAULT_TENANT);
        assert!(empty.authenticate(Some("acme:s3cret")).is_err());
    }

    #[test]
    fn ledger_charges_checks_and_forgets() {
        let mut ledger = EpsLedger::default();
        // No budget anywhere: everything passes.
        assert!(ledger.check("ds-1", 0.0, 100.0, None).is_ok());
        // A default budget binds handles without an explicit one.
        assert!(ledger.check("ds-1", 0.0, 1.0, Some(1.0)).is_ok());
        assert!(ledger.check("ds-1", 0.0, 1.1, Some(1.0)).is_err());
        ledger.settle("ds-1", 0.75);
        assert_eq!(ledger.spent("ds-1"), 0.75);
        // Settled + in-flight + new spend may reach the budget exactly
        // but never exceed it.
        assert!(ledger.check("ds-1", 0.15, 0.1, Some(1.0)).is_ok());
        let err = ledger.check("ds-1", 0.5, 0.5, Some(1.0)).unwrap_err();
        assert_eq!(err.code, ErrorCode::BudgetExhausted);
        assert!(err.message.contains("ds-1"), "{err}");
        // An explicit budget overrides the default.
        ledger.set_budget("ds-1", 2.0);
        assert!(ledger.check("ds-1", 0.5, 0.75, Some(1.0)).is_ok());
        assert_eq!(ledger.effective_budget("ds-1", Some(1.0)), Some(2.0));
        assert_eq!(ledger.effective_budget("ds-9", Some(1.0)), Some(1.0));
        // Deletion clears both spend and budget.
        ledger.forget("ds-1");
        assert_eq!(ledger.row("ds-1"), None);
        assert!(ledger.is_empty());
    }

    #[test]
    fn ledger_json_roundtrips_exactly() {
        let mut ledger = EpsLedger::default();
        ledger.settle("ds-1", 0.1 + 0.2); // deliberately not representable as 0.3
        ledger.settle("ds-1", 1.0 / 3.0);
        ledger.set_budget("ds-2", 2.5);
        let v = ledger.to_json();
        let parsed = EpsLedger::from_json(&crate::json::parse(&v.to_string()).unwrap()).unwrap();
        assert_eq!(parsed, ledger, "spend must survive the JSON round trip bit-exactly");
        // Strictness: non-object rows and missing spent are corruption.
        assert!(EpsLedger::from_json(&Json::from(3.0)).is_err());
        let bad = crate::json::parse(r#"{"ds-1":{"budget":1}}"#).unwrap();
        assert!(EpsLedger::from_json(&bad).is_err());
    }
}

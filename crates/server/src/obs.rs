//! Observability: a lock-light metrics registry and structured logging.
//!
//! ## Metrics
//!
//! [`Metrics`] is a fixed-shape registry of atomic counters, gauges,
//! and fixed-bucket latency histograms. Almost every cell is a plain
//! [`AtomicU64`]; recording and snapshotting never take a lock shared
//! with request handling, so the instrumentation can sit inside the
//! request hot path (and inside code that *does* hold the
//! store/queue/journal locks) without adding contention — asserted by
//! a no-stall test in `jobs`. The label-keyed tenancy/ε families are
//! the one exception: they sit behind a private mutex that writers
//! only touch outside the store/queue/journal critical sections.
//!
//! The registry instruments every layer of the server: per-verb
//! request counts and latencies, per-[`ErrorCode`] rejection counts,
//! job queue depth and queue-wait/run-time histograms, store
//! bytes/handles/evictions/TTL-sweeps, journal append + fsync latency
//! and compaction counts, connection-pool occupancy, and bytes in/out.
//!
//! [`Metrics::snapshot`] freezes the registry into a plain
//! [`MetricsSnapshot`], which serializes to the typed JSON shape of the
//! `metrics` verb ([`MetricsSnapshot::to_json`]), parses back on the
//! client ([`MetricsSnapshot::from_json`]), and renders a
//! Prometheus-style text exposition ([`MetricsSnapshot::to_prometheus`])
//! for scraping.
//!
//! ## Logging
//!
//! [`init_logger`] arms a process-wide leveled logger writing one line
//! per event to stderr — structured JSON lines with `--log-json`,
//! `key=value` text otherwise. It is off until armed (the CLI's
//! `serve --log-level` arms it), so embedded servers and tests stay
//! silent. Events carry the v2 envelope's request `id` as a
//! correlation id from the service through the job queue into the
//! executor's phase-timing report.

use crate::api::{ErrorCode, WIRE_ERROR_CODES};
use crate::json::Json;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::{Duration, Instant};

/// Wire names of every request verb the service dispatches, plus the
/// `"invalid"` bucket for lines whose verb never parsed (bad JSON, an
/// unknown `cmd`, a malformed envelope). Indexed by [`verb_index`].
pub const VERBS: [&str; 16] = [
    "health",
    "info",
    "metrics",
    "gen",
    "anonymize",
    "evaluate",
    "stats",
    "status",
    "cancel",
    "upload",
    "chunk",
    "commit",
    "download",
    "delete",
    "list",
    "invalid",
];

/// Position of a verb name in [`VERBS`]; unknown names land in the
/// trailing `"invalid"` bucket.
pub fn verb_index(verb: &str) -> usize {
    VERBS.iter().position(|v| *v == verb).unwrap_or(VERBS.len() - 1)
}

/// Upper bounds (µs) of the latency histogram buckets, shared by every
/// histogram in the registry. Spans 100 µs – 10 s: below the floor a
/// request is effectively free, above the ceiling it is effectively
/// stuck; either way the overflow buckets still count it.
pub const LATENCY_BOUNDS_US: [u64; 14] = [
    100, 250, 500, 1_000, 2_500, 5_000, 10_000, 25_000, 50_000, 100_000, 250_000, 1_000_000,
    2_500_000, 10_000_000,
];

/// A fixed-bucket latency histogram made only of atomics. `counts` has
/// one cell per bound plus a trailing overflow cell; `observe` touches
/// exactly three atomics, so it is safe inside any hot path.
#[derive(Debug, Default)]
pub struct Histogram {
    counts: [AtomicU64; LATENCY_BOUNDS_US.len() + 1],
    count: AtomicU64,
    sum_us: AtomicU64,
}

impl Histogram {
    /// Records one duration.
    pub fn observe(&self, d: Duration) {
        let us = d.as_micros().min(u64::MAX as u128) as u64;
        let idx =
            LATENCY_BOUNDS_US.iter().position(|&b| us <= b).unwrap_or(LATENCY_BOUNDS_US.len());
        // PANIC: `counts` has `LATENCY_BOUNDS_US.len() + 1` cells and
        // `idx` is at most `LATENCY_BOUNDS_US.len()`.
        self.counts[idx].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum_us.fetch_add(us, Ordering::Relaxed);
    }

    fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            counts: self.counts.iter().map(|c| c.load(Ordering::Relaxed)).collect(),
            count: self.count.load(Ordering::Relaxed),
            sum_us: self.sum_us.load(Ordering::Relaxed),
        }
    }
}

/// A frozen [`Histogram`]: per-bucket counts (one per
/// [`LATENCY_BOUNDS_US`] bound plus overflow), total count, and total
/// sum in microseconds.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct HistogramSnapshot {
    /// Per-bucket counts; `counts[i]` counts observations ≤
    /// `LATENCY_BOUNDS_US[i]`, the last cell counts the overflow.
    pub counts: Vec<u64>,
    /// Total observations.
    pub count: u64,
    /// Sum of all observations, microseconds.
    pub sum_us: u64,
}

impl HistogramSnapshot {
    fn to_json(&self) -> Json {
        Json::obj([
            ("count", Json::from(self.count)),
            ("sum_us", Json::from(self.sum_us)),
            ("bounds_us", Json::Arr(LATENCY_BOUNDS_US.iter().map(|&b| Json::from(b)).collect())),
            ("counts", Json::Arr(self.counts.iter().map(|&c| Json::from(c)).collect())),
        ])
    }

    fn from_json(v: &Json) -> Result<HistogramSnapshot, String> {
        let count = v.get("count").and_then(Json::as_u64).ok_or("histogram missing count")?;
        let sum_us = v.get("sum_us").and_then(Json::as_u64).ok_or("histogram missing sum_us")?;
        let counts = match v.get("counts") {
            Some(Json::Arr(a)) => a
                .iter()
                .map(|c| c.as_u64().ok_or_else(|| "histogram count not an integer".to_string()))
                .collect::<Result<Vec<u64>, String>>()?,
            _ => return Err("histogram missing counts".to_string()),
        };
        Ok(HistogramSnapshot { counts, count, sum_us })
    }

    /// Appends this histogram as Prometheus `_bucket`/`_sum`/`_count`
    /// lines for metric `name` with `labels` (e.g. `verb="health"`).
    /// Bucket `le` labels are in **seconds**, formatted so they parse
    /// back to the exact microsecond bound (asserted by a round-trip
    /// test).
    fn write_prometheus(&self, out: &mut String, name: &str, labels: &str) {
        use std::fmt::Write;
        let sep = if labels.is_empty() { "" } else { "," };
        let mut cumulative = 0u64;
        for (i, bound) in LATENCY_BOUNDS_US.iter().enumerate() {
            cumulative += self.counts.get(i).copied().unwrap_or(0);
            let _ = writeln!(
                out,
                "{name}_bucket{{{labels}{sep}le=\"{}\"}} {cumulative}",
                bound_secs(*bound)
            );
        }
        cumulative += self.counts.last().copied().unwrap_or(0);
        let _ = writeln!(out, "{name}_bucket{{{labels}{sep}le=\"+Inf\"}} {cumulative}");
        let _ = writeln!(out, "{name}_sum{{{labels}}} {}", self.sum_us as f64 / 1e6);
        let _ = writeln!(out, "{name}_count{{{labels}}} {}", self.count);
    }
}

/// A microsecond bound rendered as seconds for a Prometheus `le`
/// label. `f64` division by 1e6 round-trips: parsing the printed value
/// back and multiplying by 1e6 recovers the bound after rounding.
fn bound_secs(bound_us: u64) -> f64 {
    bound_us as f64 / 1e6
}

/// Per-verb request statistics: a counter and a latency histogram.
#[derive(Debug, Default)]
pub struct VerbStats {
    /// Requests dispatched under this verb.
    pub count: AtomicU64,
    /// End-to-end handling latency (parse → rendered response).
    pub latency: Histogram,
}

/// The process-wide metrics registry. Every cell is an atomic; there
/// is no interior lock, so recording from inside the store/queue/
/// journal critical sections and snapshotting from the `metrics` verb
/// can never contend.
#[derive(Debug)]
pub struct Metrics {
    started: Instant,
    /// Per-verb request stats, indexed by [`verb_index`].
    pub requests: [VerbStats; VERBS.len()],
    /// Per-code rejection counts, indexed by position in
    /// [`WIRE_ERROR_CODES`].
    pub errors: [AtomicU64; WIRE_ERROR_CODES.len()],
    /// Request bytes read off sockets.
    pub bytes_in: AtomicU64,
    /// Response bytes written to sockets.
    pub bytes_out: AtomicU64,
    /// Currently served connections (gauge).
    pub connections_active: AtomicU64,
    /// Connections accepted over the process lifetime.
    pub connections_total: AtomicU64,
    /// Connections shed at accept because the server was at
    /// `--max-conn` (answered `overloaded`, never served).
    pub connections_shed: AtomicU64,
    /// Connections closed because a partial request line outlived the
    /// read deadline (slowloris / half-open peers).
    pub deadline_closes: AtomicU64,
    /// Wall-clock of each readiness-loop iteration (poll wait +
    /// event handling) — the reactor's heartbeat.
    pub reactor_iterations: Histogram,
    /// Jobs accepted by `submit`.
    pub jobs_submitted: AtomicU64,
    /// Jobs that reached `done`.
    pub jobs_completed: AtomicU64,
    /// Jobs queued or running right now (gauge).
    pub queue_depth: AtomicU64,
    /// Submit → worker pickup.
    pub queue_wait: Histogram,
    /// Worker pickup → done.
    pub run_time: Histogram,
    /// Bytes held by the dataset store (gauge).
    pub store_bytes: AtomicU64,
    /// Handles held by the dataset store (gauge).
    pub store_handles: AtomicU64,
    /// Handles evicted (LRU pressure or TTL expiry).
    pub store_evictions: AtomicU64,
    /// TTL sweep passes run.
    pub store_ttl_sweeps: AtomicU64,
    /// Journal events appended.
    pub journal_appends: AtomicU64,
    /// Durable append latency (write + fsync).
    pub journal_fsync: Histogram,
    /// Journal compactions (rewrites) completed.
    pub journal_compactions: AtomicU64,
    /// Submits refused because the queue was at `--max-queue`
    /// (answered `overloaded`, never enqueued).
    pub jobs_shed: AtomicU64,
    /// Label-keyed families (per-tenant counters, per-dataset ε). These
    /// are the one exception to the atomics-only rule: the key sets are
    /// dynamic, so they live behind a private mutex. Writers only touch
    /// it *outside* the store/queue/journal locks, and the `metrics`
    /// read path takes it alone — it can never participate in a lock
    /// cycle.
    tenancy: Mutex<TenancyMetrics>,
}

/// The label-keyed half of the registry: per-tenant request/rejection
/// counters and the per-dataset settled + in-flight ε gauge.
#[derive(Debug, Default)]
struct TenancyMetrics {
    requests: BTreeMap<String, u64>,
    rejections: BTreeMap<String, u64>,
    eps_spent: BTreeMap<String, f64>,
}

impl Default for Metrics {
    fn default() -> Self {
        Metrics {
            started: Instant::now(),
            requests: Default::default(),
            errors: Default::default(),
            bytes_in: AtomicU64::new(0),
            bytes_out: AtomicU64::new(0),
            connections_active: AtomicU64::new(0),
            connections_total: AtomicU64::new(0),
            connections_shed: AtomicU64::new(0),
            deadline_closes: AtomicU64::new(0),
            reactor_iterations: Histogram::default(),
            jobs_submitted: AtomicU64::new(0),
            jobs_completed: AtomicU64::new(0),
            queue_depth: AtomicU64::new(0),
            queue_wait: Histogram::default(),
            run_time: Histogram::default(),
            store_bytes: AtomicU64::new(0),
            store_handles: AtomicU64::new(0),
            store_evictions: AtomicU64::new(0),
            store_ttl_sweeps: AtomicU64::new(0),
            journal_appends: AtomicU64::new(0),
            journal_fsync: Histogram::default(),
            journal_compactions: AtomicU64::new(0),
            jobs_shed: AtomicU64::new(0),
            tenancy: Mutex::default(),
        }
    }
}

impl Metrics {
    /// A fresh registry.
    pub fn new() -> Metrics {
        Metrics::default()
    }

    /// Records one handled request: its verb bucket and latency.
    pub fn record_request(&self, verb: &str, elapsed: Duration) {
        // PANIC: `verb_index` returns a position into `VERBS` (falling
        // back to the `invalid` bucket) and `requests` has one cell per
        // verb by construction.
        let stats = &self.requests[verb_index(verb)];
        stats.count.fetch_add(1, Ordering::Relaxed);
        stats.latency.observe(elapsed);
    }

    /// Records one rejection under its stable code.
    pub fn record_error(&self, code: ErrorCode) {
        if let Some(idx) = WIRE_ERROR_CODES.iter().position(|&c| c == code) {
            // PANIC: `idx` is a position into `WIRE_ERROR_CODES` and
            // `errors` has one cell per code by construction.
            self.errors[idx].fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Publishes the store gauges (called by the store after mutating
    /// operations, under the store's own lock — the gauge cells are
    /// atomics, so readers never touch that lock).
    pub fn set_store_gauges(&self, bytes: u64, handles: u64) {
        self.store_bytes.store(bytes, Ordering::Relaxed);
        self.store_handles.store(handles, Ordering::Relaxed);
    }

    /// Publishes the job-queue depth gauge.
    pub fn set_queue_depth(&self, depth: u64) {
        self.queue_depth.store(depth, Ordering::Relaxed);
    }

    /// The label-keyed section, recovered from poisoning — dropping
    /// observability forever because one panicking writer held this
    /// lock would be worse than any half-written counter (all values
    /// here are plain numbers, never invariants).
    fn tenancy(&self) -> std::sync::MutexGuard<'_, TenancyMetrics> {
        self.tenancy.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Counts one authenticated request for `tenant`.
    pub fn record_tenant_request(&self, tenant: &str) {
        *self.tenancy().requests.entry(tenant.to_string()).or_insert(0) += 1;
    }

    /// Counts one rejected request for `tenant` (bad token, quota,
    /// budget, or any other error answer).
    pub fn record_tenant_rejection(&self, tenant: &str) {
        *self.tenancy().rejections.entry(tenant.to_string()).or_insert(0) += 1;
    }

    /// Publishes one dataset's ε-spent gauge (settled + in-flight).
    /// Callers must not hold the queue/journal/store locks — compute
    /// the value inside the critical section, publish after it.
    pub fn set_eps_spent(&self, dataset: &str, eps: f64) {
        self.tenancy().eps_spent.insert(dataset.to_string(), eps);
    }

    /// Drops a deleted dataset's ε gauge row.
    pub fn clear_eps_spent(&self, dataset: &str) {
        self.tenancy().eps_spent.remove(dataset);
    }

    /// Freezes the registry. Reads atomics plus the private label-keyed
    /// mutex — never a lock shared with request handling.
    ///
    /// Verbs and error codes are sorted by name — the order the JSON
    /// wire shape (an object with sorted keys) imposes anyway, so a
    /// snapshot round-trips through [`MetricsSnapshot::from_json`]
    /// unchanged.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let mut requests: Vec<VerbSnapshot> = VERBS
            .iter()
            .zip(self.requests.iter())
            .map(|(verb, stats)| VerbSnapshot {
                verb: verb.to_string(),
                count: stats.count.load(Ordering::Relaxed),
                latency: stats.latency.snapshot(),
            })
            .collect();
        requests.sort_by(|a, b| a.verb.cmp(&b.verb));
        let mut errors: Vec<(String, u64)> = WIRE_ERROR_CODES
            .iter()
            .zip(self.errors.iter())
            .map(|(code, cell)| (code.as_str().to_string(), cell.load(Ordering::Relaxed)))
            .collect();
        errors.sort();
        let (tenant_requests, tenant_rejections, eps_spent) = {
            let t = self.tenancy();
            (
                t.requests.iter().map(|(k, v)| (k.clone(), *v)).collect(),
                t.rejections.iter().map(|(k, v)| (k.clone(), *v)).collect(),
                t.eps_spent.iter().map(|(k, v)| (k.clone(), *v)).collect(),
            )
        };
        MetricsSnapshot {
            uptime_secs: self.started.elapsed().as_secs(),
            requests,
            errors,
            bytes_in: self.bytes_in.load(Ordering::Relaxed),
            bytes_out: self.bytes_out.load(Ordering::Relaxed),
            connections_active: self.connections_active.load(Ordering::Relaxed),
            connections_total: self.connections_total.load(Ordering::Relaxed),
            connections_shed: self.connections_shed.load(Ordering::Relaxed),
            deadline_closes: self.deadline_closes.load(Ordering::Relaxed),
            reactor_iterations: self.reactor_iterations.snapshot(),
            jobs_submitted: self.jobs_submitted.load(Ordering::Relaxed),
            jobs_completed: self.jobs_completed.load(Ordering::Relaxed),
            queue_depth: self.queue_depth.load(Ordering::Relaxed),
            queue_wait: self.queue_wait.snapshot(),
            run_time: self.run_time.snapshot(),
            store_bytes: self.store_bytes.load(Ordering::Relaxed),
            store_handles: self.store_handles.load(Ordering::Relaxed),
            store_evictions: self.store_evictions.load(Ordering::Relaxed),
            store_ttl_sweeps: self.store_ttl_sweeps.load(Ordering::Relaxed),
            journal_appends: self.journal_appends.load(Ordering::Relaxed),
            journal_fsync: self.journal_fsync.snapshot(),
            journal_compactions: self.journal_compactions.load(Ordering::Relaxed),
            jobs_shed: self.jobs_shed.load(Ordering::Relaxed),
            tenant_requests,
            tenant_rejections,
            eps_spent,
        }
    }
}

/// One verb's frozen stats.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VerbSnapshot {
    /// The verb name (one of [`VERBS`]).
    pub verb: String,
    /// Requests dispatched.
    pub count: u64,
    /// Handling latency.
    pub latency: HistogramSnapshot,
}

/// A frozen [`Metrics`] registry — the payload of the `metrics` verb.
/// (`Eq` would be wrong here: the ε gauge values are `f64`.)
#[derive(Debug, Clone, PartialEq)]
pub struct MetricsSnapshot {
    /// Seconds since the registry (≈ the server) started.
    pub uptime_secs: u64,
    /// Per-verb request stats, in [`VERBS`] order.
    pub requests: Vec<VerbSnapshot>,
    /// `(code, count)` per wire error code, in documentation order.
    pub errors: Vec<(String, u64)>,
    /// Request bytes read.
    pub bytes_in: u64,
    /// Response bytes written.
    pub bytes_out: u64,
    /// Currently served connections.
    pub connections_active: u64,
    /// Connections accepted over the lifetime.
    pub connections_total: u64,
    /// Connections shed at accept (`overloaded`).
    pub connections_shed: u64,
    /// Connections closed at the read deadline.
    pub deadline_closes: u64,
    /// Readiness-loop iteration wall-clock.
    pub reactor_iterations: HistogramSnapshot,
    /// Jobs accepted.
    pub jobs_submitted: u64,
    /// Jobs finished.
    pub jobs_completed: u64,
    /// Jobs queued or running now.
    pub queue_depth: u64,
    /// Submit → pickup latency.
    pub queue_wait: HistogramSnapshot,
    /// Pickup → done latency.
    pub run_time: HistogramSnapshot,
    /// Bytes held by the store.
    pub store_bytes: u64,
    /// Handles held by the store.
    pub store_handles: u64,
    /// Evictions performed.
    pub store_evictions: u64,
    /// TTL sweep passes.
    pub store_ttl_sweeps: u64,
    /// Journal events appended.
    pub journal_appends: u64,
    /// Durable append latency.
    pub journal_fsync: HistogramSnapshot,
    /// Journal compactions.
    pub journal_compactions: u64,
    /// Submits refused at `--max-queue`.
    pub jobs_shed: u64,
    /// `(tenant, count)` of authenticated requests, sorted by tenant.
    pub tenant_requests: Vec<(String, u64)>,
    /// `(tenant, count)` of rejected requests, sorted by tenant.
    pub tenant_rejections: Vec<(String, u64)>,
    /// `(dataset, ε)` settled + in-flight spend, sorted by handle.
    pub eps_spent: Vec<(String, f64)>,
}

impl MetricsSnapshot {
    /// The typed wire shape of the `metrics` verb (identical across
    /// protocol versions — the verb is new, nothing is frozen).
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("uptime_secs", Json::from(self.uptime_secs)),
            (
                "requests",
                Json::Obj(
                    self.requests
                        .iter()
                        .map(|r| {
                            (
                                r.verb.clone(),
                                Json::obj([
                                    ("count", Json::from(r.count)),
                                    ("latency", r.latency.to_json()),
                                ]),
                            )
                        })
                        .collect(),
                ),
            ),
            (
                "errors",
                Json::Obj(
                    self.errors.iter().map(|(code, n)| (code.clone(), Json::from(*n))).collect(),
                ),
            ),
            (
                "jobs",
                Json::obj([
                    ("submitted", Json::from(self.jobs_submitted)),
                    ("completed", Json::from(self.jobs_completed)),
                    ("shed", Json::from(self.jobs_shed)),
                    ("queue_depth", Json::from(self.queue_depth)),
                    ("queue_wait", self.queue_wait.to_json()),
                    ("run_time", self.run_time.to_json()),
                ]),
            ),
            (
                "tenants",
                Json::obj([
                    (
                        "requests",
                        Json::Obj(
                            self.tenant_requests
                                .iter()
                                .map(|(t, n)| (t.clone(), Json::from(*n)))
                                .collect(),
                        ),
                    ),
                    (
                        "rejections",
                        Json::Obj(
                            self.tenant_rejections
                                .iter()
                                .map(|(t, n)| (t.clone(), Json::from(*n)))
                                .collect(),
                        ),
                    ),
                ]),
            ),
            (
                "eps_spent",
                Json::Obj(
                    self.eps_spent.iter().map(|(ds, e)| (ds.clone(), Json::from(*e))).collect(),
                ),
            ),
            (
                "store",
                Json::obj([
                    ("bytes", Json::from(self.store_bytes)),
                    ("handles", Json::from(self.store_handles)),
                    ("evictions", Json::from(self.store_evictions)),
                    ("ttl_sweeps", Json::from(self.store_ttl_sweeps)),
                ]),
            ),
            (
                "journal",
                Json::obj([
                    ("appends", Json::from(self.journal_appends)),
                    ("fsync", self.journal_fsync.to_json()),
                    ("compactions", Json::from(self.journal_compactions)),
                ]),
            ),
            (
                "connections",
                Json::obj([
                    ("active", Json::from(self.connections_active)),
                    ("total", Json::from(self.connections_total)),
                ]),
            ),
            (
                "reactor",
                Json::obj([
                    ("shed", Json::from(self.connections_shed)),
                    ("deadline_closes", Json::from(self.deadline_closes)),
                    ("iterations", self.reactor_iterations.to_json()),
                ]),
            ),
            (
                "bytes",
                Json::obj([("in", Json::from(self.bytes_in)), ("out", Json::from(self.bytes_out))]),
            ),
        ])
    }

    /// Parses the wire shape back — the client half of the `metrics`
    /// verb. Strict: a missing section is a protocol violation.
    pub fn from_json(v: &Json) -> Result<MetricsSnapshot, String> {
        let section =
            |key: &str| v.get(key).ok_or_else(|| format!("metrics missing section {key:?}"));
        let num = |obj: &Json, key: &str| {
            obj.get(key)
                .and_then(Json::as_u64)
                .ok_or_else(|| format!("metrics missing integer member {key:?}"))
        };
        let requests = match section("requests")? {
            Json::Obj(map) => map
                .iter()
                .map(|(verb, stats)| {
                    Ok(VerbSnapshot {
                        verb: verb.clone(),
                        count: num(stats, "count")?,
                        latency: HistogramSnapshot::from_json(
                            stats.get("latency").ok_or("verb stats missing latency")?,
                        )?,
                    })
                })
                .collect::<Result<Vec<_>, String>>()?,
            _ => return Err("requests must be an object".to_string()),
        };
        let errors = match section("errors")? {
            Json::Obj(map) => map
                .iter()
                .map(|(code, n)| {
                    n.as_u64()
                        .map(|n| (code.clone(), n))
                        .ok_or_else(|| format!("error count for {code:?} not an integer"))
                })
                .collect::<Result<Vec<_>, String>>()?,
            _ => return Err("errors must be an object".to_string()),
        };
        let jobs = section("jobs")?;
        let store = section("store")?;
        let journal = section("journal")?;
        let connections = section("connections")?;
        let reactor = section("reactor")?;
        let bytes = section("bytes")?;
        let tenants = section("tenants")?;
        let counter_map = |obj: Option<&Json>, what: &str| match obj {
            Some(Json::Obj(map)) => map
                .iter()
                .map(|(k, n)| {
                    n.as_u64()
                        .map(|n| (k.clone(), n))
                        .ok_or_else(|| format!("{what} count for {k:?} not an integer"))
                })
                .collect::<Result<Vec<_>, String>>(),
            _ => Err(format!("{what} must be an object")),
        };
        let eps_spent = match section("eps_spent")? {
            Json::Obj(map) => map
                .iter()
                .map(|(ds, e)| {
                    e.as_f64()
                        .map(|e| (ds.clone(), e))
                        .ok_or_else(|| format!("eps_spent for {ds:?} not a number"))
                })
                .collect::<Result<Vec<_>, String>>()?,
            _ => return Err("eps_spent must be an object".to_string()),
        };
        Ok(MetricsSnapshot {
            uptime_secs: num(v, "uptime_secs")?,
            requests,
            errors,
            bytes_in: num(bytes, "in")?,
            bytes_out: num(bytes, "out")?,
            connections_active: num(connections, "active")?,
            connections_total: num(connections, "total")?,
            connections_shed: num(reactor, "shed")?,
            deadline_closes: num(reactor, "deadline_closes")?,
            reactor_iterations: HistogramSnapshot::from_json(
                reactor.get("iterations").ok_or("reactor missing iterations")?,
            )?,
            jobs_submitted: num(jobs, "submitted")?,
            jobs_completed: num(jobs, "completed")?,
            queue_depth: num(jobs, "queue_depth")?,
            queue_wait: HistogramSnapshot::from_json(
                jobs.get("queue_wait").ok_or("jobs missing queue_wait")?,
            )?,
            run_time: HistogramSnapshot::from_json(
                jobs.get("run_time").ok_or("jobs missing run_time")?,
            )?,
            store_bytes: num(store, "bytes")?,
            store_handles: num(store, "handles")?,
            store_evictions: num(store, "evictions")?,
            store_ttl_sweeps: num(store, "ttl_sweeps")?,
            journal_appends: num(journal, "appends")?,
            journal_fsync: HistogramSnapshot::from_json(
                journal.get("fsync").ok_or("journal missing fsync")?,
            )?,
            journal_compactions: num(journal, "compactions")?,
            jobs_shed: num(jobs, "shed")?,
            tenant_requests: counter_map(tenants.get("requests"), "tenant request")?,
            tenant_rejections: counter_map(tenants.get("rejections"), "tenant rejection")?,
            eps_spent,
        })
    }

    /// Renders a Prometheus-style text exposition of the snapshot.
    pub fn to_prometheus(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        let _ = writeln!(out, "trajdp_uptime_seconds {}", self.uptime_secs);
        for r in &self.requests {
            let _ = writeln!(out, "trajdp_requests_total{{verb=\"{}\"}} {}", r.verb, r.count);
        }
        for r in &self.requests {
            r.latency.write_prometheus(
                &mut out,
                "trajdp_request_latency_seconds",
                &format!("verb=\"{}\"", r.verb),
            );
        }
        for (code, n) in &self.errors {
            let _ = writeln!(out, "trajdp_errors_total{{code=\"{code}\"}} {n}");
        }
        let _ = writeln!(out, "trajdp_jobs_submitted_total {}", self.jobs_submitted);
        let _ = writeln!(out, "trajdp_jobs_completed_total {}", self.jobs_completed);
        let _ = writeln!(out, "trajdp_jobs_shed_total {}", self.jobs_shed);
        let _ = writeln!(out, "trajdp_job_queue_depth {}", self.queue_depth);
        for (tenant, n) in &self.tenant_requests {
            let _ = writeln!(out, "trajdp_tenant_requests_total{{tenant=\"{tenant}\"}} {n}");
        }
        for (tenant, n) in &self.tenant_rejections {
            let _ = writeln!(out, "trajdp_tenant_rejections_total{{tenant=\"{tenant}\"}} {n}");
        }
        for (dataset, eps) in &self.eps_spent {
            let _ = writeln!(out, "trajdp_eps_spent{{dataset=\"{dataset}\"}} {eps}");
        }
        self.queue_wait.write_prometheus(&mut out, "trajdp_job_queue_wait_seconds", "");
        self.run_time.write_prometheus(&mut out, "trajdp_job_run_seconds", "");
        let _ = writeln!(out, "trajdp_store_bytes {}", self.store_bytes);
        let _ = writeln!(out, "trajdp_store_handles {}", self.store_handles);
        let _ = writeln!(out, "trajdp_store_evictions_total {}", self.store_evictions);
        let _ = writeln!(out, "trajdp_store_ttl_sweeps_total {}", self.store_ttl_sweeps);
        let _ = writeln!(out, "trajdp_journal_appends_total {}", self.journal_appends);
        self.journal_fsync.write_prometheus(&mut out, "trajdp_journal_fsync_seconds", "");
        let _ = writeln!(out, "trajdp_journal_compactions_total {}", self.journal_compactions);
        let _ = writeln!(out, "trajdp_connections_active {}", self.connections_active);
        let _ = writeln!(out, "trajdp_connections_total {}", self.connections_total);
        let _ = writeln!(out, "trajdp_connections_shed_total {}", self.connections_shed);
        let _ = writeln!(out, "trajdp_deadline_closes_total {}", self.deadline_closes);
        self.reactor_iterations.write_prometheus(&mut out, "trajdp_reactor_iteration_seconds", "");
        let _ = writeln!(out, "trajdp_bytes_in_total {}", self.bytes_in);
        let _ = writeln!(out, "trajdp_bytes_out_total {}", self.bytes_out);
        out
    }
}

/// Wall-clock phase timings of one anonymize run, in seconds. The
/// build/increase/decrease/realize stages come from the core's
/// modification phase ([`trajdp_core::global::StageTimings`]); `global`
/// and `local` are the mechanism-level walls the pipeline driver
/// already measures; `total` is the end-to-end request wall.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct PhaseTimings {
    /// End-to-end anonymize wall (parse → released dataset).
    pub total_secs: f64,
    /// Global mechanism wall (perturbation + modification).
    pub global_secs: f64,
    /// Local mechanism wall.
    pub local_secs: f64,
    /// Modification planning: editor construction + edit-step planning.
    pub build_secs: f64,
    /// TF-increase edits.
    pub increase_secs: f64,
    /// TF-decrease edits.
    pub decrease_secs: f64,
    /// Total modification (realize) wall.
    pub realize_secs: f64,
}

impl PhaseTimings {
    /// The wire shape (`"timings"` member of v2 anonymize/status
    /// responses).
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("total_secs", Json::from(self.total_secs)),
            ("global_secs", Json::from(self.global_secs)),
            ("local_secs", Json::from(self.local_secs)),
            ("build_secs", Json::from(self.build_secs)),
            ("increase_secs", Json::from(self.increase_secs)),
            ("decrease_secs", Json::from(self.decrease_secs)),
            ("realize_secs", Json::from(self.realize_secs)),
        ])
    }
}

// ---------------------------------------------------------------------
// Structured logging
// ---------------------------------------------------------------------

/// Log severity. Ordered: a logger at level `Info` emits
/// `Error`/`Warn`/`Info` and drops `Debug`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum LogLevel {
    /// Nothing is emitted (the un-armed default).
    Off,
    /// Unexpected failures only.
    Error,
    /// Rejections and degraded operation.
    Warn,
    /// One line per request / job transition.
    Info,
    /// Everything, including internal transitions.
    Debug,
}

impl LogLevel {
    /// Parses a CLI level name.
    pub fn parse(s: &str) -> Option<LogLevel> {
        match s {
            "off" => Some(LogLevel::Off),
            "error" => Some(LogLevel::Error),
            "warn" => Some(LogLevel::Warn),
            "info" => Some(LogLevel::Info),
            "debug" => Some(LogLevel::Debug),
            _ => None,
        }
    }

    fn as_str(self) -> &'static str {
        match self {
            LogLevel::Off => "off",
            LogLevel::Error => "error",
            LogLevel::Warn => "warn",
            LogLevel::Info => "info",
            LogLevel::Debug => "debug",
        }
    }
}

struct Logger {
    level: LogLevel,
    json: bool,
}

static LOGGER: OnceLock<Logger> = OnceLock::new();

/// Arms the process-wide logger. First call wins; returns `false` if a
/// logger was already armed (the settings keep their first value —
/// re-arming mid-flight would tear half-written configuration).
pub fn init_logger(level: LogLevel, json: bool) -> bool {
    LOGGER.set(Logger { level, json }).is_ok()
}

/// Whether an event at `level` would be emitted — lets callers skip
/// building field lists when logging is off (the common case for
/// embedded servers and tests).
pub fn log_enabled(level: LogLevel) -> bool {
    match LOGGER.get() {
        Some(logger) => level <= logger.level && logger.level != LogLevel::Off,
        None => false,
    }
}

/// Emits one structured event to stderr: JSON lines when the logger
/// was armed with `json`, `key=value` text otherwise. Fields are
/// `(name, value)` pairs; the correlation id travels as a `cid` field.
pub fn log_event(level: LogLevel, msg: &str, fields: &[(&str, Json)]) {
    let Some(logger) = LOGGER.get() else { return };
    if level > logger.level || logger.level == LogLevel::Off {
        return;
    }
    let ts = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_millis() as u64)
        .unwrap_or(0);
    if logger.json {
        let mut obj: std::collections::BTreeMap<String, Json> = std::collections::BTreeMap::new();
        obj.insert("ts_ms".to_string(), Json::from(ts));
        obj.insert("level".to_string(), Json::from(level.as_str()));
        obj.insert("msg".to_string(), Json::from(msg));
        for (k, v) in fields {
            obj.insert((*k).to_string(), v.clone());
        }
        eprintln!("{}", Json::Obj(obj));
    } else {
        use std::fmt::Write;
        let mut line = format!("{ts} {} {msg}", level.as_str());
        for (k, v) in fields {
            match v {
                Json::Str(s) => {
                    let _ = write!(line, " {k}={s}");
                }
                other => {
                    let _ = write!(line, " {k}={other}");
                }
            }
        }
        eprintln!("{line}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_latencies_and_sums() {
        let h = Histogram::default();
        h.observe(Duration::from_micros(50)); // ≤ 100 → bucket 0
        h.observe(Duration::from_micros(100)); // ≤ 100 → bucket 0
        h.observe(Duration::from_micros(101)); // ≤ 250 → bucket 1
        h.observe(Duration::from_secs(60)); // overflow
        let s = h.snapshot();
        assert_eq!(s.count, 4);
        assert_eq!(s.sum_us, 50 + 100 + 101 + 60_000_000);
        assert_eq!(s.counts[0], 2);
        assert_eq!(s.counts[1], 1);
        assert_eq!(*s.counts.last().unwrap(), 1);
        assert_eq!(s.counts.len(), LATENCY_BOUNDS_US.len() + 1);
    }

    #[test]
    fn histogram_bounds_round_trip_through_the_text_exposition() {
        // Every `le` label printed by the exposition must parse back to
        // the exact microsecond bucket bound — a scraper and this
        // server must agree on the boundaries.
        let h = Histogram::default();
        h.observe(Duration::from_millis(3));
        let mut text = String::new();
        h.snapshot().write_prometheus(&mut text, "t", "verb=\"x\"");
        let mut seen = Vec::new();
        for line in text.lines() {
            if let Some(rest) = line.strip_prefix("t_bucket{verb=\"x\",le=\"") {
                let le = rest.split('"').next().unwrap();
                if le == "+Inf" {
                    continue;
                }
                let secs: f64 = le.parse().expect("le label must parse as f64");
                seen.push((secs * 1e6).round() as u64);
            }
        }
        assert_eq!(seen, LATENCY_BOUNDS_US.to_vec(), "bounds must round-trip exactly");
        // And the cumulative +Inf bucket equals the total count.
        assert!(text.contains("le=\"+Inf\"} 1"));
        assert!(text.contains("t_count{verb=\"x\"} 1"));
    }

    #[test]
    fn every_error_code_increments_its_counter_exactly_once() {
        let m = Metrics::new();
        for code in WIRE_ERROR_CODES {
            m.record_error(code);
        }
        let snap = m.snapshot();
        assert_eq!(snap.errors.len(), WIRE_ERROR_CODES.len());
        for code in WIRE_ERROR_CODES {
            let n = snap.errors.iter().find(|(name, _)| name == code.as_str()).map(|(_, n)| *n);
            assert_eq!(n, Some(1), "{} must have been incremented exactly once", code.as_str());
        }
        // The client-side-only code has no wire counter and must not
        // disturb the registry.
        m.record_error(ErrorCode::Transport);
        let snap = m.snapshot();
        assert!(snap.errors.iter().all(|(_, n)| *n == 1));
    }

    #[test]
    fn snapshot_round_trips_through_json() {
        let m = Metrics::new();
        m.record_request("health", Duration::from_micros(120));
        m.record_request("anonymize", Duration::from_millis(80));
        m.record_request("nonsense", Duration::from_micros(5)); // → invalid
        m.record_error(ErrorCode::BadRequest);
        m.bytes_in.fetch_add(100, Ordering::Relaxed);
        m.bytes_out.fetch_add(250, Ordering::Relaxed);
        m.jobs_submitted.fetch_add(2, Ordering::Relaxed);
        m.jobs_completed.fetch_add(1, Ordering::Relaxed);
        m.set_queue_depth(1);
        m.queue_wait.observe(Duration::from_micros(900));
        m.run_time.observe(Duration::from_millis(12));
        m.set_store_gauges(4096, 3);
        m.store_evictions.fetch_add(1, Ordering::Relaxed);
        m.journal_appends.fetch_add(3, Ordering::Relaxed);
        m.journal_fsync.observe(Duration::from_micros(400));
        m.journal_compactions.fetch_add(1, Ordering::Relaxed);
        m.connections_shed.fetch_add(2, Ordering::Relaxed);
        m.deadline_closes.fetch_add(1, Ordering::Relaxed);
        m.reactor_iterations.observe(Duration::from_micros(30));
        m.jobs_shed.fetch_add(4, Ordering::Relaxed);
        m.record_tenant_request("acme");
        m.record_tenant_request("acme");
        m.record_tenant_rejection("acme");
        m.record_tenant_request("default");
        m.set_eps_spent("ds-1", 1.25);
        m.set_eps_spent("ds-2", 0.1 + 0.2); // deliberately non-representable
        let snap = m.snapshot();
        let parsed = MetricsSnapshot::from_json(&snap.to_json()).unwrap();
        assert_eq!(parsed, snap);
        // Spot checks on the typed content.
        let health = parsed.requests.iter().find(|r| r.verb == "health").unwrap();
        assert_eq!(health.count, 1);
        let invalid = parsed.requests.iter().find(|r| r.verb == "invalid").unwrap();
        assert_eq!(invalid.count, 1, "unknown verbs land in the invalid bucket");
        assert_eq!(parsed.errors.iter().find(|(c, _)| c == "bad-request").unwrap().1, 1);
        assert_eq!(parsed.store_bytes, 4096);
        assert_eq!(parsed.store_handles, 3);
        assert_eq!(parsed.connections_shed, 2);
        assert_eq!(parsed.deadline_closes, 1);
        assert_eq!(parsed.reactor_iterations.count, 1);
        assert_eq!(parsed.jobs_shed, 4);
        assert_eq!(
            parsed.tenant_requests,
            vec![("acme".to_string(), 2), ("default".to_string(), 1)]
        );
        assert_eq!(parsed.tenant_rejections, vec![("acme".to_string(), 1)]);
        // ε survives the JSON round trip bit-exactly (shortest
        // round-trip float formatting), including sums that are not
        // exactly representable.
        assert_eq!(
            parsed.eps_spent,
            vec![("ds-1".to_string(), 1.25), ("ds-2".to_string(), 0.1 + 0.2)]
        );
    }

    #[test]
    fn eps_gauge_rows_can_be_cleared() {
        let m = Metrics::new();
        m.set_eps_spent("ds-1", 0.5);
        m.set_eps_spent("ds-1", 0.75); // a gauge: set replaces
        assert_eq!(m.snapshot().eps_spent, vec![("ds-1".to_string(), 0.75)]);
        m.clear_eps_spent("ds-1");
        assert!(m.snapshot().eps_spent.is_empty());
    }

    #[test]
    fn prometheus_exposition_covers_every_family() {
        let m = Metrics::new();
        m.record_request("health", Duration::from_micros(10));
        m.record_error(ErrorCode::JobNotFound);
        m.record_tenant_request("acme");
        m.record_tenant_rejection("acme");
        m.set_eps_spent("ds-1", 0.5);
        let text = m.snapshot().to_prometheus();
        for family in [
            "trajdp_uptime_seconds",
            "trajdp_requests_total{verb=\"health\"} 1",
            "trajdp_request_latency_seconds_bucket{verb=\"health\",le=\"+Inf\"} 1",
            "trajdp_errors_total{code=\"job-not-found\"} 1",
            "trajdp_jobs_submitted_total",
            "trajdp_jobs_shed_total",
            "trajdp_job_queue_depth",
            "trajdp_job_queue_wait_seconds_count",
            "trajdp_store_bytes",
            "trajdp_journal_fsync_seconds_count",
            "trajdp_connections_active",
            "trajdp_connections_shed_total",
            "trajdp_deadline_closes_total",
            "trajdp_reactor_iteration_seconds_count",
            "trajdp_bytes_in_total",
            "trajdp_tenant_requests_total{tenant=\"acme\"} 1",
            "trajdp_tenant_rejections_total{tenant=\"acme\"} 1",
            "trajdp_eps_spent{dataset=\"ds-1\"} 0.5",
        ] {
            assert!(text.contains(family), "exposition must contain {family}:\n{text}");
        }
    }

    #[test]
    fn verb_index_maps_known_and_unknown() {
        assert_eq!(VERBS[verb_index("health")], "health");
        assert_eq!(VERBS[verb_index("metrics")], "metrics");
        assert_eq!(VERBS[verb_index("no-such-verb")], "invalid");
    }

    #[test]
    fn log_levels_order_and_parse() {
        assert!(LogLevel::Error < LogLevel::Debug);
        assert_eq!(LogLevel::parse("info"), Some(LogLevel::Info));
        assert_eq!(LogLevel::parse("bogus"), None);
        // Un-armed logger: nothing enabled (tests stay silent).
        // (init_logger is process-global; arming it here would leak
        // into sibling tests, so only the un-armed path is asserted.)
        if LOGGER.get().is_none() {
            assert!(!log_enabled(LogLevel::Error));
        }
        log_event(LogLevel::Info, "noop", &[("k", Json::from("v"))]);
    }

    #[test]
    fn phase_timings_serialize() {
        let t = PhaseTimings {
            total_secs: 1.5,
            global_secs: 1.0,
            local_secs: 0.25,
            build_secs: 0.1,
            increase_secs: 0.4,
            decrease_secs: 0.3,
            realize_secs: 0.9,
        };
        let v = t.to_json();
        assert_eq!(v.get("total_secs").and_then(Json::as_f64), Some(1.5));
        assert_eq!(v.get("realize_secs").and_then(Json::as_f64), Some(0.9));
    }
}

//! The TCP service: configuration, request dispatch, and server
//! lifecycle around the [`crate::reactor`] connection plane.
//!
//! All connections are served by one non-blocking readiness loop (see
//! [`crate::reactor`]): the reactor thread owns every socket and the
//! listener, and hands complete request lines to a small executor pool
//! that runs the request dispatcher. Concurrency is therefore bounded by file
//! descriptors, not threads — `max_connections` is a shed threshold
//! (excess accepts are answered with an `overloaded` error), no longer
//! a thread-pool size, and a slow or half-open peer costs a buffer, not
//! a pinned OS thread.
//!
//! Shutdown is cooperative and cannot deadlock on live connections:
//! [`Server::shutdown`] raises the stop flag and wakes the reactor,
//! which closes the listener and enters a bounded drain window —
//! requests already received still get their responses, partial request
//! lines are discarded, idle connections close immediately — then the
//! job queue drains and every thread is joined before returning.

use crate::api::{self, ApiError, DatasetRow, ErrorCode, Response};
use crate::jobs::JobQueue;
use crate::json::Json;
use crate::ledger::TenantRegistry;
use crate::obs::{log_enabled, log_event, LogLevel, Metrics};
use crate::protocol::{self, Request};
use crate::reactor::{Dispatch, Reactor, ReactorConfig, Waker};
use crate::store::{DatasetStore, StoreConfig, MAX_STORED_DATASETS};
use std::net::{SocketAddr, TcpListener};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Server tuning knobs.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address, e.g. `127.0.0.1:0` (port 0 picks a free port).
    pub addr: String,
    /// Worker threads draining the async job queue. `0` starts none,
    /// leaving async jobs queued indefinitely — only useful to tests
    /// that need a job frozen in `queued`; the CLI rejects it.
    pub workers: usize,
    /// Maximum concurrently served connections (CLI `--max-conn`).
    /// Accepts beyond the cap are answered with one `overloaded` error
    /// line and closed — shed, not silently stalled in the backlog.
    pub max_connections: usize,
    /// Per-connection read deadline (CLI `--read-timeout`): once a
    /// partial request line is buffered it must complete within this
    /// window or the connection is answered `bad-request` and closed.
    /// Idle connections (no partial line) are never timed out.
    pub read_timeout: Duration,
    /// Shutdown grace: how long the reactor keeps flushing responses
    /// for requests received before [`Server::shutdown`].
    pub drain_window: Duration,
    /// Durable-state directory (CLI `--state-dir`). When set, the job
    /// table is journaled to `<dir>/jobs.jsonl` (compacted at startup
    /// and after enough finish events) and committed datasets are
    /// mirrored under `<dir>/datasets/`; a restarted server replays
    /// both, re-queueing jobs that were in flight and answering
    /// `status`/`download` for work finished before the restart.
    pub state_dir: Option<PathBuf>,
    /// Dataset-store capacity (CLI `--max-datasets`): pending +
    /// committed handles held at once. When full, the LRU unpinned
    /// committed handle is evicted to make room.
    pub max_datasets: usize,
    /// Evict committed datasets untouched for this long (CLI
    /// `--dataset-ttl`); `None` keeps them until deleted or
    /// LRU-evicted. A background sweeper enforces the TTL even on an
    /// idle store.
    pub dataset_ttl: Option<Duration>,
    /// Tenant registry file (CLI `--tenants`): `name:token` lines with
    /// optional per-tenant quotas, loaded once at startup. `None` runs
    /// the server open — every request maps to the default tenant.
    pub tenants: Option<PathBuf>,
    /// Default per-dataset privacy budget (CLI `--eps-budget`): jobs
    /// against a handle with no explicit upload budget refuse with
    /// `budget-exhausted` once their cumulative ε would exceed this.
    /// `None` leaves unbudgeted handles unmetered (spend still ledgered).
    pub eps_budget: Option<f64>,
    /// Queue-depth shed threshold (CLI `--max-queue`): async submits
    /// arriving while this many jobs are already queued or running are
    /// answered `overloaded` instead of growing the queue without
    /// bound. `None` never sheds.
    pub max_queue: Option<usize>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:0".to_string(),
            workers: 2,
            max_connections: 1024,
            read_timeout: Duration::from_secs(10),
            drain_window: Duration::from_secs(5),
            state_dir: None,
            max_datasets: MAX_STORED_DATASETS,
            dataset_ttl: None,
            tenants: None,
            eps_budget: None,
            max_queue: None,
        }
    }
}

/// A running anonymization service.
pub struct Server {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    jobs: JobQueue,
    waker: Waker,
    reactor_thread: Option<JoinHandle<()>>,
    job_threads: Vec<JoinHandle<()>>,
    sweep_state: Arc<(Mutex<bool>, Condvar)>,
    sweep_thread: Option<JoinHandle<()>>,
}

/// Per-server context shared by every dispatch: the static facts the
/// `info` verb reports plus the observability registry the `metrics`
/// verb snapshots.
#[derive(Clone)]
struct ServiceContext {
    /// Job-queue worker threads.
    workers: usize,
    /// Configured dataset-store capacity (`--max-datasets`).
    max_datasets: usize,
    /// Configured connection cap (`--max-conn`), for `info`.
    max_connections: usize,
    /// Configured read deadline (`--read-timeout`), for `info`.
    read_timeout: Duration,
    /// Whether a durable `--state-dir` is configured.
    state_dir: bool,
    /// Unix epoch seconds at server start, for `info.started_at`.
    started_at: u64,
    /// Monotonic start instant, for `info.uptime_secs`.
    started: Instant,
    /// Shared observability registry (also wired into the store and
    /// the job queue).
    metrics: Arc<Metrics>,
    /// The tenant registry (`--tenants`), empty when the server runs
    /// open. Loaded once at startup; every request authenticates
    /// against it before dispatch.
    registry: Arc<TenantRegistry>,
    /// Default per-dataset privacy budget (`--eps-budget`), for `info`.
    eps_budget: Option<f64>,
    /// Queue-depth shed threshold (`--max-queue`).
    max_queue: Option<usize>,
}

/// Dispatches one parsed request to its handler. Dataset handles are
/// resolved here, before any job is enqueued, so queued work owns its
/// data and cannot be changed by later store mutations.
///
/// `tenant` is the already-authenticated tenant name (the default
/// tenant on an open server): quota checks read its limits from the
/// registry, uploads attribute their handles to it, and submits carry
/// it into the queue for job-slot accounting.
fn dispatch(
    req: Request,
    jobs: &JobQueue,
    store: &DatasetStore,
    ctx: &ServiceContext,
    tenant: &str,
    cid: Option<String>,
) -> Result<Response, ApiError> {
    match req {
        Request::Health => Ok(Response::Health {
            outstanding_jobs: jobs.outstanding(),
            stored_datasets: store.count(),
        }),
        Request::Info => Ok(Response::Info {
            workers: ctx.workers,
            max_datasets: ctx.max_datasets,
            max_connections: ctx.max_connections,
            read_timeout_secs: ctx.read_timeout.as_secs(),
            uptime_secs: ctx.started.elapsed().as_secs(),
            started_at: ctx.started_at,
            state_dir: ctx.state_dir,
            tenants: ctx.registry.len(),
            eps_budget: ctx.eps_budget,
        }),
        Request::Metrics => Ok(Response::Metrics { snapshot: Box::new(ctx.metrics.snapshot()) }),
        Request::Gen { size, len, seed, store_result } => {
            let response = protocol::run_gen(size, len, seed);
            if store_result {
                protocol::store_result(response, store, false)
            } else {
                Ok(response)
            }
        }
        Request::Anonymize { params, asynchronous } => {
            let spec = params.resolve(store)?;
            if asynchronous {
                // Queue-depth back-pressure: past --max-queue the
                // submit is shed with `overloaded` before anything is
                // minted or journaled, and the shed is counted. The
                // check is advisory (racing submits may briefly
                // overshoot by the executor-pool width); the bound it
                // enforces is on unbounded growth, not an exact cap.
                if let Some(cap) = ctx.max_queue {
                    if jobs.outstanding() >= cap {
                        ctx.metrics.jobs_shed.fetch_add(1, Ordering::Relaxed);
                        return Err(ApiError::overloaded(format!(
                            "job queue is full ({cap} outstanding jobs); retry later"
                        )));
                    }
                }
                // The envelope id rides along as the job's correlation
                // id, so logs emitted by the worker thread can be tied
                // back to the submitting request.
                let max_jobs = ctx.registry.limits(tenant).max_jobs;
                jobs.submit_scoped(spec, cid, Some(tenant.to_string()), max_jobs)
                    .map(|job| Response::Submitted { job })
            } else {
                // A synchronous run against a stored handle spends ε
                // just like a job does: charge (journaled, checked
                // against the budget) before the run. A run that then
                // fails leaves the charge in place — over-counting is
                // the safe direction for a privacy ledger.
                if let Some(handle) = &spec.source {
                    jobs.charge_sync(handle, spec.epsilon)?;
                }
                let response = protocol::run_anonymize(&spec)?;
                if spec.store_result {
                    // Synchronous results are acknowledged inline, not
                    // via the journal — never orphan-reconciled.
                    protocol::store_result(response, store, false)
                } else {
                    Ok(response)
                }
            }
        }
        Request::Evaluate { original, anonymized } => {
            let original = original.resolve_shared(store)?;
            let anonymized = anonymized.resolve_shared(store)?;
            protocol::run_evaluate(&original, &anonymized)
        }
        Request::Stats { data } => protocol::run_stats(&data.resolve_shared(store)?),
        Request::Status { job } => jobs.status_response(&job),
        Request::Upload { eps_budget } => {
            if let Some(cap) = ctx.registry.limits(tenant).max_datasets {
                let (datasets, _) = store.usage(tenant);
                if datasets >= cap {
                    return Err(ApiError::quota_exceeded(format!(
                        "tenant {tenant:?} already holds {cap} datasets (max_datasets quota)"
                    )));
                }
            }
            let dataset = store.begin_for(Some(tenant))?;
            if let Some(budget) = eps_budget {
                // The budget must be journaled before the handle is
                // acknowledged: an acked budget that evaporated on
                // restart would loosen the ledger. On journal failure
                // the fresh handle is withdrawn so the client never
                // holds an unbudgeted handle it asked a budget for.
                if let Err(e) = jobs.set_eps_budget(&dataset, budget) {
                    let _ = store.delete(&dataset);
                    return Err(e);
                }
            }
            Ok(Response::Upload { dataset })
        }
        Request::Chunk { dataset, data } => {
            // The byte quota is enforced per chunk against the bytes
            // already attributed to the requesting tenant (pending
            // buffers included), so a tenant cannot stream past its cap
            // one append at a time.
            if let Some(cap) = ctx.registry.limits(tenant).max_bytes {
                let (_, bytes) = store.usage(tenant);
                if bytes + data.len() > cap {
                    return Err(ApiError::quota_exceeded(format!(
                        "chunk would put tenant {tenant:?} over its {cap}-byte quota \
                         ({bytes} bytes already stored)"
                    )));
                }
            }
            protocol::run_chunk(store, &dataset, &data)
        }
        Request::Commit { dataset } => protocol::run_commit(store, &dataset),
        Request::Download { dataset, offset, max_bytes } => {
            protocol::run_download(store, &dataset, offset, max_bytes)
        }
        Request::Delete { dataset } => {
            let response = protocol::run_delete(store, &dataset)?;
            // The handle is gone; drop its ledger row so a recycled id
            // starts fresh. Ordered after the delete so a refused
            // delete (pinned handle) keeps its spend.
            jobs.reset_eps(&dataset);
            Ok(response)
        }
        Request::Cancel { job } => jobs.cancel(&job),
        Request::List => {
            let mut eps = jobs.eps_overview();
            let default_budget = jobs.default_eps_budget();
            let datasets = store
                .list()
                .into_iter()
                .map(|(dataset, bytes, state, pins)| {
                    let (eps_spent, eps_budget) =
                        eps.remove(&dataset).unwrap_or((0.0, default_budget));
                    DatasetRow { dataset, bytes, state, pins, eps_spent, eps_budget }
                })
                .collect();
            Ok(Response::List { jobs: jobs.list(), datasets })
        }
    }
}

/// The wire verb of a parsed request, for the per-verb metrics bucket.
/// Unparseable or unknown-verb lines land in the `"invalid"` bucket.
fn verb_name(req: &Request) -> &'static str {
    match req {
        Request::Health => "health",
        Request::Info => "info",
        Request::Metrics => "metrics",
        Request::Gen { .. } => "gen",
        Request::Anonymize { .. } => "anonymize",
        Request::Evaluate { .. } => "evaluate",
        Request::Stats { .. } => "stats",
        Request::Status { .. } => "status",
        Request::Cancel { .. } => "cancel",
        Request::Upload { .. } => "upload",
        Request::Chunk { .. } => "chunk",
        Request::Commit { .. } => "commit",
        Request::Download { .. } => "download",
        Request::Delete { .. } => "delete",
        Request::List => "list",
    }
}

/// Hard cap on one request line. Datasets travel inline as CSV inside
/// the JSON, so lines are large but bounded; past this the connection
/// is served an error and closed instead of buffering without limit.
pub const MAX_REQUEST_BYTES: usize = 256 * 1024 * 1024;

/// Builds the request handler the executor pool runs: one complete
/// request line in, one rendered response line (newline included) out,
/// with metrics and logging identical to the old per-thread handler.
fn make_dispatch(jobs: JobQueue, store: DatasetStore, ctx: ServiceContext) -> Dispatch {
    Arc::new(move |conn_id: u64, line: String, received: Instant| {
        let (envelope, parsed) = protocol::parse_request_line(&line);
        let verb = match &parsed {
            Ok(req) => verb_name(req),
            Err(_) => "invalid",
        };
        let cid = envelope.id.clone();
        let mut tenant_label: Option<String> = None;
        let result = parsed.and_then(|req| {
            // Authentication precedes dispatch: a bad credential is
            // refused with `tenant-unknown` before any handler runs.
            // On an open server (no --tenants) a credential-less
            // request maps to the default tenant.
            let tenant = ctx.registry.authenticate(envelope.tenant.as_deref())?;
            ctx.metrics.record_tenant_request(tenant);
            tenant_label = Some(tenant.to_string());
            dispatch(req, &jobs, &store, &ctx, tenant, cid.clone())
        });
        let code = result.as_ref().err().map(|e| e.code);
        if let Some(code) = code {
            ctx.metrics.record_error(code);
            // Quota/budget refusals are additionally attributed to the
            // authenticated tenant; `tenant-unknown` never reaches here
            // with a label (authentication failed), so bad credentials
            // are visible only in the per-code error counters.
            if matches!(code, ErrorCode::QuotaExceeded | ErrorCode::BudgetExhausted) {
                if let Some(tenant) = &tenant_label {
                    ctx.metrics.record_tenant_rejection(tenant);
                }
            }
        }
        let response = api::render(&envelope, result);
        let out = format!("{response}\n");
        ctx.metrics.bytes_out.fetch_add(out.len() as u64, Ordering::Relaxed);
        // Latency is measured from the instant the reactor extracted
        // the line, so executor queueing under load is visible.
        let elapsed = received.elapsed();
        ctx.metrics.record_request(verb, elapsed);
        if log_enabled(LogLevel::Info) {
            let mut fields: Vec<(&str, Json)> = vec![
                ("conn", Json::from(conn_id)),
                ("cmd", Json::from(verb)),
                ("ok", Json::from(code.is_none())),
                ("elapsed_ms", Json::from(elapsed.as_secs_f64() * 1e3)),
            ];
            if let Some(code) = code {
                fields.push(("code", Json::from(code.as_str())));
            }
            if let Some(cid) = &cid {
                fields.push(("cid", Json::from(cid.clone())));
            }
            log_event(LogLevel::Info, "request", &fields);
        }
        out
    })
}

impl Server {
    /// Binds and starts serving in background threads. With a
    /// `state_dir`, the job journal and persisted datasets are replayed
    /// first; jobs that were queued or running when the previous
    /// process died go straight back into the queue, so the new
    /// workers complete them without any client action.
    pub fn start(cfg: ServerConfig) -> std::io::Result<Server> {
        let listener = TcpListener::bind(&cfg.addr)?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        // One registry for the whole instance, attached to the store
        // and the job queue before any clone is handed out.
        let metrics = Arc::new(Metrics::new());
        let store = DatasetStore::with_config(StoreConfig {
            dir: cfg.state_dir.as_ref().map(|d| d.join("datasets")),
            capacity: cfg.max_datasets,
            ttl: cfg.dataset_ttl,
            ..StoreConfig::default()
        })?
        .with_metrics(Arc::clone(&metrics));
        // The tenant registry is loaded once, before the listener
        // accepts anything: token changes require a restart, so there
        // is no window where half the connections see old credentials.
        let registry = Arc::new(match &cfg.tenants {
            Some(path) => TenantRegistry::load(path)
                .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))?,
            None => TenantRegistry::empty(),
        });
        let jobs = match &cfg.state_dir {
            Some(dir) => JobQueue::with_journal(store.clone(), &dir.join("jobs.jsonl"))
                .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))?,
            None => JobQueue::with_store(store.clone()),
        }
        .with_eps_budget(cfg.eps_budget)
        .with_metrics(Arc::clone(&metrics));

        let job_threads: Vec<JoinHandle<()>> = (0..cfg.workers)
            .map(|_| {
                let q = jobs.clone();
                std::thread::spawn(move || q.work())
            })
            .collect();

        // Stale datasets and abandoned uploads must expire even when no
        // upload pressure triggers the implicit sweep — unconditionally:
        // the abandoned-upload TTL is always configured, so a crashed
        // uploader must not hold a multi-GB pending buffer on an
        // otherwise idle server just because --dataset-ttl is unset.
        // The sweeper blocks in a condvar wait between ticks (not a
        // sleep loop), so shutdown interrupts it immediately and an
        // idle server wakes once a second, not twenty times.
        let sweep_state = Arc::new((Mutex::new(false), Condvar::new()));
        let sweep_thread = Some({
            let store = store.clone();
            let state = Arc::clone(&sweep_state);
            std::thread::spawn(move || {
                let (lock, cvar) = &*state;
                let mut stopped = lock.lock().expect("sweeper poisoned");
                loop {
                    if *stopped {
                        break;
                    }
                    let (guard, timeout) = cvar
                        .wait_timeout(stopped, Duration::from_secs(1))
                        .expect("sweeper poisoned");
                    stopped = guard;
                    if *stopped {
                        break;
                    }
                    if timeout.timed_out() {
                        // Sweep outside the flag lock so a slow sweep
                        // never delays shutdown notification handling.
                        drop(stopped);
                        store.sweep();
                        stopped = lock.lock().expect("sweeper poisoned");
                    }
                }
            })
        });

        let ctx = ServiceContext {
            workers: cfg.workers,
            max_datasets: cfg.max_datasets,
            max_connections: cfg.max_connections,
            read_timeout: cfg.read_timeout,
            state_dir: cfg.state_dir.is_some(),
            started_at: std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .map(|d| d.as_secs())
                .unwrap_or(0),
            started: Instant::now(),
            metrics: Arc::clone(&metrics),
            registry: Arc::clone(&registry),
            eps_budget: cfg.eps_budget,
            max_queue: cfg.max_queue,
        };
        if log_enabled(LogLevel::Info) {
            log_event(
                LogLevel::Info,
                "server listening",
                &[
                    ("addr", Json::from(addr.to_string())),
                    ("workers", Json::from(cfg.workers)),
                    ("max_connections", Json::from(cfg.max_connections)),
                    ("state_dir", Json::from(ctx.state_dir)),
                    ("tenants", Json::from(registry.len())),
                ],
            );
        }

        // The executor pool is sized from the machine, not from
        // `workers` (which counts async job-queue threads and is 0 in
        // some tests): even a job-worker-less server must answer
        // synchronous verbs.
        let executor_threads =
            std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1).clamp(2, 4);
        let reactor_cfg = ReactorConfig {
            max_connections: cfg.max_connections.max(1),
            read_timeout: cfg.read_timeout,
            drain_window: cfg.drain_window,
            executor_threads,
            max_request_bytes: MAX_REQUEST_BYTES,
        };
        let handler = make_dispatch(jobs.clone(), store, ctx);
        let (reactor, waker) =
            Reactor::new(listener, reactor_cfg, Arc::clone(&metrics), handler, Arc::clone(&stop))
                .map_err(|e| std::io::Error::new(e.kind(), format!("reactor setup: {e}")))?;
        let reactor_thread = Some(std::thread::spawn(move || reactor.run()));

        Ok(Server {
            addr,
            stop,
            jobs,
            waker,
            reactor_thread,
            job_threads,
            sweep_state,
            sweep_thread,
        })
    }

    /// The bound address (useful with port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops accepting, drains in-flight requests (bounded by the
    /// configured drain window), drains queued jobs, joins all threads.
    /// Returns even if clients are still connected.
    pub fn shutdown(mut self) {
        self.stop.store(true, Ordering::SeqCst);
        // The reactor notices the flag on its next wakeup, closes the
        // listener, and drains; joining it bounds on the drain window.
        self.waker.wake();
        if let Some(h) = self.reactor_thread.take() {
            let _ = h.join();
        }
        self.jobs.shutdown();
        for h in self.job_threads.drain(..) {
            let _ = h.join();
        }
        let (lock, cvar) = &*self.sweep_state;
        // Recover from poisoning rather than panic: shutdown must always
        // reach the sweeper, and the flag is a plain bool.
        *lock.lock().unwrap_or_else(std::sync::PoisonError::into_inner) = true;
        cvar.notify_all();
        if let Some(h) = self.sweep_thread.take() {
            let _ = h.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::Client;
    use crate::json::Json;
    use std::io::{BufRead, BufReader, Read, Write};
    use std::net::TcpStream;

    #[test]
    fn health_roundtrip_and_shutdown() {
        let server = Server::start(ServerConfig::default()).unwrap();
        let mut client = Client::connect(server.local_addr()).unwrap();
        let r = client.request_line(r#"{"cmd":"health"}"#).unwrap();
        assert_eq!(r.get("ok"), Some(&Json::Bool(true)));
        assert_eq!(r.get("status").and_then(Json::as_str), Some("healthy"));
        drop(client);
        server.shutdown();
    }

    #[test]
    fn malformed_lines_get_error_responses_and_connection_survives() {
        let server = Server::start(ServerConfig::default()).unwrap();
        let mut client = Client::connect(server.local_addr()).unwrap();
        let r = client.request_line("this is not json").unwrap();
        assert_eq!(r.get("ok"), Some(&Json::Bool(false)));
        // Same connection still works afterwards.
        let r = client.request_line(r#"{"cmd":"health"}"#).unwrap();
        assert_eq!(r.get("ok"), Some(&Json::Bool(true)));
        drop(client);
        server.shutdown();
    }

    #[test]
    fn blank_lines_count_toward_bytes_in() {
        // Regression: blank request lines used to `continue` before the
        // bytes_in increment, so their bytes never reached the metrics
        // registry. Every consumed line must count.
        let server = Server::start(ServerConfig::default()).unwrap();
        // Raw socket: the typed client refuses multi-line sends.
        let mut stream = TcpStream::connect(server.local_addr()).unwrap();
        let blank_then_metrics = "\n  \n{\"cmd\":\"metrics\"}";
        stream.write_all(blank_then_metrics.as_bytes()).unwrap();
        stream.write_all(b"\n").unwrap();
        stream.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
        let mut reader = BufReader::new(stream);
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        let r = crate::json::parse(line.trim()).unwrap();
        assert_eq!(r.get("ok"), Some(&Json::Bool(true)));
        let bytes_in = r
            .get("bytes")
            .and_then(|b| b.get("in"))
            .and_then(Json::as_u64)
            .expect("metrics body has bytes.in");
        // The request line itself is counted when it is extracted,
        // before dispatch snapshots the registry, so the total is
        // exact: both blank lines and the metrics line, newlines
        // included.
        assert_eq!(bytes_in, blank_then_metrics.len() as u64 + 1);
        drop(reader);
        server.shutdown();
    }

    #[test]
    fn connections_past_the_cap_are_shed_with_overloaded() {
        let server =
            Server::start(ServerConfig { max_connections: 1, ..ServerConfig::default() }).unwrap();
        let addr = server.local_addr();
        // A request proves the first connection is admitted, not racing
        // the accept.
        let mut held = Client::connect(addr).unwrap();
        assert!(held.request_line(r#"{"cmd":"health"}"#).is_ok());
        // The second connection is answered with one v1 overloaded
        // error line and closed — without the client sending anything.
        let shed = TcpStream::connect(addr).unwrap();
        shed.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
        let mut line = String::new();
        let mut reader = BufReader::new(shed);
        reader.read_line(&mut line).unwrap();
        let body = crate::json::parse(line.trim()).unwrap();
        assert_eq!(body.get("ok"), Some(&Json::Bool(false)));
        // Framing-level errors are v1-shaped (no envelope was ever
        // received), so the stable code travels in the message; the
        // counter below pins the classification.
        let msg = body.get("error").and_then(Json::as_str).unwrap_or_default();
        assert!(msg.contains("maximum number of connections"), "{msg}");
        // And EOF follows: the shed socket was dropped server-side.
        let mut rest = String::new();
        assert_eq!(reader.read_to_string(&mut rest).unwrap(), 0);
        // Once the held connection goes away, the slot frees and a new
        // client is served (the close takes one reactor turn to land).
        drop(held);
        let deadline = Instant::now() + Duration::from_secs(10);
        loop {
            let mut c = Client::connect(addr).unwrap();
            if c.request_line(r#"{"cmd":"health"}"#)
                .is_ok_and(|r| r.get("ok") == Some(&Json::Bool(true)))
            {
                // This client holds the only slot, so the registry is
                // reachable: the shed above was counted and classified.
                // At-least rather than exactly one: a retry connect in
                // this very loop can race the reaping of the dropped
                // held connection and be (correctly) shed too.
                let snapshot = c.metrics().unwrap();
                assert!(snapshot.connections_shed >= 1, "{}", snapshot.connections_shed);
                break;
            }
            assert!(Instant::now() < deadline, "freed slot never became usable");
            std::thread::sleep(Duration::from_millis(20));
        }
        server.shutdown();
    }

    #[test]
    fn slowloris_is_closed_at_the_read_deadline() {
        let server = Server::start(ServerConfig {
            read_timeout: Duration::from_millis(200),
            ..ServerConfig::default()
        })
        .unwrap();
        let addr = server.local_addr();
        // Start a request line and then go silent.
        let mut slow = TcpStream::connect(addr).unwrap();
        slow.write_all(br#"{"cmd":"#).unwrap();
        slow.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
        let mut reader = BufReader::new(slow.try_clone().unwrap());
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        let body = crate::json::parse(line.trim()).unwrap();
        assert_eq!(body.get("ok"), Some(&Json::Bool(false)));
        let msg = body.get("error").and_then(Json::as_str).unwrap_or_default();
        assert!(msg.contains("read timed out"), "{msg}");
        // EOF after the error: the connection was closed, not left
        // holding a slot.
        let mut rest = String::new();
        assert_eq!(reader.read_to_string(&mut rest).unwrap(), 0);
        // The close is visible in the metrics registry.
        let mut client = Client::connect(addr).unwrap();
        let snapshot = client.metrics().unwrap();
        assert_eq!(snapshot.deadline_closes, 1);
        drop(client);
        server.shutdown();
    }

    #[test]
    fn idle_connections_outlive_the_read_deadline() {
        // The deadline applies to *partial* lines only: a connection
        // sitting idle between requests must not be killed.
        let server = Server::start(ServerConfig {
            read_timeout: Duration::from_millis(100),
            ..ServerConfig::default()
        })
        .unwrap();
        let mut client = Client::connect(server.local_addr()).unwrap();
        assert!(client.request_line(r#"{"cmd":"health"}"#).is_ok());
        std::thread::sleep(Duration::from_millis(300));
        // Still alive and serving after 3× the deadline of idleness.
        assert!(client.request_line(r#"{"cmd":"health"}"#).is_ok());
        drop(client);
        server.shutdown();
    }

    #[test]
    fn storm_of_clients_beyond_the_old_thread_cap_all_complete() {
        // The old design capped concurrency at max_connections threads
        // (default 32). The reactor serves far more concurrent sockets
        // than that from one thread; every client must get an answer.
        let server = Server::start(ServerConfig::default()).unwrap();
        let addr = server.local_addr();
        let clients: Vec<_> = (0..64)
            .map(|_| {
                std::thread::spawn(move || {
                    let mut c = Client::connect(addr)?;
                    c.request_line(r#"{"cmd":"health"}"#)
                        .map_err(|e| std::io::Error::other(e.message))
                })
            })
            .collect();
        let mut ok = 0usize;
        for handle in clients {
            let r = handle.join().expect("client thread panicked").expect("client failed");
            assert_eq!(r.get("ok"), Some(&Json::Bool(true)));
            ok += 1;
        }
        assert_eq!(ok, 64);
        server.shutdown();
    }

    #[test]
    fn request_in_flight_at_shutdown_is_answered_during_drain() {
        let server = Server::start(ServerConfig::default()).unwrap();
        let addr = server.local_addr();
        let mut stream = TcpStream::connect(addr).unwrap();
        // The request is fully sent (possibly still in the kernel
        // buffer) when shutdown fires; the drain window guarantees it
        // is read, executed, and answered before shutdown returns.
        stream.write_all(b"{\"cmd\":\"health\"}\n").unwrap();
        std::thread::sleep(Duration::from_millis(50));
        server.shutdown();
        stream.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        let mut reader = BufReader::new(stream);
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        let body = crate::json::parse(line.trim()).unwrap();
        assert_eq!(body.get("ok"), Some(&Json::Bool(true)));
        assert_eq!(body.get("status").and_then(Json::as_str), Some("healthy"));
    }

    #[test]
    fn shutdown_returns_with_idle_client_still_connected() {
        let server = Server::start(ServerConfig::default()).unwrap();
        let mut client = Client::connect(server.local_addr()).unwrap();
        assert!(client.request_line(r#"{"cmd":"health"}"#).is_ok());
        // Client stays connected and idle; shutdown must not hang.
        let done = std::sync::Arc::new(AtomicBool::new(false));
        let flag = Arc::clone(&done);
        let t = std::thread::spawn(move || {
            server.shutdown();
            flag.store(true, Ordering::SeqCst);
        });
        let deadline = std::time::Instant::now() + Duration::from_secs(10);
        while !done.load(Ordering::SeqCst) {
            assert!(
                std::time::Instant::now() < deadline,
                "shutdown hung with an idle connection open"
            );
            std::thread::sleep(Duration::from_millis(20));
        }
        t.join().unwrap();
        // The client's next request fails cleanly instead of hanging.
        assert!(client.request_line(r#"{"cmd":"health"}"#).is_err());
    }

    #[test]
    fn shutdown_returns_when_connections_are_saturated() {
        let server =
            Server::start(ServerConfig { max_connections: 1, ..ServerConfig::default() }).unwrap();
        let addr = server.local_addr();
        // Saturate the cap with one idle connection, plus a second
        // socket the server shed.
        let mut held = Client::connect(addr).unwrap();
        assert!(held.request_line(r#"{"cmd":"health"}"#).is_ok());
        let _shed = TcpStream::connect(addr).unwrap();
        std::thread::sleep(Duration::from_millis(50));
        let done = Arc::new(AtomicBool::new(false));
        let flag = Arc::clone(&done);
        let t = std::thread::spawn(move || {
            server.shutdown();
            flag.store(true, Ordering::SeqCst);
        });
        let deadline = std::time::Instant::now() + Duration::from_secs(10);
        while !done.load(Ordering::SeqCst) {
            assert!(
                std::time::Instant::now() < deadline,
                "shutdown hung with a saturated connection cap"
            );
            std::thread::sleep(Duration::from_millis(20));
        }
        t.join().unwrap();
    }
}

//! The TCP service: accept loop, bounded connection pool, dispatch,
//! graceful shutdown.
//!
//! Each accepted connection is handled by its own thread speaking the
//! JSON-lines protocol until the peer closes. A counting semaphore
//! bounds concurrent connections: when `max_connections` handlers are
//! live the accept loop blocks before accepting more, so overload
//! back-pressures into the TCP backlog instead of unbounded threads.
//!
//! Shutdown is cooperative and cannot deadlock on live connections:
//! [`Server::shutdown`] sets a flag, pokes the listener with a loopback
//! connection to unblock `accept`, half-closes every registered
//! connection socket to unblock handler reads, drains the job queue
//! workers, and joins every thread before returning. The semaphore wait
//! in the accept loop re-checks the flag periodically so a cap-saturated
//! server still shuts down.

use crate::api::{self, ApiError, Response};
use crate::jobs::JobQueue;
use crate::json::Json;
use crate::obs::{log_enabled, log_event, LogLevel, Metrics};
use crate::protocol::{self, Request};
use crate::store::{DatasetStore, StoreConfig, MAX_STORED_DATASETS};
use std::collections::HashMap;
use std::io::{BufRead, BufReader, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Server tuning knobs.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address, e.g. `127.0.0.1:0` (port 0 picks a free port).
    pub addr: String,
    /// Worker threads draining the async job queue. `0` starts none,
    /// leaving async jobs queued indefinitely — only useful to tests
    /// that need a job frozen in `queued`; the CLI rejects it.
    pub workers: usize,
    /// Maximum concurrently served connections.
    pub max_connections: usize,
    /// Durable-state directory (CLI `--state-dir`). When set, the job
    /// table is journaled to `<dir>/jobs.jsonl` (compacted at startup
    /// and after enough finish events) and committed datasets are
    /// mirrored under `<dir>/datasets/`; a restarted server replays
    /// both, re-queueing jobs that were in flight and answering
    /// `status`/`download` for work finished before the restart.
    pub state_dir: Option<PathBuf>,
    /// Dataset-store capacity (CLI `--max-datasets`): pending +
    /// committed handles held at once. When full, the LRU unpinned
    /// committed handle is evicted to make room.
    pub max_datasets: usize,
    /// Evict committed datasets untouched for this long (CLI
    /// `--dataset-ttl`); `None` keeps them until deleted or
    /// LRU-evicted. A background sweeper enforces the TTL even on an
    /// idle store.
    pub dataset_ttl: Option<Duration>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:0".to_string(),
            workers: 2,
            max_connections: 32,
            state_dir: None,
            max_datasets: MAX_STORED_DATASETS,
            dataset_ttl: None,
        }
    }
}

/// A counting semaphore (std has none until `Semaphore` stabilizes).
struct Semaphore {
    permits: Mutex<usize>,
    cvar: Condvar,
}

impl Semaphore {
    fn new(permits: usize) -> Self {
        Self { permits: Mutex::new(permits), cvar: Condvar::new() }
    }

    /// Takes a permit, or returns `false` if `stop` is raised while
    /// waiting (re-checked every 100 ms so shutdown is never blocked by
    /// a saturated pool).
    fn acquire_unless_stopped(&self, stop: &AtomicBool) -> bool {
        let mut p = self.permits.lock().expect("semaphore poisoned");
        loop {
            if stop.load(Ordering::SeqCst) {
                return false;
            }
            if *p > 0 {
                *p -= 1;
                return true;
            }
            let (guard, _timeout) =
                self.cvar.wait_timeout(p, Duration::from_millis(100)).expect("semaphore poisoned");
            p = guard;
        }
    }

    fn release(&self) {
        *self.permits.lock().expect("semaphore poisoned") += 1;
        self.cvar.notify_one();
    }
}

/// Registry of live connection sockets so shutdown can unblock their
/// reader threads with `TcpStream::shutdown`.
#[derive(Clone, Default)]
struct Connections {
    inner: Arc<Mutex<HashMap<u64, TcpStream>>>,
}

impl Connections {
    fn register(&self, id: u64, stream: &TcpStream) {
        if let Ok(clone) = stream.try_clone() {
            self.inner.lock().expect("registry poisoned").insert(id, clone);
        }
    }

    fn deregister(&self, id: u64) {
        self.inner.lock().expect("registry poisoned").remove(&id);
    }

    fn shutdown_all(&self) {
        for stream in self.inner.lock().expect("registry poisoned").values() {
            let _ = stream.shutdown(Shutdown::Both);
        }
    }
}

/// A running anonymization service.
pub struct Server {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    jobs: JobQueue,
    connections: Connections,
    accept_thread: Option<JoinHandle<()>>,
    job_threads: Vec<JoinHandle<()>>,
    sweep_thread: Option<JoinHandle<()>>,
}

/// Per-server context shared by every connection handler: the static
/// facts the `info` verb reports plus the observability registry the
/// `metrics` verb snapshots.
#[derive(Clone)]
struct ServiceContext {
    /// Job-queue worker threads.
    workers: usize,
    /// Configured dataset-store capacity (`--max-datasets`).
    max_datasets: usize,
    /// Whether a durable `--state-dir` is configured.
    state_dir: bool,
    /// Unix epoch seconds at server start, for `info.started_at`.
    started_at: u64,
    /// Monotonic start instant, for `info.uptime_secs`.
    started: Instant,
    /// Shared observability registry (also wired into the store and
    /// the job queue).
    metrics: Arc<Metrics>,
}

/// Dispatches one parsed request to its handler. Dataset handles are
/// resolved here, before any job is enqueued, so queued work owns its
/// data and cannot be changed by later store mutations.
fn dispatch(
    req: Request,
    jobs: &JobQueue,
    store: &DatasetStore,
    ctx: &ServiceContext,
    cid: Option<String>,
) -> Result<Response, ApiError> {
    match req {
        Request::Health => Ok(Response::Health {
            outstanding_jobs: jobs.outstanding(),
            stored_datasets: store.count(),
        }),
        Request::Info => Ok(Response::Info {
            workers: ctx.workers,
            max_datasets: ctx.max_datasets,
            uptime_secs: ctx.started.elapsed().as_secs(),
            started_at: ctx.started_at,
            state_dir: ctx.state_dir,
        }),
        Request::Metrics => Ok(Response::Metrics { snapshot: ctx.metrics.snapshot() }),
        Request::Gen { size, len, seed, store_result } => {
            let response = protocol::run_gen(size, len, seed);
            if store_result {
                protocol::store_result(response, store, false)
            } else {
                Ok(response)
            }
        }
        Request::Anonymize { params, asynchronous } => {
            let spec = params.resolve(store)?;
            if asynchronous {
                // The envelope id rides along as the job's correlation
                // id, so logs emitted by the worker thread can be tied
                // back to the submitting request.
                jobs.submit_with_cid(spec, cid).map(|job| Response::Submitted { job })
            } else {
                let response = protocol::run_anonymize(&spec)?;
                if spec.store_result {
                    // Synchronous results are acknowledged inline, not
                    // via the journal — never orphan-reconciled.
                    protocol::store_result(response, store, false)
                } else {
                    Ok(response)
                }
            }
        }
        Request::Evaluate { original, anonymized } => {
            let original = original.resolve_shared(store)?;
            let anonymized = anonymized.resolve_shared(store)?;
            protocol::run_evaluate(&original, &anonymized)
        }
        Request::Stats { data } => protocol::run_stats(&data.resolve_shared(store)?),
        Request::Status { job } => jobs.status_response(&job),
        Request::Upload => protocol::run_upload(store),
        Request::Chunk { dataset, data } => protocol::run_chunk(store, &dataset, &data),
        Request::Commit { dataset } => protocol::run_commit(store, &dataset),
        Request::Download { dataset, offset, max_bytes } => {
            protocol::run_download(store, &dataset, offset, max_bytes)
        }
        Request::Delete { dataset } => protocol::run_delete(store, &dataset),
        Request::List => Ok(Response::List { jobs: jobs.list(), datasets: store.list() }),
    }
}

/// The wire verb of a parsed request, for the per-verb metrics bucket.
/// Unparseable or unknown-verb lines land in the `"invalid"` bucket.
fn verb_name(req: &Request) -> &'static str {
    match req {
        Request::Health => "health",
        Request::Info => "info",
        Request::Metrics => "metrics",
        Request::Gen { .. } => "gen",
        Request::Anonymize { .. } => "anonymize",
        Request::Evaluate { .. } => "evaluate",
        Request::Stats { .. } => "stats",
        Request::Status { .. } => "status",
        Request::Upload => "upload",
        Request::Chunk { .. } => "chunk",
        Request::Commit { .. } => "commit",
        Request::Download { .. } => "download",
        Request::Delete { .. } => "delete",
        Request::List => "list",
    }
}

/// Hard cap on one request line. Datasets travel inline as CSV inside
/// the JSON, so lines are large but bounded; past this the connection
/// is served an error and closed instead of buffering without limit.
pub const MAX_REQUEST_BYTES: usize = 256 * 1024 * 1024;

/// Reads one `\n`-terminated line of at most `max` content bytes (the
/// terminator not counted). Returns `Ok(None)` on clean EOF and `Err`
/// on I/O failure or an oversized line (which poisons the framing — the
/// caller must drop the connection).
///
/// The bound is exact. The previous version only checked after
/// consuming a newline-free chunk, so a line whose terminator fell
/// within the *next* buffered chunk was accepted up to one `BufReader`
/// chunk past the limit.
fn read_line_bounded<R: BufRead>(reader: &mut R, max: usize) -> std::io::Result<Option<String>> {
    // `FileTooLarge` is the classification marker `framing_error`
    // keys on — the kind, not the message text, decides the wire code.
    let oversized = || {
        std::io::Error::new(std::io::ErrorKind::FileTooLarge, "request line exceeds the size limit")
    };
    let mut buf = Vec::new();
    loop {
        let chunk = reader.fill_buf()?;
        if chunk.is_empty() {
            // EOF; any partial unterminated line is discarded.
            return Ok(None);
        }
        if let Some(pos) = chunk.iter().position(|&b| b == b'\n') {
            if buf.len() + pos > max {
                return Err(oversized());
            }
            buf.extend_from_slice(&chunk[..pos]);
            reader.consume(pos + 1);
            let line = String::from_utf8(buf).map_err(|_| {
                std::io::Error::new(std::io::ErrorKind::InvalidData, "request is not UTF-8")
            })?;
            return Ok(Some(line));
        }
        // No terminator in sight: every buffered byte is line content,
        // so the bound can be enforced before accepting the chunk.
        if buf.len() + chunk.len() > max {
            return Err(oversized());
        }
        buf.extend_from_slice(chunk);
        let n = chunk.len();
        reader.consume(n);
    }
}

/// Classifies a framing-layer read failure by its [`std::io::ErrorKind`]
/// — never by message text. An oversized line
/// ([`std::io::ErrorKind::FileTooLarge`], the marker
/// [`read_line_bounded`] constructs) is the client's fault and carries
/// the payload cap's code; undecodable bytes are a bad request;
/// anything else is the transport itself failing.
fn framing_error(e: &std::io::Error) -> ApiError {
    match e.kind() {
        std::io::ErrorKind::FileTooLarge => ApiError::payload_too_large(e.to_string()),
        std::io::ErrorKind::InvalidData => ApiError::bad_request(e.to_string()),
        _ => ApiError::io(e.to_string()),
    }
}

/// Serves one connection: a loop of request line → response line.
/// Exits when the peer closes, on I/O error (including the socket being
/// shut down by [`Server::shutdown`]), on an oversized request, or when
/// `stop` is raised.
fn handle_connection(
    stream: TcpStream,
    jobs: &JobQueue,
    store: &DatasetStore,
    ctx: &ServiceContext,
    stop: &AtomicBool,
    conn_id: u64,
) {
    let mut writer = match stream.try_clone() {
        Ok(w) => w,
        Err(_) => return,
    };
    if log_enabled(LogLevel::Debug) {
        log_event(LogLevel::Debug, "connection opened", &[("conn", Json::from(conn_id))]);
    }
    let mut reader = BufReader::new(stream);
    loop {
        if stop.load(Ordering::SeqCst) {
            break;
        }
        let line = match read_line_bounded(&mut reader, MAX_REQUEST_BYTES) {
            Ok(Some(l)) => l,
            Ok(None) => break, // peer closed
            Err(e) => {
                // Tell the peer why before dropping the connection; the
                // framing is unrecoverable after an oversized line, and
                // the line was never parsed, so no envelope is known —
                // framing errors are always v1-shaped (documented in
                // PROTOCOL.md).
                let err = framing_error(&e);
                ctx.metrics.record_error(err.code);
                ctx.metrics.record_request("invalid", Duration::ZERO);
                if log_enabled(LogLevel::Warn) {
                    log_event(
                        LogLevel::Warn,
                        "framing error",
                        &[("conn", Json::from(conn_id)), ("code", Json::from(err.code.as_str()))],
                    );
                }
                let response = api::render_v1(Err(err));
                let out = format!("{response}\n");
                ctx.metrics.bytes_out.fetch_add(out.len() as u64, Ordering::Relaxed);
                let _ = writer.write_all(out.as_bytes());
                break;
            }
        };
        if line.trim().is_empty() {
            continue;
        }
        ctx.metrics.bytes_in.fetch_add(line.len() as u64 + 1, Ordering::Relaxed);
        let started = Instant::now();
        let (envelope, parsed) = protocol::parse_request_line(&line);
        let verb = match &parsed {
            Ok(req) => verb_name(req),
            Err(_) => "invalid",
        };
        let cid = envelope.id.clone();
        let result = parsed.and_then(|req| dispatch(req, jobs, store, ctx, cid.clone()));
        let code = result.as_ref().err().map(|e| e.code);
        if let Some(code) = code {
            ctx.metrics.record_error(code);
        }
        let response = api::render(&envelope, result);
        let out = format!("{response}\n");
        ctx.metrics.bytes_out.fetch_add(out.len() as u64, Ordering::Relaxed);
        let elapsed = started.elapsed();
        ctx.metrics.record_request(verb, elapsed);
        if log_enabled(LogLevel::Info) {
            let mut fields: Vec<(&str, Json)> = vec![
                ("conn", Json::from(conn_id)),
                ("cmd", Json::from(verb)),
                ("ok", Json::from(code.is_none())),
                ("elapsed_ms", Json::from(elapsed.as_secs_f64() * 1e3)),
            ];
            if let Some(code) = code {
                fields.push(("code", Json::from(code.as_str())));
            }
            if let Some(cid) = &cid {
                fields.push(("cid", Json::from(cid.clone())));
            }
            log_event(LogLevel::Info, "request", &fields);
        }
        if writer.write_all(out.as_bytes()).is_err() || writer.flush().is_err() {
            break;
        }
    }
    if log_enabled(LogLevel::Debug) {
        log_event(LogLevel::Debug, "connection closed", &[("conn", Json::from(conn_id))]);
    }
}

/// Releases the connection's permit and registry entry even if the
/// handler panics (a leaked permit would permanently shrink the pool).
struct ConnectionGuard {
    pool: Arc<Semaphore>,
    connections: Connections,
    conn_id: u64,
    metrics: Arc<Metrics>,
}

impl Drop for ConnectionGuard {
    fn drop(&mut self) {
        self.connections.deregister(self.conn_id);
        self.metrics.connections_active.fetch_sub(1, Ordering::Relaxed);
        self.pool.release();
    }
}

impl Server {
    /// Binds and starts serving in background threads. With a
    /// `state_dir`, the job journal and persisted datasets are replayed
    /// first; jobs that were queued or running when the previous
    /// process died go straight back into the queue, so the new
    /// workers complete them without any client action.
    pub fn start(cfg: ServerConfig) -> std::io::Result<Server> {
        let listener = TcpListener::bind(&cfg.addr)?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        // One registry for the whole instance, attached to the store
        // and the job queue before any clone is handed out.
        let metrics = Arc::new(Metrics::new());
        let store = DatasetStore::with_config(StoreConfig {
            dir: cfg.state_dir.as_ref().map(|d| d.join("datasets")),
            capacity: cfg.max_datasets,
            ttl: cfg.dataset_ttl,
            ..StoreConfig::default()
        })?
        .with_metrics(Arc::clone(&metrics));
        let jobs = match &cfg.state_dir {
            Some(dir) => JobQueue::with_journal(store.clone(), &dir.join("jobs.jsonl"))
                .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))?,
            None => JobQueue::with_store(store.clone()),
        }
        .with_metrics(Arc::clone(&metrics));
        let connections = Connections::default();

        let job_threads: Vec<JoinHandle<()>> = (0..cfg.workers)
            .map(|_| {
                let q = jobs.clone();
                std::thread::spawn(move || q.work())
            })
            .collect();

        // Stale datasets and abandoned uploads must expire even when no
        // upload pressure triggers the implicit sweep — unconditionally:
        // the abandoned-upload TTL is always configured, so a crashed
        // uploader must not hold a multi-GB pending buffer on an
        // otherwise idle server just because --dataset-ttl is unset.
        let sweep_thread = Some({
            let store = store.clone();
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut ticks = 0u32;
                while !stop.load(Ordering::SeqCst) {
                    std::thread::sleep(Duration::from_millis(100));
                    ticks += 1;
                    if ticks.is_multiple_of(10) {
                        store.sweep();
                    }
                }
            })
        });

        let ctx = ServiceContext {
            workers: cfg.workers,
            max_datasets: cfg.max_datasets,
            state_dir: cfg.state_dir.is_some(),
            started_at: std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .map(|d| d.as_secs())
                .unwrap_or(0),
            started: Instant::now(),
            metrics: Arc::clone(&metrics),
        };
        if log_enabled(LogLevel::Info) {
            log_event(
                LogLevel::Info,
                "server listening",
                &[
                    ("addr", Json::from(addr.to_string())),
                    ("workers", Json::from(cfg.workers)),
                    ("state_dir", Json::from(ctx.state_dir)),
                ],
            );
        }
        let accept_thread = {
            let stop = Arc::clone(&stop);
            let jobs = jobs.clone();
            let store = store.clone();
            let connections = connections.clone();
            let pool = Arc::new(Semaphore::new(cfg.max_connections.max(1)));
            std::thread::spawn(move || {
                let mut handlers: Vec<JoinHandle<()>> = Vec::new();
                let mut next_conn_id = 0u64;
                for stream in listener.incoming() {
                    if stop.load(Ordering::SeqCst) {
                        break;
                    }
                    let stream = match stream {
                        Ok(s) => s,
                        Err(_) => continue,
                    };
                    if !pool.acquire_unless_stopped(&stop) {
                        break;
                    }
                    let conn_id = next_conn_id;
                    next_conn_id += 1;
                    connections.register(conn_id, &stream);
                    // Re-check stop *after* registering: shutdown_all()
                    // may have run between the accept and the register,
                    // in which case this socket was never half-closed
                    // and its handler would block forever. The registry
                    // mutex orders register against shutdown_all, so
                    // one of the two paths always closes the socket.
                    if stop.load(Ordering::SeqCst) {
                        let _ = stream.shutdown(Shutdown::Both);
                        connections.deregister(conn_id);
                        pool.release();
                        break;
                    }
                    let jobs = jobs.clone();
                    let store = store.clone();
                    let stop = Arc::clone(&stop);
                    let ctx = ctx.clone();
                    ctx.metrics.connections_total.fetch_add(1, Ordering::Relaxed);
                    ctx.metrics.connections_active.fetch_add(1, Ordering::Relaxed);
                    let guard = ConnectionGuard {
                        pool: Arc::clone(&pool),
                        connections: connections.clone(),
                        conn_id,
                        metrics: Arc::clone(&ctx.metrics),
                    };
                    handlers.push(std::thread::spawn(move || {
                        // Guard releases the permit even on panic.
                        let _guard = guard;
                        handle_connection(stream, &jobs, &store, &ctx, &stop, conn_id);
                    }));
                    // Reap finished handlers so the vec stays small.
                    handlers.retain(|h| !h.is_finished());
                }
                for h in handlers {
                    let _ = h.join();
                }
            })
        };

        Ok(Server {
            addr,
            stop,
            jobs,
            connections,
            accept_thread: Some(accept_thread),
            job_threads,
            sweep_thread,
        })
    }

    /// The bound address (useful with port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops accepting, unblocks live connections, drains queued jobs,
    /// joins all threads. Returns even if clients are still connected.
    pub fn shutdown(mut self) {
        self.stop.store(true, Ordering::SeqCst);
        // Unblock the accept loop with a throwaway connection, and the
        // handler threads by half-closing their sockets.
        let _ = TcpStream::connect(self.addr);
        self.connections.shutdown_all();
        if let Some(h) = self.accept_thread.take() {
            let _ = h.join();
        }
        self.jobs.shutdown();
        for h in self.job_threads.drain(..) {
            let _ = h.join();
        }
        if let Some(h) = self.sweep_thread.take() {
            let _ = h.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::Client;
    use crate::json::Json;

    /// Drives `read_line_bounded` with a tiny `BufReader` capacity so
    /// lines terminate across chunk boundaries, the exact shape of the
    /// old off-by-one-chunk bug.
    fn read_bounded(input: &str, capacity: usize, max: usize) -> std::io::Result<Option<String>> {
        let mut reader = BufReader::with_capacity(capacity, std::io::Cursor::new(input.as_bytes()));
        read_line_bounded(&mut reader, max)
    }

    #[test]
    fn read_line_bound_is_exact_at_the_limit() {
        // Content of exactly `max` bytes passes; one more fails —
        // regardless of where the BufReader chunk boundaries fall.
        for capacity in [1, 2, 3, 5, 8, 64] {
            let at = read_bounded("aaaaaaaa\nrest", capacity, 8).unwrap();
            assert_eq!(at.as_deref(), Some("aaaaaaaa"), "capacity {capacity}");
            let over = read_bounded("aaaaaaaaa\nrest", capacity, 8);
            assert!(over.is_err(), "capacity {capacity}: 9 bytes must exceed max 8");
        }
    }

    #[test]
    fn read_line_bound_rejects_line_terminating_in_next_chunk() {
        // Regression: with capacity 8 the whole "aaaaa\n" arrives in one
        // chunk, so the old code saw the newline first and skipped the
        // size check entirely, accepting 5 > max = 4.
        assert!(read_bounded("aaaaa\n", 8, 4).is_err());
        // And the buffered variant: 3-byte chunks, terminator in the
        // second chunk; 5 content bytes > max 4 must still fail.
        assert!(read_bounded("aaa", 3, 4).unwrap().is_none()); // EOF discard, sanity
        assert!(read_bounded("aaaaa\n", 3, 4).is_err());
        assert_eq!(read_bounded("aaaa\n", 3, 4).unwrap().as_deref(), Some("aaaa"));
    }

    #[test]
    fn framing_errors_carry_the_documented_codes() {
        use crate::api::ErrorCode;
        // The oversized-line error produced by read_line_bounded maps
        // to payload-too-large — over the wire this needs a line past
        // MAX_REQUEST_BYTES (256 MiB), so the mapping is pinned here.
        let oversized = read_bounded("aaaaa\n", 8, 4).unwrap_err();
        assert_eq!(framing_error(&oversized).code, ErrorCode::PayloadTooLarge);
        assert_eq!(framing_error(&oversized).message, "request line exceeds the size limit");
        let not_utf8 = std::io::Error::new(std::io::ErrorKind::InvalidData, "request is not UTF-8");
        assert_eq!(framing_error(&not_utf8).code, ErrorCode::BadRequest);
        let broken = std::io::Error::new(std::io::ErrorKind::ConnectionReset, "reset");
        assert_eq!(framing_error(&broken).code, ErrorCode::Io);
        // And the v1 message is byte-identical to the pre-redesign
        // shape (the error string was the io::Error text verbatim).
        assert_eq!(
            api::render_v1(Err(framing_error(&oversized))).to_string(),
            r#"{"error":"request line exceeds the size limit","ok":false}"#
        );
    }

    #[test]
    fn health_roundtrip_and_shutdown() {
        let server = Server::start(ServerConfig::default()).unwrap();
        let mut client = Client::connect(server.local_addr()).unwrap();
        let r = client.request_line(r#"{"cmd":"health"}"#).unwrap();
        assert_eq!(r.get("ok"), Some(&Json::Bool(true)));
        assert_eq!(r.get("status").and_then(Json::as_str), Some("healthy"));
        drop(client);
        server.shutdown();
    }

    #[test]
    fn malformed_lines_get_error_responses_and_connection_survives() {
        let server = Server::start(ServerConfig::default()).unwrap();
        let mut client = Client::connect(server.local_addr()).unwrap();
        let r = client.request_line("this is not json").unwrap();
        assert_eq!(r.get("ok"), Some(&Json::Bool(false)));
        // Same connection still works afterwards.
        let r = client.request_line(r#"{"cmd":"health"}"#).unwrap();
        assert_eq!(r.get("ok"), Some(&Json::Bool(true)));
        drop(client);
        server.shutdown();
    }

    #[test]
    fn connection_cap_blocks_but_backlog_serves_eventually() {
        let server =
            Server::start(ServerConfig { max_connections: 1, ..ServerConfig::default() }).unwrap();
        // With cap 1, a second client must still be served once the
        // first disconnects.
        let mut a = Client::connect(server.local_addr()).unwrap();
        assert!(a.request_line(r#"{"cmd":"health"}"#).is_ok());
        drop(a);
        let mut b = Client::connect(server.local_addr()).unwrap();
        assert!(b.request_line(r#"{"cmd":"health"}"#).is_ok());
        drop(b);
        server.shutdown();
    }

    #[test]
    fn shutdown_returns_with_idle_client_still_connected() {
        let server = Server::start(ServerConfig::default()).unwrap();
        let mut client = Client::connect(server.local_addr()).unwrap();
        assert!(client.request_line(r#"{"cmd":"health"}"#).is_ok());
        // Client stays connected and idle; shutdown must not hang.
        let done = std::sync::Arc::new(AtomicBool::new(false));
        let flag = Arc::clone(&done);
        let t = std::thread::spawn(move || {
            server.shutdown();
            flag.store(true, Ordering::SeqCst);
        });
        let deadline = std::time::Instant::now() + Duration::from_secs(10);
        while !done.load(Ordering::SeqCst) {
            assert!(
                std::time::Instant::now() < deadline,
                "shutdown hung with an idle connection open"
            );
            std::thread::sleep(Duration::from_millis(20));
        }
        t.join().unwrap();
        // The client's next request fails cleanly instead of hanging.
        assert!(client.request_line(r#"{"cmd":"health"}"#).is_err());
    }

    #[test]
    fn shutdown_returns_when_pool_is_saturated() {
        let server =
            Server::start(ServerConfig { max_connections: 1, ..ServerConfig::default() }).unwrap();
        let addr = server.local_addr();
        // Saturate the pool with one idle connection and queue a second
        // (blocked in the semaphore wait inside the accept loop).
        let _held = Client::connect(addr).unwrap();
        std::thread::sleep(Duration::from_millis(50));
        let _queued = TcpStream::connect(addr).unwrap();
        std::thread::sleep(Duration::from_millis(50));
        let done = Arc::new(AtomicBool::new(false));
        let flag = Arc::clone(&done);
        let t = std::thread::spawn(move || {
            server.shutdown();
            flag.store(true, Ordering::SeqCst);
        });
        let deadline = std::time::Instant::now() + Duration::from_secs(10);
        while !done.load(Ordering::SeqCst) {
            assert!(
                std::time::Instant::now() < deadline,
                "shutdown hung with a saturated connection pool"
            );
            std::thread::sleep(Duration::from_millis(20));
        }
        t.join().unwrap();
    }
}

//! The typed API surface of the service: stable error codes, the
//! response model, and the versioned wire envelope.
//!
//! Before this module existed the wire was stringly typed: every
//! failure was a bare `{"error": "<free text>"}` and every success an
//! ad-hoc JSON object assembled inside its handler, so clients had to
//! grep substrings to tell outcomes apart. This module is the single
//! place where outcomes are *represented* ([`Response`], [`ApiError`])
//! and *serialized* ([`render`]), for both protocol versions:
//!
//! * **v1** (version-less requests) keeps the exact historical shapes:
//!   `{"ok":true, ...fields}` on success and
//!   `{"ok":false,"error":"<message>"}` on failure — byte-identical to
//!   what the server produced before error codes existed, so old
//!   clients and scripts keep working unchanged.
//! * **v2** (requests carrying `"v":2`) adds the machine-readable
//!   envelope: successes are `{"ok":true,"id"?,...fields}` and failures
//!   `{"ok":false,"id"?,"error":{"code":"<stable-code>","message":...}}`,
//!   with the request's opaque `"id"` echoed for correlation.
//!
//! Error codes are a **compatibility contract**: once shipped, a code's
//! meaning never changes and codes are never removed (new ones may be
//! added). Clients must match on `code`, never on message text —
//! messages are for humans and may be reworded freely.

use crate::json::Json;
use std::collections::BTreeMap;
use std::fmt;
use std::sync::Arc;

/// Stable, machine-readable error codes. The kebab-case wire form of
/// each code is given by [`ErrorCode::as_str`]; [`ErrorCode::parse`] is
/// its inverse (used by clients).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ErrorCode {
    /// The request is malformed: unparseable JSON, a missing or
    /// mistyped member, an unknown member, or a value outside its
    /// documented bounds.
    BadRequest,
    /// The `cmd` member names no known verb.
    UnknownVerb,
    /// A size cap was exceeded: the request line is over the framing
    /// limit, or a dataset would exceed the per-dataset byte cap.
    PayloadTooLarge,
    /// The request was well-formed but its dataset content is not
    /// (CSV that does not parse, or mismatched trajectory counts).
    InvalidDataset,
    /// The named dataset handle does not exist (never did, was deleted,
    /// or was evicted).
    DatasetNotFound,
    /// The handle exists but is in the wrong lifecycle state for the
    /// verb: chunking or re-committing a committed handle, using or
    /// downloading an uncommitted one, or touching one mid-commit.
    DatasetState,
    /// The handle is pinned by a queued or running job; `delete` is
    /// rejected until the job finishes.
    DatasetInUse,
    /// The store holds its capacity in handles and nothing is
    /// evictable; delete a dataset or commit/abandon pending uploads.
    StoreFull,
    /// The named job id is unknown (never existed, or its finished
    /// record aged out of the retention window).
    JobNotFound,
    /// The server is shutting down and no longer accepts work.
    ShuttingDown,
    /// The server is at its configured connection capacity
    /// (`--max-conn`) and shed this connection instead of queueing it.
    /// Back off and retry; existing connections are unaffected.
    Overloaded,
    /// An I/O operation the request needed failed server-side: a disk
    /// write its durability contract requires (journal append, dataset
    /// persist), or the connection failing mid-request at the framing
    /// layer.
    Io,
    /// The pipeline itself failed: an executor error or a panicking
    /// job. These indicate a server-side bug or resource problem, not
    /// a request the client could fix.
    Internal,
    /// The request named a tenant the server's registry does not know,
    /// or presented a token that does not match the registered one.
    /// Sent only when `serve --tenants` is in effect; tenant-less
    /// requests always map to the built-in default tenant instead.
    TenantUnknown,
    /// The authenticated tenant is at one of its registered caps —
    /// dataset handles, stored bytes, or concurrent job slots. Free a
    /// resource (delete a dataset, wait for a job) and retry.
    QuotaExceeded,
    /// The job's epsilon spend would push its source dataset past the
    /// dataset's privacy budget. The budget is cumulative and durable:
    /// it does not reset on restart, and no retry will succeed until
    /// the budget itself is raised (or the dataset re-uploaded as a
    /// fresh handle, which is a deliberate act of re-release).
    BudgetExhausted,
    /// Client-side only — never sent by the server. The exchange
    /// failed beneath or around the protocol: connect/send/receive
    /// errors, a closed connection, or a response that violates the
    /// protocol (unparseable, missing promised members, a wrong id
    /// echo). Retrying or failing over is the sane reaction to every
    /// case in this class.
    Transport,
}

/// Every code the *server* can put on the wire, in documentation
/// order ([`ErrorCode::Transport`] is client-side only).
pub const WIRE_ERROR_CODES: [ErrorCode; 16] = [
    ErrorCode::BadRequest,
    ErrorCode::UnknownVerb,
    ErrorCode::PayloadTooLarge,
    ErrorCode::InvalidDataset,
    ErrorCode::DatasetNotFound,
    ErrorCode::DatasetState,
    ErrorCode::DatasetInUse,
    ErrorCode::StoreFull,
    ErrorCode::JobNotFound,
    ErrorCode::ShuttingDown,
    ErrorCode::Overloaded,
    ErrorCode::Io,
    ErrorCode::Internal,
    ErrorCode::TenantUnknown,
    ErrorCode::QuotaExceeded,
    ErrorCode::BudgetExhausted,
];

impl ErrorCode {
    /// The stable kebab-case wire form.
    pub fn as_str(self) -> &'static str {
        match self {
            ErrorCode::BadRequest => "bad-request",
            ErrorCode::UnknownVerb => "unknown-verb",
            ErrorCode::PayloadTooLarge => "payload-too-large",
            ErrorCode::InvalidDataset => "invalid-dataset",
            ErrorCode::DatasetNotFound => "dataset-not-found",
            ErrorCode::DatasetState => "dataset-state",
            ErrorCode::DatasetInUse => "dataset-in-use",
            ErrorCode::StoreFull => "store-full",
            ErrorCode::JobNotFound => "job-not-found",
            ErrorCode::ShuttingDown => "shutting-down",
            ErrorCode::Overloaded => "overloaded",
            ErrorCode::Io => "io-error",
            ErrorCode::Internal => "internal",
            ErrorCode::TenantUnknown => "tenant-unknown",
            ErrorCode::QuotaExceeded => "quota-exceeded",
            ErrorCode::BudgetExhausted => "budget-exhausted",
            ErrorCode::Transport => "transport",
        }
    }

    /// Inverse of [`Self::as_str`] for codes a server may send.
    /// Unknown strings return `None` so a newer server's codes degrade
    /// gracefully in an older client — and so does `"transport"`,
    /// which is client-side only: a wire response claiming it must not
    /// masquerade as a connectivity failure (the CLI maps transport to
    /// a different exit code than server rejections).
    pub fn parse(s: &str) -> Option<ErrorCode> {
        WIRE_ERROR_CODES.iter().copied().find(|c| c.as_str() == s)
    }
}

impl fmt::Display for ErrorCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// A typed API failure: a stable [`ErrorCode`] for programs and a
/// human-readable message. This is the error type of every
/// request-handling path in the server and of every [`crate::Client`]
/// method.
#[derive(Debug, Clone, PartialEq)]
pub struct ApiError {
    /// The stable machine-readable class of the failure.
    pub code: ErrorCode,
    /// Human-readable detail. Not a contract: match on `code`.
    pub message: String,
}

impl ApiError {
    /// An error with an explicit code.
    pub fn new(code: ErrorCode, message: impl Into<String>) -> ApiError {
        ApiError { code, message: message.into() }
    }

    /// [`ErrorCode::BadRequest`] shorthand.
    pub fn bad_request(message: impl Into<String>) -> ApiError {
        ApiError::new(ErrorCode::BadRequest, message)
    }

    /// [`ErrorCode::UnknownVerb`] shorthand.
    pub fn unknown_verb(message: impl Into<String>) -> ApiError {
        ApiError::new(ErrorCode::UnknownVerb, message)
    }

    /// [`ErrorCode::PayloadTooLarge`] shorthand.
    pub fn payload_too_large(message: impl Into<String>) -> ApiError {
        ApiError::new(ErrorCode::PayloadTooLarge, message)
    }

    /// [`ErrorCode::InvalidDataset`] shorthand.
    pub fn invalid_dataset(message: impl Into<String>) -> ApiError {
        ApiError::new(ErrorCode::InvalidDataset, message)
    }

    /// [`ErrorCode::DatasetNotFound`] shorthand.
    pub fn dataset_not_found(message: impl Into<String>) -> ApiError {
        ApiError::new(ErrorCode::DatasetNotFound, message)
    }

    /// [`ErrorCode::DatasetState`] shorthand.
    pub fn dataset_state(message: impl Into<String>) -> ApiError {
        ApiError::new(ErrorCode::DatasetState, message)
    }

    /// [`ErrorCode::DatasetInUse`] shorthand.
    pub fn dataset_in_use(message: impl Into<String>) -> ApiError {
        ApiError::new(ErrorCode::DatasetInUse, message)
    }

    /// [`ErrorCode::StoreFull`] shorthand.
    pub fn store_full(message: impl Into<String>) -> ApiError {
        ApiError::new(ErrorCode::StoreFull, message)
    }

    /// [`ErrorCode::JobNotFound`] shorthand.
    pub fn job_not_found(message: impl Into<String>) -> ApiError {
        ApiError::new(ErrorCode::JobNotFound, message)
    }

    /// [`ErrorCode::ShuttingDown`] shorthand.
    pub fn shutting_down(message: impl Into<String>) -> ApiError {
        ApiError::new(ErrorCode::ShuttingDown, message)
    }

    /// [`ErrorCode::Overloaded`] shorthand.
    pub fn overloaded(message: impl Into<String>) -> ApiError {
        ApiError::new(ErrorCode::Overloaded, message)
    }

    /// [`ErrorCode::Io`] shorthand.
    pub fn io(message: impl Into<String>) -> ApiError {
        ApiError::new(ErrorCode::Io, message)
    }

    /// [`ErrorCode::Internal`] shorthand.
    pub fn internal(message: impl Into<String>) -> ApiError {
        ApiError::new(ErrorCode::Internal, message)
    }

    /// [`ErrorCode::TenantUnknown`] shorthand.
    pub fn tenant_unknown(message: impl Into<String>) -> ApiError {
        ApiError::new(ErrorCode::TenantUnknown, message)
    }

    /// [`ErrorCode::QuotaExceeded`] shorthand.
    pub fn quota_exceeded(message: impl Into<String>) -> ApiError {
        ApiError::new(ErrorCode::QuotaExceeded, message)
    }

    /// [`ErrorCode::BudgetExhausted`] shorthand.
    pub fn budget_exhausted(message: impl Into<String>) -> ApiError {
        ApiError::new(ErrorCode::BudgetExhausted, message)
    }

    /// [`ErrorCode::Transport`] shorthand (client-side only).
    pub fn transport(message: impl Into<String>) -> ApiError {
        ApiError::new(ErrorCode::Transport, message)
    }

    /// The same error with `prefix: ` prepended to the message — for
    /// wrapping a store/executor failure in the context of the verb
    /// that hit it, without losing the code.
    pub fn context(self, prefix: &str) -> ApiError {
        ApiError { code: self.code, message: format!("{prefix}: {}", self.message) }
    }
}

impl fmt::Display for ApiError {
    /// The bare message — v1 error responses carry exactly this, so it
    /// must not embed the code (v1 shapes are frozen).
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for ApiError {}

/// Protocol version of one request/response exchange.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProtocolVersion {
    /// The historical version-less shapes.
    V1,
    /// The enveloped shapes with error codes and id echo.
    V2,
}

/// Protocol versions this server speaks, reported by `info`.
pub const SUPPORTED_PROTOCOL_VERSIONS: [u64; 2] = [1, 2];

/// The per-request wire envelope: which response shapes to produce and
/// which correlation id (if any) to echo. Parsed from the request's
/// optional `"v"`, `"id"`, and `"tenant"` members before the verb is
/// dispatched, so even a request whose *verb* fails to validate still
/// gets the response shape it asked for.
#[derive(Debug, Clone, PartialEq)]
pub struct Envelope {
    /// The protocol version the client asked for.
    pub version: ProtocolVersion,
    /// Opaque correlation id, echoed verbatim in v2 responses.
    pub id: Option<String>,
    /// Tenant credential (`"name:token"`), v2 only. `None` — and every
    /// v1 request — maps to the built-in default tenant. Never echoed:
    /// it carries a secret.
    pub tenant: Option<String>,
}

impl Envelope {
    /// The version-less default: v1, no id, default tenant.
    pub const V1: Envelope = Envelope { version: ProtocolVersion::V1, id: None, tenant: None };
}

/// The outcome of one request, mirroring [`crate::protocol::Request`].
/// Handlers build these; [`render`] is the only place they are turned
/// into wire JSON, so a field cannot be serialized in one verb and
/// forgotten in another.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// `health` — liveness plus coarse load.
    Health {
        /// Jobs not yet finished.
        outstanding_jobs: usize,
        /// Dataset handles currently held.
        stored_datasets: usize,
    },
    /// `info` — identity, protocol versions, and the server's limits.
    Info {
        /// Job-queue worker threads.
        workers: usize,
        /// Configured dataset-store capacity (`--max-datasets`).
        max_datasets: usize,
        /// Concurrent-connection cap (`--max-conn`); accepts beyond it
        /// are shed with [`ErrorCode::Overloaded`].
        max_connections: usize,
        /// Per-connection read deadline (`--read-timeout`), seconds: a
        /// partially received request line must complete within this
        /// window or the connection is closed.
        read_timeout_secs: u64,
        /// Seconds since the server started — lets clients correlate
        /// metrics snapshots across restarts.
        uptime_secs: u64,
        /// Server start time, seconds since the Unix epoch.
        started_at: u64,
        /// Whether the server persists state (`--state-dir` given).
        state_dir: bool,
        /// Registered tenants (`--tenants`); 0 means the registry is
        /// off and every request maps to the default tenant.
        tenants: usize,
        /// The default per-dataset privacy budget (`--eps-budget`),
        /// when one is configured.
        eps_budget: Option<f64>,
    },
    /// `metrics` — a frozen snapshot of the observability registry.
    Metrics {
        /// The snapshot; its typed JSON shape is merged into the body.
        /// Boxed: a snapshot (histograms included) dwarfs every other
        /// variant, and `Response` values are moved around by value.
        snapshot: Box<crate::obs::MetricsSnapshot>,
    },
    /// `gen` — a synthetic dataset, inline or stored.
    Gen {
        /// The generated CSV, inline or behind a handle.
        data: Payload,
        /// Trajectory count.
        trajectories: u64,
        /// Total point count.
        points: u64,
        /// Distinct discretized locations.
        distinct_locations: u64,
    },
    /// Synchronous `anonymize` — the released dataset plus run stats.
    Anonymize {
        /// The released CSV, inline or behind a handle.
        data: Payload,
        /// ε actually consumed.
        epsilon_spent: f64,
        /// Total edit count.
        edits: u64,
        /// Mean per-point displacement (meters).
        utility_loss: f64,
        /// Worker threads the run used.
        workers: usize,
        /// Per-phase wall-clock of the run. Emitted in v2 only — the
        /// v1 anonymize success shape is frozen.
        timings: Option<crate::obs::PhaseTimings>,
    },
    /// Async `anonymize` — the job was accepted.
    Submitted {
        /// The assigned job id.
        job: String,
    },
    /// `evaluate` — utility metrics of a release against its original.
    Evaluate {
        /// Mutual information.
        mi: f64,
        /// Information loss.
        inf: f64,
        /// Diameter divergence.
        de: f64,
        /// Trip divergence.
        te: f64,
        /// Frequent-pattern F1.
        ffp: f64,
    },
    /// `stats` — shape statistics of a dataset.
    Stats {
        /// Trajectory count.
        trajectories: u64,
        /// Total point count.
        points: u64,
        /// Distinct discretized locations.
        distinct_locations: u64,
        /// Mean trajectory length.
        avg_traj_len: f64,
        /// Mean spatial spacing between consecutive points.
        avg_point_spacing: f64,
        /// Mean sampling period.
        avg_sampling_period: f64,
    },
    /// `status` — the state of a job, with its result once done.
    JobStatus {
        /// The job id.
        job: String,
        /// `"queued"`, `"running"`, or `"done"`.
        state: &'static str,
        /// The finished job's recorded result (a v1-shaped response
        /// body). `None` while queued/running. In v1 the result is
        /// merged into the status response (the historical shape); in
        /// v2 it nests under `"result"`.
        result: Option<Arc<Json>>,
        /// Submit → done wall-clock of a finished job, seconds.
        /// Emitted in v2 only (the v1 done-status shape is frozen);
        /// `None` while unfinished or when the job predates this
        /// server process (journal-replayed jobs carry no clock).
        duration_secs: Option<f64>,
        /// Per-phase wall-clock of a finished anonymize job. Same
        /// v2-only and in-memory-only caveats as `duration_secs`.
        timings: Option<crate::obs::PhaseTimings>,
    },
    /// `upload` — a fresh pending handle.
    Upload {
        /// The minted handle.
        dataset: String,
    },
    /// `chunk` — one piece appended.
    Chunk {
        /// The pending handle.
        dataset: String,
        /// Assembled size so far.
        bytes: usize,
    },
    /// `commit` — the handle is sealed.
    Commit {
        /// The committed handle.
        dataset: String,
        /// Final size.
        bytes: usize,
    },
    /// `download` — one bounded piece of a committed dataset.
    Download {
        /// The committed handle.
        dataset: String,
        /// Byte offset this piece starts at.
        offset: usize,
        /// The piece.
        data: String,
        /// Total size of the dataset.
        total_bytes: usize,
        /// Whether this piece reaches the end.
        eof: bool,
    },
    /// `delete` — the handle was freed.
    Delete {
        /// The freed handle.
        dataset: String,
        /// Bytes released.
        bytes: usize,
    },
    /// `list` — all jobs and dataset handles.
    List {
        /// `(id, state name)` per job, in id order.
        jobs: Vec<(String, &'static str)>,
        /// One row per handle, in id order.
        datasets: Vec<DatasetRow>,
    },
    /// `cancel` — a queued job was dequeued before running.
    Cancelled {
        /// The cancelled job id.
        job: String,
    },
}

/// One dataset row of a `list` response. The first four members are
/// the frozen v1 shape; the ledger members are v2-only additions.
#[derive(Debug, Clone, PartialEq)]
pub struct DatasetRow {
    /// The handle.
    pub dataset: String,
    /// Stored size.
    pub bytes: usize,
    /// Lifecycle state name.
    pub state: &'static str,
    /// Pin count (queued/running jobs reading it).
    pub pins: usize,
    /// Cumulative ε charged against the handle (v2 only; the v1 list
    /// shape is frozen). Counts settled *and* in-flight jobs.
    pub eps_spent: f64,
    /// The handle's effective privacy budget, when one applies
    /// (explicit per-upload budget, else the server default). v2 only.
    pub eps_budget: Option<f64>,
}

/// Where a produced dataset went: inline in the response, or kept
/// server-side behind a handle (`"store": true`).
#[derive(Debug, Clone, PartialEq)]
pub enum Payload {
    /// The CSV text travels in the response (`"csv"`).
    Inline(String),
    /// The CSV stayed in the store (`"dataset"` + `"bytes"`).
    Stored {
        /// The result handle.
        dataset: String,
        /// Its size.
        bytes: usize,
    },
}

impl Payload {
    /// Moves the payload into `obj` — the CSV text of a near-cap
    /// dataset must not be copied a second time on its way to the
    /// wire.
    fn fill(self, obj: &mut BTreeMap<String, Json>) {
        match self {
            Payload::Inline(csv) => {
                obj.insert("csv".to_string(), Json::Str(csv));
            }
            Payload::Stored { dataset, bytes } => {
                obj.insert("dataset".to_string(), Json::Str(dataset));
                obj.insert("bytes".to_string(), Json::from(bytes));
            }
        }
    }
}

impl Response {
    /// The response body — every member except `ok` and `id`, shaped
    /// for `version`. The shapes are identical across versions except
    /// for a finished job's `status`: v1 merges the recorded result
    /// into the top level (the frozen historical shape), v2 nests it
    /// under `"result"` so the envelope's members can never collide
    /// with result members. Consumes the response so bulk payloads
    /// (a multi-GB release, an 8 MiB download piece) move into the
    /// wire object instead of being copied.
    fn body(self, version: ProtocolVersion) -> BTreeMap<String, Json> {
        let mut obj = BTreeMap::new();
        match self {
            Response::Health { outstanding_jobs, stored_datasets } => {
                obj.insert("status".to_string(), Json::from("healthy"));
                obj.insert("outstanding_jobs".to_string(), Json::from(outstanding_jobs));
                obj.insert("stored_datasets".to_string(), Json::from(stored_datasets));
            }
            Response::Info {
                workers,
                max_datasets,
                max_connections,
                read_timeout_secs,
                uptime_secs,
                started_at,
                state_dir,
                tenants,
                eps_budget,
            } => {
                obj.insert("server".to_string(), Json::from("trajdp-server"));
                obj.insert("version".to_string(), Json::from(env!("CARGO_PKG_VERSION")));
                obj.insert(
                    "protocol_versions".to_string(),
                    Json::Arr(SUPPORTED_PROTOCOL_VERSIONS.iter().map(|&v| Json::from(v)).collect()),
                );
                obj.insert("workers".to_string(), Json::from(workers));
                obj.insert("max_datasets".to_string(), Json::from(max_datasets));
                obj.insert(
                    "max_dataset_bytes".to_string(),
                    Json::from(crate::store::MAX_DATASET_BYTES),
                );
                obj.insert(
                    "max_request_bytes".to_string(),
                    Json::from(crate::service::MAX_REQUEST_BYTES),
                );
                obj.insert(
                    "max_download_chunk_bytes".to_string(),
                    Json::from(crate::store::MAX_DOWNLOAD_CHUNK_BYTES),
                );
                obj.insert(
                    "default_download_chunk_bytes".to_string(),
                    Json::from(crate::store::DEFAULT_DOWNLOAD_CHUNK_BYTES),
                );
                obj.insert(
                    "max_gen_points".to_string(),
                    Json::from(crate::protocol::MAX_GEN_POINTS),
                );
                obj.insert("max_m".to_string(), Json::from(crate::protocol::MAX_M));
                obj.insert("max_workers".to_string(), Json::from(crate::protocol::MAX_WORKERS));
                obj.insert("max_connections".to_string(), Json::from(max_connections));
                obj.insert("read_timeout_secs".to_string(), Json::from(read_timeout_secs));
                // New observability members; `info` was never captured
                // in the frozen v1 transcript, so both versions carry
                // them.
                obj.insert("uptime_secs".to_string(), Json::from(uptime_secs));
                obj.insert("started_at".to_string(), Json::from(started_at));
                obj.insert("state_dir".to_string(), Json::Bool(state_dir));
                // Tenancy members: `info` was never captured in the
                // frozen v1 transcript, so both versions carry them.
                obj.insert("tenants".to_string(), Json::from(tenants));
                if let Some(b) = eps_budget {
                    obj.insert("eps_budget".to_string(), Json::from(b));
                }
            }
            Response::Metrics { snapshot } => {
                if let Json::Obj(m) = snapshot.to_json() {
                    obj = m;
                }
            }
            Response::Gen { data, trajectories, points, distinct_locations } => {
                data.fill(&mut obj);
                obj.insert("trajectories".to_string(), Json::from(trajectories));
                obj.insert("points".to_string(), Json::from(points));
                obj.insert("distinct_locations".to_string(), Json::from(distinct_locations));
            }
            Response::Anonymize { data, epsilon_spent, edits, utility_loss, workers, timings } => {
                data.fill(&mut obj);
                obj.insert("epsilon_spent".to_string(), Json::from(epsilon_spent));
                obj.insert("edits".to_string(), Json::from(edits));
                obj.insert("utility_loss".to_string(), Json::from(utility_loss));
                obj.insert("workers".to_string(), Json::from(workers));
                // v2 only: the v1 anonymize success body is frozen.
                if version == ProtocolVersion::V2 {
                    if let Some(t) = timings {
                        obj.insert("timings".to_string(), t.to_json());
                    }
                }
            }
            Response::Submitted { job } => {
                obj.insert("job".to_string(), Json::Str(job));
                obj.insert("state".to_string(), Json::from("queued"));
            }
            Response::Evaluate { mi, inf, de, te, ffp } => {
                obj.insert("mi".to_string(), Json::from(mi));
                obj.insert("inf".to_string(), Json::from(inf));
                obj.insert("de".to_string(), Json::from(de));
                obj.insert("te".to_string(), Json::from(te));
                obj.insert("ffp".to_string(), Json::from(ffp));
            }
            Response::Stats {
                trajectories,
                points,
                distinct_locations,
                avg_traj_len,
                avg_point_spacing,
                avg_sampling_period,
            } => {
                obj.insert("trajectories".to_string(), Json::from(trajectories));
                obj.insert("points".to_string(), Json::from(points));
                obj.insert("distinct_locations".to_string(), Json::from(distinct_locations));
                obj.insert("avg_traj_len".to_string(), Json::from(avg_traj_len));
                obj.insert("avg_point_spacing".to_string(), Json::from(avg_point_spacing));
                obj.insert("avg_sampling_period".to_string(), Json::from(avg_sampling_period));
            }
            Response::JobStatus { job, state, result, duration_secs, timings } => {
                match (result, version) {
                    (Some(result), ProtocolVersion::V1) => {
                        // The frozen v1 shape: the recorded result
                        // merged into the top level (including its own
                        // `ok`, which render() must not clobber — a
                        // failed job's done-status reports ok:false).
                        // The Arc clone is unavoidable: the job table
                        // keeps its copy of the recorded result.
                        obj = match (*result).clone() {
                            Json::Obj(m) => m,
                            other => {
                                let mut m = BTreeMap::new();
                                m.insert("result".to_string(), other);
                                m
                            }
                        };
                    }
                    (Some(result), ProtocolVersion::V2) => {
                        obj.insert("result".to_string(), (*result).clone());
                    }
                    (None, _) => {}
                }
                obj.insert("job".to_string(), Json::Str(job));
                obj.insert("state".to_string(), Json::from(state));
                // v2 only: the v1 done-status shape is frozen.
                if version == ProtocolVersion::V2 {
                    if let Some(d) = duration_secs {
                        obj.insert("duration_secs".to_string(), Json::from(d));
                    }
                    if let Some(t) = timings {
                        obj.insert("timings".to_string(), t.to_json());
                    }
                }
            }
            Response::Upload { dataset } => {
                obj.insert("dataset".to_string(), Json::Str(dataset));
            }
            Response::Chunk { dataset, bytes } | Response::Commit { dataset, bytes } => {
                obj.insert("dataset".to_string(), Json::Str(dataset));
                obj.insert("bytes".to_string(), Json::from(bytes));
            }
            Response::Download { dataset, offset, data, total_bytes, eof } => {
                obj.insert("dataset".to_string(), Json::Str(dataset));
                obj.insert("offset".to_string(), Json::from(offset));
                obj.insert("bytes".to_string(), Json::from(data.len()));
                obj.insert("total_bytes".to_string(), Json::from(total_bytes));
                obj.insert("eof".to_string(), Json::Bool(eof));
                obj.insert("data".to_string(), Json::Str(data));
            }
            Response::Delete { dataset, bytes } => {
                obj.insert("dataset".to_string(), Json::Str(dataset));
                obj.insert("bytes".to_string(), Json::from(bytes));
            }
            Response::List { jobs, datasets } => {
                obj.insert(
                    "jobs".to_string(),
                    Json::Arr(
                        jobs.into_iter()
                            .map(|(id, state)| {
                                Json::obj([("job", Json::Str(id)), ("state", Json::from(state))])
                            })
                            .collect(),
                    ),
                );
                obj.insert(
                    "datasets".to_string(),
                    Json::Arr(
                        datasets
                            .into_iter()
                            .map(|row| {
                                let mut m = BTreeMap::new();
                                m.insert("dataset".to_string(), Json::Str(row.dataset));
                                m.insert("bytes".to_string(), Json::from(row.bytes));
                                m.insert("state".to_string(), Json::from(row.state));
                                m.insert("pins".to_string(), Json::from(row.pins));
                                // Ledger members are v2-only: the v1
                                // list response is byte-frozen in the
                                // capture transcript.
                                if version == ProtocolVersion::V2 {
                                    m.insert("eps_spent".to_string(), Json::from(row.eps_spent));
                                    if let Some(b) = row.eps_budget {
                                        m.insert("eps_budget".to_string(), Json::from(b));
                                    }
                                }
                                Json::Obj(m)
                            })
                            .collect(),
                    ),
                );
            }
            Response::Cancelled { job } => {
                obj.insert("job".to_string(), Json::Str(job));
                obj.insert("state".to_string(), Json::from("cancelled"));
            }
        }
        obj
    }
}

/// Serializes one request outcome for the wire — the single exit point
/// of response serialization for both protocol versions. Takes the
/// outcome by value: both call sites (the connection handler, the job
/// worker) are done with it, and borrowing would force a full copy of
/// every inline CSV payload.
pub fn render(envelope: &Envelope, result: Result<Response, ApiError>) -> Json {
    match result {
        Ok(response) => {
            let mut obj = response.body(envelope.version);
            // `or_insert`, not `insert`: a v1 done-status merges the
            // recorded result into the top level, and a *failed* job's
            // result carries `ok:false`, which must win (the frozen
            // historical behavior).
            obj.entry("ok".to_string()).or_insert(Json::Bool(true));
            if envelope.version == ProtocolVersion::V2 {
                if let Some(id) = &envelope.id {
                    obj.insert("id".to_string(), Json::from(id.as_str()));
                }
            }
            Json::Obj(obj)
        }
        Err(e) => {
            let mut obj = BTreeMap::new();
            obj.insert("ok".to_string(), Json::Bool(false));
            match envelope.version {
                ProtocolVersion::V1 => {
                    obj.insert("error".to_string(), Json::from(e.message.as_str()));
                }
                ProtocolVersion::V2 => {
                    if let Some(id) = &envelope.id {
                        obj.insert("id".to_string(), Json::from(id.as_str()));
                    }
                    obj.insert(
                        "error".to_string(),
                        Json::obj([
                            ("code", Json::from(e.code.as_str())),
                            ("message", Json::from(e.message.as_str())),
                        ]),
                    );
                }
            }
            Json::Obj(obj)
        }
    }
}

/// [`render`] for the version-less v1 shape — what job results are
/// recorded as (the journal format predates the envelope and stays
/// version-less, so journals replay across server versions).
pub fn render_v1(result: Result<Response, ApiError>) -> Json {
    render(&Envelope::V1, result)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_roundtrip_and_are_kebab_case() {
        for code in WIRE_ERROR_CODES {
            let s = code.as_str();
            assert_eq!(ErrorCode::parse(s), Some(code), "{s}");
            assert!(
                s.chars().all(|c| c.is_ascii_lowercase() || c == '-'),
                "{s} must be kebab-case"
            );
        }
        assert_eq!(ErrorCode::parse("no-such-code"), None);
        // The client-side-only code is still kebab-case but must NOT
        // parse off the wire: a server claiming "transport" would
        // masquerade as a connectivity failure.
        assert_eq!(ErrorCode::Transport.as_str(), "transport");
        assert_eq!(ErrorCode::parse("transport"), None);
    }

    #[test]
    fn context_keeps_the_code() {
        let e = ApiError::store_full("dataset store is full").context("cannot store result");
        assert_eq!(e.code, ErrorCode::StoreFull);
        assert_eq!(e.message, "cannot store result: dataset store is full");
        assert_eq!(e.to_string(), e.message, "Display is the bare message (v1 parity)");
    }

    #[test]
    fn v1_error_shape_is_the_frozen_string_form() {
        let err: Result<Response, ApiError> = Err(ApiError::dataset_not_found("unknown dataset"));
        assert_eq!(render_v1(err).to_string(), r#"{"error":"unknown dataset","ok":false}"#);
    }

    #[test]
    fn v2_error_shape_carries_code_and_id() {
        let envelope =
            Envelope { version: ProtocolVersion::V2, id: Some("req-7".to_string()), tenant: None };
        let err = || -> Result<Response, ApiError> { Err(ApiError::store_full("full")) };
        assert_eq!(
            render(&envelope, err()).to_string(),
            r#"{"error":{"code":"store-full","message":"full"},"id":"req-7","ok":false}"#
        );
        // Without an id, no id member appears.
        let envelope = Envelope { version: ProtocolVersion::V2, id: None, tenant: None };
        assert_eq!(
            render(&envelope, err()).to_string(),
            r#"{"error":{"code":"store-full","message":"full"},"ok":false}"#
        );
    }

    #[test]
    fn v2_success_echoes_the_id() {
        let envelope =
            Envelope { version: ProtocolVersion::V2, id: Some("abc".to_string()), tenant: None };
        let ok = Ok(Response::Upload { dataset: "ds-1".to_string() });
        assert_eq!(render(&envelope, ok).to_string(), r#"{"dataset":"ds-1","id":"abc","ok":true}"#);
    }

    #[test]
    fn v1_done_status_merges_result_and_failed_results_keep_ok_false() {
        let failed = Arc::new(Json::obj([
            ("ok", Json::Bool(false)),
            ("error", Json::from("job panicked: boom")),
        ]));
        let status = Response::JobStatus {
            job: "job-3".to_string(),
            state: "done",
            result: Some(Arc::clone(&failed)),
            duration_secs: Some(1.25),
            timings: None,
        };
        // v1: merged flat, the result's ok:false preserved.
        assert_eq!(
            render_v1(Ok(status.clone())).to_string(),
            r#"{"error":"job panicked: boom","job":"job-3","ok":false,"state":"done"}"#
        );
        // v2: nested verbatim; the envelope's ok:true says the *status
        // query* succeeded, the nested result says the job failed. The
        // wall-clock duration appears here and only here — v1 stays
        // byte-frozen above.
        let envelope = Envelope { version: ProtocolVersion::V2, id: None, tenant: None };
        assert_eq!(
            render(&envelope, Ok(status)).to_string(),
            r#"{"duration_secs":1.25,"job":"job-3","ok":true,"result":{"error":"job panicked: boom","ok":false},"state":"done"}"#
        );
    }

    #[test]
    fn phase_timings_are_v2_only_on_anonymize() {
        let resp = || Response::Anonymize {
            data: Payload::Inline("csv".to_string()),
            epsilon_spent: 1.0,
            edits: 2,
            utility_loss: 0.5,
            workers: 1,
            timings: Some(crate::obs::PhaseTimings { total_secs: 0.25, ..Default::default() }),
        };
        // v1: byte-frozen shape, no timings member.
        assert_eq!(
            render_v1(Ok(resp())).to_string(),
            r#"{"csv":"csv","edits":2,"epsilon_spent":1,"ok":true,"utility_loss":0.5,"workers":1}"#
        );
        // v2: timings present.
        let envelope = Envelope { version: ProtocolVersion::V2, id: None, tenant: None };
        let rendered = render(&envelope, Ok(resp()));
        let t = rendered.get("timings").expect("v2 anonymize must carry timings");
        assert_eq!(t.get("total_secs").and_then(Json::as_f64), Some(0.25));
    }

    #[test]
    fn non_object_done_results_nest_under_result_in_v1() {
        let status = Response::JobStatus {
            job: "job-1".to_string(),
            state: "done",
            result: Some(Arc::new(Json::from("raw"))),
            duration_secs: None,
            timings: None,
        };
        assert_eq!(
            render_v1(Ok(status)).to_string(),
            r#"{"job":"job-1","ok":true,"result":"raw","state":"done"}"#
        );
    }
}

//! Server-side dataset handles for chunked transfer.
//!
//! Shipping a T-Drive-scale corpus inline as one CSV string inside a
//! single JSON line runs into [`crate::service::MAX_REQUEST_BYTES`].
//! The store lets clients stream a dataset in bounded pieces instead:
//! `upload` opens a pending handle (`ds-1`, `ds-2`, …), any number of
//! `chunk` commands append to it, and `commit` seals it. Committed
//! handles can then stand in for inline CSV in `anonymize` / `stats` /
//! `evaluate` requests and are read back in bounded pieces by
//! `download`.
//!
//! With a persistence directory (the server's `--state-dir`), every
//! *committed* dataset is also written to `<dir>/ds-<id>.csv` and
//! reloaded on restart, so result handles recorded in the job journal
//! stay downloadable across restarts. Pending uploads are memory-only
//! by design: an upload interrupted by a crash has no owner to resume
//! it, so the client simply starts over.

use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::{Arc, Mutex};

/// Upper bound on one assembled dataset (pending or committed).
pub const MAX_DATASET_BYTES: usize = 4 * (1 << 30);
/// Upper bound on concurrently held handles (pending + committed): a
/// shared server must not let clients accumulate datasets without
/// bound. There is no eviction or delete verb yet; when full, `upload`
/// fails. A memory-only store frees its handles on restart; a durable
/// store reloads them, so reclaiming slots means removing files from
/// `<state-dir>/datasets/` (see the ROADMAP residue item).
pub const MAX_STORED_DATASETS: usize = 256;
/// Hard cap on one `download` piece; requests asking for more are
/// clamped, keeping every response line bounded.
pub const MAX_DOWNLOAD_CHUNK_BYTES: usize = 8 * 1024 * 1024;
/// Piece size used when a `download` request names no `max_bytes`.
pub const DEFAULT_DOWNLOAD_CHUNK_BYTES: usize = 1024 * 1024;

/// Largest char boundary of `s` that is ≤ `i` (so chunk cuts never
/// split a UTF-8 scalar).
pub(crate) fn floor_char_boundary(s: &str, i: usize) -> usize {
    if i >= s.len() {
        return s.len();
    }
    let mut i = i;
    while !s.is_char_boundary(i) {
        i -= 1;
    }
    i
}

enum Entry {
    /// Being assembled by `chunk` commands.
    Pending(String),
    /// Sealed; usable as a request dataset and by `download`.
    Committed(Arc<String>),
}

struct StoreInner {
    next_id: u64,
    entries: HashMap<String, Entry>,
    /// When set, committed datasets are mirrored to `<dir>/ds-<id>.csv`.
    dir: Option<PathBuf>,
}

/// Shared dataset store. Cloneable handle (`Arc` inside).
#[derive(Clone)]
pub struct DatasetStore {
    inner: Arc<Mutex<StoreInner>>,
}

impl Default for DatasetStore {
    fn default() -> Self {
        Self::new()
    }
}

impl DatasetStore {
    /// An empty, memory-only store.
    pub fn new() -> Self {
        Self {
            inner: Arc::new(Mutex::new(StoreInner {
                next_id: 0,
                entries: HashMap::new(),
                dir: None,
            })),
        }
    }

    /// Opens a store persisted under `dir` (pass `None` for
    /// memory-only). Creates the directory if missing and reloads every
    /// `ds-<id>.csv` as a committed dataset; `next_id` resumes past the
    /// highest id seen so replayed result handles never collide with
    /// new ones.
    pub fn open(dir: Option<PathBuf>) -> std::io::Result<Self> {
        let Some(dir) = dir else { return Ok(Self::new()) };
        std::fs::create_dir_all(&dir)?;
        let mut entries = HashMap::new();
        let mut max_id = 0u64;
        for entry in std::fs::read_dir(&dir)? {
            let path = entry?.path();
            let Some(name) = path.file_name().and_then(|n| n.to_str()) else { continue };
            if name.ends_with(".csv.tmp") {
                // A crash between persist()'s write and rename leaves a
                // temp file behind; it holds no committed data.
                let _ = std::fs::remove_file(&path);
                continue;
            }
            let Some(id) = name.strip_prefix("ds-").and_then(|r| r.strip_suffix(".csv")) else {
                continue;
            };
            let Ok(n) = id.parse::<u64>() else { continue };
            let text = std::fs::read_to_string(&path)?;
            max_id = max_id.max(n);
            entries.insert(format!("ds-{n}"), Entry::Committed(Arc::new(text)));
        }
        Ok(Self {
            inner: Arc::new(Mutex::new(StoreInner { next_id: max_id, entries, dir: Some(dir) })),
        })
    }

    /// Number of held handles (pending + committed).
    pub fn count(&self) -> usize {
        self.inner.lock().expect("store poisoned").entries.len()
    }

    /// Opens a new pending handle for chunked upload.
    pub fn begin(&self) -> Result<String, String> {
        let mut s = self.inner.lock().expect("store poisoned");
        if s.entries.len() >= MAX_STORED_DATASETS {
            return Err(format!("dataset store is full ({MAX_STORED_DATASETS} handles)"));
        }
        s.next_id += 1;
        let id = format!("ds-{}", s.next_id);
        s.entries.insert(id.clone(), Entry::Pending(String::new()));
        Ok(id)
    }

    /// Appends one piece to a pending handle, returning the assembled
    /// size so far.
    pub fn append(&self, id: &str, data: &str) -> Result<usize, String> {
        let mut s = self.inner.lock().expect("store poisoned");
        match s.entries.get_mut(id) {
            None => Err(format!("unknown dataset {id:?}")),
            Some(Entry::Committed(_)) => {
                Err(format!("dataset {id:?} is already committed; chunks are rejected"))
            }
            Some(Entry::Pending(buf)) => {
                if buf.len().saturating_add(data.len()) > MAX_DATASET_BYTES {
                    return Err(format!("dataset {id:?} would exceed {MAX_DATASET_BYTES} bytes"));
                }
                buf.push_str(data);
                Ok(buf.len())
            }
        }
    }

    /// Seals a pending handle, making it usable as request input and by
    /// `download`. Returns the final size. With a persistence directory
    /// the dataset is durably written (temp file + rename) before the
    /// commit is acknowledged; a failed write leaves the handle pending
    /// so the client may retry.
    pub fn commit(&self, id: &str) -> Result<usize, String> {
        let mut s = self.inner.lock().expect("store poisoned");
        match s.entries.get(id) {
            None => return Err(format!("unknown dataset {id:?}")),
            Some(Entry::Committed(_)) => {
                return Err(format!("dataset {id:?} is already committed"))
            }
            Some(Entry::Pending(_)) => {}
        }
        if let Some(dir) = s.dir.clone() {
            let Some(Entry::Pending(buf)) = s.entries.get(id) else { unreachable!() };
            persist(&dir, id, buf)?;
        }
        let Some(Entry::Pending(buf)) = s.entries.remove(id) else { unreachable!() };
        let bytes = buf.len();
        s.entries.insert(id.to_string(), Entry::Committed(Arc::new(buf)));
        Ok(bytes)
    }

    /// Stores an already-complete dataset (e.g. an anonymization result
    /// kept server-side for chunked download), returning its handle and
    /// size.
    pub fn insert(&self, csv: String) -> Result<(String, usize), String> {
        if csv.len() > MAX_DATASET_BYTES {
            return Err(format!("dataset would exceed {MAX_DATASET_BYTES} bytes"));
        }
        let mut s = self.inner.lock().expect("store poisoned");
        if s.entries.len() >= MAX_STORED_DATASETS {
            return Err(format!("dataset store is full ({MAX_STORED_DATASETS} handles)"));
        }
        s.next_id += 1;
        let id = format!("ds-{}", s.next_id);
        if let Some(dir) = s.dir.clone() {
            persist(&dir, &id, &csv)?;
        }
        let bytes = csv.len();
        s.entries.insert(id.clone(), Entry::Committed(Arc::new(csv)));
        Ok((id, bytes))
    }

    /// The full text of a committed dataset.
    pub fn resolve(&self, id: &str) -> Result<Arc<String>, String> {
        let s = self.inner.lock().expect("store poisoned");
        match s.entries.get(id) {
            None => Err(format!("unknown dataset {id:?}")),
            Some(Entry::Pending(_)) => Err(format!("dataset {id:?} is not committed yet")),
            Some(Entry::Committed(text)) => Ok(Arc::clone(text)),
        }
    }

    /// One bounded piece of a committed dataset, starting at byte
    /// `offset` (which must fall on a piece boundary handed out by a
    /// previous read). Returns `(piece, total_bytes, eof)`.
    pub fn read_chunk(
        &self,
        id: &str,
        offset: usize,
        max_bytes: usize,
    ) -> Result<(String, usize, bool), String> {
        let text = self.resolve(id)?;
        if offset > text.len() || !text.is_char_boundary(offset) {
            return Err(format!(
                "offset {offset} is not a piece boundary of dataset {id:?} ({} bytes)",
                text.len()
            ));
        }
        let max_bytes = max_bytes.clamp(1, MAX_DOWNLOAD_CHUNK_BYTES);
        let mut end = floor_char_boundary(&text, offset.saturating_add(max_bytes));
        if end <= offset && offset < text.len() {
            // A chunk budget smaller than one scalar still makes
            // progress: ship exactly one character.
            end = offset + text[offset..].chars().next().map_or(1, char::len_utf8);
        }
        Ok((text[offset..end].to_string(), text.len(), end == text.len()))
    }
}

/// Durably writes `<dir>/<id>.csv` via temp file + fsync + rename +
/// directory fsync, so neither a process crash nor a power loss can
/// leave a torn (or silently empty) dataset that a reload would serve
/// as committed.
fn persist(dir: &std::path::Path, id: &str, text: &str) -> Result<(), String> {
    use std::io::Write as _;
    let tmp = dir.join(format!("{id}.csv.tmp"));
    let path = dir.join(format!("{id}.csv"));
    let write = || -> std::io::Result<()> {
        let mut file = std::fs::File::create(&tmp)?;
        file.write_all(text.as_bytes())?;
        file.sync_all()?;
        std::fs::rename(&tmp, &path)?;
        // The rename itself must survive power loss too.
        std::fs::File::open(dir)?.sync_all()
    };
    write().map_err(|e| format!("cannot persist dataset {id:?}: {e}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn upload_commit_resolve_roundtrip() {
        let store = DatasetStore::new();
        let id = store.begin().unwrap();
        assert_eq!(id, "ds-1");
        assert_eq!(store.append(&id, "traj_id,x,y,t\n").unwrap(), 14);
        assert_eq!(store.append(&id, "0,1.0,2.0,3\n").unwrap(), 26);
        assert_eq!(store.commit(&id).unwrap(), 26);
        assert_eq!(store.resolve(&id).unwrap().as_str(), "traj_id,x,y,t\n0,1.0,2.0,3\n");
    }

    #[test]
    fn lifecycle_violations_are_errors() {
        let store = DatasetStore::new();
        assert!(store.append("ds-9", "x").unwrap_err().contains("unknown"));
        assert!(store.commit("ds-9").unwrap_err().contains("unknown"));
        assert!(store.resolve("ds-9").unwrap_err().contains("unknown"));
        let id = store.begin().unwrap();
        assert!(store.resolve(&id).unwrap_err().contains("not committed"));
        assert!(store.read_chunk(&id, 0, 10).unwrap_err().contains("not committed"));
        store.commit(&id).unwrap();
        assert!(store.append(&id, "x").unwrap_err().contains("already committed"));
        assert!(store.commit(&id).unwrap_err().contains("already committed"));
    }

    #[test]
    fn read_chunk_walks_to_eof() {
        let store = DatasetStore::new();
        let (id, bytes) = store.insert("abcdefghij".to_string()).unwrap();
        assert_eq!(bytes, 10);
        let mut out = String::new();
        loop {
            let (piece, total, eof) = store.read_chunk(&id, out.len(), 3).unwrap();
            assert_eq!(total, 10);
            out.push_str(&piece);
            if eof {
                break;
            }
        }
        assert_eq!(out, "abcdefghij");
        // Reading exactly at the end is an empty eof piece, not an error.
        assert_eq!(store.read_chunk(&id, 10, 3).unwrap(), (String::new(), 10, true));
        assert!(store.read_chunk(&id, 11, 3).is_err());
    }

    #[test]
    fn read_chunk_respects_char_boundaries() {
        let store = DatasetStore::new();
        let (id, _) = store.insert("aé😀b".to_string()).unwrap();
        let mut out = String::new();
        let mut pieces = 0;
        loop {
            // max_bytes 2 cannot hold the 4-byte emoji; progress must
            // still be made one whole scalar at a time.
            let (piece, _, eof) = store.read_chunk(&id, out.len(), 2).unwrap();
            assert!(!piece.is_empty() || eof);
            out.push_str(&piece);
            pieces += 1;
            assert!(pieces < 20, "no progress");
            if eof {
                break;
            }
        }
        assert_eq!(out, "aé😀b");
    }

    #[test]
    fn store_capacity_is_bounded() {
        let store = DatasetStore::new();
        for _ in 0..MAX_STORED_DATASETS {
            store.begin().unwrap();
        }
        assert!(store.begin().unwrap_err().contains("full"));
        assert!(store.insert(String::new()).unwrap_err().contains("full"));
    }

    #[test]
    fn persisted_datasets_survive_reopen() {
        let dir = std::env::temp_dir().join("trajdp-store-test");
        let _ = std::fs::remove_dir_all(&dir);
        let store = DatasetStore::open(Some(dir.clone())).unwrap();
        let id = store.begin().unwrap();
        store.append(&id, "hello\n").unwrap();
        store.commit(&id).unwrap();
        let (id2, _) = store.insert("world\n".to_string()).unwrap();
        // A pending upload at crash time is intentionally lost.
        let pending = store.begin().unwrap();
        store.append(&pending, "partial").unwrap();
        drop(store);

        let reopened = DatasetStore::open(Some(dir.clone())).unwrap();
        assert_eq!(reopened.resolve(&id).unwrap().as_str(), "hello\n");
        assert_eq!(reopened.resolve(&id2).unwrap().as_str(), "world\n");
        assert!(reopened.resolve(&pending).unwrap_err().contains("unknown"));
        // Fresh ids never collide with reloaded ones.
        let (id3, _) = reopened.insert("x".to_string()).unwrap();
        assert_ne!(id3, id);
        assert_ne!(id3, id2);
        std::fs::remove_dir_all(&dir).ok();
    }
}

//! Server-side dataset handles for chunked transfer, with a bounded
//! storage lifecycle.
//!
//! Shipping a T-Drive-scale corpus inline as one CSV string inside a
//! single JSON line runs into [`crate::service::MAX_REQUEST_BYTES`].
//! The store lets clients stream a dataset in bounded pieces instead:
//! `upload` opens a pending handle (`ds-1`, `ds-2`, …), any number of
//! `chunk` commands append to it, and `commit` seals it. Committed
//! handles can then stand in for inline CSV in `anonymize` / `stats` /
//! `evaluate` requests and are read back in bounded pieces by
//! `download`.
//!
//! ## Lifecycle
//!
//! The store holds at most `capacity` handles, and slots are reclaimed
//! three ways:
//!
//! * **`delete`** — the explicit protocol verb. Deleting a handle that
//!   is pinned by a queued/running job is rejected with a distinct
//!   error: yanking data out from under an accepted job would make its
//!   journal replay unable to re-run it.
//! * **LRU eviction** — when a new `upload`/`insert` finds the store
//!   full, the least-recently-used *unpinned committed* handle is
//!   evicted (its persisted file removed). Handles reloaded from disk
//!   on restart enter the LRU cold, in id order, so an old restart
//!   residue is evicted before anything a live client has touched.
//! * **TTL sweep** — with a configured [`StoreConfig::ttl`], committed
//!   handles untouched for longer than the TTL are evicted by
//!   [`DatasetStore::sweep`]; independent of the TTL, pending uploads
//!   abandoned before `commit` for longer than
//!   [`StoreConfig::upload_ttl`] are reclaimed (a crashed uploader must
//!   not hold a slot until restart). The sweep runs before every
//!   `upload`/`insert` and can be driven periodically by the server.
//!
//! With a persistence directory (the server's `--state-dir`), every
//! *committed* dataset is also written to `<dir>/ds-<id>.csv` and
//! reloaded on restart, so result handles recorded in the job journal
//! stay downloadable across restarts. Results minted *by async jobs*
//! persist as `ds-<id>.job.csv` — the provenance marker lets
//! [`DatasetStore::reconcile_job_results`] delete orphans whose finish
//! event never reached the journal (the restart re-runs the job and
//! mints a fresh handle, so the old file would otherwise leak forever).
//! Pending uploads are memory-only by design: an upload interrupted by
//! a crash has no owner to resume it, so the client simply starts over.
//!
//! The disk writes of `commit`/`insert` (write + fsync + rename + dir
//! fsync) run **outside the store mutex**: a multi-GB persist must not
//! stall every concurrent `download`/`status` that merely reads the
//! table. The entry being persisted sits in a `Committing` state that
//! rejects concurrent mutation until the write lands.

use crate::api::ApiError;
use crate::obs::Metrics;
use std::collections::{HashMap, HashSet};
use std::path::PathBuf;
use std::sync::atomic::Ordering::Relaxed;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Upper bound on one assembled dataset (pending or committed).
pub const MAX_DATASET_BYTES: usize = 4 * (1 << 30);
/// Default upper bound on concurrently held handles (pending +
/// committed): a shared server must not let clients accumulate datasets
/// without bound. When full, `upload`/`insert` first sweep expired
/// entries, then evict the LRU unpinned committed handle; only when
/// nothing is evictable (everything pinned or still pending) do they
/// fail.
pub const MAX_STORED_DATASETS: usize = 256;
/// Hard cap on one `download` piece; requests asking for more are
/// clamped, keeping every response line bounded.
pub const MAX_DOWNLOAD_CHUNK_BYTES: usize = 8 * 1024 * 1024;
/// Piece size used when a `download` request names no `max_bytes`.
pub const DEFAULT_DOWNLOAD_CHUNK_BYTES: usize = 1024 * 1024;
/// Default age past which a pending upload with no new `chunk` is
/// considered abandoned and reclaimed by the sweep.
pub const UPLOAD_TTL: Duration = Duration::from_secs(15 * 60);

/// Tuning knobs of a [`DatasetStore`].
#[derive(Debug, Clone)]
pub struct StoreConfig {
    /// Persistence directory; `None` for memory-only.
    pub dir: Option<PathBuf>,
    /// Maximum concurrently held handles (pending + committed).
    pub capacity: usize,
    /// Evict committed handles untouched for this long; `None` keeps
    /// them until deleted or LRU-evicted.
    pub ttl: Option<Duration>,
    /// Reclaim pending uploads untouched for this long.
    pub upload_ttl: Duration,
}

impl Default for StoreConfig {
    fn default() -> Self {
        Self { dir: None, capacity: MAX_STORED_DATASETS, ttl: None, upload_ttl: UPLOAD_TTL }
    }
}

/// Largest char boundary of `s` that is ≤ `i` (so chunk cuts never
/// split a UTF-8 scalar).
pub(crate) fn floor_char_boundary(s: &str, i: usize) -> usize {
    if i >= s.len() {
        return s.len();
    }
    let mut i = i;
    while !s.is_char_boundary(i) {
        i -= 1;
    }
    i
}

enum Entry {
    /// Being assembled by `chunk` commands. `touched` is the last
    /// `begin`/`append` time, for the abandoned-upload sweep.
    Pending { buf: String, touched: Instant, owner: Option<String> },
    /// Owned by an in-flight `commit`/`insert` that is persisting to
    /// disk outside the lock; rejects all mutation until it lands. The
    /// tenant owner rides along so the commit tail can restore it.
    Committing { owner: Option<String> },
    /// Sealed; usable as a request dataset and by `download`.
    Committed {
        text: Arc<String>,
        /// Monotonic LRU stamp: larger = used more recently.
        last_used: u64,
        /// Wall-clock of the last use, for the TTL sweep.
        touched: Instant,
        /// Queued/running jobs referencing this handle; a pinned entry
        /// is never evicted and cannot be deleted.
        pins: usize,
        /// Minted by an async job (`store:true` result) rather than a
        /// client upload; persisted as `ds-<id>.job.csv` and subject to
        /// startup orphan reconciliation.
        from_job: bool,
        /// The authenticated tenant that uploaded the dataset, for
        /// quota accounting ([`DatasetStore::usage`]). In-memory only:
        /// ownership is admission control, not durable state, so
        /// datasets reloaded from disk (and job results) are unowned.
        owner: Option<String>,
    },
}

impl Entry {
    fn owner(&self) -> Option<&str> {
        match self {
            Entry::Pending { owner, .. }
            | Entry::Committing { owner }
            | Entry::Committed { owner, .. } => owner.as_deref(),
        }
    }
}

struct StoreInner {
    next_id: u64,
    /// LRU clock, bumped on every touch of a committed entry.
    clock: u64,
    entries: HashMap<String, Entry>,
    dir: Option<PathBuf>,
    capacity: usize,
    ttl: Option<Duration>,
    upload_ttl: Duration,
    /// Observability registry. Counters and gauges are atomics: the
    /// store computes values under its own mutex and publishes them
    /// with plain stores — a `metrics` snapshot never takes this lock.
    metrics: Arc<Metrics>,
}

impl StoreInner {
    /// Publishes the store gauges. Called at the tail of every mutating
    /// operation, while this mutex is already held; the write side is a
    /// pair of relaxed atomic stores, so readers never queue behind it.
    fn publish_gauges(&self) {
        let bytes: usize = self
            .entries
            .values()
            .map(|e| match e {
                Entry::Pending { buf, .. } => buf.len(),
                Entry::Committing { .. } => 0,
                Entry::Committed { text, .. } => text.len(),
            })
            .sum();
        self.metrics.set_store_gauges(bytes as u64, self.entries.len() as u64);
    }

    fn touch(&mut self, id: &str) {
        self.clock += 1;
        let clock = self.clock;
        if let Some(Entry::Committed { last_used, touched, .. }) = self.entries.get_mut(id) {
            *last_used = clock;
            *touched = Instant::now();
        }
    }

    /// Installs `text` as the committed entry of `id` with a fresh
    /// LRU/TTL stamp — the single tail of both `commit` and
    /// `insert_with_provenance`, so a future `Committed` field cannot
    /// be threaded into one path and missed in the other.
    fn install_committed(&mut self, id: &str, text: String, from_job: bool, owner: Option<String>) {
        self.clock += 1;
        let stamp = self.clock;
        self.entries.insert(
            id.to_string(),
            Entry::Committed {
                text: Arc::new(text),
                last_used: stamp,
                touched: Instant::now(),
                pins: 0,
                from_job,
                owner,
            },
        );
    }

    /// Removes the persisted file of a committed entry, if any. An
    /// unlink is a metadata operation (no data fsync), so it is cheap
    /// enough to run under the lock — only the bulk writes of
    /// `persist()` must happen outside it.
    fn unlink(&self, id: &str, from_job: bool) {
        if let Some(dir) = &self.dir {
            let _ = std::fs::remove_file(dir.join(file_name(id, from_job)));
        }
    }

    /// Removes pending uploads whose last `begin`/`append` is at least
    /// `max_age` old — the single implementation behind both the
    /// configured sweep and [`DatasetStore::expire_uploads`].
    fn expire_pending(&mut self, now: Instant, max_age: Duration) -> usize {
        let expired: Vec<String> = self
            .entries
            .iter()
            .filter_map(|(id, e)| match e {
                Entry::Pending { touched, .. } if now.duration_since(*touched) >= max_age => {
                    Some(id.clone())
                }
                _ => None,
            })
            .collect();
        for id in &expired {
            self.entries.remove(id);
        }
        expired.len()
    }

    /// Drops expired pending uploads and (with a TTL) stale unpinned
    /// committed entries. Returns how many slots were reclaimed.
    fn sweep(&mut self, now: Instant) -> usize {
        self.metrics.store_ttl_sweeps.fetch_add(1, Relaxed);
        let mut reclaimed = self.expire_pending(now, self.upload_ttl);
        if let Some(ttl) = self.ttl {
            let stale: Vec<(String, bool)> = self
                .entries
                .iter()
                .filter_map(|(id, e)| match e {
                    Entry::Committed { touched, pins: 0, from_job, .. }
                        if now.duration_since(*touched) >= ttl =>
                    {
                        Some((id.clone(), *from_job))
                    }
                    _ => None,
                })
                .collect();
            for (id, from_job) in &stale {
                self.entries.remove(id);
                self.unlink(id, *from_job);
            }
            self.metrics.store_evictions.fetch_add(stale.len() as u64, Relaxed);
            reclaimed += stale.len();
        }
        reclaimed
    }

    /// Makes room for one more handle: sweeps, then evicts LRU unpinned
    /// committed entries until under the cap (a store reloaded from a
    /// directory holding more datasets than the configured capacity —
    /// e.g. after a `--max-datasets` cut — must shrink to it, not stay
    /// one-in-one-out above it forever). Errors when every remaining
    /// slot is pinned or pending.
    fn make_room(&mut self) -> Result<(), ApiError> {
        self.sweep(Instant::now());
        while self.entries.len() >= self.capacity {
            let victim = self
                .entries
                .iter()
                .filter_map(|(id, e)| match e {
                    Entry::Committed { last_used, pins: 0, from_job, .. } => {
                        Some((*last_used, id.clone(), *from_job))
                    }
                    _ => None,
                })
                .min();
            match victim {
                Some((_, id, from_job)) => {
                    self.entries.remove(&id);
                    self.unlink(&id, from_job);
                    self.metrics.store_evictions.fetch_add(1, Relaxed);
                }
                None => {
                    return Err(ApiError::store_full(format!(
                        "dataset store is full ({} handles, none evictable); \
                         delete a dataset or commit/abandon pending uploads",
                        self.capacity
                    )))
                }
            }
        }
        Ok(())
    }
}

/// Shared dataset store. Cloneable handle (`Arc` inside).
#[derive(Clone)]
pub struct DatasetStore {
    inner: Arc<Mutex<StoreInner>>,
    /// Test hook: when set, `persist` blocks on this lock *outside* the
    /// store mutex — the no-stall regression tests hold it to simulate
    /// a slow disk while concurrent reads must keep answering.
    #[cfg(test)]
    persist_gate: Option<Arc<Mutex<()>>>,
}

impl Default for DatasetStore {
    fn default() -> Self {
        Self::new()
    }
}

/// Persisted file name of a handle. Job-minted results carry a
/// provenance marker so restart reconciliation can tell them from
/// client uploads.
fn file_name(id: &str, from_job: bool) -> String {
    if from_job {
        format!("{id}.job.csv")
    } else {
        format!("{id}.csv")
    }
}

impl DatasetStore {
    /// An empty, memory-only store with default capacity.
    pub fn new() -> Self {
        Self::with_config(StoreConfig::default()).expect("memory-only store cannot fail")
    }

    /// Opens a store persisted under `dir` (pass `None` for
    /// memory-only) with default knobs.
    pub fn open(dir: Option<PathBuf>) -> std::io::Result<Self> {
        Self::with_config(StoreConfig { dir, ..StoreConfig::default() })
    }

    /// Opens a store with explicit lifecycle knobs. With a persistence
    /// directory, creates it if missing and reloads every `ds-<id>.csv`
    /// / `ds-<id>.job.csv` as a committed dataset; `next_id` resumes
    /// past the highest id seen so replayed result handles never
    /// collide with new ones. Reloaded handles enter the LRU cold, in
    /// id order — nothing has touched them since the restart.
    pub fn with_config(cfg: StoreConfig) -> std::io::Result<Self> {
        let mut entries = HashMap::new();
        let mut max_id = 0u64;
        let mut clock = 0u64;
        if let Some(dir) = &cfg.dir {
            std::fs::create_dir_all(dir)?;
            let mut reloaded: Vec<(u64, bool, PathBuf)> = Vec::new();
            for entry in std::fs::read_dir(dir)? {
                let path = entry?.path();
                let Some(name) = path.file_name().and_then(|n| n.to_str()) else { continue };
                if name.ends_with(".tmp") {
                    // A crash between persist()'s write and rename
                    // leaves a temp file behind; it holds no committed
                    // data.
                    let _ = std::fs::remove_file(&path);
                    continue;
                }
                let Some(stem) = name.strip_prefix("ds-") else { continue };
                let (id, from_job) = match stem.strip_suffix(".job.csv") {
                    Some(id) => (id, true),
                    None => match stem.strip_suffix(".csv") {
                        Some(id) => (id, false),
                        None => continue,
                    },
                };
                let Ok(n) = id.parse::<u64>() else { continue };
                reloaded.push((n, from_job, path));
            }
            // Cold LRU stamps in id order: on the first eviction the
            // oldest restart residue goes first.
            reloaded.sort_by_key(|&(n, _, _)| n);
            let now = Instant::now();
            for (n, from_job, path) in reloaded {
                let text = std::fs::read_to_string(&path)?;
                max_id = max_id.max(n);
                clock += 1;
                entries.insert(
                    format!("ds-{n}"),
                    Entry::Committed {
                        text: Arc::new(text),
                        last_used: clock,
                        touched: now,
                        pins: 0,
                        from_job,
                        owner: None,
                    },
                );
            }
        }
        Ok(Self {
            inner: Arc::new(Mutex::new(StoreInner {
                next_id: max_id,
                clock,
                entries,
                dir: cfg.dir,
                capacity: cfg.capacity.max(1),
                ttl: cfg.ttl,
                upload_ttl: cfg.upload_ttl,
                metrics: Arc::default(),
            })),
            #[cfg(test)]
            persist_gate: None,
        })
    }

    /// The store mutex, with poisoning surfaced as a stable `internal`
    /// error instead of a server-killing panic. A poisoned store means
    /// a worker panicked mid-mutation; refusing every subsequent
    /// operation with a wire error keeps the connection plane alive and
    /// the failure observable, where an unwrap would take down the
    /// whole process.
    fn lock(&self) -> Result<std::sync::MutexGuard<'_, StoreInner>, ApiError> {
        self.inner.lock().map_err(|_| ApiError::internal("store state poisoned by a panic"))
    }

    /// Attaches the shared observability registry and seeds the
    /// bytes/handles gauges from the current table (a store reloaded
    /// from disk starts non-empty). The registry propagates through the
    /// shared inner state, so clones made before or after see it too.
    pub fn with_metrics(self, metrics: Arc<Metrics>) -> Self {
        if let Ok(mut s) = self.lock() {
            s.metrics = metrics;
            s.publish_gauges();
        }
        self
    }

    /// Number of held handles (pending + committed).
    pub fn count(&self) -> usize {
        self.lock().map(|s| s.entries.len()).unwrap_or(0)
    }

    /// Runs the expiry sweep (abandoned uploads + TTL-stale committed
    /// entries), returning how many slots were reclaimed. Also runs
    /// implicitly before every `begin`/`insert`.
    pub fn sweep(&self) -> usize {
        let Ok(mut s) = self.lock() else { return 0 };
        let reclaimed = s.sweep(Instant::now());
        s.publish_gauges();
        reclaimed
    }

    /// Reclaims pending uploads whose last `begin`/`chunk` is at least
    /// `max_age` old, regardless of the configured
    /// [`StoreConfig::upload_ttl`]. Returns how many were reclaimed.
    pub fn expire_uploads(&self, max_age: Duration) -> usize {
        let Ok(mut s) = self.lock() else { return 0 };
        let reclaimed = s.expire_pending(Instant::now(), max_age);
        s.publish_gauges();
        reclaimed
    }

    /// Opens a new pending handle for chunked upload, evicting the LRU
    /// unpinned committed dataset if the store is full.
    pub fn begin(&self) -> Result<String, ApiError> {
        self.begin_for(None)
    }

    /// [`Self::begin`] attributing the handle to an authenticated
    /// tenant, so [`Self::usage`] can enforce per-tenant dataset and
    /// byte quotas. Ownership follows the handle through commit.
    pub fn begin_for(&self, owner: Option<&str>) -> Result<String, ApiError> {
        let mut s = self.lock()?;
        s.make_room()?;
        s.next_id += 1;
        let id = format!("ds-{}", s.next_id);
        s.entries.insert(
            id.clone(),
            Entry::Pending {
                buf: String::new(),
                touched: Instant::now(),
                owner: owner.map(str::to_string),
            },
        );
        s.publish_gauges();
        Ok(id)
    }

    /// Datasets and bytes currently attributed to `owner` — pending
    /// uploads count too (their bytes are already resident), so a
    /// tenant cannot dodge its byte quota by never committing.
    pub fn usage(&self, owner: &str) -> (usize, usize) {
        let Ok(s) = self.lock() else { return (0, 0) };
        let mut datasets = 0;
        let mut bytes = 0;
        for entry in s.entries.values() {
            if entry.owner() == Some(owner) {
                datasets += 1;
                bytes += match entry {
                    Entry::Pending { buf, .. } => buf.len(),
                    Entry::Committing { .. } => 0,
                    Entry::Committed { text, .. } => text.len(),
                };
            }
        }
        (datasets, bytes)
    }

    /// Appends one piece to a pending handle, returning the assembled
    /// size so far.
    pub fn append(&self, id: &str, data: &str) -> Result<usize, ApiError> {
        let mut s = self.lock()?;
        let assembled = match s.entries.get_mut(id) {
            None => return Err(ApiError::dataset_not_found(format!("unknown dataset {id:?}"))),
            Some(Entry::Committed { .. }) => {
                return Err(ApiError::dataset_state(format!(
                    "dataset {id:?} is already committed; chunks are rejected"
                )))
            }
            Some(Entry::Committing { .. }) => {
                return Err(ApiError::dataset_state(format!(
                    "dataset {id:?} is being committed; chunks are rejected"
                )))
            }
            Some(Entry::Pending { buf, touched, .. }) => {
                if buf.len().saturating_add(data.len()) > MAX_DATASET_BYTES {
                    return Err(ApiError::payload_too_large(format!(
                        "dataset {id:?} would exceed {MAX_DATASET_BYTES} bytes"
                    )));
                }
                buf.push_str(data);
                *touched = Instant::now();
                buf.len()
            }
        };
        s.publish_gauges();
        Ok(assembled)
    }

    /// Seals a pending handle, making it usable as request input and by
    /// `download`. Returns the final size. With a persistence directory
    /// the dataset is durably written (temp file + fsync + rename)
    /// before the commit is acknowledged — but the write runs **outside
    /// the store mutex**, so concurrent reads never stall behind it; a
    /// failed write leaves the handle pending so the client may retry.
    pub fn commit(&self, id: &str) -> Result<usize, ApiError> {
        let (buf, owner, dir) = {
            let mut s = self.lock()?;
            match s.entries.get(id) {
                None => return Err(ApiError::dataset_not_found(format!("unknown dataset {id:?}"))),
                Some(Entry::Committed { .. }) => {
                    return Err(ApiError::dataset_state(format!(
                        "dataset {id:?} is already committed"
                    )))
                }
                Some(Entry::Committing { .. }) => {
                    return Err(ApiError::dataset_state(format!(
                        "dataset {id:?} is already being committed"
                    )))
                }
                Some(Entry::Pending { .. }) => {}
            }
            let owner = s.entries.get(id).and_then(|e| e.owner().map(str::to_string));
            let Some(Entry::Pending { buf, .. }) =
                s.entries.insert(id.to_string(), Entry::Committing { owner: owner.clone() })
            else {
                // PANIC: the match above saw `Entry::Pending` for this id
                // and the mutex has been held since.
                unreachable!()
            };
            (buf, owner, s.dir.clone())
        };
        if let Some(dir) = dir {
            if let Err(e) = self.persist(&dir, &file_name(id, false), &buf) {
                let mut s = self.lock()?;
                s.entries
                    .insert(id.to_string(), Entry::Pending { buf, touched: Instant::now(), owner });
                return Err(e);
            }
        }
        let mut s = self.lock()?;
        let bytes = buf.len();
        s.install_committed(id, buf, false, owner);
        s.publish_gauges();
        Ok(bytes)
    }

    /// Stores an already-complete dataset (e.g. an anonymization result
    /// kept server-side for chunked download), returning its handle and
    /// size. `from_job` marks results minted by async jobs for startup
    /// orphan reconciliation. Like `commit`, the persist runs outside
    /// the store mutex.
    pub fn insert_with_provenance(
        &self,
        csv: String,
        from_job: bool,
    ) -> Result<(String, usize), ApiError> {
        if csv.len() > MAX_DATASET_BYTES {
            return Err(ApiError::payload_too_large(format!(
                "dataset would exceed {MAX_DATASET_BYTES} bytes"
            )));
        }
        let (id, dir) = {
            let mut s = self.lock()?;
            s.make_room()?;
            s.next_id += 1;
            let id = format!("ds-{}", s.next_id);
            s.entries.insert(id.clone(), Entry::Committing { owner: None });
            (id, s.dir.clone())
        };
        if let Some(dir) = dir {
            if let Err(e) = self.persist(&dir, &file_name(&id, from_job), &csv) {
                self.lock()?.entries.remove(&id);
                return Err(e);
            }
        }
        let bytes = csv.len();
        let mut s = self.lock()?;
        // Job results are unowned: they are minted by the server, not
        // uploaded by a tenant, so they never count against a quota.
        s.install_committed(&id, csv, from_job, None);
        s.publish_gauges();
        Ok((id, bytes))
    }

    /// [`Self::insert_with_provenance`] for client-owned datasets.
    pub fn insert(&self, csv: String) -> Result<(String, usize), ApiError> {
        self.insert_with_provenance(csv, false)
    }

    /// Deletes a handle, freeing its slot and removing its persisted
    /// file. Pending uploads may be deleted (aborting the upload).
    /// Deleting a handle pinned by a queued/running job is rejected
    /// with a distinct error — the job owns that data until it
    /// finishes.
    pub fn delete(&self, id: &str) -> Result<usize, ApiError> {
        let mut s = self.lock()?;
        match s.entries.get(id) {
            None => Err(ApiError::dataset_not_found(format!("unknown dataset {id:?}"))),
            Some(Entry::Committing { .. }) => Err(ApiError::dataset_state(format!(
                "dataset {id:?} is being committed; retry the delete"
            ))),
            Some(Entry::Committed { pins, .. }) if *pins > 0 => {
                Err(ApiError::dataset_in_use(format!(
                    "dataset {id:?} is referenced by a queued or running job; \
                 delete is rejected until the job finishes"
                )))
            }
            Some(Entry::Committed { .. } | Entry::Pending { .. }) => {
                let bytes = match s.entries.remove(id) {
                    Some(Entry::Committed { text, from_job, .. }) => {
                        s.unlink(id, from_job);
                        text.len()
                    }
                    Some(Entry::Pending { buf, .. }) => buf.len(),
                    // PANIC: this arm is guarded by the outer
                    // `Committed | Pending` match and the mutex has been
                    // held since.
                    _ => unreachable!(),
                };
                s.publish_gauges();
                Ok(bytes)
            }
        }
    }

    /// Best-effort reclaim for lifecycle bookkeeping (not the protocol
    /// verb): returns `true` when the handle no longer occupies a slot
    /// — deleted now, or already gone — and `false` when it must be
    /// retried later (pinned, or mid-commit).
    pub fn try_reclaim(&self, id: &str) -> bool {
        let Ok(mut s) = self.lock() else { return false };
        match s.entries.get(id) {
            None => true,
            Some(Entry::Committing { .. }) => false,
            Some(Entry::Committed { pins, .. }) if *pins > 0 => false,
            Some(Entry::Committed { .. } | Entry::Pending { .. }) => {
                if let Some(Entry::Committed { from_job, .. }) = s.entries.remove(id) {
                    s.unlink(id, from_job);
                }
                s.publish_gauges();
                true
            }
        }
    }

    /// Pins a committed handle against eviction and deletion (one pin
    /// per referencing job; pins stack).
    pub fn pin(&self, id: &str) -> Result<(), ApiError> {
        let mut s = self.lock()?;
        s.touch(id);
        match s.entries.get_mut(id) {
            Some(Entry::Committed { pins, .. }) => {
                *pins += 1;
                Ok(())
            }
            Some(_) => Err(ApiError::dataset_state(format!("dataset {id:?} is not committed yet"))),
            None => Err(ApiError::dataset_not_found(format!("unknown dataset {id:?}"))),
        }
    }

    /// Releases one pin of a committed handle.
    pub fn unpin(&self, id: &str) {
        let Ok(mut s) = self.lock() else { return };
        if let Some(Entry::Committed { pins, .. }) = s.entries.get_mut(id) {
            *pins = pins.saturating_sub(1);
        }
    }

    /// Deletes committed job-result handles (`from_job` provenance)
    /// whose id is not in `referenced` — the orphans a crash between a
    /// job's result insert and its finish-event journal append leaves
    /// behind (the replayed journal re-runs the job and mints a fresh
    /// handle, so nothing will ever reference the old one again).
    /// Returns the ids deleted.
    pub fn reconcile_job_results(&self, referenced: &HashSet<String>) -> Vec<String> {
        let Ok(mut s) = self.lock() else { return Vec::new() };
        let orphans: Vec<String> = s
            .entries
            .iter()
            .filter_map(|(id, e)| match e {
                Entry::Committed { from_job: true, pins: 0, .. } if !referenced.contains(id) => {
                    Some(id.clone())
                }
                _ => None,
            })
            .collect();
        for id in &orphans {
            s.entries.remove(id);
            s.unlink(id, true);
        }
        s.publish_gauges();
        orphans
    }

    /// The full text of a committed dataset (refreshes its LRU/TTL
    /// stamp).
    pub fn resolve(&self, id: &str) -> Result<Arc<String>, ApiError> {
        let mut s = self.lock()?;
        s.touch(id);
        match s.entries.get(id) {
            None => Err(ApiError::dataset_not_found(format!("unknown dataset {id:?}"))),
            Some(Entry::Pending { .. } | Entry::Committing { .. }) => {
                Err(ApiError::dataset_state(format!("dataset {id:?} is not committed yet")))
            }
            Some(Entry::Committed { text, .. }) => Ok(Arc::clone(text)),
        }
    }

    /// One entry per held handle: `(id, bytes, state, pins)` where
    /// `state` is `"pending"`, `"committing"` (persist in flight —
    /// rejects chunks, commit, and delete until it lands), or
    /// `"committed"`, sorted by id number for a deterministic `list`
    /// response.
    pub fn list(&self) -> Vec<(String, usize, &'static str, usize)> {
        let Ok(s) = self.lock() else { return Vec::new() };
        let mut out: Vec<(String, usize, &'static str, usize)> = s
            .entries
            .iter()
            .map(|(id, e)| match e {
                Entry::Pending { buf, .. } => (id.clone(), buf.len(), "pending", 0),
                Entry::Committing { .. } => (id.clone(), 0, "committing", 0),
                Entry::Committed { text, pins, .. } => (id.clone(), text.len(), "committed", *pins),
            })
            .collect();
        out.sort_by_key(|(id, ..)| id.strip_prefix("ds-").and_then(|n| n.parse::<u64>().ok()));
        out
    }

    /// One bounded piece of a committed dataset, starting at byte
    /// `offset` (which must fall on a piece boundary handed out by a
    /// previous read). Returns `(piece, total_bytes, eof)`.
    pub fn read_chunk(
        &self,
        id: &str,
        offset: usize,
        max_bytes: usize,
    ) -> Result<(String, usize, bool), ApiError> {
        let text = self.resolve(id)?;
        if offset > text.len() || !text.is_char_boundary(offset) {
            return Err(ApiError::bad_request(format!(
                "offset {offset} is not a piece boundary of dataset {id:?} ({} bytes)",
                text.len()
            )));
        }
        let max_bytes = max_bytes.clamp(1, MAX_DOWNLOAD_CHUNK_BYTES);
        let mut end = floor_char_boundary(&text, offset.saturating_add(max_bytes));
        if end <= offset && offset < text.len() {
            // A chunk budget smaller than one scalar still makes
            // progress: ship exactly one character.
            // PANIC: `offset` was checked to be a char boundary at or
            // before `text.len()`, so the range is valid.
            end = offset + text[offset..].chars().next().map_or(1, char::len_utf8);
        }
        // PANIC: both ends are char boundaries: `offset` was checked,
        // `end` comes from `floor_char_boundary` (or the one-scalar
        // bump above) and is >= `offset` whenever the piece is
        // non-empty.
        Ok((text[offset..end].to_string(), text.len(), end == text.len()))
    }

    /// Durably writes `<dir>/<file>` via temp file + fsync + rename +
    /// directory fsync, so neither a process crash nor a power loss can
    /// leave a torn (or silently empty) dataset that a reload would
    /// serve as committed. Must be called **without** the store mutex
    /// held.
    fn persist(&self, dir: &std::path::Path, file: &str, text: &str) -> Result<(), ApiError> {
        use std::io::Write as _;
        let tmp = dir.join(format!("{file}.tmp"));
        let path = dir.join(file);
        let write = || -> std::io::Result<()> {
            let mut f = std::fs::File::create(&tmp)?;
            f.write_all(text.as_bytes())?;
            // Test hook: park here, with the temp file visible, to
            // prove the store mutex is not held across the disk write.
            #[cfg(test)]
            let _gate = self.persist_gate.as_ref().map(|g| g.lock().expect("gate poisoned"));
            f.sync_all()?;
            std::fs::rename(&tmp, &path)?;
            // The rename itself must survive power loss too.
            std::fs::File::open(dir)?.sync_all()
        };
        write().map_err(|e| ApiError::io(format!("cannot persist dataset {file:?}: {e}")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn upload_commit_resolve_roundtrip() {
        let store = DatasetStore::new();
        let id = store.begin().unwrap();
        assert_eq!(id, "ds-1");
        assert_eq!(store.append(&id, "traj_id,x,y,t\n").unwrap(), 14);
        assert_eq!(store.append(&id, "0,1.0,2.0,3\n").unwrap(), 26);
        assert_eq!(store.commit(&id).unwrap(), 26);
        assert_eq!(store.resolve(&id).unwrap().as_str(), "traj_id,x,y,t\n0,1.0,2.0,3\n");
    }

    #[test]
    fn lifecycle_violations_are_errors() {
        let store = DatasetStore::new();
        assert!(store.append("ds-9", "x").unwrap_err().message.contains("unknown"));
        assert!(store.commit("ds-9").unwrap_err().message.contains("unknown"));
        assert!(store.resolve("ds-9").unwrap_err().message.contains("unknown"));
        assert!(store.delete("ds-9").unwrap_err().message.contains("unknown"));
        let id = store.begin().unwrap();
        assert!(store.resolve(&id).unwrap_err().message.contains("not committed"));
        assert!(store.read_chunk(&id, 0, 10).unwrap_err().message.contains("not committed"));
        assert!(store.pin(&id).unwrap_err().message.contains("not committed"));
        store.commit(&id).unwrap();
        assert!(store.append(&id, "x").unwrap_err().message.contains("already committed"));
        assert!(store.commit(&id).unwrap_err().message.contains("already"));
    }

    #[test]
    fn read_chunk_walks_to_eof() {
        let store = DatasetStore::new();
        let (id, bytes) = store.insert("abcdefghij".to_string()).unwrap();
        assert_eq!(bytes, 10);
        let mut out = String::new();
        loop {
            let (piece, total, eof) = store.read_chunk(&id, out.len(), 3).unwrap();
            assert_eq!(total, 10);
            out.push_str(&piece);
            if eof {
                break;
            }
        }
        assert_eq!(out, "abcdefghij");
        // Reading exactly at the end is an empty eof piece, not an error.
        assert_eq!(store.read_chunk(&id, 10, 3).unwrap(), (String::new(), 10, true));
        assert!(store.read_chunk(&id, 11, 3).is_err());
    }

    #[test]
    fn read_chunk_respects_char_boundaries() {
        let store = DatasetStore::new();
        let (id, _) = store.insert("aé😀b".to_string()).unwrap();
        let mut out = String::new();
        let mut pieces = 0;
        loop {
            // max_bytes 2 cannot hold the 4-byte emoji; progress must
            // still be made one whole scalar at a time.
            let (piece, _, eof) = store.read_chunk(&id, out.len(), 2).unwrap();
            assert!(!piece.is_empty() || eof);
            out.push_str(&piece);
            pieces += 1;
            assert!(pieces < 20, "no progress");
            if eof {
                break;
            }
        }
        assert_eq!(out, "aé😀b");
    }

    #[test]
    fn store_full_of_pendings_is_an_error() {
        // Pending uploads are not evictable, so a store full of them
        // still rejects new handles — naming the remedy.
        let store = DatasetStore::new();
        for _ in 0..MAX_STORED_DATASETS {
            store.begin().unwrap();
        }
        let err = store.begin().unwrap_err();
        assert!(err.message.contains("full") && err.message.contains("delete"), "{err}");
        assert!(store.insert(String::new()).unwrap_err().message.contains("full"));
    }

    #[test]
    fn full_store_evicts_lru_unpinned_committed() {
        let store =
            DatasetStore::with_config(StoreConfig { capacity: 3, ..StoreConfig::default() })
                .unwrap();
        let (a, _) = store.insert("aaa".to_string()).unwrap();
        let (b, _) = store.insert("bbb".to_string()).unwrap();
        let (c, _) = store.insert("ccc".to_string()).unwrap();
        // Touch a so b becomes the LRU victim.
        store.resolve(&a).unwrap();
        let (d, _) = store.insert("ddd".to_string()).unwrap();
        assert!(
            store.resolve(&b).unwrap_err().message.contains("unknown"),
            "LRU entry must be evicted"
        );
        for id in [&a, &c, &d] {
            assert!(store.resolve(id).is_ok(), "{id} must survive");
        }
        assert_eq!(store.count(), 3);
    }

    #[test]
    fn pinned_entries_are_never_evicted_and_cannot_be_deleted() {
        let store =
            DatasetStore::with_config(StoreConfig { capacity: 2, ..StoreConfig::default() })
                .unwrap();
        let (a, _) = store.insert("aaa".to_string()).unwrap();
        let (b, _) = store.insert("bbb".to_string()).unwrap();
        store.pin(&a).unwrap();
        let err = store.delete(&a).unwrap_err();
        assert!(
            err.message.contains("queued or running job"),
            "pinned delete needs a distinct error: {err}"
        );
        // a is the LRU entry but pinned: eviction must take b instead.
        let (c, _) = store.insert("ccc".to_string()).unwrap();
        assert!(store.resolve(&a).is_ok());
        assert!(store.resolve(&b).unwrap_err().message.contains("unknown"));
        // Two pins: one unpin keeps the protection, the second releases.
        store.pin(&a).unwrap();
        store.unpin(&a);
        assert!(store.delete(&a).is_err());
        store.unpin(&a);
        assert_eq!(store.delete(&a).unwrap(), 3);
        assert!(store.resolve(&c).is_ok());
    }

    #[test]
    fn delete_frees_a_slot_at_capacity() {
        let store =
            DatasetStore::with_config(StoreConfig { capacity: 2, ..StoreConfig::default() })
                .unwrap();
        // Fill with pendings (not evictable) so only delete frees room.
        let a = store.begin().unwrap();
        let _b = store.begin().unwrap();
        assert!(store.begin().is_err());
        store.delete(&a).unwrap(); // aborting a pending upload is allowed
        assert!(store.begin().is_ok());
    }

    #[test]
    fn expire_uploads_reclaims_abandoned_pendings() {
        let store = DatasetStore::new();
        let abandoned = store.begin().unwrap();
        store.append(&abandoned, "partial").unwrap();
        let committed = store.begin().unwrap();
        store.commit(&committed).unwrap();
        assert_eq!(store.expire_uploads(Duration::ZERO), 1);
        assert!(store.append(&abandoned, "x").unwrap_err().message.contains("unknown"));
        assert!(store.resolve(&committed).is_ok(), "committed entries are not uploads");
        // The configured upload TTL also reclaims via the sweep.
        let store = DatasetStore::with_config(StoreConfig {
            upload_ttl: Duration::ZERO,
            ..StoreConfig::default()
        })
        .unwrap();
        let p = store.begin().unwrap();
        assert_eq!(store.sweep(), 1);
        assert!(store.commit(&p).unwrap_err().message.contains("unknown"));
    }

    #[test]
    fn ttl_sweep_evicts_stale_committed_but_not_pinned() {
        let store = DatasetStore::with_config(StoreConfig {
            ttl: Some(Duration::ZERO),
            ..StoreConfig::default()
        })
        .unwrap();
        // Pin first: every `insert` runs the sweep itself, which with a
        // zero TTL would reclaim an unpinned sibling immediately.
        let (pinned, _) = store.insert("y".to_string()).unwrap();
        store.pin(&pinned).unwrap();
        let (stale, _) = store.insert("x".to_string()).unwrap();
        assert_eq!(store.sweep(), 1);
        assert!(store.resolve(&stale).unwrap_err().message.contains("unknown"));
        assert!(store.resolve(&pinned).is_ok());
        // Without a TTL nothing committed expires.
        let store = DatasetStore::new();
        store.insert("z".to_string()).unwrap();
        assert_eq!(store.sweep(), 0);
    }

    #[test]
    fn persisted_datasets_survive_reopen_and_reload_cold() {
        let dir = std::env::temp_dir().join("trajdp-store-test");
        let _ = std::fs::remove_dir_all(&dir);
        let store = DatasetStore::open(Some(dir.clone())).unwrap();
        let id = store.begin().unwrap();
        store.append(&id, "hello\n").unwrap();
        store.commit(&id).unwrap();
        let (id2, _) = store.insert("world\n".to_string()).unwrap();
        // A pending upload at crash time is intentionally lost.
        let pending = store.begin().unwrap();
        store.append(&pending, "partial").unwrap();
        drop(store);

        let reopened = DatasetStore::with_config(StoreConfig {
            dir: Some(dir.clone()),
            capacity: 2,
            ..StoreConfig::default()
        })
        .unwrap();
        assert_eq!(reopened.resolve(&id).unwrap().as_str(), "hello\n");
        assert_eq!(reopened.resolve(&id2).unwrap().as_str(), "world\n");
        assert!(reopened.resolve(&pending).unwrap_err().message.contains("unknown"));
        // Reloaded handles are LRU-cold in id order: at capacity, the
        // lower-id reloaded entry is evicted first — and its file goes
        // with it, so the eviction survives another reopen.
        let (id3, _) = reopened.insert("x".to_string()).unwrap();
        assert_ne!(id3, id);
        assert_ne!(id3, id2);
        assert!(reopened.resolve(&id).unwrap_err().message.contains("unknown"));
        assert!(reopened.resolve(&id2).is_ok());
        drop(reopened);
        let again = DatasetStore::open(Some(dir.clone())).unwrap();
        assert!(again.resolve(&id).unwrap_err().message.contains("unknown"));
        assert!(again.resolve(&id2).is_ok());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn reload_above_capacity_shrinks_to_the_cap() {
        let dir = std::env::temp_dir().join("trajdp-store-shrink-test");
        let _ = std::fs::remove_dir_all(&dir);
        let store = DatasetStore::open(Some(dir.clone())).unwrap();
        for i in 0..5 {
            store.insert(format!("dataset {i}\n")).unwrap();
        }
        drop(store);
        // Reopen with a smaller cap: the reload holds everything, but
        // the first insert must evict down to the cap, not one-for-one.
        let small = DatasetStore::with_config(StoreConfig {
            dir: Some(dir.clone()),
            capacity: 2,
            ..StoreConfig::default()
        })
        .unwrap();
        assert_eq!(small.count(), 5);
        small.insert("fresh\n".to_string()).unwrap();
        assert_eq!(small.count(), 2, "over-capacity reload must shrink to the cap");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn delete_removes_the_persisted_file() {
        let dir = std::env::temp_dir().join("trajdp-store-delete-test");
        let _ = std::fs::remove_dir_all(&dir);
        let store = DatasetStore::open(Some(dir.clone())).unwrap();
        let (id, _) = store.insert("data\n".to_string()).unwrap();
        assert!(dir.join(format!("{id}.csv")).exists());
        store.delete(&id).unwrap();
        assert!(!dir.join(format!("{id}.csv")).exists());
        drop(store);
        let reopened = DatasetStore::open(Some(dir.clone())).unwrap();
        assert!(reopened.resolve(&id).unwrap_err().message.contains("unknown"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn job_results_reconcile_against_referenced_set() {
        let dir = std::env::temp_dir().join("trajdp-store-reconcile-test");
        let _ = std::fs::remove_dir_all(&dir);
        let store = DatasetStore::open(Some(dir.clone())).unwrap();
        let (upload, _) = store.insert("client upload\n".to_string()).unwrap();
        let (kept, _) =
            store.insert_with_provenance("journaled result\n".to_string(), true).unwrap();
        let (orphan, _) =
            store.insert_with_provenance("orphan result\n".to_string(), true).unwrap();
        assert!(dir.join(format!("{kept}.job.csv")).exists());
        drop(store);

        // Restart: the journal references only `kept`. The orphan job
        // result is deleted; the client upload is untouched even though
        // nothing references it.
        let reopened = DatasetStore::open(Some(dir.clone())).unwrap();
        let referenced: HashSet<String> = [kept.clone()].into_iter().collect();
        assert_eq!(reopened.reconcile_job_results(&referenced), vec![orphan.clone()]);
        assert!(reopened.resolve(&orphan).unwrap_err().message.contains("unknown"));
        assert_eq!(reopened.resolve(&kept).unwrap().as_str(), "journaled result\n");
        assert_eq!(reopened.resolve(&upload).unwrap().as_str(), "client upload\n");
        assert!(!dir.join(format!("{orphan}.job.csv")).exists());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn list_reports_every_handle_in_id_order() {
        let store = DatasetStore::new();
        let (a, _) = store.insert("aaaa".to_string()).unwrap();
        let p = store.begin().unwrap();
        store.append(&p, "xy").unwrap();
        store.pin(&a).unwrap();
        let listed = store.list();
        assert_eq!(listed, vec![(a, 4, "committed", 1), (p, 2, "pending", 0)]);
    }

    #[test]
    fn persist_failures_are_io_coded_and_retryable() {
        // A failed durable write (the directory vanished under the
        // store — the same shape as ENOSPC or a dead disk) must report
        // the io-error code and leave the upload pending for a retry.
        let dir = std::env::temp_dir().join("trajdp-store-io-error-test");
        let _ = std::fs::remove_dir_all(&dir);
        let store = DatasetStore::open(Some(dir.clone())).unwrap();
        let id = store.begin().unwrap();
        store.append(&id, "data\n").unwrap();
        std::fs::remove_dir_all(&dir).unwrap();
        let err = store.commit(&id).unwrap_err();
        assert_eq!(err.code, crate::api::ErrorCode::Io);
        assert!(err.message.contains("cannot persist"), "{err}");
        let err = store.insert("more\n".to_string()).unwrap_err();
        assert_eq!(err.code, crate::api::ErrorCode::Io);
        // The failed commit rolled the handle back to pending: the
        // client can retry once the disk recovers.
        std::fs::create_dir_all(&dir).unwrap();
        assert_eq!(store.commit(&id).unwrap(), 5);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn store_publishes_gauges_and_counts_evictions() {
        let metrics = Arc::new(Metrics::new());
        let store =
            DatasetStore::with_config(StoreConfig { capacity: 2, ..StoreConfig::default() })
                .unwrap()
                .with_metrics(Arc::clone(&metrics));
        store.insert("aaa".to_string()).unwrap();
        store.insert("bbbb".to_string()).unwrap();
        let snap = metrics.snapshot();
        assert_eq!(snap.store_handles, 2);
        assert_eq!(snap.store_bytes, 7);
        store.insert("cc".to_string()).unwrap(); // evicts the LRU entry
        let snap = metrics.snapshot();
        assert_eq!(snap.store_handles, 2);
        assert_eq!(snap.store_bytes, 6);
        assert_eq!(snap.store_evictions, 1);
        assert!(snap.store_ttl_sweeps >= 1, "every insert runs the sweep");
    }

    /// Regression for the lifecycle pass's lock contract: a large
    /// `commit` persisting to a slow disk must not hold the store mutex
    /// during the write — concurrent reads keep answering.
    #[test]
    fn persist_does_not_hold_the_store_mutex() {
        let dir = std::env::temp_dir().join("trajdp-store-nostall-test");
        let _ = std::fs::remove_dir_all(&dir);
        let mut store = DatasetStore::open(Some(dir.clone())).unwrap();
        let gate = Arc::new(Mutex::new(()));
        store.persist_gate = Some(Arc::clone(&gate));
        let (existing, _) = store.insert("already here\n".to_string()).unwrap();
        let id = store.begin().unwrap();
        store.append(&id, "big dataset\n").unwrap();

        // Block the "disk" and start the commit; it parks inside
        // persist(), which by contract runs outside the store mutex.
        let blocked = gate.lock().unwrap();
        let committer = {
            let store = store.clone();
            let id = id.clone();
            std::thread::spawn(move || store.commit(&id))
        };
        // Wait until the committer is actually inside persist.
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while !dir.join(format!("{id}.csv.tmp")).exists() {
            assert!(std::time::Instant::now() < deadline, "commit never reached the disk write");
            std::thread::sleep(Duration::from_millis(5));
        }
        // Reads must proceed while the persist is stalled. A deadlock
        // here would hang the test; detect via a timed channel.
        let (tx, rx) = std::sync::mpsc::channel();
        let reader = {
            let store = store.clone();
            let existing = existing.clone();
            std::thread::spawn(move || {
                let text = store.resolve(&existing).unwrap();
                let n = store.count();
                tx.send((text.len(), n)).unwrap();
            })
        };
        let (len, n) = rx
            .recv_timeout(Duration::from_secs(5))
            .expect("reads stalled behind an in-flight dataset persist");
        assert_eq!(len, "already here\n".len());
        assert_eq!(n, 2);
        reader.join().unwrap();
        drop(blocked);
        assert_eq!(committer.join().unwrap().unwrap(), "big dataset\n".len());
        assert_eq!(store.resolve(&id).unwrap().as_str(), "big dataset\n");
        std::fs::remove_dir_all(&dir).ok();
    }
}

//! The non-blocking connection plane: a readiness loop (reactor)
//! driving per-connection state machines instead of one thread per
//! socket.
//!
//! ## Shape
//!
//! One reactor thread owns the listener, every connection socket, and a
//! [`Poller`] — an `epoll` instance on Linux (bound via direct
//! `extern "C"` declarations, matching the repo's vendor-offline style)
//! with a portable `poll(2)` fallback selected at runtime (forced by
//! the `TRAJDP_FORCE_POLL` environment variable, so the fallback stays
//! exercised on Linux too). Each connection is a small state machine:
//! bytes read into a [`LineScanner`] → a complete request line handed
//! to a small executor pool → the rendered response appended to a
//! write buffer flushed with partial-write continuation. The reactor
//! itself never parses JSON and never runs a verb, so a CPU-heavy
//! `anonymize` can never stall `accept` or another connection's I/O.
//!
//! One dispatch is in flight per connection at a time — responses keep
//! the strict request order the JSON-lines protocol promises — and
//! read interest is dropped while a dispatch is pending, so a
//! pipelining client back-pressures into TCP instead of growing the
//! input buffer without bound.
//!
//! ## What the blocking design could not express
//!
//! * **Read deadlines** — a connection that has *started* a request
//!   line must finish it within the configured window. The deadline is
//!   armed when the first partial byte is buffered and is *not*
//!   extended by further partial bytes, so a slowloris drip cannot
//!   hold the slot; it is cleared the moment a line completes. Idle
//!   connections (empty buffer between requests) are never timed out.
//!   Expiry answers a v1-shaped `bad-request` and closes.
//! * **Load shedding** — past `max_connections` live connections, an
//!   accept is answered with a one-line `overloaded` error and closed
//!   instead of silently stalling in the TCP backlog ( `shutting-down`
//!   when the accept races shutdown).
//! * **Drain window** — on shutdown the listener closes immediately,
//!   partial request lines are discarded, but requests already
//!   received keep executing and their responses are flushed, up to
//!   `drain_window`; only then are stragglers cut.
//!
//! The reactor is observable: shed and deadline-close counters plus a
//! per-iteration latency histogram (the handling portion of each loop
//! turn, not the poll wait) live in [`Metrics`].

use crate::api::{self, ApiError};
use crate::json::Json;
use crate::obs::{log_enabled, log_event, LogLevel, Metrics};
use std::collections::HashMap;
use std::io::{self, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::os::fd::{AsRawFd, RawFd};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

// ---------------------------------------------------------------------
// Raw OS bindings (no libc crate — the workspace vendors everything)
// ---------------------------------------------------------------------

/// Portable POSIX pieces both backends need: `poll(2)`, a self-pipe,
/// and non-blocking mode for raw fds.
mod sys {
    use std::os::raw::{c_int, c_ulong, c_void};

    #[repr(C)]
    #[derive(Clone, Copy)]
    pub struct PollFd {
        pub fd: c_int,
        pub events: i16,
        pub revents: i16,
    }

    pub const POLLIN: i16 = 0x1;
    pub const POLLOUT: i16 = 0x4;
    pub const POLLERR: i16 = 0x8;
    pub const POLLHUP: i16 = 0x10;

    #[cfg(target_os = "linux")]
    pub const O_NONBLOCK: c_int = 0o4000;
    #[cfg(not(target_os = "linux"))]
    pub const O_NONBLOCK: c_int = 0x4;
    pub const F_GETFL: c_int = 3;
    pub const F_SETFL: c_int = 4;

    extern "C" {
        pub fn poll(fds: *mut PollFd, nfds: c_ulong, timeout: c_int) -> c_int;
        pub fn pipe(fds: *mut c_int) -> c_int;
        // Declared with a fixed third argument (the variadic C
        // prototype passes it in the same register for the commands
        // used here).
        pub fn fcntl(fd: c_int, cmd: c_int, arg: c_int) -> c_int;
        pub fn read(fd: c_int, buf: *mut c_void, count: usize) -> isize;
        pub fn write(fd: c_int, buf: *const c_void, count: usize) -> isize;
        pub fn close(fd: c_int) -> c_int;
    }
}

/// Linux `epoll`, the preferred backend: O(ready) wakeups instead of
/// O(registered) scans per loop turn.
#[cfg(target_os = "linux")]
mod epoll_sys {
    use std::os::raw::c_int;

    pub const EPOLLIN: u32 = 0x1;
    pub const EPOLLOUT: u32 = 0x4;
    pub const EPOLLERR: u32 = 0x8;
    pub const EPOLLHUP: u32 = 0x10;
    pub const EPOLL_CTL_ADD: c_int = 1;
    pub const EPOLL_CTL_DEL: c_int = 2;
    pub const EPOLL_CTL_MOD: c_int = 3;
    pub const EPOLL_CLOEXEC: c_int = 0o2000000;

    /// The kernel's `struct epoll_event`: packed on x86-64, where the
    /// ABI leaves the 64-bit payload unaligned.
    #[repr(C)]
    #[cfg_attr(target_arch = "x86_64", repr(packed))]
    #[derive(Clone, Copy)]
    pub struct EpollEvent {
        pub events: u32,
        pub data: u64,
    }

    extern "C" {
        pub fn epoll_create1(flags: c_int) -> c_int;
        pub fn epoll_ctl(epfd: c_int, op: c_int, fd: c_int, event: *mut EpollEvent) -> c_int;
        pub fn epoll_wait(
            epfd: c_int,
            events: *mut EpollEvent,
            maxevents: c_int,
            timeout: c_int,
        ) -> c_int;
    }
}

/// Puts a raw fd (not owned by a std type) into non-blocking mode.
fn set_nonblocking_fd(fd: RawFd) -> io::Result<()> {
    // SAFETY: callers pass an fd they own and that is open for the
    // duration of the call; F_GETFL reads flag bits and touches no
    // user memory.
    let flags = unsafe { sys::fcntl(fd, sys::F_GETFL, 0) };
    if flags < 0 {
        return Err(io::Error::last_os_error());
    }
    // SAFETY: same fd as above, still open; F_SETFL writes flag bits
    // kernel-side only.
    if unsafe { sys::fcntl(fd, sys::F_SETFL, flags | sys::O_NONBLOCK) } < 0 {
        return Err(io::Error::last_os_error());
    }
    Ok(())
}

// ---------------------------------------------------------------------
// Poller: one readiness-notification surface over both backends
// ---------------------------------------------------------------------

/// One readiness event: which registration fired and how.
#[derive(Debug, Clone, Copy)]
pub struct Event {
    pub token: u64,
    pub readable: bool,
    pub writable: bool,
    /// Error or hangup — the peer is gone or going; always delivered
    /// by both backends regardless of the requested interest.
    pub hangup: bool,
}

enum Backend {
    #[cfg(target_os = "linux")]
    Epoll { epfd: RawFd },
    /// Portable fallback: the registration table is rebuilt into a
    /// `pollfd` array every wait.
    Poll { fds: Vec<(RawFd, u64, bool, bool)> },
}

/// Readiness notification over raw fds: register with a `u64` token,
/// wait for [`Event`]s. Level-triggered on both backends.
pub struct Poller {
    backend: Backend,
}

#[cfg(target_os = "linux")]
fn epoll_mask(readable: bool, writable: bool) -> u32 {
    (if readable { epoll_sys::EPOLLIN } else { 0 })
        | (if writable { epoll_sys::EPOLLOUT } else { 0 })
}

/// `poll`/`epoll_wait` timeout argument: `-1` blocks indefinitely;
/// finite waits round up so a 100 µs deadline cannot spin at 0 ms.
fn timeout_ms(timeout: Option<Duration>) -> i32 {
    match timeout {
        None => -1,
        Some(d) => d.as_micros().div_ceil(1000).min(i32::MAX as u128) as i32,
    }
}

impl Poller {
    /// The platform's best backend: `epoll` on Linux unless
    /// `TRAJDP_FORCE_POLL` is set, `poll` everywhere else.
    pub fn new() -> io::Result<Poller> {
        Poller::with_backend(std::env::var_os("TRAJDP_FORCE_POLL").is_some())
    }

    /// Backend selection split out so tests can drive the portable
    /// fallback deterministically without mutating the environment.
    pub fn with_backend(force_poll: bool) -> io::Result<Poller> {
        #[cfg(target_os = "linux")]
        if !force_poll {
            // SAFETY: epoll_create1 takes no pointers; it returns a
            // fresh fd (or -1) that Poller::drop closes exactly once.
            let epfd = unsafe { epoll_sys::epoll_create1(epoll_sys::EPOLL_CLOEXEC) };
            if epfd < 0 {
                return Err(io::Error::last_os_error());
            }
            return Ok(Poller { backend: Backend::Epoll { epfd } });
        }
        let _ = force_poll;
        Ok(Poller { backend: Backend::Poll { fds: Vec::new() } })
    }

    pub fn register(
        &mut self,
        fd: RawFd,
        token: u64,
        readable: bool,
        writable: bool,
    ) -> io::Result<()> {
        match &mut self.backend {
            #[cfg(target_os = "linux")]
            Backend::Epoll { epfd } => {
                let mut ev =
                    epoll_sys::EpollEvent { events: epoll_mask(readable, writable), data: token };
                // SAFETY: epfd is the live epoll fd this Poller owns;
                // `ev` is an initialized repr(C) EpollEvent on the
                // stack, valid for the duration of the call (the kernel
                // copies it and keeps no reference).
                if unsafe { epoll_sys::epoll_ctl(*epfd, epoll_sys::EPOLL_CTL_ADD, fd, &mut ev) } < 0
                {
                    return Err(io::Error::last_os_error());
                }
                Ok(())
            }
            Backend::Poll { fds } => {
                fds.push((fd, token, readable, writable));
                Ok(())
            }
        }
    }

    pub fn modify(
        &mut self,
        fd: RawFd,
        token: u64,
        readable: bool,
        writable: bool,
    ) -> io::Result<()> {
        match &mut self.backend {
            #[cfg(target_os = "linux")]
            Backend::Epoll { epfd } => {
                let mut ev =
                    epoll_sys::EpollEvent { events: epoll_mask(readable, writable), data: token };
                // SAFETY: as for EPOLL_CTL_ADD — owned live epfd, and
                // `ev` is initialized stack memory the kernel copies.
                if unsafe { epoll_sys::epoll_ctl(*epfd, epoll_sys::EPOLL_CTL_MOD, fd, &mut ev) } < 0
                {
                    return Err(io::Error::last_os_error());
                }
                Ok(())
            }
            Backend::Poll { fds } => {
                for entry in fds.iter_mut() {
                    if entry.0 == fd {
                        *entry = (fd, token, readable, writable);
                        return Ok(());
                    }
                }
                Err(io::Error::new(io::ErrorKind::NotFound, "fd is not registered"))
            }
        }
    }

    pub fn deregister(&mut self, fd: RawFd) -> io::Result<()> {
        match &mut self.backend {
            #[cfg(target_os = "linux")]
            Backend::Epoll { epfd } => {
                // Pre-2.6.9 kernels require a non-null event for DEL.
                let mut ev = epoll_sys::EpollEvent { events: 0, data: 0 };
                // SAFETY: owned live epfd; `ev` is initialized stack
                // memory that DEL at most reads.
                if unsafe { epoll_sys::epoll_ctl(*epfd, epoll_sys::EPOLL_CTL_DEL, fd, &mut ev) } < 0
                {
                    return Err(io::Error::last_os_error());
                }
                Ok(())
            }
            Backend::Poll { fds } => {
                fds.retain(|&(f, ..)| f != fd);
                Ok(())
            }
        }
    }

    /// Blocks until at least one registration is ready or `timeout`
    /// elapses (`None` blocks indefinitely), filling `out`.
    pub fn wait(&mut self, timeout: Option<Duration>, out: &mut Vec<Event>) -> io::Result<()> {
        out.clear();
        let ms = timeout_ms(timeout);
        match &mut self.backend {
            #[cfg(target_os = "linux")]
            Backend::Epoll { epfd } => {
                let mut events = [epoll_sys::EpollEvent { events: 0, data: 0 }; 64];
                let n = loop {
                    // SAFETY: epfd is the live epoll fd this Poller
                    // owns; `events` is a fully initialized stack array
                    // and maxevents equals its real length, so the
                    // kernel writes at most events.len() entries into
                    // memory that outlives the call.
                    let n = unsafe {
                        epoll_sys::epoll_wait(*epfd, events.as_mut_ptr(), events.len() as i32, ms)
                    };
                    if n >= 0 {
                        break n as usize;
                    }
                    let e = io::Error::last_os_error();
                    if e.kind() != io::ErrorKind::Interrupted {
                        return Err(e);
                    }
                };
                // PANIC: the kernel returns at most `events.len()`
                // ready entries, so `n` is within the buffer.
                for ev in &events[..n] {
                    // Plain field reads copy out of the packed struct.
                    let bits = ev.events;
                    let token = ev.data;
                    out.push(Event {
                        token,
                        readable: bits & epoll_sys::EPOLLIN != 0,
                        writable: bits & epoll_sys::EPOLLOUT != 0,
                        hangup: bits & (epoll_sys::EPOLLERR | epoll_sys::EPOLLHUP) != 0,
                    });
                }
                Ok(())
            }
            Backend::Poll { fds } => {
                let mut pfds: Vec<sys::PollFd> = fds
                    .iter()
                    .map(|&(fd, _, r, w)| sys::PollFd {
                        fd,
                        events: (if r { sys::POLLIN } else { 0 })
                            | (if w { sys::POLLOUT } else { 0 }),
                        revents: 0,
                    })
                    .collect();
                let n = loop {
                    // SAFETY: `pfds` is an initialized Vec of repr(C)
                    // PollFd and nfds is its exact length; the kernel
                    // only rewrites the `revents` field of each entry,
                    // and the Vec outlives the call.
                    let n = unsafe {
                        sys::poll(pfds.as_mut_ptr(), pfds.len() as std::os::raw::c_ulong, ms)
                    };
                    if n >= 0 {
                        break n;
                    }
                    let e = io::Error::last_os_error();
                    if e.kind() != io::ErrorKind::Interrupted {
                        return Err(e);
                    }
                };
                if n > 0 {
                    for (pfd, &(_, token, ..)) in pfds.iter().zip(fds.iter()) {
                        if pfd.revents != 0 {
                            out.push(Event {
                                token,
                                readable: pfd.revents & sys::POLLIN != 0,
                                writable: pfd.revents & sys::POLLOUT != 0,
                                hangup: pfd.revents & (sys::POLLERR | sys::POLLHUP) != 0,
                            });
                        }
                    }
                }
                Ok(())
            }
        }
    }
}

impl Drop for Poller {
    fn drop(&mut self) {
        #[cfg(target_os = "linux")]
        if let Backend::Epoll { epfd } = self.backend {
            // SAFETY: this Poller is the sole owner of epfd and Drop
            // runs once, so the fd is valid here and never double-closed.
            unsafe { sys::close(epfd) };
        }
    }
}

// ---------------------------------------------------------------------
// Waker: a self-pipe that interrupts a blocked wait from any thread
// ---------------------------------------------------------------------

struct WakerFd {
    fd: RawFd,
}

impl Drop for WakerFd {
    fn drop(&mut self) {
        // SAFETY: WakerFd is the sole owner of the pipe's write end
        // (Wakers share it behind one Arc, so this Drop runs after the
        // last clone is gone); valid fd, closed exactly once.
        unsafe { sys::close(self.fd) };
    }
}

/// Wakes the reactor out of a blocked [`Poller::wait`] — used by
/// executor workers when a completion is ready and by
/// [`crate::service::Server::shutdown`]. Cloneable and safe from any
/// thread; a full pipe means a wake is already pending, so the write
/// result is ignored.
#[derive(Clone)]
pub struct Waker {
    inner: Arc<WakerFd>,
}

impl Waker {
    pub fn wake(&self) {
        let byte = 1u8;
        // SAFETY: the Arc<WakerFd> keeps the write end open for as
        // long as any Waker exists, so the fd is valid; the buffer is
        // one initialized stack byte and count matches its size. A
        // short/failed write (full pipe) is deliberately ignored.
        unsafe { sys::write(self.inner.fd, (&byte as *const u8).cast(), 1) };
    }
}

/// The read half of the self-pipe, owned (and drained) by the reactor.
struct PipeReader {
    fd: RawFd,
}

impl PipeReader {
    fn drain(&self) {
        let mut buf = [0u8; 64];
        loop {
            // SAFETY: self.fd is the pipe read end this PipeReader
            // owns (open until its Drop); `buf` is an initialized
            // stack array and count equals its length, so the kernel
            // writes at most buf.len() bytes into live memory.
            let n = unsafe { sys::read(self.fd, buf.as_mut_ptr().cast(), buf.len()) };
            if n <= 0 {
                break;
            }
        }
    }
}

impl Drop for PipeReader {
    fn drop(&mut self) {
        // SAFETY: PipeReader is the sole owner of the pipe's read end;
        // valid fd, closed exactly once.
        unsafe { sys::close(self.fd) };
    }
}

/// A non-blocking self-pipe: `(read_end, write_end)`.
fn new_waker() -> io::Result<(PipeReader, Waker)> {
    let mut fds = [0i32; 2];
    // SAFETY: pipe writes exactly two c_ints into `fds`, which is an
    // initialized stack array of exactly that size.
    if unsafe { sys::pipe(fds.as_mut_ptr()) } != 0 {
        return Err(io::Error::last_os_error());
    }
    let [read_fd, write_fd] = fds;
    let reader = PipeReader { fd: read_fd };
    let waker = Waker { inner: Arc::new(WakerFd { fd: write_fd }) };
    set_nonblocking_fd(read_fd)?;
    set_nonblocking_fd(write_fd)?;
    Ok((reader, waker))
}

// ---------------------------------------------------------------------
// Line framing
// ---------------------------------------------------------------------

/// The oversized-line marker `framing_error` classifies on — the kind,
/// not the message text, decides the wire code.
fn oversized() -> io::Error {
    io::Error::new(io::ErrorKind::FileTooLarge, "request line exceeds the size limit")
}

/// Incremental `\n`-framed line scanner with an exact content bound:
/// a line of exactly `max` bytes (terminator not counted) passes, one
/// more fails — checked as bytes arrive, so an oversized line is
/// rejected before it is fully buffered. The non-blocking successor of
/// the old `read_line_bounded`, with identical bound and error
/// semantics.
#[derive(Default)]
pub struct LineScanner {
    buf: Vec<u8>,
    /// Bytes of `buf` already searched for a terminator — makes
    /// repeated scans over a slowly arriving large line linear overall.
    searched: usize,
}

impl LineScanner {
    pub fn push(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Extracts the next complete line (terminator stripped), `None`
    /// when more bytes are needed, or a framing error: an oversized
    /// line ([`io::ErrorKind::FileTooLarge`]) or one that is not UTF-8
    /// ([`io::ErrorKind::InvalidData`]). Framing errors poison the
    /// stream — the caller must close the connection.
    pub fn next_line(&mut self, max: usize) -> io::Result<Option<String>> {
        // PANIC: `searched` counts bytes of `buf` already scanned, and
        // bytes are only ever appended, so `searched <= buf.len()`.
        match self.buf[self.searched..].iter().position(|&b| b == b'\n') {
            Some(off) => {
                let content_len = self.searched + off;
                if content_len > max {
                    return Err(oversized());
                }
                let mut line: Vec<u8> = self.buf.drain(..=content_len).collect();
                line.pop(); // the terminator
                self.searched = 0;
                match String::from_utf8(line) {
                    Ok(s) => Ok(Some(s)),
                    Err(_) => {
                        Err(io::Error::new(io::ErrorKind::InvalidData, "request is not UTF-8"))
                    }
                }
            }
            None => {
                self.searched = self.buf.len();
                if self.buf.len() > max {
                    return Err(oversized());
                }
                Ok(None)
            }
        }
    }

    /// Whether an incomplete line is buffered. Only meaningful right
    /// after [`Self::next_line`] returned `Ok(None)` (the scanner has
    /// then searched everything and found no terminator).
    pub fn awaiting_line(&self) -> bool {
        !self.buf.is_empty() && self.searched == self.buf.len()
    }

    /// Drops any trailing partial line, keeping buffered complete
    /// lines — shutdown drains answers for requests fully received,
    /// never half-received ones.
    pub fn discard_partial(&mut self) {
        match self.buf.iter().rposition(|&b| b == b'\n') {
            Some(i) => self.buf.truncate(i + 1),
            None => self.buf.clear(),
        }
        self.searched = self.searched.min(self.buf.len());
    }
}

/// Classifies a framing-layer failure by its [`io::ErrorKind`] — never
/// by message text. An oversized line is the client's fault and
/// carries the payload cap's code; undecodable bytes are a bad
/// request; anything else is the transport itself failing.
pub fn framing_error(e: &io::Error) -> ApiError {
    match e.kind() {
        io::ErrorKind::FileTooLarge => ApiError::payload_too_large(e.to_string()),
        io::ErrorKind::InvalidData => ApiError::bad_request(e.to_string()),
        _ => ApiError::io(e.to_string()),
    }
}

// ---------------------------------------------------------------------
// Executor: the small pool that runs dispatches off the reactor thread
// ---------------------------------------------------------------------

/// The service's request handler: `(connection id, request line,
/// receive instant) → rendered response line` (newline included). Runs
/// on executor threads; everything it needs travels in the closure.
pub type Dispatch = Arc<dyn Fn(u64, String, Instant) -> String + Send + Sync>;

struct Task {
    conn: u64,
    line: String,
    received: Instant,
}

struct Completion {
    conn: u64,
    output: String,
}

/// A fixed pool of dispatch threads fed from an unbounded channel (the
/// one-in-flight-per-connection rule bounds it at one task per live
/// connection). Workers pull through a shared `Mutex<Receiver>` — the
/// `core::pool` idiom of cheap scoped fan-out, adapted to a long-lived
/// pool.
struct Executor {
    tx: Option<mpsc::Sender<Task>>,
    workers: Vec<JoinHandle<()>>,
}

impl Executor {
    fn new(
        threads: usize,
        dispatch: Dispatch,
        done_tx: mpsc::Sender<Completion>,
        waker: Waker,
    ) -> Executor {
        let (tx, rx) = mpsc::channel::<Task>();
        let rx = Arc::new(Mutex::new(rx));
        let workers = (0..threads.max(1))
            .map(|_| {
                let rx = Arc::clone(&rx);
                let dispatch = Arc::clone(&dispatch);
                let done_tx = done_tx.clone();
                let waker = waker.clone();
                std::thread::spawn(move || loop {
                    // The receiver lock is held only while blocked in
                    // recv; dispatch runs outside it, so workers
                    // process tasks concurrently. A poisoned queue lock
                    // (a sibling worker panicked while blocked — recv
                    // itself cannot panic) retires this worker instead
                    // of panicking the pool down one thread at a time.
                    let recv = rx.lock().map(|g| g.recv());
                    let task = match recv {
                        Ok(Ok(t)) => t,
                        Ok(Err(_)) | Err(_) => break,
                    };
                    let output = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                        dispatch(task.conn, task.line, task.received)
                    }))
                    .unwrap_or_else(|_| {
                        format!(
                            "{}\n",
                            api::render_v1(Err(ApiError::internal("request handler panicked")))
                        )
                    });
                    if done_tx.send(Completion { conn: task.conn, output }).is_err() {
                        break;
                    }
                    waker.wake();
                })
            })
            .collect();
        Executor { tx: Some(tx), workers }
    }

    fn submit(&self, conn: u64, line: String) {
        if let Some(tx) = &self.tx {
            let _ = tx.send(Task { conn, line, received: Instant::now() });
        }
    }

    /// Closes the queue and joins every worker (waiting out a dispatch
    /// still running).
    fn shutdown(&mut self) {
        self.tx = None;
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
    }
}

// ---------------------------------------------------------------------
// The reactor itself
// ---------------------------------------------------------------------

const LISTENER_TOKEN: u64 = 0;
const WAKER_TOKEN: u64 = 1;
const FIRST_CONN_TOKEN: u64 = 2;

/// Reactor tuning, filled from [`crate::service::ServerConfig`].
pub struct ReactorConfig {
    /// Live-connection cap; accepts beyond it are shed.
    pub max_connections: usize,
    /// Partial-line completion deadline.
    pub read_timeout: Duration,
    /// Shutdown grace for in-flight requests.
    pub drain_window: Duration,
    /// Executor pool size.
    pub executor_threads: usize,
    /// Per-line content cap ([`crate::service::MAX_REQUEST_BYTES`];
    /// configurable so tests can hit it without 256 MiB lines).
    pub max_request_bytes: usize,
}

/// One connection's state machine.
struct Conn {
    stream: TcpStream,
    scanner: LineScanner,
    outbuf: Vec<u8>,
    written: usize,
    /// A dispatch for this connection is on the executor; reads and
    /// further line extraction pause until its completion.
    busy: bool,
    /// No more bytes will be read (peer EOF, a framing error, or the
    /// drain window); buffered work still completes.
    read_closed: bool,
    /// Close as soon as the write buffer flushes.
    close_after_flush: bool,
    /// Hard transport failure; close immediately.
    dead: bool,
    /// Armed while an incomplete line is buffered.
    deadline: Option<Instant>,
    /// What the poller currently watches for this socket.
    registered: bool,
    interest: (bool, bool),
}

pub struct Reactor {
    listener: Option<TcpListener>,
    poller: Poller,
    wake_reader: PipeReader,
    conns: HashMap<u64, Conn>,
    next_token: u64,
    cfg: ReactorConfig,
    metrics: Arc<Metrics>,
    executor: Executor,
    done_rx: mpsc::Receiver<Completion>,
    stop: Arc<AtomicBool>,
    drain_deadline: Option<Instant>,
}

impl Reactor {
    /// Builds the reactor around a bound listener. Returns the
    /// [`Waker`] the owner uses to interrupt [`Reactor::run`] after
    /// raising `stop`.
    pub fn new(
        listener: TcpListener,
        cfg: ReactorConfig,
        metrics: Arc<Metrics>,
        dispatch: Dispatch,
        stop: Arc<AtomicBool>,
    ) -> io::Result<(Reactor, Waker)> {
        listener.set_nonblocking(true)?;
        let mut poller = Poller::new()?;
        let (wake_reader, waker) = new_waker()?;
        poller.register(listener.as_raw_fd(), LISTENER_TOKEN, true, false)?;
        poller.register(wake_reader.fd, WAKER_TOKEN, true, false)?;
        let (done_tx, done_rx) = mpsc::channel();
        let executor = Executor::new(cfg.executor_threads, dispatch, done_tx, waker.clone());
        let reactor = Reactor {
            listener: Some(listener),
            poller,
            wake_reader,
            conns: HashMap::new(),
            next_token: FIRST_CONN_TOKEN,
            cfg,
            metrics,
            executor,
            done_rx,
            stop,
            drain_deadline: None,
        };
        Ok((reactor, waker))
    }

    /// The readiness loop. Returns once shutdown has drained (or cut)
    /// every connection and the executor has been joined.
    pub fn run(mut self) {
        let mut events: Vec<Event> = Vec::new();
        loop {
            let timeout = self.next_timeout();
            if self.poller.wait(timeout, &mut events).is_err() {
                break;
            }
            let iter_start = Instant::now();
            // Connection events first, the listener last: a slot freed
            // in this very batch is available to an accept in it.
            for ev in &events {
                match ev.token {
                    WAKER_TOKEN => self.wake_reader.drain(),
                    LISTENER_TOKEN => {}
                    token => self.conn_ready(token, *ev),
                }
            }
            if events.iter().any(|ev| ev.token == LISTENER_TOKEN) {
                self.accept_ready();
            }
            self.drain_completions();
            self.expire_deadlines();
            if self.stop.load(Ordering::SeqCst) && self.drain_deadline.is_none() {
                self.begin_drain();
            }
            if let Some(dd) = self.drain_deadline {
                if Instant::now() >= dd {
                    for token in self.conns.keys().copied().collect::<Vec<_>>() {
                        self.close_conn(token);
                    }
                }
                if self.conns.is_empty() {
                    break;
                }
            }
            self.metrics.reactor_iterations.observe(iter_start.elapsed());
        }
        self.executor.shutdown();
    }

    /// The next wait's timeout: the nearest read deadline or the drain
    /// deadline; `None` (block indefinitely) when neither is armed —
    /// an idle reactor takes zero wakeups.
    fn next_timeout(&self) -> Option<Duration> {
        let mut next: Option<Instant> = self.drain_deadline;
        for c in self.conns.values() {
            if let Some(d) = c.deadline {
                next = Some(next.map_or(d, |n| n.min(d)));
            }
        }
        next.map(|d| d.saturating_duration_since(Instant::now()))
    }

    // -- accept path --------------------------------------------------

    fn accept_ready(&mut self) {
        loop {
            let Some(listener) = &self.listener else { return };
            match listener.accept() {
                Ok((stream, _)) => self.admit(stream),
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => break,
            }
        }
    }

    fn admit(&mut self, stream: TcpStream) {
        if self.stop.load(Ordering::SeqCst) {
            self.refuse(stream, ApiError::shutting_down("server is shutting down"));
            return;
        }
        if self.conns.len() >= self.cfg.max_connections {
            self.metrics.connections_shed.fetch_add(1, Ordering::Relaxed);
            if log_enabled(LogLevel::Warn) {
                log_event(
                    LogLevel::Warn,
                    "connection shed",
                    &[("active", Json::from(self.conns.len()))],
                );
            }
            self.refuse(
                stream,
                ApiError::overloaded("server is serving its maximum number of connections"),
            );
            return;
        }
        if stream.set_nonblocking(true).is_err() {
            return;
        }
        let token = self.next_token;
        self.next_token += 1;
        if self.poller.register(stream.as_raw_fd(), token, true, false).is_err() {
            return;
        }
        self.metrics.connections_total.fetch_add(1, Ordering::Relaxed);
        self.metrics.connections_active.fetch_add(1, Ordering::Relaxed);
        if log_enabled(LogLevel::Debug) {
            log_event(LogLevel::Debug, "connection opened", &[("conn", Json::from(token))]);
        }
        self.conns.insert(
            token,
            Conn {
                stream,
                scanner: LineScanner::default(),
                outbuf: Vec::new(),
                written: 0,
                busy: false,
                read_closed: false,
                close_after_flush: false,
                dead: false,
                deadline: None,
                registered: true,
                interest: (true, false),
            },
        );
    }

    /// Answers a connection that will not be served with one v1-shaped
    /// error line, then drops it. Best-effort: the socket is fresh, so
    /// the short line fits its send buffer without blocking.
    fn refuse(&self, mut stream: TcpStream, err: ApiError) {
        self.metrics.record_error(err.code);
        let out = format!("{}\n", api::render_v1(Err(err)));
        self.metrics.bytes_out.fetch_add(out.len() as u64, Ordering::Relaxed);
        let _ = stream.set_nonblocking(false);
        let _ = stream.write_all(out.as_bytes());
    }

    // -- per-connection I/O -------------------------------------------

    fn conn_ready(&mut self, token: u64, ev: Event) {
        if ev.readable || ev.hangup {
            self.read_ready(token);
            self.pump(token);
        }
        if ev.writable || ev.hangup {
            self.flush(token);
        }
        self.finish_io(token);
    }

    /// Reads everything currently available into the scanner.
    fn read_ready(&mut self, token: u64) {
        let Some(conn) = self.conns.get_mut(&token) else { return };
        if conn.read_closed || conn.dead {
            return;
        }
        let mut chunk = [0u8; 16 * 1024];
        loop {
            match conn.stream.read(&mut chunk) {
                Ok(0) => {
                    conn.read_closed = true;
                    break;
                }
                // PANIC: `read` returns at most the buffer's length.
                Ok(n) => conn.scanner.push(&chunk[..n]),
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    conn.dead = true;
                    break;
                }
            }
        }
    }

    /// Extracts buffered lines until a dispatch goes in flight, more
    /// bytes are needed, or the framing poisons. Maintains the
    /// invariant that an idle (`!busy`) connection has no complete
    /// line buffered.
    fn pump(&mut self, token: u64) {
        loop {
            let Some(conn) = self.conns.get_mut(&token) else { return };
            if conn.busy || conn.close_after_flush || conn.dead {
                return;
            }
            match conn.scanner.next_line(self.cfg.max_request_bytes) {
                Ok(Some(line)) => {
                    // Every consumed line counts, blank ones included —
                    // the old handler skipped blanks before the
                    // increment and under-counted.
                    self.metrics.bytes_in.fetch_add(line.len() as u64 + 1, Ordering::Relaxed);
                    if line.trim().is_empty() {
                        continue;
                    }
                    conn.busy = true;
                    self.executor.submit(token, line);
                    return;
                }
                Ok(None) => return,
                Err(e) => {
                    // The framing is unrecoverable and the line never
                    // parsed, so no envelope is known — framing errors
                    // are always v1-shaped (documented in PROTOCOL.md).
                    let err = framing_error(&e);
                    self.metrics.record_error(err.code);
                    self.metrics.record_request("invalid", Duration::ZERO);
                    if log_enabled(LogLevel::Warn) {
                        log_event(
                            LogLevel::Warn,
                            "framing error",
                            &[("conn", Json::from(token)), ("code", Json::from(err.code.as_str()))],
                        );
                    }
                    let out = format!("{}\n", api::render_v1(Err(err)));
                    self.metrics.bytes_out.fetch_add(out.len() as u64, Ordering::Relaxed);
                    conn.outbuf.extend_from_slice(out.as_bytes());
                    conn.close_after_flush = true;
                    conn.read_closed = true;
                    return;
                }
            }
        }
    }

    /// Writes as much buffered output as the socket accepts,
    /// continuing a partial write where it left off.
    fn flush(&mut self, token: u64) {
        let Some(conn) = self.conns.get_mut(&token) else { return };
        while conn.written < conn.outbuf.len() {
            // PANIC: the loop condition bounds `written` by the buffer
            // length, so the open range is valid.
            match conn.stream.write(&conn.outbuf[conn.written..]) {
                Ok(0) => {
                    conn.dead = true;
                    break;
                }
                Ok(n) => conn.written += n,
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    conn.dead = true;
                    break;
                }
            }
        }
        if conn.written > 0 && conn.written == conn.outbuf.len() {
            conn.outbuf.clear();
            conn.written = 0;
        }
    }

    /// Applies a completed dispatch, then immediately pumps the next
    /// pipelined line and flushes.
    fn drain_completions(&mut self) {
        while let Ok(done) = self.done_rx.try_recv() {
            // The connection may have died while its dispatch ran; the
            // response is then dropped on the floor.
            if let Some(conn) = self.conns.get_mut(&done.conn) {
                conn.outbuf.extend_from_slice(done.output.as_bytes());
                conn.busy = false;
            }
            self.pump(done.conn);
            self.flush(done.conn);
            self.finish_io(done.conn);
        }
    }

    /// Closes connections whose partial request line outlived the read
    /// deadline, answering `bad-request` first.
    fn expire_deadlines(&mut self) {
        let now = Instant::now();
        let expired: Vec<u64> = self
            .conns
            .iter()
            .filter(|(_, c)| c.deadline.is_some_and(|d| d <= now))
            .map(|(t, _)| *t)
            .collect();
        for token in expired {
            {
                let Some(conn) = self.conns.get_mut(&token) else { continue };
                conn.deadline = None;
                conn.read_closed = true;
                conn.close_after_flush = true;
                let err = ApiError::bad_request("request read timed out before the line completed");
                self.metrics.deadline_closes.fetch_add(1, Ordering::Relaxed);
                self.metrics.record_error(err.code);
                if log_enabled(LogLevel::Warn) {
                    log_event(
                        LogLevel::Warn,
                        "read deadline exceeded",
                        &[("conn", Json::from(token))],
                    );
                }
                let out = format!("{}\n", api::render_v1(Err(err)));
                self.metrics.bytes_out.fetch_add(out.len() as u64, Ordering::Relaxed);
                conn.outbuf.extend_from_slice(out.as_bytes());
            }
            self.flush(token);
            self.finish_io(token);
        }
    }

    /// Enters the drain window: the listener closes, partial lines are
    /// discarded, already-received requests keep executing, idle
    /// connections close now.
    fn begin_drain(&mut self) {
        self.drain_deadline = Some(Instant::now() + self.cfg.drain_window);
        if let Some(listener) = self.listener.take() {
            let _ = self.poller.deregister(listener.as_raw_fd());
        }
        if log_enabled(LogLevel::Info) {
            log_event(
                LogLevel::Info,
                "draining connections",
                &[("active", Json::from(self.conns.len()))],
            );
        }
        for token in self.conns.keys().copied().collect::<Vec<_>>() {
            // One final sweep of the kernel buffer so a request fully
            // sent before shutdown is answered even if the reactor had
            // not read it yet.
            self.read_ready(token);
            self.pump(token);
            if let Some(conn) = self.conns.get_mut(&token) {
                conn.read_closed = true;
                conn.scanner.discard_partial();
                conn.deadline = None;
            }
            self.flush(token);
            self.finish_io(token);
        }
    }

    /// Settles a connection after I/O: close it if it is finished (or
    /// dead), otherwise re-arm the deadline and poller interest.
    fn finish_io(&mut self, token: u64) {
        let close = {
            let Some(conn) = self.conns.get_mut(&token) else { return };
            let flushed = conn.written >= conn.outbuf.len();
            let close = conn.dead
                || (conn.close_after_flush && flushed)
                || (conn.read_closed && flushed && !conn.busy);
            if !close {
                // Deadline: armed when a partial line is first
                // buffered, kept (not extended) while it drips,
                // cleared once no partial is pending.
                let awaiting = !conn.busy && !conn.read_closed && conn.scanner.awaiting_line();
                if !awaiting {
                    conn.deadline = None;
                } else if conn.deadline.is_none() {
                    conn.deadline = Some(Instant::now() + self.cfg.read_timeout);
                }
            }
            close
        };
        if close {
            self.close_conn(token);
            return;
        }
        self.sync_interest(token);
    }

    /// Matches the poller registration to what the state machine can
    /// use. A connection needing neither reads nor writes (dispatch in
    /// flight, nothing buffered) is deregistered entirely — both
    /// backends report hangups unconditionally on registered fds, and
    /// a half-dead peer must not spin the loop while its request runs.
    fn sync_interest(&mut self, token: u64) {
        let Some(conn) = self.conns.get_mut(&token) else { return };
        let want_read = !conn.read_closed && !conn.busy && !conn.close_after_flush;
        let want_write = conn.written < conn.outbuf.len();
        let want = (want_read, want_write);
        let fd = conn.stream.as_raw_fd();
        let result = if want == (false, false) {
            if conn.registered {
                conn.registered = false;
                self.poller.deregister(fd)
            } else {
                Ok(())
            }
        } else if !conn.registered {
            conn.registered = true;
            conn.interest = want;
            self.poller.register(fd, token, want.0, want.1)
        } else if conn.interest != want {
            conn.interest = want;
            self.poller.modify(fd, token, want.0, want.1)
        } else {
            Ok(())
        };
        if result.is_err() {
            self.close_conn(token);
        }
    }

    fn close_conn(&mut self, token: u64) {
        if let Some(conn) = self.conns.remove(&token) {
            if conn.registered {
                let _ = self.poller.deregister(conn.stream.as_raw_fd());
            }
            self.metrics.connections_active.fetch_sub(1, Ordering::Relaxed);
            if log_enabled(LogLevel::Debug) {
                log_event(LogLevel::Debug, "connection closed", &[("conn", Json::from(token))]);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api::ErrorCode;

    /// Feeds `input` to a scanner in `chunk`-sized pieces and pulls
    /// the first line — the incremental analogue of the old
    /// `read_line_bounded` tests, chunk boundaries and all.
    fn scan_first(input: &str, chunk: usize, max: usize) -> io::Result<Option<String>> {
        let mut scanner = LineScanner::default();
        let bytes = input.as_bytes();
        let mut offset = 0;
        while offset < bytes.len() {
            let end = (offset + chunk).min(bytes.len());
            scanner.push(&bytes[offset..end]);
            offset = end;
            match scanner.next_line(max) {
                Ok(None) => continue,
                other => return other,
            }
        }
        Ok(None)
    }

    #[test]
    fn scanner_bound_is_exact_at_the_limit() {
        // Content of exactly `max` bytes passes; one more fails —
        // regardless of where the chunk boundaries fall.
        for chunk in [1, 2, 3, 5, 8, 64] {
            let at = scan_first("aaaaaaaa\nrest", chunk, 8).unwrap();
            assert_eq!(at.as_deref(), Some("aaaaaaaa"), "chunk {chunk}");
            let over = scan_first("aaaaaaaaa\nrest", chunk, 8);
            assert!(over.is_err(), "chunk {chunk}: 9 bytes must exceed max 8");
        }
    }

    #[test]
    fn scanner_rejects_line_terminating_in_next_chunk() {
        // The terminator arriving in a later chunk must not defeat the
        // bound: 5 content bytes > max 4 fails however it is sliced.
        assert!(scan_first("aaaaa\n", 8, 4).is_err());
        assert!(scan_first("aaa", 3, 4).unwrap().is_none()); // incomplete, no error
        assert!(scan_first("aaaaa\n", 3, 4).is_err());
        assert_eq!(scan_first("aaaa\n", 3, 4).unwrap().as_deref(), Some("aaaa"));
    }

    #[test]
    fn scanner_streams_lines_and_tracks_partials() {
        let mut s = LineScanner::default();
        s.push(b"one\ntwo\nthr");
        assert_eq!(s.next_line(100).unwrap().as_deref(), Some("one"));
        assert_eq!(s.next_line(100).unwrap().as_deref(), Some("two"));
        assert_eq!(s.next_line(100).unwrap(), None);
        assert!(s.awaiting_line(), "a partial line is buffered");
        s.push(b"ee\n");
        assert_eq!(s.next_line(100).unwrap().as_deref(), Some("three"));
        assert_eq!(s.next_line(100).unwrap(), None);
        assert!(!s.awaiting_line(), "buffer is empty between requests");
    }

    #[test]
    fn scanner_discard_partial_keeps_complete_lines() {
        let mut s = LineScanner::default();
        s.push(b"keep\nhalf");
        s.discard_partial();
        assert_eq!(s.next_line(100).unwrap().as_deref(), Some("keep"));
        assert_eq!(s.next_line(100).unwrap(), None);
        assert!(!s.awaiting_line());
        // A buffer that is all partial clears entirely.
        let mut s = LineScanner::default();
        s.push(b"half");
        assert_eq!(s.next_line(100).unwrap(), None);
        s.discard_partial();
        assert!(!s.awaiting_line());
    }

    #[test]
    fn framing_errors_carry_the_documented_codes() {
        // The mapping is pinned here because hitting it over the wire
        // needs a line past MAX_REQUEST_BYTES (256 MiB).
        let oversized = scan_first("aaaaa\n", 8, 4).unwrap_err();
        assert_eq!(framing_error(&oversized).code, ErrorCode::PayloadTooLarge);
        assert_eq!(framing_error(&oversized).message, "request line exceeds the size limit");
        let mut s = LineScanner::default();
        s.push(&[0xFF, 0xFE, b'\n']);
        let not_utf8 = s.next_line(100).unwrap_err();
        assert_eq!(not_utf8.kind(), io::ErrorKind::InvalidData);
        assert_eq!(framing_error(&not_utf8).code, ErrorCode::BadRequest);
        let broken = io::Error::new(io::ErrorKind::ConnectionReset, "reset");
        assert_eq!(framing_error(&broken).code, ErrorCode::Io);
        // And the v1 message is byte-identical to the pre-reactor
        // shape (the error string was the io::Error text verbatim).
        assert_eq!(
            api::render_v1(Err(framing_error(&oversized))).to_string(),
            r#"{"error":"request line exceeds the size limit","ok":false}"#
        );
    }

    /// Exercises a poller backend directly through a self-pipe:
    /// readiness, token delivery, timeouts, and deregistration.
    fn poller_roundtrip(force_poll: bool) {
        let mut poller = Poller::with_backend(force_poll).unwrap();
        let (reader, waker) = new_waker().unwrap();
        poller.register(reader.fd, 7, true, false).unwrap();
        let mut events = Vec::new();
        // Nothing pending: a finite wait times out empty.
        poller.wait(Some(Duration::from_millis(5)), &mut events).unwrap();
        assert!(events.is_empty(), "no event before the wake");
        waker.wake();
        poller.wait(Some(Duration::from_secs(5)), &mut events).unwrap();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].token, 7);
        assert!(events[0].readable);
        reader.drain();
        // Deregistered fds never fire again.
        poller.deregister(reader.fd).unwrap();
        waker.wake();
        poller.wait(Some(Duration::from_millis(5)), &mut events).unwrap();
        assert!(events.is_empty(), "deregistered fd must not fire");
    }

    #[test]
    fn poll_fallback_backend_delivers_events() {
        poller_roundtrip(true);
    }

    #[test]
    fn default_backend_delivers_events() {
        poller_roundtrip(false);
    }

    #[test]
    fn wait_timeouts_round_up_not_down() {
        assert_eq!(timeout_ms(None), -1);
        assert_eq!(timeout_ms(Some(Duration::ZERO)), 0);
        assert_eq!(timeout_ms(Some(Duration::from_micros(100))), 1, "sub-ms waits must not spin");
        assert_eq!(timeout_ms(Some(Duration::from_millis(250))), 250);
        assert_eq!(timeout_ms(Some(Duration::from_secs(1 << 40))), i32::MAX);
    }
}

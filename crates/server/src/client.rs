//! A small blocking JSON-lines client, used by the integration tests
//! and the `trajdp submit` CLI verb.

use crate::json::{self, Json};
use std::io::{BufRead, BufReader, Write};
use std::net::{TcpStream, ToSocketAddrs};

/// A connected client. One request/response pair per call; the
//  underlying connection is reused across calls.
pub struct Client {
    writer: TcpStream,
    reader: BufReader<TcpStream>,
}

impl Client {
    /// Connects to a running server.
    pub fn connect(addr: impl ToSocketAddrs) -> std::io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        let writer = stream.try_clone()?;
        Ok(Client { writer, reader: BufReader::new(stream) })
    }

    /// Sends one raw request line and reads one response object.
    pub fn request_line(&mut self, line: &str) -> Result<Json, String> {
        debug_assert!(!line.contains('\n'), "requests are single lines");
        self.writer
            .write_all(format!("{line}\n").as_bytes())
            .and_then(|()| self.writer.flush())
            .map_err(|e| format!("send failed: {e}"))?;
        let mut response = String::new();
        let n = self.reader.read_line(&mut response).map_err(|e| format!("receive failed: {e}"))?;
        if n == 0 {
            return Err("server closed the connection".to_string());
        }
        json::parse(response.trim_end()).map_err(|e| format!("bad response: {e}"))
    }

    /// Sends a request object.
    pub fn request(&mut self, req: &Json) -> Result<Json, String> {
        self.request_line(&req.to_string())
    }

    /// Streams a dataset to the server in pieces of at most
    /// `chunk_bytes` via `upload` / `chunk` / `commit`, returning the
    /// committed `ds-<id>` handle. The commit acknowledgement must
    /// account for every byte sent, or the transfer errors.
    pub fn upload_dataset(&mut self, csv: &str, chunk_bytes: usize) -> Result<String, String> {
        let chunk_bytes = chunk_bytes.max(1);
        let opened = self.request(&Json::obj([("cmd", Json::from("upload"))]))?;
        let handle = expect_ok(&opened)?
            .get("dataset")
            .and_then(Json::as_str)
            .ok_or("upload response carries no dataset handle")?
            .to_string();
        let mut offset = 0;
        while offset < csv.len() {
            let mut end = crate::store::floor_char_boundary(csv, offset + chunk_bytes);
            if end <= offset {
                // Budget smaller than one scalar: send it whole anyway.
                end = offset + csv[offset..].chars().next().map_or(1, char::len_utf8);
            }
            let sent = self.request(&Json::obj([
                ("cmd", Json::from("chunk")),
                ("dataset", Json::from(handle.clone())),
                ("data", Json::from(&csv[offset..end])),
            ]))?;
            expect_ok(&sent)?;
            offset = end;
        }
        let committed = self.request(&Json::obj([
            ("cmd", Json::from("commit")),
            ("dataset", Json::from(handle.clone())),
        ]))?;
        let bytes = expect_ok(&committed)?.get("bytes").and_then(Json::as_u64);
        if bytes != Some(csv.len() as u64) {
            return Err(format!("commit acknowledged {bytes:?} bytes for {} sent", csv.len()));
        }
        Ok(handle)
    }

    /// Frees a dataset handle server-side, returning the freed byte
    /// count. Fails with the server's distinct error when the handle is
    /// pinned by a queued/running job.
    pub fn delete_dataset(&mut self, handle: &str) -> Result<u64, String> {
        let response = self.request(&Json::obj([
            ("cmd", Json::from("delete")),
            ("dataset", Json::from(handle)),
        ]))?;
        expect_ok(&response)?
            .get("bytes")
            .and_then(Json::as_u64)
            .ok_or_else(|| "delete response carries no byte count".to_string())
    }

    /// Reassembles a committed dataset by walking `download` pieces to
    /// eof.
    pub fn download_dataset(&mut self, handle: &str) -> Result<String, String> {
        let mut out = String::new();
        loop {
            let piece = self.request(&Json::obj([
                ("cmd", Json::from("download")),
                ("dataset", Json::from(handle)),
                ("offset", Json::from(out.len())),
            ]))?;
            let piece = expect_ok(&piece)?;
            let data =
                piece.get("data").and_then(Json::as_str).ok_or("download piece carries no data")?;
            out.push_str(data);
            match piece.get("eof").and_then(Json::as_bool) {
                Some(true) => return Ok(out),
                Some(false) if !data.is_empty() => {}
                _ => return Err("download made no progress".to_string()),
            }
        }
    }
}

/// Fails with the server's error message unless the response says ok.
fn expect_ok(response: &Json) -> Result<&Json, String> {
    if response.get("ok") == Some(&Json::Bool(true)) {
        Ok(response)
    } else {
        Err(response
            .get("error")
            .and_then(Json::as_str)
            .unwrap_or("request failed without an error message")
            .to_string())
    }
}

//! A small blocking JSON-lines client with a typed API, used by the
//! integration tests and the `trajdp` CLI verbs.
//!
//! Two layers:
//!
//! * **Raw**: [`Client::request_line`] / [`Client::request`] send one
//!   line verbatim and hand back the parsed response object — the
//!   passthrough the `trajdp submit` verb uses for user-authored
//!   request files, whatever protocol version they speak.
//! * **Typed**: [`Client::health`], [`Client::info`],
//!   [`Client::submit`], [`Client::status`],
//!   [`Client::upload_dataset`], [`Client::download_dataset`],
//!   [`Client::delete_dataset`] speak protocol v2 (every call carries a
//!   fresh correlation id and verifies its echo), return typed structs,
//!   and fail with [`ApiError`] — the server's stable
//!   [`ErrorCode`] on a rejected request, or
//!   [`ErrorCode::Transport`] when the exchange itself failed — the
//!   connection (with the underlying [`std::io::ErrorKind`] named in
//!   the message, so "connection refused" and "broken pipe" are
//!   distinguishable) or a response that violates the protocol
//!   (unparseable body, missing members, a wrong id echo).

use crate::api::{ApiError, ErrorCode};
use crate::json::{self, Json};
use crate::obs::MetricsSnapshot;
use std::collections::BTreeMap;
use std::io::{BufRead, BufReader, Write};
use std::net::{TcpStream, ToSocketAddrs};

/// A connected client. One request/response pair per call; the
/// underlying connection is reused across calls.
pub struct Client {
    writer: TcpStream,
    reader: BufReader<TcpStream>,
    /// Correlation-id counter for typed (v2) calls.
    next_id: u64,
    /// `"name:token"` credential stamped on every typed call (the
    /// wire's `"tenant"` member) when the server runs with `--tenants`.
    tenant: Option<String>,
}

/// `health` — liveness plus coarse load.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Health {
    /// Jobs not yet finished.
    pub outstanding_jobs: u64,
    /// Dataset handles currently held.
    pub stored_datasets: u64,
}

/// `info` — the server's identity, supported protocol versions, and
/// every limit a client would otherwise have to guess.
// No `Eq`: `eps_budget` is a float.
#[derive(Debug, Clone, PartialEq)]
pub struct ServerInfo {
    /// Server software version.
    pub version: String,
    /// Protocol versions the server accepts (`[1, 2]`).
    pub protocol_versions: Vec<u64>,
    /// Job-queue worker threads.
    pub workers: u64,
    /// Dataset-store capacity (handles held at once).
    pub max_datasets: u64,
    /// Concurrent-connection cap; accepts beyond it are shed with
    /// [`ErrorCode::Overloaded`].
    pub max_connections: u64,
    /// Per-connection read deadline, seconds: a partial request line
    /// must complete within this window or the connection is closed.
    pub read_timeout_secs: u64,
    /// Per-dataset byte cap.
    pub max_dataset_bytes: u64,
    /// Per-request-line byte cap (the framing limit).
    pub max_request_bytes: u64,
    /// Hard cap on one `download` piece.
    pub max_download_chunk_bytes: u64,
    /// Piece size when `download` names no `max_bytes`.
    pub default_download_chunk_bytes: u64,
    /// Cap on `gen`'s `size * len`.
    pub max_gen_points: u64,
    /// Cap on the signature size `m`.
    pub max_m: u64,
    /// Cap on per-request worker threads.
    pub max_workers: u64,
    /// Seconds since this server instance started.
    pub uptime_secs: u64,
    /// Unix epoch seconds at server start.
    pub started_at: u64,
    /// Whether the server runs with a durable `--state-dir`.
    pub state_dir: bool,
    /// Registered tenants (`--tenants`); 0 means the server runs open.
    pub tenants: u64,
    /// The server's default per-dataset privacy budget
    /// (`--eps-budget`), when one is configured.
    pub eps_budget: Option<f64>,
}

/// A successfully enqueued async `anonymize`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SubmitReceipt {
    /// The job id to poll with [`Client::status`].
    pub job: String,
}

/// Lifecycle phase of a job, as reported by `status`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobPhase {
    /// Waiting for a worker.
    Queued,
    /// A worker is executing it.
    Running,
    /// Finished; [`JobStatus::result`] holds the recorded outcome.
    Done,
}

/// `status` — a job's phase, with its result once done.
#[derive(Debug, Clone, PartialEq)]
pub struct JobStatus {
    /// The job id.
    pub job: String,
    /// Current phase.
    pub phase: JobPhase,
    /// The finished job's recorded result: a v1-shaped response body
    /// whose own `ok` member says whether the *job* succeeded.
    /// `None` until [`JobPhase::Done`].
    pub result: Option<Json>,
    /// Wall-clock from submit to done, seconds. `None` until done —
    /// and legitimately `None` on a done job replayed from the journal
    /// (timings are in-memory observability, never journaled).
    pub duration_secs: Option<f64>,
    /// Per-phase wall-clock of a done `anonymize` job (the rendered
    /// [`crate::obs::PhaseTimings`] object), when the server has it.
    pub timings: Option<Json>,
}

/// A dataset handle acknowledgement (`commit` / `delete`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DatasetInfo {
    /// The handle.
    pub dataset: String,
    /// Its size in bytes (freed bytes, for `delete`).
    pub bytes: u64,
}

/// Transport-coded "the response is not what the protocol promises".
fn malformed(what: &str, detail: impl std::fmt::Display) -> ApiError {
    ApiError::transport(format!("malformed {what} response: {detail}"))
}

/// A required string member of a response body.
fn want_str(v: &Json, what: &str, key: &str) -> Result<String, ApiError> {
    v.get(key)
        .and_then(Json::as_str)
        .map(str::to_string)
        .ok_or_else(|| malformed(what, format_args!("missing string member {key:?}")))
}

/// A required integer member of a response body.
fn want_u64(v: &Json, what: &str, key: &str) -> Result<u64, ApiError> {
    v.get(key)
        .and_then(Json::as_u64)
        .ok_or_else(|| malformed(what, format_args!("missing integer member {key:?}")))
}

/// A required boolean member of a response body.
fn want_bool(v: &Json, what: &str, key: &str) -> Result<bool, ApiError> {
    v.get(key)
        .and_then(Json::as_bool)
        .ok_or_else(|| malformed(what, format_args!("missing boolean member {key:?}")))
}

impl Health {
    /// Parses a `health` response body — inverse of the server's
    /// serialization of [`crate::api::Response::Health`].
    pub fn from_response(v: &Json) -> Result<Health, ApiError> {
        Ok(Health {
            outstanding_jobs: want_u64(v, "health", "outstanding_jobs")?,
            stored_datasets: want_u64(v, "health", "stored_datasets")?,
        })
    }
}

impl ServerInfo {
    /// Parses an `info` response body.
    pub fn from_response(v: &Json) -> Result<ServerInfo, ApiError> {
        let versions = match v.get("protocol_versions") {
            Some(Json::Arr(items)) => items
                .iter()
                .map(|item| {
                    item.as_u64().ok_or_else(|| {
                        malformed("info", "non-integer entry in \"protocol_versions\"")
                    })
                })
                .collect::<Result<Vec<u64>, ApiError>>()?,
            _ => return Err(malformed("info", "missing array member \"protocol_versions\"")),
        };
        Ok(ServerInfo {
            version: want_str(v, "info", "version")?,
            protocol_versions: versions,
            workers: want_u64(v, "info", "workers")?,
            max_datasets: want_u64(v, "info", "max_datasets")?,
            max_connections: want_u64(v, "info", "max_connections")?,
            read_timeout_secs: want_u64(v, "info", "read_timeout_secs")?,
            max_dataset_bytes: want_u64(v, "info", "max_dataset_bytes")?,
            max_request_bytes: want_u64(v, "info", "max_request_bytes")?,
            max_download_chunk_bytes: want_u64(v, "info", "max_download_chunk_bytes")?,
            default_download_chunk_bytes: want_u64(v, "info", "default_download_chunk_bytes")?,
            max_gen_points: want_u64(v, "info", "max_gen_points")?,
            max_m: want_u64(v, "info", "max_m")?,
            max_workers: want_u64(v, "info", "max_workers")?,
            uptime_secs: want_u64(v, "info", "uptime_secs")?,
            started_at: want_u64(v, "info", "started_at")?,
            state_dir: want_bool(v, "info", "state_dir")?,
            tenants: want_u64(v, "info", "tenants")?,
            // Absent unless the server was started with --eps-budget.
            eps_budget: v.get("eps_budget").and_then(Json::as_f64),
        })
    }
}

impl SubmitReceipt {
    /// Parses an async-anonymize acceptance.
    pub fn from_response(v: &Json) -> Result<SubmitReceipt, ApiError> {
        Ok(SubmitReceipt { job: want_str(v, "submit", "job")? })
    }
}

impl JobStatus {
    /// Parses a v2 `status` response body (the finished result nests
    /// under `"result"`).
    pub fn from_response(v: &Json) -> Result<JobStatus, ApiError> {
        let job = want_str(v, "status", "job")?;
        let phase = match want_str(v, "status", "state")?.as_str() {
            "queued" => JobPhase::Queued,
            "running" => JobPhase::Running,
            "done" => JobPhase::Done,
            other => return Err(malformed("status", format_args!("unknown state {other:?}"))),
        };
        let result = v.get("result").cloned();
        if phase == JobPhase::Done && result.is_none() {
            return Err(malformed("status", "done without a result member"));
        }
        Ok(JobStatus {
            job,
            phase,
            result,
            duration_secs: v.get("duration_secs").and_then(Json::as_f64),
            timings: v.get("timings").cloned(),
        })
    }
}

impl DatasetInfo {
    /// Parses a `commit`/`delete` acknowledgement.
    pub fn from_response(v: &Json) -> Result<DatasetInfo, ApiError> {
        Ok(DatasetInfo {
            dataset: want_str(v, "dataset", "dataset")?,
            bytes: want_u64(v, "dataset", "bytes")?,
        })
    }
}

impl Client {
    /// Connects to a running server.
    pub fn connect(addr: impl ToSocketAddrs) -> std::io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        let writer = stream.try_clone()?;
        Ok(Client { writer, reader: BufReader::new(stream), next_id: 0, tenant: None })
    }

    /// Stamps every subsequent typed call with a `"name:token"` tenant
    /// credential (the v2 envelope's `"tenant"` member). Raw
    /// [`Client::request_line`] sends are never rewritten — a
    /// user-authored request file speaks for itself.
    pub fn with_tenant(mut self, credential: impl Into<String>) -> Client {
        self.tenant = Some(credential.into());
        self
    }

    /// Sends one raw request line and reads one response object. I/O
    /// failures surface the underlying [`std::io::ErrorKind`] in the
    /// message — a timeout, a refused connection, and a broken pipe
    /// must be tellable apart without string-matching os error text.
    pub fn request_line(&mut self, line: &str) -> Result<Json, ApiError> {
        debug_assert!(!line.contains('\n'), "requests are single lines");
        self.writer
            .write_all(format!("{line}\n").as_bytes())
            .and_then(|()| self.writer.flush())
            .map_err(|e| ApiError::transport(format!("send failed ({:?}): {e}", e.kind())))?;
        let mut response = String::new();
        let n = self
            .reader
            .read_line(&mut response)
            .map_err(|e| ApiError::transport(format!("receive failed ({:?}): {e}", e.kind())))?;
        if n == 0 {
            return Err(ApiError::transport("server closed the connection"));
        }
        json::parse(response.trim_end())
            .map_err(|e| ApiError::transport(format!("bad response: {e}")))
    }

    /// Sends a request object verbatim.
    pub fn request(&mut self, req: &Json) -> Result<Json, ApiError> {
        self.request_line(&req.to_string())
    }

    /// One typed v2 exchange: stamps the request with `"v": 2` and a
    /// fresh correlation id, verifies the id echo, and converts a
    /// `{"ok":false}` envelope into the typed [`ApiError`] it carries.
    fn call(&mut self, mut obj: BTreeMap<String, Json>) -> Result<Json, ApiError> {
        self.next_id += 1;
        let id = format!("c-{}", self.next_id);
        obj.insert("v".to_string(), Json::from(2u64));
        obj.insert("id".to_string(), Json::from(id.as_str()));
        if let Some(tenant) = &self.tenant {
            obj.insert("tenant".to_string(), Json::from(tenant.clone()));
        }
        let response = self.request(&Json::Obj(obj))?;
        // Inspect `ok` before the id echo: an error may legitimately
        // arrive without an id (framing errors are always v1-shaped,
        // and an older server rejects the "v" member itself in the v1
        // shape) — the server's actual diagnostic must win over a
        // generic "no id echo" transport error.
        match response.get("ok").and_then(Json::as_bool) {
            Some(false) => return Err(parse_error_envelope(&response)),
            Some(true) => {}
            None => return Err(malformed("enveloped", "no boolean \"ok\" member")),
        }
        if response.get("id").and_then(Json::as_str) != Some(id.as_str()) {
            return Err(ApiError::transport(format!(
                "response id does not echo request id {id:?} (got {:?})",
                response.get("id")
            )));
        }
        Ok(response)
    }

    /// Builds the member map of one command.
    fn members(
        cmd: &str,
        pairs: impl IntoIterator<Item = (&'static str, Json)>,
    ) -> BTreeMap<String, Json> {
        let mut obj = BTreeMap::new();
        obj.insert("cmd".to_string(), Json::from(cmd));
        for (k, v) in pairs {
            obj.insert(k.to_string(), v);
        }
        obj
    }

    /// Liveness probe.
    pub fn health(&mut self) -> Result<Health, ApiError> {
        let v = self.call(Self::members("health", []))?;
        Health::from_response(&v)
    }

    /// The server's identity, protocol versions, and limits — ask this
    /// instead of hard-coding caps.
    pub fn info(&mut self) -> Result<ServerInfo, ApiError> {
        let v = self.call(Self::members("info", []))?;
        ServerInfo::from_response(&v)
    }

    /// A point-in-time snapshot of the server's metrics registry.
    pub fn metrics(&mut self) -> Result<MetricsSnapshot, ApiError> {
        let v = self.call(Self::members("metrics", []))?;
        MetricsSnapshot::from_json(&v).map_err(|e| malformed("metrics", e))
    }

    /// Enqueues an asynchronous `anonymize`. `params` holds the verb's
    /// members (`model`, `csv` or `dataset`, `epsilon`, …); `cmd` and
    /// `async` are filled in here — params already naming either are
    /// rejected rather than silently overwritten (the same
    /// fail-loudly contract the wire's member check enforces).
    pub fn submit(&mut self, params: &Json) -> Result<SubmitReceipt, ApiError> {
        let Json::Obj(params) = params else {
            return Err(ApiError::bad_request("submit parameters must be a JSON object"));
        };
        for reserved in ["cmd", "async"] {
            if params.contains_key(reserved) {
                return Err(ApiError::bad_request(format!(
                    "submit fills in {reserved:?} itself; the parameter object must not name it"
                )));
            }
        }
        let mut obj = params.clone();
        obj.insert("cmd".to_string(), Json::from("anonymize"));
        obj.insert("async".to_string(), Json::Bool(true));
        let v = self.call(obj)?;
        SubmitReceipt::from_response(&v)
    }

    /// Polls a job.
    pub fn status(&mut self, job: &str) -> Result<JobStatus, ApiError> {
        let v = self.call(Self::members("status", [("job", Json::from(job))]))?;
        JobStatus::from_response(&v)
    }

    /// Cancels a still-queued job, returning its id. Fails with
    /// [`ErrorCode::JobNotFound`] for unknown (or already-cancelled)
    /// ids and [`ErrorCode::DatasetState`] for jobs already running or
    /// done — running jobs are never preempted.
    pub fn cancel(&mut self, job: &str) -> Result<String, ApiError> {
        let v = self.call(Self::members("cancel", [("job", Json::from(job))]))?;
        let cancelled = want_str(&v, "cancel", "job")?;
        match v.get("state").and_then(Json::as_str) {
            Some("cancelled") => Ok(cancelled),
            other => Err(malformed("cancel", format_args!("state is {other:?}, not cancelled"))),
        }
    }

    /// Streams a dataset to the server in pieces of at most
    /// `chunk_bytes` via `upload` / `chunk` / `commit`, returning the
    /// committed handle and its acknowledged size. The commit
    /// acknowledgement must account for every byte sent, or the
    /// transfer errors.
    pub fn upload_dataset(
        &mut self,
        csv: &str,
        chunk_bytes: usize,
    ) -> Result<DatasetInfo, ApiError> {
        self.upload_dataset_with_budget(csv, chunk_bytes, None)
    }

    /// [`Self::upload_dataset`] with an explicit per-dataset privacy
    /// budget: jobs against the returned handle refuse with
    /// [`ErrorCode::BudgetExhausted`] once their cumulative ε would
    /// exceed `eps_budget`.
    pub fn upload_dataset_with_budget(
        &mut self,
        csv: &str,
        chunk_bytes: usize,
        eps_budget: Option<f64>,
    ) -> Result<DatasetInfo, ApiError> {
        let chunk_bytes = chunk_bytes.max(1);
        let members = eps_budget.map(|b| ("eps_budget", Json::from(b)));
        let opened = self.call(Self::members("upload", members))?;
        let handle = want_str(&opened, "upload", "dataset")?;
        let mut offset = 0;
        while offset < csv.len() {
            let mut end = crate::store::floor_char_boundary(csv, offset + chunk_bytes);
            if end <= offset {
                // Budget smaller than one scalar: send it whole anyway.
                end = offset + csv[offset..].chars().next().map_or(1, char::len_utf8);
            }
            self.call(Self::members(
                "chunk",
                [("dataset", Json::from(handle.as_str())), ("data", Json::from(&csv[offset..end]))],
            ))?;
            offset = end;
        }
        let committed =
            self.call(Self::members("commit", [("dataset", Json::from(handle.as_str()))]))?;
        let info = DatasetInfo::from_response(&committed)?;
        if info.bytes != csv.len() as u64 {
            return Err(ApiError::transport(format!(
                "commit acknowledged {} bytes for {} sent",
                info.bytes,
                csv.len()
            )));
        }
        Ok(info)
    }

    /// Frees a dataset handle server-side, returning the freed byte
    /// count. Fails with [`ErrorCode::DatasetInUse`] when the handle is
    /// pinned by a queued/running job.
    pub fn delete_dataset(&mut self, handle: &str) -> Result<DatasetInfo, ApiError> {
        let v = self.call(Self::members("delete", [("dataset", Json::from(handle))]))?;
        DatasetInfo::from_response(&v)
    }

    /// Reassembles a committed dataset by walking `download` pieces to
    /// eof. `chunk_bytes` bounds each piece; pass `None` for the
    /// server's default (discoverable via [`Client::info`]).
    pub fn download_dataset_chunked(
        &mut self,
        handle: &str,
        chunk_bytes: Option<usize>,
    ) -> Result<String, ApiError> {
        let mut out = String::new();
        loop {
            let mut members = Self::members(
                "download",
                [("dataset", Json::from(handle)), ("offset", Json::from(out.len()))],
            );
            if let Some(max) = chunk_bytes {
                members.insert("max_bytes".to_string(), Json::from(max));
            }
            let piece = self.call(members)?;
            let data = piece
                .get("data")
                .and_then(Json::as_str)
                .ok_or_else(|| malformed("download", "piece carries no data"))?;
            out.push_str(data);
            match piece.get("eof").and_then(Json::as_bool) {
                Some(true) => return Ok(out),
                Some(false) if !data.is_empty() => {}
                _ => return Err(malformed("download", "made no progress")),
            }
        }
    }

    /// [`Self::download_dataset_chunked`] with the server's default
    /// piece size.
    pub fn download_dataset(&mut self, handle: &str) -> Result<String, ApiError> {
        self.download_dataset_chunked(handle, None)
    }
}

/// The [`ApiError`] inside a v2 `{"ok":false}` envelope — or a
/// v1-shaped error (`"error"` as a bare string), which an older server
/// or the framing layer can produce; those parse as [`ErrorCode::Internal`]
/// with the message kept. A code this client does not know (a newer
/// server) — or the client-side-only `"transport"`, which no honest
/// server sends — degrades to [`ErrorCode::Internal`] with the raw
/// code prefixed to the message, so nothing is silently dropped and a
/// wire response can never masquerade as a connectivity failure.
fn parse_error_envelope(response: &Json) -> ApiError {
    let error = response.get("error");
    if let Some(Json::Str(message)) = error {
        // The v1 shape: a bare message string, no code to recover.
        return ApiError::internal(message.clone());
    }
    let message = error
        .and_then(|e| e.get("message"))
        .and_then(Json::as_str)
        .unwrap_or("request failed without an error message");
    match error.and_then(|e| e.get("code")).and_then(Json::as_str) {
        Some(raw) => match ErrorCode::parse(raw) {
            Some(code) => ApiError::new(code, message),
            None => ApiError::internal(format!("[{raw}] {message}")),
        },
        None => ApiError::internal(message),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api::{render, Envelope, ProtocolVersion, Response};
    use std::sync::Arc;

    fn v2(id: &str) -> Envelope {
        Envelope { version: ProtocolVersion::V2, id: Some(id.to_string()), tenant: None }
    }

    /// Round-trip: every typed parser inverts the server's rendering of
    /// the matching [`Response`] variant.
    #[test]
    fn typed_parsers_invert_rendered_responses() {
        let health =
            render(&v2("a"), Ok(Response::Health { outstanding_jobs: 3, stored_datasets: 7 }));
        assert_eq!(
            Health::from_response(&health).unwrap(),
            Health { outstanding_jobs: 3, stored_datasets: 7 }
        );

        let info = render(
            &v2("b"),
            Ok(Response::Info {
                workers: 4,
                max_datasets: 64,
                max_connections: 1024,
                read_timeout_secs: 10,
                uptime_secs: 12,
                started_at: 1_700_000_000,
                state_dir: true,
                tenants: 2,
                eps_budget: Some(3.0),
            }),
        );
        let parsed = ServerInfo::from_response(&info).unwrap();
        assert_eq!(parsed.workers, 4);
        assert_eq!(parsed.max_datasets, 64);
        assert_eq!(parsed.max_connections, 1024);
        assert_eq!(parsed.read_timeout_secs, 10);
        assert_eq!(parsed.uptime_secs, 12);
        assert_eq!(parsed.started_at, 1_700_000_000);
        assert!(parsed.state_dir);
        assert_eq!(parsed.tenants, 2);
        assert_eq!(parsed.eps_budget, Some(3.0));
        assert_eq!(parsed.protocol_versions, vec![1, 2]);
        assert_eq!(parsed.max_dataset_bytes, crate::store::MAX_DATASET_BYTES as u64);
        assert_eq!(parsed.max_request_bytes, crate::service::MAX_REQUEST_BYTES as u64);
        assert_eq!(parsed.max_download_chunk_bytes, crate::store::MAX_DOWNLOAD_CHUNK_BYTES as u64);
        assert_eq!(
            parsed.default_download_chunk_bytes,
            crate::store::DEFAULT_DOWNLOAD_CHUNK_BYTES as u64
        );
        assert_eq!(parsed.max_gen_points, crate::protocol::MAX_GEN_POINTS);
        assert_eq!(parsed.max_m, crate::protocol::MAX_M);
        assert_eq!(parsed.max_workers, crate::protocol::MAX_WORKERS);
        assert_eq!(parsed.version, env!("CARGO_PKG_VERSION"));

        let receipt = render(&v2("c"), Ok(Response::Submitted { job: "job-9".to_string() }));
        assert_eq!(
            SubmitReceipt::from_response(&receipt).unwrap(),
            SubmitReceipt { job: "job-9".to_string() }
        );

        let queued = render(
            &v2("d"),
            Ok(Response::JobStatus {
                job: "job-9".to_string(),
                state: "queued",
                result: None,
                duration_secs: None,
                timings: None,
            }),
        );
        assert_eq!(
            JobStatus::from_response(&queued).unwrap(),
            JobStatus {
                job: "job-9".to_string(),
                phase: JobPhase::Queued,
                result: None,
                duration_secs: None,
                timings: None,
            }
        );
        let body = Json::obj([("ok", Json::Bool(true)), ("csv", Json::from("x\n"))]);
        let done = render(
            &v2("e"),
            Ok(Response::JobStatus {
                job: "job-9".to_string(),
                state: "done",
                result: Some(Arc::new(body.clone())),
                duration_secs: Some(0.5),
                timings: None,
            }),
        );
        let parsed = JobStatus::from_response(&done).unwrap();
        assert_eq!(parsed.phase, JobPhase::Done);
        assert_eq!(parsed.result, Some(body));
        assert_eq!(parsed.duration_secs, Some(0.5));

        let commit =
            render(&v2("f"), Ok(Response::Commit { dataset: "ds-2".to_string(), bytes: 26 }));
        assert_eq!(
            DatasetInfo::from_response(&commit).unwrap(),
            DatasetInfo { dataset: "ds-2".to_string(), bytes: 26 }
        );
        let delete =
            render(&v2("g"), Ok(Response::Delete { dataset: "ds-2".to_string(), bytes: 26 }));
        assert_eq!(
            DatasetInfo::from_response(&delete).unwrap(),
            DatasetInfo { dataset: "ds-2".to_string(), bytes: 26 }
        );
    }

    #[test]
    fn error_envelopes_parse_back_to_the_typed_error() {
        let original = ApiError::dataset_in_use("dataset \"ds-1\" is referenced by a job");
        let wire = render(&v2("h"), Err(original.clone()));
        assert_eq!(parse_error_envelope(&wire), original, "codes round-trip the wire");
        // An unknown (future) code degrades without losing information.
        let wire = crate::json::parse(
            r#"{"error":{"code":"rate-limited","message":"slow down"},"id":"i","ok":false}"#,
        )
        .unwrap();
        let parsed = parse_error_envelope(&wire);
        assert_eq!(parsed.code, ErrorCode::Internal);
        assert!(parsed.message.contains("rate-limited") && parsed.message.contains("slow down"));
        // A wire response claiming the client-side-only "transport"
        // code must not classify as a connectivity failure.
        let wire =
            crate::json::parse(r#"{"error":{"code":"transport","message":"spoof"},"ok":false}"#)
                .unwrap();
        assert_eq!(parse_error_envelope(&wire).code, ErrorCode::Internal);
    }

    #[test]
    fn v1_shaped_errors_surface_the_server_diagnostic_not_an_id_mismatch() {
        // An id-less v1-shaped error (a framing error, or an older
        // server rejecting the "v" member itself) must parse as the
        // server's own message — not be shadowed by a transport-coded
        // "no id echo" failure, and not lose the message text.
        let wire = crate::json::parse(r#"{"error":"unknown member \"v\"","ok":false}"#).unwrap();
        let parsed = parse_error_envelope(&wire);
        assert_ne!(parsed.code, ErrorCode::Transport);
        assert!(parsed.message.contains("unknown member"), "{parsed:?}");
    }

    #[test]
    fn submit_rejects_reserved_members_instead_of_overwriting() {
        // No server needed: the conflict is caught before any I/O, so
        // a throwaway (unconnected) client address is never dialed.
        let server = crate::service::Server::start(crate::service::ServerConfig {
            workers: 0,
            ..crate::service::ServerConfig::default()
        })
        .unwrap();
        let mut client = Client::connect(server.local_addr()).unwrap();
        for params in [
            Json::obj([("cmd", Json::from("stats")), ("dataset", Json::from("ds-1"))]),
            Json::obj([("async", Json::Bool(false)), ("model", Json::from("gl"))]),
        ] {
            let err = client.submit(&params).unwrap_err();
            assert_eq!(err.code, ErrorCode::BadRequest);
            assert!(err.message.contains("fills in"), "{err}");
        }
        drop(client);
        server.shutdown();
    }

    #[test]
    fn done_status_without_result_is_malformed() {
        let v = crate::json::parse(r#"{"job":"job-1","ok":true,"state":"done"}"#).unwrap();
        let err = JobStatus::from_response(&v).unwrap_err();
        assert_eq!(err.code, ErrorCode::Transport);
        assert!(err.message.contains("result"), "{err}");
    }
}

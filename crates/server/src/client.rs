//! A small blocking JSON-lines client, used by the integration tests
//! and the `trajdp submit` CLI verb.

use crate::json::{self, Json};
use std::io::{BufRead, BufReader, Write};
use std::net::{TcpStream, ToSocketAddrs};

/// A connected client. One request/response pair per call; the
//  underlying connection is reused across calls.
pub struct Client {
    writer: TcpStream,
    reader: BufReader<TcpStream>,
}

impl Client {
    /// Connects to a running server.
    pub fn connect(addr: impl ToSocketAddrs) -> std::io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        let writer = stream.try_clone()?;
        Ok(Client { writer, reader: BufReader::new(stream) })
    }

    /// Sends one raw request line and reads one response object.
    pub fn request_line(&mut self, line: &str) -> Result<Json, String> {
        debug_assert!(!line.contains('\n'), "requests are single lines");
        self.writer
            .write_all(format!("{line}\n").as_bytes())
            .and_then(|()| self.writer.flush())
            .map_err(|e| format!("send failed: {e}"))?;
        let mut response = String::new();
        let n = self.reader.read_line(&mut response).map_err(|e| format!("receive failed: {e}"))?;
        if n == 0 {
            return Err("server closed the connection".to_string());
        }
        json::parse(response.trim_end()).map_err(|e| format!("bad response: {e}"))
    }

    /// Sends a request object.
    pub fn request(&mut self, req: &Json) -> Result<Json, String> {
        self.request_line(&req.to_string())
    }
}

//! # trajdp-server
//!
//! The serving subsystem: a sharded parallel anonymization executor and
//! a JSON-lines TCP service exposing the pipeline as a long-lived
//! process.
//!
//! | module | contents |
//! |---|---|
//! | [`api`] | stable error codes ([`api::ErrorCode`]/[`api::ApiError`]), the typed [`api::Response`] model, and the versioned wire envelope with centralized serialization |
//! | [`executor`] | `anonymize_parallel` — shard-parallel global/local mechanisms, bit-identical to the serial pipeline at any worker count |
//! | [`json`] | serde-free JSON value, parser, single-line writer |
//! | [`protocol`] | request parsing + the handlers behind each verb |
//! | [`store`] | chunked-transfer dataset handles (`ds-<id>`), optionally persisted, with delete/LRU/TTL lifecycle and job pinning |
//! | [`jobs`] | job queue with ids, per-job status, and a durable, compacting JSON-lines journal |
//! | [`ledger`] | tenancy + privacy budget: the tenant registry (`--tenants`), per-tenant quotas, and the per-dataset ε accumulator |
//! | [`reactor`] | non-blocking connection plane: `epoll`/`poll` readiness loop, per-connection state machines, read deadlines, load shedding, drain-window shutdown |
//! | [`service`] | server configuration, request dispatch, lifecycle around the reactor |
//! | [`client`] | blocking JSON-lines client for tests and `trajdp submit` |
//! | [`obs`] | observability: atomics-only metrics registry (the `metrics` verb), leveled JSON-lines logging, per-job phase timings |
//!
//! ## Determinism
//!
//! The executor reproduces `trajdp_core::anonymize` exactly because the
//! core pipeline derives an independent RNG stream per smallest work
//! unit (per candidate point globally, per trajectory locally) from the
//! root seed — see `trajdp_core::stream`. Sharding changes only which
//! thread evaluates a unit, never what the unit draws.

#![deny(unsafe_op_in_unsafe_fn)]

pub mod api;
pub mod client;
pub mod executor;
pub mod jobs;
pub mod json;
pub mod ledger;
pub mod obs;
pub mod protocol;
pub mod reactor;
pub mod service;
pub mod store;

pub use api::{ApiError, Envelope, ErrorCode, ProtocolVersion, Response};
pub use client::Client;
pub use executor::anonymize_parallel;
pub use json::Json;
pub use ledger::{EpsLedger, TenantLimits, TenantRegistry, DEFAULT_TENANT};
pub use obs::{init_logger, LogLevel, Metrics, MetricsSnapshot, PhaseTimings};
pub use service::{Server, ServerConfig};
pub use store::{DatasetStore, StoreConfig};

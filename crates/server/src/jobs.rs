//! Job queue for asynchronous anonymization requests, with an optional
//! durable journal.
//!
//! An `anonymize` request with `"async": true` is assigned a job id
//! (`job-1`, `job-2`, …), queued, and executed by a pool of worker
//! threads owned by the server. Clients poll with `status`; a finished
//! job answers with the full anonymize response inline.
//!
//! ## Durability
//!
//! With a journal path (the server's `--state-dir`), every lifecycle
//! transition is appended as one JSON line *before* it is acknowledged:
//!
//! ```text
//! {"event":"submit","job":"job-3","spec":{...full resolved spec...}}
//! {"event":"finish","job":"job-3","result":{...response object...}}
//! ```
//!
//! On restart the journal is replayed: finished jobs answer `status`
//! with their recorded result, and jobs that were `queued` or `running`
//! at the crash are re-enqueued from their journaled spec. Because the
//! spec is resolved (inline CSV) at submit time and the executor is
//! deterministic per seed, a replayed run produces byte-identical
//! output to the original. Replay is strict — a malformed line fails
//! startup loudly rather than silently dropping jobs — except for a
//! torn final line, which is exactly what a crash mid-append leaves
//! behind and means that submit was never acknowledged.

use crate::json::Json;
use crate::protocol::{run_anonymize, spec_from_json, spec_to_json, AnonymizeSpec};
use crate::store::DatasetStore;
use std::collections::{HashMap, VecDeque};
use std::io::Write;
use std::path::Path;
use std::sync::{Arc, Condvar, Mutex};

/// Lifecycle of one queued job.
#[derive(Debug, Clone, PartialEq)]
pub enum JobState {
    /// Waiting for a worker.
    Queued,
    /// A worker is executing it.
    Running,
    /// Finished; holds the response object.
    Done(Json),
}

impl JobState {
    /// Protocol name of the state.
    pub fn name(&self) -> &'static str {
        match self {
            JobState::Queued => "queued",
            JobState::Running => "running",
            JobState::Done(_) => "done",
        }
    }
}

/// How many finished jobs (with their full result payloads) the table
/// retains. Results can be megabytes of CSV each; without a cap a
/// long-lived server grows without bound. Oldest finished jobs are
/// evicted first; polling an evicted id reports it as unknown.
pub const MAX_FINISHED_RETAINED: usize = 256;

#[derive(Default)]
struct QueueInner {
    pending: VecDeque<(String, AnonymizeSpec)>,
    states: HashMap<String, JobState>,
    /// Finished job ids in completion order, for bounded eviction.
    finished_order: VecDeque<String>,
    next_id: u64,
    shutdown: bool,
    /// Append handle of the journal; writes happen under the queue lock
    /// so the file order matches the state-transition order.
    journal: Option<std::fs::File>,
}

impl QueueInner {
    /// Appends one event line and syncs it to disk — the "appended
    /// before it is acknowledged" contract must hold across power
    /// loss, not just process death, so this fsyncs rather than merely
    /// flushing. A failed append rolls the file back to its pre-append
    /// length: a torn fragment left in place would fuse with the next
    /// successful append into one corrupt mid-file line, which replay
    /// (rightly) refuses — bricking every future restart on this state
    /// dir.
    fn journal_append(&mut self, event: &Json) -> std::io::Result<()> {
        if let Some(file) = &mut self.journal {
            let before = file.metadata()?.len();
            let write =
                file.write_all(format!("{event}\n").as_bytes()).and_then(|()| file.sync_data());
            if let Err(e) = write {
                let _ = file.set_len(before);
                return Err(e);
            }
        }
        Ok(())
    }

    /// Records a completion, evicting the oldest finished jobs past the
    /// retention cap.
    fn record_done(&mut self, id: &str, result: Json) {
        self.states.insert(id.to_string(), JobState::Done(result));
        self.finished_order.push_back(id.to_string());
        while self.finished_order.len() > MAX_FINISHED_RETAINED {
            if let Some(evicted) = self.finished_order.pop_front() {
                self.states.remove(&evicted);
            }
        }
    }
}

/// Shared job queue + state table. Cloneable handle (`Arc` inside).
#[derive(Clone, Default)]
pub struct JobQueue {
    inner: Arc<(Mutex<QueueInner>, Condvar)>,
    store: DatasetStore,
}

impl JobQueue {
    /// An empty, memory-only queue with its own private dataset store.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty, memory-only queue sharing `store` (so `"store": true`
    /// job results land where `download` can find them).
    pub fn with_store(store: DatasetStore) -> Self {
        Self { inner: Arc::default(), store }
    }

    /// A queue journaled at `path`: replays the existing journal (if
    /// any), re-enqueueing unfinished jobs and restoring finished
    /// results, then appends all further events to the same file.
    pub fn with_journal(store: DatasetStore, path: &Path) -> Result<Self, String> {
        let mut inner = QueueInner::default();
        let mut text = match std::fs::read_to_string(path) {
            Ok(text) => text,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => String::new(),
            Err(e) => return Err(format!("cannot read journal {}: {e}", path.display())),
        };
        // Repair a crash-torn tail *in the file*, not just in memory:
        // the journal reopens in append mode, so a fragment left behind
        // would fuse with the next event into one corrupt mid-file line
        // — unreadable on every restart after that.
        if !text.is_empty() && !text.ends_with('\n') {
            let tail_start = text.rfind('\n').map_or(0, |i| i + 1);
            if crate::json::parse(&text[tail_start..]).is_ok() {
                // A complete event that lost only its terminator: the
                // crash hit between the bytes and the newline. Keep it
                // (replay treats it normally) and restore the newline.
                std::fs::OpenOptions::new()
                    .append(true)
                    .open(path)
                    .and_then(|mut f| f.write_all(b"\n"))
                    .map_err(|e| format!("cannot repair journal {}: {e}", path.display()))?;
                text.push('\n');
            } else {
                // A torn fragment; its submit was never acknowledged.
                // Drop it from replay and truncate it out of the file.
                std::fs::OpenOptions::new()
                    .write(true)
                    .open(path)
                    .and_then(|f| f.set_len(tail_start as u64))
                    .map_err(|e| format!("cannot repair journal {}: {e}", path.display()))?;
                text.truncate(tail_start);
            }
        }
        replay(&text, &mut inner).map_err(|e| format!("journal {}: {e}", path.display()))?;
        inner.journal = Some(
            std::fs::OpenOptions::new()
                .create(true)
                .append(true)
                .open(path)
                .map_err(|e| format!("cannot open journal {}: {e}", path.display()))?,
        );
        Ok(Self { inner: Arc::new((Mutex::new(inner), Condvar::new())), store })
    }

    /// Enqueues a job, returning its id. Fails once shutdown has begun
    /// (no worker would ever run it — the job would report `"queued"`
    /// forever) or if the journal cannot record it (an unjournaled
    /// accept would be silently lost by a restart).
    pub fn submit(&self, spec: AnonymizeSpec) -> Result<String, String> {
        let (lock, cvar) = &*self.inner;
        let mut q = lock.lock().expect("queue poisoned");
        if q.shutdown {
            return Err("server is shutting down; submit rejected".to_string());
        }
        let id = format!("job-{}", q.next_id + 1);
        // Build the event (which deep-copies the CSV into a JSON line)
        // only when a journal exists — an unjournaled server must not
        // double peak memory per submit under the queue lock for a
        // guaranteed no-op write.
        if q.journal.is_some() {
            let event = Json::obj([
                ("event", Json::from("submit")),
                ("job", Json::from(id.clone())),
                ("spec", spec_to_json(&spec)),
            ]);
            q.journal_append(&event).map_err(|e| format!("cannot journal submit: {e}"))?;
        }
        q.next_id += 1;
        q.pending.push_back((id.clone(), spec));
        q.states.insert(id.clone(), JobState::Queued);
        cvar.notify_one();
        Ok(id)
    }

    /// Current state of a job, if it exists.
    pub fn state(&self, id: &str) -> Option<JobState> {
        let (lock, _) = &*self.inner;
        lock.lock().expect("queue poisoned").states.get(id).cloned()
    }

    /// Number of jobs not yet finished.
    pub fn outstanding(&self) -> usize {
        let (lock, _) = &*self.inner;
        let q = lock.lock().expect("queue poisoned");
        q.states.values().filter(|s| !matches!(s, JobState::Done(_))).count()
    }

    /// Blocks until a job is available, returning `None` on shutdown.
    fn take(&self) -> Option<(String, AnonymizeSpec)> {
        let (lock, cvar) = &*self.inner;
        let mut q = lock.lock().expect("queue poisoned");
        loop {
            if let Some(job) = q.pending.pop_front() {
                q.states.insert(job.0.clone(), JobState::Running);
                return Some(job);
            }
            if q.shutdown {
                return None;
            }
            q = cvar.wait(q).expect("queue poisoned");
        }
    }

    fn finish(&self, id: &str, result: Json) {
        let (lock, _) = &*self.inner;
        let mut q = lock.lock().expect("queue poisoned");
        if q.journal.is_some() {
            let event = Json::obj([
                ("event", Json::from("finish")),
                ("job", Json::from(id.to_string())),
                ("result", result.clone()),
            ]);
            // A failed finish append is not fatal: the in-memory table
            // still answers `status`, and a restart re-runs the job
            // from its journaled submit to the same bytes. Caveat for
            // `store:true` jobs: the re-run mints a fresh handle, so
            // the one this result names becomes an orphan slot (see
            // the ROADMAP residue on store lifecycle).
            let _ = q.journal_append(&event);
        }
        q.record_done(id, result);
    }

    /// Wakes all workers and makes further `take` calls return `None`.
    /// Already-queued jobs are still drained before workers exit; new
    /// submits are rejected from this point on.
    pub fn shutdown(&self) {
        let (lock, cvar) = &*self.inner;
        lock.lock().expect("queue poisoned").shutdown = true;
        cvar.notify_all();
    }

    /// Worker loop: execute jobs until shutdown. A panicking job is
    /// recorded as a failed result instead of killing the worker thread
    /// and stranding the job in `Running` forever.
    pub fn work(&self) {
        while let Some((id, spec)) = self.take() {
            let result =
                std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| run_anonymize(&spec)))
                    .unwrap_or_else(|panic| {
                        let msg = panic
                            .downcast_ref::<&str>()
                            .map(|s| s.to_string())
                            .or_else(|| panic.downcast_ref::<String>().cloned())
                            .unwrap_or_else(|| "job panicked".to_string());
                        crate::protocol::error_response(&format!("job panicked: {msg}"))
                    });
            let result = if spec.store_result {
                crate::protocol::store_response_csv(result, &self.store)
            } else {
                result
            };
            self.finish(&id, result);
        }
    }

    /// The `status` response for a job id.
    pub fn status_response(&self, id: &str) -> Json {
        match self.state(id) {
            None => crate::protocol::error_response(&format!("unknown job {id:?}")),
            Some(JobState::Done(result)) => {
                let mut obj = match result {
                    Json::Obj(m) => m,
                    other => {
                        let mut m = std::collections::BTreeMap::new();
                        m.insert("result".to_string(), other);
                        m
                    }
                };
                obj.insert("job".to_string(), Json::from(id.to_string()));
                obj.insert("state".to_string(), Json::from("done"));
                Json::Obj(obj)
            }
            Some(state) => Json::obj([
                ("ok", Json::Bool(true)),
                ("job", Json::from(id.to_string())),
                ("state", Json::from(state.name())),
            ]),
        }
    }
}

/// Numeric suffix of a `job-<n>` id.
fn job_number(id: &str) -> Result<u64, String> {
    id.strip_prefix("job-")
        .and_then(|n| n.parse::<u64>().ok())
        .ok_or_else(|| format!("malformed job id {id:?}"))
}

/// Rebuilds queue state from journal text. Strict except for a torn
/// final line (the signature of a crash mid-append), which is ignored:
/// its submit was never acknowledged to any client.
fn replay(text: &str, inner: &mut QueueInner) -> Result<(), String> {
    let lines: Vec<(usize, &str)> =
        text.lines().enumerate().filter(|(_, l)| !l.trim().is_empty()).collect();
    // Submit order and specs of jobs not yet seen to finish.
    let mut unfinished: Vec<String> = Vec::new();
    let mut specs: HashMap<String, AnonymizeSpec> = HashMap::new();
    for (idx, (lineno, line)) in lines.iter().enumerate() {
        let last = idx + 1 == lines.len();
        let v = match crate::json::parse(line) {
            Ok(v) => v,
            Err(_) if last && !text.ends_with('\n') => break, // torn final append
            Err(e) => return Err(format!("line {}: {e}", lineno + 1)),
        };
        let fail = |msg: String| format!("line {}: {msg}", lineno + 1);
        let event =
            v.get("event").and_then(Json::as_str).ok_or_else(|| fail("missing event".into()))?;
        let id = v
            .get("job")
            .and_then(Json::as_str)
            .ok_or_else(|| fail("missing job id".into()))?
            .to_string();
        inner.next_id = inner.next_id.max(job_number(&id).map_err(fail)?);
        match event {
            "submit" => {
                let spec_json = v.get("spec").ok_or_else(|| fail("submit without spec".into()))?;
                let spec = spec_from_json(spec_json).map_err(fail)?;
                if specs.insert(id.clone(), spec).is_some() || inner.states.contains_key(&id) {
                    return Err(fail(format!("duplicate submit for {id:?}")));
                }
                unfinished.push(id);
            }
            "finish" => {
                let result = v.get("result").ok_or_else(|| fail("finish without result".into()))?;
                if specs.remove(&id).is_none() {
                    return Err(fail(format!("finish for unsubmitted job {id:?}")));
                }
                unfinished.retain(|u| u != &id);
                inner.record_done(&id, result.clone());
            }
            other => return Err(fail(format!("unknown event {other:?}"))),
        }
    }
    // Jobs caught mid-flight re-queue in their original submit order.
    for id in unfinished {
        let spec = specs.remove(&id).expect("unfinished implies spec recorded");
        inner.states.insert(id.clone(), JobState::Queued);
        inner.pending.push_back((id, spec));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use trajdp_core::Model;
    use trajdp_model::csv::to_csv;
    use trajdp_synth::{generate, GeneratorConfig};

    fn spec() -> AnonymizeSpec {
        let world = generate(&GeneratorConfig::tdrive_profile(4, 20, 3));
        AnonymizeSpec {
            model: Model::PureLocal,
            epsilon: 1.0,
            eps_split: 0.5,
            m: 2,
            seed: 5,
            workers: 1,
            store_result: false,
            csv: std::sync::Arc::new(to_csv(&world.dataset)),
        }
    }

    fn wait_done(q: &JobQueue, id: &str) -> Json {
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(30);
        loop {
            match q.state(id) {
                Some(JobState::Done(result)) => return result,
                _ if std::time::Instant::now() > deadline => panic!("job never finished"),
                _ => std::thread::sleep(std::time::Duration::from_millis(10)),
            }
        }
    }

    #[test]
    fn ids_are_sequential_and_unique() {
        let q = JobQueue::new();
        let a = q.submit(spec()).unwrap();
        let b = q.submit(spec()).unwrap();
        assert_ne!(a, b);
        assert_eq!(q.state(&a), Some(JobState::Queued));
        assert_eq!(q.outstanding(), 2);
    }

    #[test]
    fn worker_drains_queue_and_finishes_jobs() {
        let q = JobQueue::new();
        let id = q.submit(spec()).unwrap();
        let worker = {
            let q = q.clone();
            std::thread::spawn(move || q.work())
        };
        let result = wait_done(&q, &id);
        assert_eq!(result.get("ok"), Some(&Json::Bool(true)), "{result}");
        let status = q.status_response(&id);
        assert_eq!(status.get("state").and_then(Json::as_str), Some("done"));
        assert_eq!(status.get("job").and_then(Json::as_str), Some(id.as_str()));
        assert!(status.get("csv").is_some(), "done status inlines the result");
        q.shutdown();
        worker.join().unwrap();
    }

    #[test]
    fn shutdown_releases_idle_workers() {
        let q = JobQueue::new();
        let worker = {
            let q = q.clone();
            std::thread::spawn(move || q.work())
        };
        std::thread::sleep(std::time::Duration::from_millis(20));
        q.shutdown();
        worker.join().unwrap();
    }

    #[test]
    fn submit_after_shutdown_is_rejected() {
        // Regression: a post-shutdown submit used to enqueue a job no
        // worker would ever run, reporting "queued" forever.
        let q = JobQueue::new();
        let accepted = q.submit(spec()).unwrap();
        q.shutdown();
        let err = q.submit(spec()).unwrap_err();
        assert!(err.contains("shutting down"), "{err}");
        // The pre-shutdown job is still drained by a late worker.
        let worker = {
            let q = q.clone();
            std::thread::spawn(move || q.work())
        };
        worker.join().unwrap();
        assert!(matches!(q.state(&accepted), Some(JobState::Done(_))));
        // And the rejected submit left no trace.
        assert_eq!(q.outstanding(), 0);
    }

    #[test]
    fn finished_jobs_are_evicted_oldest_first_beyond_cap() {
        let q = JobQueue::new();
        for i in 0..=MAX_FINISHED_RETAINED {
            q.finish(&format!("job-{i}"), Json::obj([("ok", Json::Bool(true))]));
        }
        // job-0 (oldest) evicted, newest retained.
        assert_eq!(q.state("job-0"), None, "oldest finished job must be evicted");
        assert!(matches!(
            q.state(&format!("job-{MAX_FINISHED_RETAINED}")),
            Some(JobState::Done(_))
        ));
        let r = q.status_response("job-0");
        assert_eq!(r.get("ok"), Some(&Json::Bool(false)), "evicted id reports unknown");
    }

    #[test]
    fn unknown_job_is_an_error() {
        let q = JobQueue::new();
        let r = q.status_response("job-404");
        assert_eq!(r.get("ok"), Some(&Json::Bool(false)));
    }

    #[test]
    fn journal_replay_restores_finished_and_requeues_unfinished() {
        let dir = std::env::temp_dir().join("trajdp-journal-test");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("jobs.jsonl");

        // Session 1: one job runs to completion, a second is accepted
        // but never picked up (the process "dies" mid-queue).
        let q1 = JobQueue::with_journal(DatasetStore::new(), &path).unwrap();
        let done_id = q1.submit(spec()).unwrap();
        let worker = {
            let q = q1.clone();
            std::thread::spawn(move || q.work())
        };
        let first_result = wait_done(&q1, &done_id);
        let queued_id = q1.submit(spec()).unwrap();
        q1.shutdown(); // stop the worker; queued_id may or may not start
        worker.join().unwrap();
        let queued_result = q1.state(&queued_id);
        drop(q1);

        // Session 2: replay. The finished job answers status with its
        // recorded result; the mid-queue job re-runs deterministically.
        let q2 = JobQueue::with_journal(DatasetStore::new(), &path).unwrap();
        assert_eq!(q2.state(&done_id), Some(JobState::Done(first_result.clone())));
        match q2.state(&queued_id).unwrap() {
            JobState::Done(replayed) => {
                // The graceful shutdown drained it in session 1; the
                // journaled result must have been restored verbatim.
                assert_eq!(Some(JobState::Done(replayed)), queued_result);
            }
            JobState::Queued => {
                let worker = {
                    let q = q2.clone();
                    std::thread::spawn(move || q.work())
                };
                let replayed = wait_done(&q2, &queued_id);
                assert_eq!(replayed.get("ok"), Some(&Json::Bool(true)), "{replayed}");
                q2.shutdown();
                worker.join().unwrap();
            }
            other => panic!("unexpected replayed state {other:?}"),
        }
        // Ids keep counting up; no collision with replayed jobs.
        let fresh = q2.submit(spec()).unwrap();
        assert!(job_number(&fresh).unwrap() > job_number(&queued_id).unwrap());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn journal_replay_reruns_job_byte_identically() {
        let dir = std::env::temp_dir().join("trajdp-journal-determinism-test");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("jobs.jsonl");
        let the_spec = spec();
        let reference = run_anonymize(&the_spec);

        // Submit, then "crash" before any worker runs.
        let q1 = JobQueue::with_journal(DatasetStore::new(), &path).unwrap();
        let id = q1.submit(the_spec).unwrap();
        drop(q1);

        let q2 = JobQueue::with_journal(DatasetStore::new(), &path).unwrap();
        assert_eq!(q2.state(&id), Some(JobState::Queued));
        let worker = {
            let q = q2.clone();
            std::thread::spawn(move || q.work())
        };
        let replayed = wait_done(&q2, &id);
        assert_eq!(
            replayed.get("csv"),
            reference.get("csv"),
            "replayed run must be byte-identical to the original"
        );
        q2.shutdown();
        worker.join().unwrap();
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn journal_replay_is_strict_but_tolerates_a_torn_final_line() {
        let dir = std::env::temp_dir().join("trajdp-journal-strict-test");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("jobs.jsonl");
        let q = JobQueue::with_journal(DatasetStore::new(), &path).unwrap();
        q.submit(spec()).unwrap();
        drop(q);

        // A torn final append (no trailing newline) is ignored — and
        // truncated out of the file, so later appends start clean.
        let good = std::fs::read_to_string(&path).unwrap();
        std::fs::write(&path, format!("{good}{{\"event\":\"sub")).unwrap();
        let q = JobQueue::with_journal(DatasetStore::new(), &path).unwrap();
        assert_eq!(q.outstanding(), 1);
        // Regression: a submit after the torn-tail restart used to be
        // appended onto the fragment, fusing into one corrupt mid-file
        // line that bricked every later restart of this state dir.
        q.submit(spec()).unwrap();
        drop(q);
        let q = JobQueue::with_journal(DatasetStore::new(), &path).unwrap();
        assert_eq!(q.outstanding(), 2, "restart after torn-tail repair must keep working");
        drop(q);

        // A complete final event that lost only its newline is kept
        // and the terminator restored.
        std::fs::write(&path, good.trim_end_matches('\n')).unwrap();
        let q = JobQueue::with_journal(DatasetStore::new(), &path).unwrap();
        assert_eq!(q.outstanding(), 1);
        q.submit(spec()).unwrap();
        drop(q);
        let q = JobQueue::with_journal(DatasetStore::new(), &path).unwrap();
        assert_eq!(q.outstanding(), 2, "newline repair must keep the journal appendable");
        drop(q);

        // Corruption anywhere else fails startup loudly.
        std::fs::write(&path, format!("not json\n{good}")).unwrap();
        let err = JobQueue::with_journal(DatasetStore::new(), &path).map(|_| ()).unwrap_err();
        assert!(err.contains("line 1"), "{err}");
        // So does a semantically invalid event.
        std::fs::write(
            &path,
            format!("{good}{{\"event\":\"finish\",\"job\":\"job-9\",\"result\":{{}}}}\n"),
        )
        .unwrap();
        let err = JobQueue::with_journal(DatasetStore::new(), &path).map(|_| ()).unwrap_err();
        assert!(err.contains("unsubmitted"), "{err}");
        std::fs::remove_dir_all(&dir).ok();
    }
}

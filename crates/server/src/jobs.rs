//! Job queue for asynchronous anonymization requests.
//!
//! An `anonymize` request with `"async": true` is assigned a job id
//! (`job-1`, `job-2`, …), queued, and executed by a pool of worker
//! threads owned by the server. Clients poll with `status`; a finished
//! job answers with the full anonymize response inline.

use crate::json::Json;
use crate::protocol::{run_anonymize, AnonymizeSpec};
use std::collections::{HashMap, VecDeque};
use std::sync::{Arc, Condvar, Mutex};

/// Lifecycle of one queued job.
#[derive(Debug, Clone, PartialEq)]
pub enum JobState {
    /// Waiting for a worker.
    Queued,
    /// A worker is executing it.
    Running,
    /// Finished; holds the response object.
    Done(Json),
}

impl JobState {
    /// Protocol name of the state.
    pub fn name(&self) -> &'static str {
        match self {
            JobState::Queued => "queued",
            JobState::Running => "running",
            JobState::Done(_) => "done",
        }
    }
}

/// How many finished jobs (with their full result payloads) the table
/// retains. Results can be megabytes of CSV each; without a cap a
/// long-lived server grows without bound. Oldest finished jobs are
/// evicted first; polling an evicted id reports it as unknown.
pub const MAX_FINISHED_RETAINED: usize = 256;

#[derive(Default)]
struct QueueInner {
    pending: VecDeque<(String, AnonymizeSpec)>,
    states: HashMap<String, JobState>,
    /// Finished job ids in completion order, for bounded eviction.
    finished_order: VecDeque<String>,
    next_id: u64,
    shutdown: bool,
}

/// Shared job queue + state table. Cloneable handle (`Arc` inside).
#[derive(Clone, Default)]
pub struct JobQueue {
    inner: Arc<(Mutex<QueueInner>, Condvar)>,
}

impl JobQueue {
    /// An empty queue.
    pub fn new() -> Self {
        Self::default()
    }

    /// Enqueues a job, returning its id.
    pub fn submit(&self, spec: AnonymizeSpec) -> String {
        let (lock, cvar) = &*self.inner;
        let mut q = lock.lock().expect("queue poisoned");
        q.next_id += 1;
        let id = format!("job-{}", q.next_id);
        q.pending.push_back((id.clone(), spec));
        q.states.insert(id.clone(), JobState::Queued);
        cvar.notify_one();
        id
    }

    /// Current state of a job, if it exists.
    pub fn state(&self, id: &str) -> Option<JobState> {
        let (lock, _) = &*self.inner;
        lock.lock().expect("queue poisoned").states.get(id).cloned()
    }

    /// Number of jobs not yet finished.
    pub fn outstanding(&self) -> usize {
        let (lock, _) = &*self.inner;
        let q = lock.lock().expect("queue poisoned");
        q.states.values().filter(|s| !matches!(s, JobState::Done(_))).count()
    }

    /// Blocks until a job is available, returning `None` on shutdown.
    fn take(&self) -> Option<(String, AnonymizeSpec)> {
        let (lock, cvar) = &*self.inner;
        let mut q = lock.lock().expect("queue poisoned");
        loop {
            if let Some(job) = q.pending.pop_front() {
                q.states.insert(job.0.clone(), JobState::Running);
                return Some(job);
            }
            if q.shutdown {
                return None;
            }
            q = cvar.wait(q).expect("queue poisoned");
        }
    }

    fn finish(&self, id: &str, result: Json) {
        let (lock, _) = &*self.inner;
        let mut q = lock.lock().expect("queue poisoned");
        q.states.insert(id.to_string(), JobState::Done(result));
        q.finished_order.push_back(id.to_string());
        while q.finished_order.len() > MAX_FINISHED_RETAINED {
            if let Some(evicted) = q.finished_order.pop_front() {
                q.states.remove(&evicted);
            }
        }
    }

    /// Wakes all workers and makes further `take` calls return `None`.
    /// Already-queued jobs are still drained before workers exit.
    pub fn shutdown(&self) {
        let (lock, cvar) = &*self.inner;
        lock.lock().expect("queue poisoned").shutdown = true;
        cvar.notify_all();
    }

    /// Worker loop: execute jobs until shutdown. A panicking job is
    /// recorded as a failed result instead of killing the worker thread
    /// and stranding the job in `Running` forever.
    pub fn work(&self) {
        while let Some((id, spec)) = self.take() {
            let result =
                std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| run_anonymize(&spec)))
                    .unwrap_or_else(|panic| {
                        let msg = panic
                            .downcast_ref::<&str>()
                            .map(|s| s.to_string())
                            .or_else(|| panic.downcast_ref::<String>().cloned())
                            .unwrap_or_else(|| "job panicked".to_string());
                        crate::protocol::error_response(&format!("job panicked: {msg}"))
                    });
            self.finish(&id, result);
        }
    }

    /// The `status` response for a job id.
    pub fn status_response(&self, id: &str) -> Json {
        match self.state(id) {
            None => crate::protocol::error_response(&format!("unknown job {id:?}")),
            Some(JobState::Done(result)) => {
                let mut obj = match result {
                    Json::Obj(m) => m,
                    other => {
                        let mut m = std::collections::BTreeMap::new();
                        m.insert("result".to_string(), other);
                        m
                    }
                };
                obj.insert("job".to_string(), Json::from(id.to_string()));
                obj.insert("state".to_string(), Json::from("done"));
                Json::Obj(obj)
            }
            Some(state) => Json::obj([
                ("ok", Json::Bool(true)),
                ("job", Json::from(id.to_string())),
                ("state", Json::from(state.name())),
            ]),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use trajdp_core::Model;
    use trajdp_model::csv::to_csv;
    use trajdp_synth::{generate, GeneratorConfig};

    fn spec() -> AnonymizeSpec {
        let world = generate(&GeneratorConfig::tdrive_profile(4, 20, 3));
        AnonymizeSpec {
            model: Model::PureLocal,
            epsilon: 1.0,
            eps_split: 0.5,
            m: 2,
            seed: 5,
            workers: 1,
            csv: to_csv(&world.dataset),
        }
    }

    #[test]
    fn ids_are_sequential_and_unique() {
        let q = JobQueue::new();
        let a = q.submit(spec());
        let b = q.submit(spec());
        assert_ne!(a, b);
        assert_eq!(q.state(&a), Some(JobState::Queued));
        assert_eq!(q.outstanding(), 2);
    }

    #[test]
    fn worker_drains_queue_and_finishes_jobs() {
        let q = JobQueue::new();
        let id = q.submit(spec());
        let worker = {
            let q = q.clone();
            std::thread::spawn(move || q.work())
        };
        // Poll until done.
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(30);
        loop {
            match q.state(&id) {
                Some(JobState::Done(result)) => {
                    assert_eq!(result.get("ok"), Some(&Json::Bool(true)), "{result}");
                    break;
                }
                _ if std::time::Instant::now() > deadline => panic!("job never finished"),
                _ => std::thread::sleep(std::time::Duration::from_millis(10)),
            }
        }
        let status = q.status_response(&id);
        assert_eq!(status.get("state").and_then(Json::as_str), Some("done"));
        assert_eq!(status.get("job").and_then(Json::as_str), Some(id.as_str()));
        assert!(status.get("csv").is_some(), "done status inlines the result");
        q.shutdown();
        worker.join().unwrap();
    }

    #[test]
    fn shutdown_releases_idle_workers() {
        let q = JobQueue::new();
        let worker = {
            let q = q.clone();
            std::thread::spawn(move || q.work())
        };
        std::thread::sleep(std::time::Duration::from_millis(20));
        q.shutdown();
        worker.join().unwrap();
    }

    #[test]
    fn finished_jobs_are_evicted_oldest_first_beyond_cap() {
        let q = JobQueue::new();
        for i in 0..=MAX_FINISHED_RETAINED {
            q.finish(&format!("job-{i}"), Json::obj([("ok", Json::Bool(true))]));
        }
        // job-0 (oldest) evicted, newest retained.
        assert_eq!(q.state("job-0"), None, "oldest finished job must be evicted");
        assert!(matches!(
            q.state(&format!("job-{MAX_FINISHED_RETAINED}")),
            Some(JobState::Done(_))
        ));
        let r = q.status_response("job-0");
        assert_eq!(r.get("ok"), Some(&Json::Bool(false)), "evicted id reports unknown");
    }

    #[test]
    fn unknown_job_is_an_error() {
        let q = JobQueue::new();
        let r = q.status_response("job-404");
        assert_eq!(r.get("ok"), Some(&Json::Bool(false)));
    }
}

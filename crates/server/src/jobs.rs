//! Job queue for asynchronous anonymization requests, with an optional
//! durable journal.
//!
//! An `anonymize` request with `"async": true` is assigned a job id
//! (`job-1`, `job-2`, …), queued, and executed by a pool of worker
//! threads owned by the server. Clients poll with `status`; a finished
//! job answers with the full anonymize response inline.
//!
//! ## Durability
//!
//! With a journal path (the server's `--state-dir`), every lifecycle
//! transition is appended as one JSON line *before* it is acknowledged:
//!
//! ```text
//! {"event":"submit","job":"job-3","spec":{...}}
//! {"event":"finish","job":"job-3","result":{...response object...}}
//! ```
//!
//! A submit whose dataset came from a store handle journals the handle
//! id (`"dataset"` inside the spec), not the resolved CSV — the bytes
//! are already durable in the dataset store and the handle is **pinned**
//! for the job's lifetime, so neither `delete` nor LRU/TTL eviction can
//! remove what a replay would need. Inline submits still record their
//! text verbatim.
//!
//! On restart the journal is replayed: finished jobs answer `status`
//! with their recorded result, and jobs that were `queued` or `running`
//! at the crash are re-enqueued (re-resolving journaled handles against
//! the reloaded store). Because the executor is deterministic per seed,
//! a replayed run produces byte-identical output to the original.
//! Replay is strict — a malformed line fails startup loudly rather than
//! silently dropping jobs — except for a torn final line, which is
//! exactly what a crash mid-append leaves behind and means that submit
//! was never acknowledged.
//!
//! ## Privacy-budget ledger
//!
//! The queue owns the per-dataset ε accumulator ([`EpsLedger`]) under
//! its existing mutex, and the journal makes it durable with four more
//! event kinds:
//!
//! ```text
//! {"event":"budget","dataset":"ds-1","eps_budget":3.5}   explicit upload budget
//! {"event":"spend","dataset":"ds-1","eps":0.5}           synchronous run charge
//! {"event":"reset","dataset":"ds-1"}                     dataset deleted
//! {"event":"cancel","job":"job-3"}                       queued job cancelled
//! ```
//!
//! The ledger's `spent` holds **settled** charges only (finished jobs
//! and synchronous runs); the charge of an accepted-but-unfinished job
//! is derived from its live spec at check time. That split is what
//! makes replay exact: a journaled `submit` without a matching `finish`
//! re-enqueues and thereby re-charges in flight, a `finish` settles the
//! same `f64` the original run settled (same additions, same order —
//! bit-identical), and compaction folds settled spend into the
//! snapshot line's `"ledger"` member, which round-trips through JSON
//! exactly (Rust floats print shortest-round-trip). A crash between
//! the fsynced event and the acknowledgement replays the charge —
//! over-counting at worst, never under-counting.
//!
//! Every budget mutation fsyncs *before* the in-memory ledger changes
//! and before the client hears an acknowledgement, under the same
//! journal lock that serializes submits — so concurrent
//! check-then-charge sequences cannot interleave and overspend.
//!
//! ## Compaction
//!
//! An append-only journal's replay cost scales with lifetime job count,
//! not live state. The journal is therefore rewritten — temp file +
//! fsync + rename, so a crash mid-compaction leaves the old journal
//! intact — whenever [`COMPACT_FINISHED_EVENTS`] finish events have
//! accumulated since the last rewrite, and once at every startup. A
//! compacted journal holds one `snapshot` line (preserving the id
//! counter), one `submit` line per unfinished job, and one `done` line
//! per retained finished job; everything a finished job's original
//! submit carried (potentially megabytes of CSV) is dropped.
//!
//! ## Result spilling
//!
//! A journaled queue keeps the finished-job table from pinning huge
//! response payloads in RAM: a result whose serialized form reaches
//! [`SPILL_RESULT_BYTES`] is written to `<state-dir>/results/<id>.json`
//! and the in-memory record keeps only the path (plus the result's
//! dataset handle, so retention eviction can still reclaim it without a
//! disk read). `status` reads the file back outside the queue mutex and
//! answers with the identical bytes; journal compaction streams spilled
//! files straight into the rewritten journal. Replay re-spills large
//! results, and startup removes `results/` files no job references. A
//! failed spill write falls back to keeping the result inline — the
//! spill is a memory optimization, never a durability mechanism (the
//! journal's `finish` event is the durable copy).
//!
//! ## Locking
//!
//! Journal appends fsync. Doing that under the queue mutex — as the
//! first durable version did — meant one large inline submit stalled
//! every concurrent `status`/`list` poll for the duration of the disk
//! write. Appends are now serialized on a dedicated journal lock;
//! the queue mutex is taken only for the in-memory transitions, so
//! reads proceed while a write is in flight. Submit acknowledgements
//! still happen strictly after the event is durable. Spill files are
//! written and read entirely outside the queue mutex as well.

use crate::api::{render_v1, ApiError, Response};
use crate::json::Json;
use crate::ledger::EpsLedger;
use crate::obs::{log_enabled, log_event, LogLevel, Metrics, PhaseTimings};
use crate::protocol::{run_anonymize, spec_from_json, spec_to_json, AnonymizeSpec, DataRef};
use crate::store::DatasetStore;
use std::collections::{HashMap, HashSet, VecDeque};
use std::io::{Seek, Write};
use std::path::{Path, PathBuf};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Instant;

/// Lifecycle of one queued job.
#[derive(Debug, Clone, PartialEq)]
pub enum JobState {
    /// Waiting for a worker.
    Queued,
    /// A worker is executing it.
    Running,
    /// Finished; holds the response object. Shared, not owned: results
    /// can be megabytes of inline CSV, and the compaction snapshot must
    /// be able to collect every retained result under the queue mutex
    /// without deep-copying any of them.
    Done(Arc<Json>),
    /// Finished, but the result was large enough to spill to disk: only
    /// the file path lives in memory. The result's dataset handle (if
    /// it stored one) is captured at spill time so retention eviction
    /// can reclaim the handle without reading the file back.
    Spilled { path: PathBuf, dataset: Option<String> },
}

impl JobState {
    /// Protocol name of the state. A spilled job is still `"done"` —
    /// where the result bytes live is invisible on the wire.
    pub fn name(&self) -> &'static str {
        match self {
            JobState::Queued => "queued",
            JobState::Running => "running",
            JobState::Done(_) | JobState::Spilled { .. } => "done",
        }
    }
}

/// How many finished jobs (with their full result payloads) the table
/// retains. Results can be megabytes of CSV each; without a cap a
/// long-lived server grows without bound. Oldest finished jobs are
/// evicted first; polling an evicted id reports it as unknown.
pub const MAX_FINISHED_RETAINED: usize = 256;

/// Journal finish events accumulated since the last compaction that
/// trigger the next one. Each finished job contributes two lines
/// (submit + finish) that compaction collapses to at most one, so by
/// the time this fires the journal carries at least this many dead
/// lines.
pub const COMPACT_FINISHED_EVENTS: usize = 256;

/// Serialized result size at which a journaled queue spills a finished
/// job's payload to `<state-dir>/results/` instead of retaining it in
/// the job table. With [`MAX_FINISHED_RETAINED`] jobs retained, inline
/// results below this bound the table to ~256 MiB worst case; anything
/// larger lives on disk and is read back per `status` request.
pub const SPILL_RESULT_BYTES: usize = 1 << 20;

/// Where and when finished results spill to disk. Present only on
/// journaled queues — a memory-only queue has no state dir to spill
/// into, so its results always stay inline.
struct Spill {
    /// `<state-dir>/results`, created lazily on first spill.
    dir: PathBuf,
    /// Serialized-size threshold at which a result spills.
    threshold: usize,
}

impl Spill {
    fn path_for(&self, id: &str) -> PathBuf {
        self.dir.join(format!("{id}.json"))
    }

    /// Writes one pre-serialized result. No fsync: the journal's
    /// `finish` event is the durable copy, and a restart re-spills from
    /// it — a torn spill file never outlives the replay that would
    /// have read it.
    fn write(&self, id: &str, text: &str) -> std::io::Result<PathBuf> {
        std::fs::create_dir_all(&self.dir)?;
        let path = self.path_for(id);
        std::fs::write(&path, text)?;
        Ok(path)
    }
}

/// Decides where a finished result lives: at or above the spill
/// threshold it goes to the results dir and only its path (plus the
/// dataset handle, for eviction) stays in memory; otherwise inline. A
/// failed spill write degrades to inline — worse memory, same answers.
fn done_state(spill: Option<&Spill>, id: &str, result: Json) -> JobState {
    if let Some(spill) = spill {
        let text = result.to_string();
        if text.len() >= spill.threshold {
            match spill.write(id, &text) {
                Ok(path) => {
                    let dataset = result.get("dataset").and_then(Json::as_str).map(str::to_string);
                    if log_enabled(LogLevel::Debug) {
                        log_event(
                            LogLevel::Debug,
                            "job result spilled",
                            &[("job", Json::from(id)), ("bytes", Json::from(text.len() as u64))],
                        );
                    }
                    return JobState::Spilled { path, dataset };
                }
                Err(e) => {
                    if log_enabled(LogLevel::Warn) {
                        log_event(
                            LogLevel::Warn,
                            "result spill failed; keeping result in memory",
                            &[("job", Json::from(id)), ("error", Json::from(e.to_string()))],
                        );
                    }
                }
            }
        }
    }
    JobState::Done(Arc::new(result))
}

/// In-memory observability record of one job: submission/pickup clocks,
/// the finished wall-clock, per-phase timings, and the correlation id of
/// the submitting request. Never journaled — a replayed job legitimately
/// has no clock, and `status` simply omits the members.
#[derive(Debug, Clone, Default)]
struct JobMeta {
    submitted_at: Option<Instant>,
    started_at: Option<Instant>,
    /// Submit → done wall-clock, seconds, once finished.
    duration_secs: Option<f64>,
    /// Per-phase wall-clock of a finished anonymize run.
    timings: Option<PhaseTimings>,
    /// The v2 envelope id of the submitting request, carried through
    /// the queue so worker log lines correlate with the submit.
    cid: Option<String>,
    /// The authenticated tenant that submitted the job. Never journaled
    /// — job slots are admission control, not durable state, so a
    /// replayed job counts toward nobody's quota.
    tenant: Option<String>,
}

#[derive(Default)]
struct QueueInner {
    /// Ids waiting for a worker, in submit order.
    pending: VecDeque<String>,
    states: HashMap<String, JobState>,
    /// Observability metadata per known job; evicted with the job
    /// record so it cannot outgrow the retention cap.
    meta: HashMap<String, JobMeta>,
    /// Specs of every unfinished (queued or running) job — workers take
    /// from here, and journal compaction re-records them.
    live_specs: HashMap<String, AnonymizeSpec>,
    /// Finished job ids in completion order, for bounded eviction.
    finished_order: VecDeque<String>,
    /// Result handles whose job record aged out while the handle was
    /// still pinned (it is some queued job's input): reclaim is retried
    /// when the pinning job finishes and drops its pin.
    deferred_deletes: HashSet<String>,
    /// Settled ε spend and explicit budgets per dataset handle. Guarded
    /// by the queue mutex like everything else here; every mutation is
    /// journaled first (see the module doc).
    ledger: EpsLedger,
    next_id: u64,
    shutdown: bool,
}

impl QueueInner {
    /// Sum of the ε charges of accepted-but-unfinished jobs reading
    /// `handle`. Together with the ledger's settled spend this is the
    /// handle's total committed spend — live specs are the in-flight
    /// half precisely so replay (which re-enqueues unfinished submits)
    /// reconstructs the same total without any float subtraction.
    fn in_flight(&self, handle: &str) -> f64 {
        self.live_specs
            .values()
            .filter(|s| s.source.as_deref() == Some(handle))
            .map(|s| s.epsilon)
            .sum()
    }

    /// Settled + in-flight spend for `handle` — the value `list`/`info`
    /// report and the `trajdp_eps_spent` gauge publishes.
    fn eps_spent(&self, handle: &str) -> f64 {
        self.ledger.spent(handle) + self.in_flight(handle)
    }

    /// How many unfinished jobs `tenant` has in the queue right now.
    fn tenant_job_slots(&self, tenant: &str) -> usize {
        self.states
            .iter()
            .filter(|(_, s)| matches!(s, JobState::Queued | JobState::Running))
            .filter(|(id, _)| {
                self.meta.get(id.as_str()).and_then(|m| m.tenant.as_deref()) == Some(tenant)
            })
            .count()
    }
    /// Records a completion, evicting the oldest finished jobs past the
    /// retention cap. Returns the result dataset handles and spill
    /// files of the evicted jobs: a `store:true` result lives *at most*
    /// as long as its job record (LRU pressure or a TTL may evict the
    /// handle sooner — it is an unpinned cache entry like any other),
    /// so the caller must delete those handles from the store and
    /// unlink the files — otherwise they would sit unreachable (their
    /// job id answers "unknown") until the startup reconciliation and
    /// orphan sweep removed them anyway. Both cleanups are the caller's
    /// job because they touch the disk/store, never done under the
    /// queue mutex this runs inside.
    fn record_done(&mut self, id: &str, done: JobState) -> (Vec<String>, Vec<PathBuf>) {
        debug_assert!(matches!(done, JobState::Done(_) | JobState::Spilled { .. }));
        self.states.insert(id.to_string(), done);
        self.finished_order.push_back(id.to_string());
        let mut dropped_handles = Vec::new();
        let mut dropped_files = Vec::new();
        while self.finished_order.len() > MAX_FINISHED_RETAINED {
            if let Some(evicted) = self.finished_order.pop_front() {
                self.meta.remove(&evicted);
                match self.states.remove(&evicted) {
                    Some(JobState::Done(result)) => {
                        if let Some(handle) = result.get("dataset").and_then(Json::as_str) {
                            dropped_handles.push(handle.to_string());
                        }
                    }
                    Some(JobState::Spilled { path, dataset }) => {
                        dropped_handles.extend(dataset);
                        dropped_files.push(path);
                    }
                    _ => {}
                }
            }
        }
        (dropped_handles, dropped_files)
    }

    /// A consistent copy of the state a compacted journal must record.
    /// Cheap to build under the queue mutex: specs alias their CSV via
    /// `Arc` and results are `Arc`-shared, so nothing is deep-copied
    /// here — serialization happens later, under the journal lock only.
    fn snapshot(&self) -> Snapshot {
        let mut unfinished: Vec<&String> = self.live_specs.keys().collect();
        unfinished.sort_by_key(|id| job_number(id).unwrap_or(u64::MAX));
        Snapshot {
            next_id: self.next_id,
            submits: unfinished
                .into_iter()
                // PANIC: `unfinished` was collected from `live_specs.keys()`
                // above, with no mutation in between, so every id indexes
                // a present entry.
                .map(|id| (id.clone(), self.live_specs[id].clone()))
                .collect(),
            dones: self
                .finished_order
                .iter()
                .filter_map(|id| match self.states.get(id) {
                    Some(JobState::Done(result)) => {
                        Some((id.clone(), DoneRecord::Mem(Arc::clone(result))))
                    }
                    Some(JobState::Spilled { path, .. }) => {
                        Some((id.clone(), DoneRecord::Spilled(path.clone())))
                    }
                    _ => None,
                })
                .collect(),
            ledger: self.ledger.clone(),
        }
    }
}

/// State captured for one journal compaction: id counter, unfinished
/// submits in id order, retained results in completion order, and the
/// settled half of the ε ledger (in-flight charges re-derive from the
/// re-recorded submits on replay).
struct Snapshot {
    next_id: u64,
    submits: Vec<(String, AnonymizeSpec)>,
    dones: Vec<(String, DoneRecord)>,
    ledger: EpsLedger,
}

/// Where one retained result's bytes live at compaction time. Spilled
/// results are recorded by path only — the rewrite streams the file
/// straight into the journal, so a snapshot of 256 spilled results
/// never materializes them in memory at once.
enum DoneRecord {
    Mem(Arc<Json>),
    Spilled(PathBuf),
}

/// The append/rewrite half of the journal, behind its own lock so disk
/// writes never hold the queue mutex.
struct JournalWriter {
    file: std::fs::File,
    path: PathBuf,
    /// Finish events appended since the last compaction.
    finished_appends: usize,
}

impl JournalWriter {
    fn open(path: &Path) -> std::io::Result<JournalWriter> {
        let file = std::fs::OpenOptions::new().create(true).append(true).open(path)?;
        Ok(JournalWriter { file, path: path.to_path_buf(), finished_appends: 0 })
    }

    /// Appends one event line and syncs it to disk — the "appended
    /// before it is acknowledged" contract must hold across power
    /// loss, not just process death, so this fsyncs rather than merely
    /// flushing. Returns the pre-append file length, so a caller that
    /// decides *after* the append that the event must not stand (a
    /// shutdown raced the submit) can [`Self::rollback_to`] it. A
    /// failed append rolls the file back itself: a torn fragment left
    /// in place would fuse with the next successful append into one
    /// corrupt mid-file line, which replay (rightly) refuses —
    /// bricking every future restart on this state dir.
    fn append(&mut self, event: &Json) -> std::io::Result<u64> {
        // Seek explicitly: after a compaction the handle is the temp
        // file's plain fd (not `O_APPEND`), and a preceding rollback
        // truncates without moving the cursor — writing at a stale
        // cursor past EOF would punch a NUL-filled gap into the
        // journal, which strict replay (rightly) refuses forever.
        let before = self.file.seek(std::io::SeekFrom::End(0))?;
        let write = self
            .file
            .write_all(format!("{event}\n").as_bytes())
            .and_then(|()| self.file.sync_data());
        if let Err(e) = write {
            self.rollback_to(before);
            return Err(e);
        }
        Ok(before)
    }

    /// Truncates the journal back to `len` and parks the cursor at the
    /// new EOF — only safe while the caller still holds the journal
    /// lock it appended under, so no other event has landed after the
    /// one being rolled back.
    fn rollback_to(&mut self, len: u64) {
        let _ = self.file.set_len(len);
        let _ = self.file.seek(std::io::SeekFrom::Start(len));
    }

    /// Atomically replaces the journal with the snapshot (temp file +
    /// fsync, then rename + directory fsync). A crash at any point
    /// leaves either the old or the new journal complete on disk,
    /// never a mixture. The temp file's own descriptor becomes the
    /// append handle the moment the rename lands — re-opening by path
    /// could fail (e.g. fd exhaustion) and leave acknowledged appends
    /// going to the replaced, unlinked inode.
    fn rewrite(&mut self, snapshot: &Snapshot) -> std::io::Result<()> {
        let tmp = self.path.with_extension("jsonl.tmp");
        // Stream each event straight into the temp file: the retained
        // results can total hundreds of MB, so neither they nor the
        // assembled journal text may be copied into a transient buffer
        // (the `Arc`-shared results serialize via Display, no clone).
        let mut f = std::io::BufWriter::new(std::fs::File::create(&tmp)?);
        // The `ledger` member is omitted when empty so journals that
        // never touched the budget machinery keep their pre-ledger
        // byte shape.
        if snapshot.ledger.is_empty() {
            writeln!(f, "{{\"event\":\"snapshot\",\"next\":{}}}", snapshot.next_id)?;
        } else {
            writeln!(
                f,
                "{{\"event\":\"snapshot\",\"next\":{},\"ledger\":{}}}",
                snapshot.next_id,
                snapshot.ledger.to_json()
            )?;
        }
        for (id, spec) in &snapshot.submits {
            writeln!(
                f,
                "{{\"event\":\"submit\",\"job\":{},\"spec\":{}}}",
                Json::from(id.clone()),
                spec_to_json(spec)
            )?;
        }
        for (id, record) in &snapshot.dones {
            write!(f, "{{\"event\":\"done\",\"job\":{},\"result\":", Json::from(id.clone()))?;
            match record {
                DoneRecord::Mem(result) => write!(f, "{result}")?,
                // A spilled file holds exactly the single-line JSON of
                // the result, no trailing newline — copy it verbatim.
                DoneRecord::Spilled(path) => {
                    std::io::copy(&mut std::fs::File::open(path)?, &mut f)?;
                }
            }
            writeln!(f, "}}")?;
        }
        let f = f.into_inner().map_err(|e| e.into_error())?;
        f.sync_all()?;
        std::fs::rename(&tmp, &self.path)?;
        // From here on `f` IS the live journal: later appends must go
        // to it even if the directory fsync below fails.
        self.file = f;
        self.finished_appends = 0;
        if let Some(dir) = self.path.parent() {
            std::fs::File::open(dir)?.sync_all()?;
        }
        Ok(())
    }
}

/// Shared job queue + state table. Cloneable handle (`Arc` inside).
#[derive(Clone, Default)]
pub struct JobQueue {
    inner: Arc<(Mutex<QueueInner>, Condvar)>,
    /// Serializes journal disk writes, independent of the queue mutex.
    /// Lock order is always journal → queue, never the reverse.
    journal: Arc<Mutex<Option<JournalWriter>>>,
    /// Result spill policy; `None` on memory-only queues.
    spill: Option<Arc<Spill>>,
    store: DatasetStore,
    /// Observability registry. The queue publishes counters and
    /// histogram samples (all-atomic) from inside its own critical
    /// sections, but the mutex-guarded ε gauge is only ever updated
    /// *after* the queue/journal locks are released; readers (the
    /// `metrics` verb) never touch the queue or journal locks.
    metrics: Arc<Metrics>,
    /// Server-wide default ε budget (`serve --eps-budget`), applied to
    /// any handle without an explicit `upload` budget. Configuration,
    /// not state: it is re-derived from the flag at every start and
    /// never journaled.
    default_eps_budget: Option<f64>,
}

impl JobQueue {
    /// An empty, memory-only queue with its own private dataset store.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty, memory-only queue sharing `store` (so `"store": true`
    /// job results land where `download` can find them).
    pub fn with_store(store: DatasetStore) -> Self {
        Self {
            inner: Arc::default(),
            journal: Arc::default(),
            spill: None,
            store,
            metrics: Arc::default(),
            default_eps_budget: None,
        }
    }

    /// The same queue publishing into `metrics` instead of its private
    /// registry — the server wires all layers to one shared registry.
    /// Republishes any replayed ledger state as `trajdp_eps_spent`
    /// gauges, so a restarted server's metrics reflect spend from the
    /// first scrape.
    pub fn with_metrics(mut self, metrics: Arc<Metrics>) -> Self {
        self.metrics = metrics;
        let gauges = {
            let (lock, _) = &*self.inner;
            let Ok(q) = lock.lock() else { return self };
            let mut handles: HashSet<String> =
                q.ledger.iter().map(|(h, _)| h.to_string()).collect();
            handles.extend(q.live_specs.values().filter_map(|s| s.source.clone()));
            handles.into_iter().map(|h| (q.eps_spent(&h), h)).collect::<Vec<_>>()
        };
        // Publish outside the queue mutex: the gauge family is behind
        // its own metrics lock, and mixing the two would couple the
        // read path to queue contention.
        for (spent, handle) in gauges {
            self.metrics.set_eps_spent(&handle, spent);
        }
        self
    }

    /// The same queue applying `budget` as the default ε budget for
    /// handles without an explicit one (`serve --eps-budget`).
    pub fn with_eps_budget(mut self, budget: Option<f64>) -> Self {
        self.default_eps_budget = budget;
        self
    }

    /// The server-wide default ε budget, if one was configured.
    pub fn default_eps_budget(&self) -> Option<f64> {
        self.default_eps_budget
    }

    /// A queue journaled at `path`: replays the existing journal (if
    /// any), re-enqueueing unfinished jobs (pinning their dataset
    /// handles) and restoring finished results (re-spilling large ones
    /// to `results/` beside the journal), reconciles orphaned
    /// job-result datasets and spill files against the replayed state,
    /// compacts the journal, then appends all further events to the
    /// same file.
    pub fn with_journal(store: DatasetStore, path: &Path) -> Result<Self, String> {
        Self::with_journal_opts(store, path, SPILL_RESULT_BYTES)
    }

    /// [`Self::with_journal`] with an explicit spill threshold, for
    /// tests that need spilling to trigger without megabyte payloads.
    pub fn with_journal_opts(
        store: DatasetStore,
        path: &Path,
        spill_threshold: usize,
    ) -> Result<Self, String> {
        let spill = Arc::new(Spill {
            dir: path.parent().map_or_else(|| PathBuf::from("results"), |d| d.join("results")),
            threshold: spill_threshold,
        });
        let mut inner = QueueInner::default();
        let mut text = match std::fs::read_to_string(path) {
            Ok(text) => text,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => String::new(),
            Err(e) => return Err(format!("cannot read journal {}: {e}", path.display())),
        };
        // Repair a crash-torn tail *in the file*, not just in memory:
        // the journal reopens in append mode, so a fragment left behind
        // would fuse with the next event into one corrupt mid-file line
        // — unreadable on every restart after that.
        if !text.is_empty() && !text.ends_with('\n') {
            let tail_start = text.rfind('\n').map_or(0, |i| i + 1);
            if crate::json::parse(&text[tail_start..]).is_ok() {
                // A complete event that lost only its terminator: the
                // crash hit between the bytes and the newline. Keep it
                // (replay treats it normally) and restore the newline.
                std::fs::OpenOptions::new()
                    .append(true)
                    .open(path)
                    .and_then(|mut f| f.write_all(b"\n"))
                    .map_err(|e| format!("cannot repair journal {}: {e}", path.display()))?;
                text.push('\n');
            } else {
                // A torn fragment; its submit was never acknowledged.
                // Drop it from replay and truncate it out of the file.
                std::fs::OpenOptions::new()
                    .write(true)
                    .open(path)
                    .and_then(|f| f.set_len(tail_start as u64))
                    .map_err(|e| format!("cannot repair journal {}: {e}", path.display()))?;
                text.truncate(tail_start);
            }
        }
        replay(&text, &mut inner, &store, Some(&spill))
            .map_err(|e| format!("journal {}: {e}", path.display()))?;

        // Sweep spill files no replayed job references: eviction unlinks
        // and job re-runs can both strand a `results/` file if the
        // process dies between the state change and the disk cleanup.
        let live: HashSet<PathBuf> = inner
            .states
            .values()
            .filter_map(|s| match s {
                JobState::Spilled { path, .. } => Some(path.clone()),
                _ => None,
            })
            .collect();
        if let Ok(entries) = std::fs::read_dir(&spill.dir) {
            for entry in entries.flatten() {
                if !live.contains(&entry.path()) {
                    let _ = std::fs::remove_file(entry.path());
                }
            }
        }

        // Reconcile orphaned job results: a `store:true` job whose
        // result was inserted but whose finish event never reached the
        // journal (crash, disk full) leaves a file no replay will ever
        // reference again — the re-run mints a fresh handle. Anything
        // the replayed state still names is kept.
        let mut referenced: HashSet<String> = HashSet::new();
        for state in inner.states.values() {
            match state {
                JobState::Done(result) => {
                    if let Some(handle) = result.get("dataset").and_then(Json::as_str) {
                        referenced.insert(handle.to_string());
                    }
                }
                JobState::Spilled { dataset: Some(handle), .. } => {
                    referenced.insert(handle.clone());
                }
                _ => {}
            }
        }
        for spec in inner.live_specs.values() {
            if let Some(handle) = &spec.source {
                referenced.insert(handle.clone());
            }
        }
        store.reconcile_job_results(&referenced);

        let mut writer = JournalWriter::open(path)
            .map_err(|e| format!("cannot open journal {}: {e}", path.display()))?;
        if !text.is_empty() {
            // Startup compaction: restart cost must scale with live
            // state, not lifetime job count. Best-effort, like the
            // runtime path: a failed rewrite (ENOSPC — likely on the
            // very disk an oversized journal correlates with) leaves
            // the complete append-only journal in place, which must
            // not brick a server that just replayed it successfully.
            let _ = writer.rewrite(&inner.snapshot());
        }
        Ok(Self {
            inner: Arc::new((Mutex::new(inner), Condvar::new())),
            journal: Arc::new(Mutex::new(Some(writer))),
            spill: Some(spill),
            store,
            metrics: Arc::default(),
            default_eps_budget: None,
        })
    }

    /// Enqueues a job, returning its id. Fails once shutdown has begun
    /// (no worker would ever run it — the job would report `"queued"`
    /// forever) or if the journal cannot record it (an unjournaled
    /// accept would be silently lost by a restart). The journal append
    /// — including its fsync — runs outside the queue mutex, so
    /// concurrent `status`/`list` reads never stall behind a large
    /// submit; the id is acknowledged only after the event is durable.
    pub fn submit(&self, spec: AnonymizeSpec) -> Result<String, ApiError> {
        self.submit_with_cid(spec, None)
    }

    /// [`Self::submit`] carrying the submitting request's correlation
    /// id, so worker-side log lines correlate with the v2 envelope of
    /// the request that queued the job.
    pub fn submit_with_cid(
        &self,
        spec: AnonymizeSpec,
        cid: Option<String>,
    ) -> Result<String, ApiError> {
        self.submit_scoped(spec, cid, None, None)
    }

    /// [`Self::submit_with_cid`] on behalf of an authenticated tenant:
    /// refuses with `quota-exceeded` once the tenant already has
    /// `max_jobs` unfinished jobs, and attributes the job to the tenant
    /// for later slot accounting. Both checks — this one and the ε
    /// budget check every submit runs — happen under the journal lock
    /// that serializes all accepting paths, so two concurrent submits
    /// can never both pass a check only one of them fits under.
    pub fn submit_scoped(
        &self,
        mut spec: AnonymizeSpec,
        cid: Option<String>,
        tenant: Option<String>,
        max_jobs: Option<usize>,
    ) -> Result<String, ApiError> {
        let poisoned = || ApiError::internal("job queue state poisoned by a panic");
        let mut journal = self.journal.lock().map_err(|_| poisoned())?;
        let (lock, cvar) = &*self.inner;
        let id = {
            let mut q = lock.lock().map_err(|_| poisoned())?;
            if q.shutdown {
                return Err(ApiError::shutting_down("server is shutting down; submit rejected"));
            }
            // Budget check before anything is minted or journaled: the
            // job's charge is implicit in its live spec once enqueued,
            // so refusal here leaves no state to unwind.
            if let Some(handle) = &spec.source {
                q.ledger.check(
                    handle,
                    q.in_flight(handle),
                    spec.epsilon,
                    self.default_eps_budget,
                )?;
            }
            if let (Some(tenant), Some(cap)) = (tenant.as_deref(), max_jobs) {
                if q.tenant_job_slots(tenant) >= cap {
                    return Err(ApiError::quota_exceeded(format!(
                        "tenant {tenant:?} already has {cap} unfinished jobs (max_jobs quota)"
                    )));
                }
            }
            q.next_id += 1;
            format!("job-{}", q.next_id)
        };
        // Pin the input handle for the job's lifetime: `delete` and
        // eviction must not yank data a replay would re-resolve. If the
        // handle vanished since dispatch resolved it (a raced delete),
        // fall back to journaling the resolved text inline — the job
        // still owns its data either way.
        if let Some(handle) = spec.source.clone() {
            if self.store.pin(&handle).is_err() {
                spec.source = None;
            }
        }
        let mut appended_at = None;
        if let Some(writer) = journal.as_mut() {
            let event = Json::obj([
                ("event", Json::from("submit")),
                ("job", Json::from(id.clone())),
                ("spec", spec_to_json(&spec)),
            ]);
            let append_started = Instant::now();
            // lint: allow(lock-across-io): the journal mutex is the dedicated disk-write lock (order: journal -> queue); the read path never takes it
            match writer.append(&event) {
                Ok(before) => {
                    self.metrics.journal_appends.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                    self.metrics.journal_fsync.observe(append_started.elapsed());
                    appended_at = Some(before);
                }
                Err(e) => {
                    if let Some(handle) = &spec.source {
                        self.store.unpin(handle);
                    }
                    return Err(ApiError::io(format!("cannot journal submit: {e}")));
                }
            }
        }
        let mut q = lock.lock().map_err(|_| poisoned())?;
        if q.shutdown {
            // Shutdown raced the journal write: the last workers may
            // already have drained and exited, so enqueueing now could
            // strand the job in "queued" forever. Reject it — and roll
            // the journal back (safe: the lock held since the append
            // means no later event landed), or a restart would run a
            // submit that was never acknowledged.
            drop(q);
            if let (Some(writer), Some(before)) = (journal.as_mut(), appended_at) {
                writer.rollback_to(before);
            }
            if let Some(handle) = &spec.source {
                self.store.unpin(handle);
            }
            return Err(ApiError::shutting_down("server is shutting down; submit rejected"));
        }
        q.pending.push_back(id.clone());
        q.states.insert(id.clone(), JobState::Queued);
        let charged = spec.source.clone();
        q.live_specs.insert(id.clone(), spec);
        q.meta.insert(
            id.clone(),
            JobMeta {
                submitted_at: Some(Instant::now()),
                cid: cid.clone(),
                tenant,
                ..JobMeta::default()
            },
        );
        self.metrics.jobs_submitted.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        self.metrics.set_queue_depth(q.live_specs.len() as u64);
        let eps_gauge = charged.map(|h| (q.eps_spent(&h), h));
        drop(q);
        if let Some((spent, handle)) = eps_gauge {
            self.metrics.set_eps_spent(&handle, spent);
        }
        cvar.notify_one();
        if log_enabled(LogLevel::Info) {
            let mut fields = vec![("job", Json::from(id.as_str()))];
            if let Some(cid) = &cid {
                fields.push(("cid", Json::from(cid.as_str())));
            }
            log_event(LogLevel::Info, "job submitted", &fields);
        }
        Ok(id)
    }

    /// Current state of a job, if it exists.
    pub fn state(&self, id: &str) -> Option<JobState> {
        let (lock, _) = &*self.inner;
        lock.lock().expect("queue poisoned").states.get(id).cloned()
    }

    /// Number of jobs not yet finished.
    pub fn outstanding(&self) -> usize {
        let (lock, _) = &*self.inner;
        let Ok(q) = lock.lock() else { return 0 };
        q.states.values().filter(|s| matches!(s, JobState::Queued | JobState::Running)).count()
    }

    /// Every known job as `(id, state name)`, in id order — the `list`
    /// verb. Touches only the queue mutex, never the journal.
    pub fn list(&self) -> Vec<(String, &'static str)> {
        let (lock, _) = &*self.inner;
        let Ok(q) = lock.lock() else { return Vec::new() };
        let mut out: Vec<(String, &'static str)> =
            q.states.iter().map(|(id, s)| (id.clone(), s.name())).collect();
        out.sort_by_key(|(id, _)| job_number(id).unwrap_or(u64::MAX));
        out
    }

    /// Blocks until a job is available, returning `None` on shutdown.
    /// The third element is the submitting request's correlation id,
    /// for the worker's log lines.
    fn take(&self) -> Option<(String, AnonymizeSpec, Option<String>)> {
        let (lock, cvar) = &*self.inner;
        let mut q = lock.lock().expect("queue poisoned");
        loop {
            if let Some(id) = q.pending.pop_front() {
                q.states.insert(id.clone(), JobState::Running);
                let spec = q.live_specs.get(&id).expect("pending implies live spec").clone();
                let now = Instant::now();
                let meta = q.meta.entry(id.clone()).or_default();
                meta.started_at = Some(now);
                let cid = meta.cid.clone();
                if let Some(submitted) = meta.submitted_at {
                    self.metrics.queue_wait.observe(now.duration_since(submitted));
                }
                return Some((id, spec, cid));
            }
            if q.shutdown {
                return None;
            }
            q = cvar.wait(q).expect("queue poisoned");
        }
    }

    /// Test shorthand for [`Self::finish_with_timings`] without timings
    /// (production code always finishes via the worker, which has them).
    #[cfg(test)]
    fn finish(&self, id: &str, result: Json) {
        self.finish_with_timings(id, result, None);
    }

    /// [`Self::finish`] carrying the run's per-phase timings, recorded
    /// in the in-memory job metadata (never the journal) so `status`
    /// on the done job can report them.
    fn finish_with_timings(&self, id: &str, result: Json, timings: Option<PhaseTimings>) {
        let mut journal = self.journal.lock().expect("journal poisoned");
        if let Some(writer) = journal.as_mut() {
            let event = Json::obj([
                ("event", Json::from("finish")),
                ("job", Json::from(id.to_string())),
                ("result", result.clone()),
            ]);
            // A failed finish append is not fatal: the in-memory table
            // still answers `status`, and a restart re-runs the job
            // from its journaled submit to the same bytes. The result
            // handle a `store:true` re-run strands is cleaned up by the
            // startup orphan reconciliation.
            let append_started = Instant::now();
            // lint: allow(lock-across-io): the journal mutex is the dedicated disk-write lock (order: journal -> queue); the read path never takes it
            if writer.append(&event).is_ok() {
                self.metrics.journal_appends.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                self.metrics.journal_fsync.observe(append_started.elapsed());
            }
            writer.finished_appends += 1;
        }
        // Spill before taking the queue mutex: the write is disk I/O
        // (the journal lock held here already serializes disk work),
        // and only the resulting path enters the table.
        let done = done_state(self.spill.as_deref(), id, result);
        let (source, dropped, snapshot, eps_gauge) = {
            let (lock, _) = &*self.inner;
            let mut q = lock.lock().expect("queue poisoned");
            let removed = q.live_specs.remove(id);
            // Settle the job's ε charge: it moves from in-flight
            // (derived from the live spec that just left the table) to
            // the ledger's durable `spent`. Replay performs the same
            // settle from the journaled finish event.
            let mut eps_gauge = None;
            if let Some(spec) = &removed {
                if let Some(handle) = &spec.source {
                    q.ledger.settle(handle, spec.epsilon);
                    eps_gauge = Some((q.eps_spent(handle), handle.clone()));
                }
            }
            let source = removed.and_then(|spec| spec.source);
            let dropped = q.record_done(id, done);
            let now = Instant::now();
            let meta = q.meta.entry(id.to_string()).or_default();
            meta.timings = timings;
            if let Some(submitted) = meta.submitted_at {
                meta.duration_secs = Some(now.duration_since(submitted).as_secs_f64());
            }
            if let Some(started) = meta.started_at {
                self.metrics.run_time.observe(now.duration_since(started));
            }
            self.metrics.jobs_completed.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            self.metrics.set_queue_depth(q.live_specs.len() as u64);
            let snapshot = match journal.as_ref() {
                Some(w) if w.finished_appends >= COMPACT_FINISHED_EVENTS => Some(q.snapshot()),
                _ => None,
            };
            (source, dropped, snapshot, eps_gauge)
        };
        if let Some((spent, handle)) = eps_gauge {
            self.metrics.set_eps_spent(&handle, spent);
        }
        if let Some(handle) = &source {
            self.store.unpin(handle);
        }
        // Results of jobs evicted from the retention window go with
        // their job record. A handle that cannot be reclaimed yet (it
        // is still pinned as some queued job's input, or mid-commit) is
        // deferred and retried when a pin-holding job finishes. Spill
        // files have no pins — unlink them outright (a miss is caught
        // by the startup orphan sweep).
        let (dropped_handles, dropped_files) = dropped;
        for file in dropped_files {
            let _ = std::fs::remove_file(file);
        }
        let mut deferred: Vec<String> =
            dropped_handles.into_iter().filter(|handle| !self.store.try_reclaim(handle)).collect();
        if let Some(handle) = source {
            let was_deferred = {
                let (lock, _) = &*self.inner;
                lock.lock().expect("queue poisoned").deferred_deletes.remove(&handle)
            };
            if was_deferred && !self.store.try_reclaim(&handle) {
                deferred.push(handle);
            }
        }
        if !deferred.is_empty() {
            let (lock, _) = &*self.inner;
            lock.lock().expect("queue poisoned").deferred_deletes.extend(deferred);
        }
        if let (Some(writer), Some(snapshot)) = (journal.as_mut(), snapshot) {
            // Compaction failure is not fatal either: the append-only
            // journal is still complete, just longer than it needs to
            // be; the next threshold crossing (or startup) retries.
            // lint: allow(lock-across-io): compaction must see a frozen journal; the mutex is the dedicated disk-write lock and the read path never takes it
            if writer.rewrite(&snapshot).is_ok() {
                self.metrics.journal_compactions.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            }
        }
    }

    /// Wakes all workers and makes further `take` calls return `None`.
    /// Already-queued jobs are still drained before workers exit; new
    /// submits are rejected from this point on.
    pub fn shutdown(&self) {
        let (lock, cvar) = &*self.inner;
        // Recover from poisoning rather than panic: shutdown must always
        // go through, and flipping the flag cannot compound whatever
        // half-state the panicking holder left behind.
        let mut q = lock.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        q.shutdown = true;
        drop(q);
        cvar.notify_all();
    }

    /// Worker loop: execute jobs until shutdown. A panicking job is
    /// recorded as a failed result instead of killing the worker thread
    /// and stranding the job in `Running` forever. Results are recorded
    /// in the version-less v1 shape — the journal format predates the
    /// envelope and stays stable across protocol versions.
    pub fn work(&self) {
        while let Some((id, spec, cid)) = self.take() {
            let log_fields = |id: &str, cid: &Option<String>| {
                let mut fields = vec![("job", Json::from(id))];
                if let Some(cid) = cid {
                    fields.push(("cid", Json::from(cid.as_str())));
                }
                fields
            };
            if log_enabled(LogLevel::Debug) {
                log_event(LogLevel::Debug, "job started", &log_fields(&id, &cid));
            }
            let result =
                std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| run_anonymize(&spec)))
                    .unwrap_or_else(|panic| {
                        let msg = panic
                            .downcast_ref::<&str>()
                            .map(|s| s.to_string())
                            .or_else(|| panic.downcast_ref::<String>().cloned())
                            .unwrap_or_else(|| "job panicked".to_string());
                        Err(ApiError::internal(format!("job panicked: {msg}")))
                    });
            let result = match result {
                Ok(response) if spec.store_result => {
                    crate::protocol::store_result(response, &self.store, true)
                }
                other => other,
            };
            // Pull the executor's phase timings off the response before
            // it is rendered to the version-less journal shape (which
            // deliberately omits them).
            let timings = match &result {
                Ok(Response::Anonymize { timings, .. }) => *timings,
                _ => None,
            };
            if log_enabled(LogLevel::Info) {
                let mut fields = log_fields(&id, &cid);
                match (&result, timings) {
                    (Ok(_), Some(t)) => {
                        fields.push(("ok", Json::Bool(true)));
                        fields.push(("total_secs", Json::from(t.total_secs)));
                        fields.push(("realize_secs", Json::from(t.realize_secs)));
                    }
                    (Ok(_), None) => fields.push(("ok", Json::Bool(true))),
                    (Err(e), _) => {
                        fields.push(("ok", Json::Bool(false)));
                        fields.push(("code", Json::from(e.code.as_str())));
                    }
                }
                log_event(LogLevel::Info, "job finished", &fields);
            }
            self.finish_with_timings(&id, render_v1(result), timings);
        }
    }

    /// The `status` outcome for a job id. A finished job carries its
    /// recorded result (a v1-shaped response body) — the renderer
    /// merges it flat in v1 and nests it under `"result"` in v2.
    pub fn status_response(&self, id: &str) -> Result<Response, ApiError> {
        let (lock, _) = &*self.inner;
        let (state, meta) = {
            let q = lock
                .lock()
                .map_err(|_| ApiError::internal("job queue state poisoned by a panic"))?;
            (q.states.get(id).cloned(), q.meta.get(id).cloned())
        };
        match state {
            None => Err(ApiError::job_not_found(format!("unknown job {id:?}"))),
            Some(JobState::Done(result)) => Ok(Response::JobStatus {
                job: id.to_string(),
                state: "done",
                result: Some(result),
                duration_secs: meta.as_ref().and_then(|m| m.duration_secs),
                timings: meta.and_then(|m| m.timings),
            }),
            Some(JobState::Spilled { path, .. }) => {
                // Read the spilled payload back outside the queue mutex
                // (released above) — a slow disk stalls this request,
                // never concurrent submits or polls.
                let text = std::fs::read_to_string(&path).map_err(|e| {
                    ApiError::io(format!("cannot read spilled result for job {id:?}: {e}"))
                })?;
                let result = crate::json::parse(&text).map_err(|e| {
                    ApiError::io(format!("spilled result for job {id:?} is corrupt: {e}"))
                })?;
                Ok(Response::JobStatus {
                    job: id.to_string(),
                    state: "done",
                    result: Some(Arc::new(result)),
                    duration_secs: meta.as_ref().and_then(|m| m.duration_secs),
                    timings: meta.and_then(|m| m.timings),
                })
            }
            Some(state) => Ok(Response::JobStatus {
                job: id.to_string(),
                state: state.name(),
                result: None,
                duration_secs: None,
                timings: None,
            }),
        }
    }

    /// Cancels a **queued** job: journals the cancellation (fsync
    /// before the acknowledgement, like every accepting path), removes
    /// the job record entirely — `status` on a cancelled id answers
    /// `job-not-found` — and unpins its input, refunding the job's
    /// in-flight ε charge implicitly (the live spec that carried it is
    /// gone). Running jobs are never preempted: a worker that took the
    /// job between the state check and the journal append wins the
    /// race, and the journaled cancel is rolled back.
    pub fn cancel(&self, id: &str) -> Result<Response, ApiError> {
        let poisoned = || ApiError::internal("job queue state poisoned by a panic");
        let mut journal = self.journal.lock().map_err(|_| poisoned())?;
        let (lock, _) = &*self.inner;
        {
            let q = lock.lock().map_err(|_| poisoned())?;
            match q.states.get(id) {
                None => return Err(ApiError::job_not_found(format!("unknown job {id:?}"))),
                Some(JobState::Queued) => {}
                Some(state) => {
                    return Err(ApiError::dataset_state(format!(
                        "job {id:?} is {}; only queued jobs can be cancelled",
                        state.name()
                    )))
                }
            }
        }
        let mut appended_at = None;
        if let Some(writer) = journal.as_mut() {
            let event =
                Json::obj([("event", Json::from("cancel")), ("job", Json::from(id.to_string()))]);
            let append_started = Instant::now();
            // lint: allow(lock-across-io): the journal mutex is the dedicated disk-write lock (order: journal -> queue); the read path never takes it
            match writer.append(&event) {
                Ok(before) => {
                    self.metrics.journal_appends.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                    self.metrics.journal_fsync.observe(append_started.elapsed());
                    appended_at = Some(before);
                }
                Err(e) => return Err(ApiError::io(format!("cannot journal cancel: {e}"))),
            }
        }
        let mut q = lock.lock().map_err(|_| poisoned())?;
        if !matches!(q.states.get(id), Some(JobState::Queued)) {
            // A worker took the job while the append ran. The journal
            // lock held since the append means no later event landed,
            // so the cancel event can be rolled straight back out.
            drop(q);
            if let (Some(writer), Some(before)) = (journal.as_mut(), appended_at) {
                writer.rollback_to(before);
            }
            return Err(ApiError::dataset_state(format!(
                "job {id:?} started running before the cancellation landed; \
                 running jobs are not preempted"
            )));
        }
        q.pending.retain(|pending| pending != id);
        q.states.remove(id);
        q.meta.remove(id);
        let source = q.live_specs.remove(id).and_then(|spec| spec.source);
        self.metrics.set_queue_depth(q.live_specs.len() as u64);
        let eps_gauge = source.as_ref().map(|h| (q.eps_spent(h), h.clone()));
        drop(q);
        if let Some((spent, handle)) = eps_gauge {
            self.metrics.set_eps_spent(&handle, spent);
        }
        if let Some(handle) = &source {
            self.store.unpin(handle);
        }
        if log_enabled(LogLevel::Info) {
            log_event(LogLevel::Info, "job cancelled", &[("job", Json::from(id))]);
        }
        Ok(Response::Cancelled { job: id.to_string() })
    }

    /// Journals and applies an explicit per-handle ε budget (`upload`
    /// `eps_budget`). Fails without applying anything if the budget
    /// cannot be made durable — an unjournaled budget would silently
    /// loosen to the server default on restart.
    pub fn set_eps_budget(&self, handle: &str, budget: f64) -> Result<(), ApiError> {
        let poisoned = || ApiError::internal("job queue state poisoned by a panic");
        let mut journal = self.journal.lock().map_err(|_| poisoned())?;
        if let Some(writer) = journal.as_mut() {
            let event = Json::obj([
                ("event", Json::from("budget")),
                ("dataset", Json::from(handle.to_string())),
                ("eps_budget", Json::from(budget)),
            ]);
            let append_started = Instant::now();
            // lint: allow(lock-across-io): the journal mutex is the dedicated disk-write lock (order: journal -> queue); the read path never takes it
            match writer.append(&event) {
                Ok(_) => {
                    self.metrics.journal_appends.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                    self.metrics.journal_fsync.observe(append_started.elapsed());
                }
                Err(e) => return Err(ApiError::io(format!("cannot journal budget: {e}"))),
            }
        }
        let (lock, _) = &*self.inner;
        let mut q = lock.lock().map_err(|_| poisoned())?;
        q.ledger.set_budget(handle, budget);
        Ok(())
    }

    /// Forgets a deleted handle's ledger row, journaling a `reset` so a
    /// future handle that happens to reuse the id does not inherit its
    /// spend. The append is best-effort: if it fails, the replayed
    /// ledger keeps a row for a dataset that no longer exists —
    /// over-counting, which is the safe direction for a privacy budget.
    pub fn reset_eps(&self, handle: &str) {
        let Ok(mut journal) = self.journal.lock() else { return };
        if let Some(writer) = journal.as_mut() {
            let event = Json::obj([
                ("event", Json::from("reset")),
                ("dataset", Json::from(handle.to_string())),
            ]);
            let append_started = Instant::now();
            // lint: allow(lock-across-io): the journal mutex is the dedicated disk-write lock (order: journal -> queue); the read path never takes it
            if writer.append(&event).is_ok() {
                self.metrics.journal_appends.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                self.metrics.journal_fsync.observe(append_started.elapsed());
            }
        }
        let (lock, _) = &*self.inner;
        if let Ok(mut q) = lock.lock() {
            q.ledger.forget(handle);
        }
        self.metrics.clear_eps_spent(handle);
    }

    /// Atomically checks and settles a synchronous run's ε charge
    /// against `handle` — the path for `anonymize` (non-async) on a
    /// stored dataset. The charge is journaled (`spend`) and fsynced
    /// *before* this returns, i.e. before the run starts: a crash
    /// mid-run replays the charge, so the budget can over-count but
    /// never under-count. Refuses with `budget-exhausted` when the
    /// charge does not fit, and with an `io` error when it cannot be
    /// made durable.
    pub fn charge_sync(&self, handle: &str, eps: f64) -> Result<(), ApiError> {
        let poisoned = || ApiError::internal("job queue state poisoned by a panic");
        let mut journal = self.journal.lock().map_err(|_| poisoned())?;
        let (lock, _) = &*self.inner;
        {
            let q = lock.lock().map_err(|_| poisoned())?;
            q.ledger.check(handle, q.in_flight(handle), eps, self.default_eps_budget)?;
        }
        if let Some(writer) = journal.as_mut() {
            let event = Json::obj([
                ("event", Json::from("spend")),
                ("dataset", Json::from(handle.to_string())),
                ("eps", Json::from(eps)),
            ]);
            let append_started = Instant::now();
            // lint: allow(lock-across-io): the journal mutex is the dedicated disk-write lock (order: journal -> queue); the read path never takes it
            match writer.append(&event) {
                Ok(_) => {
                    self.metrics.journal_appends.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                    self.metrics.journal_fsync.observe(append_started.elapsed());
                }
                Err(e) => return Err(ApiError::io(format!("cannot journal spend: {e}"))),
            }
        }
        let mut q = lock.lock().map_err(|_| poisoned())?;
        q.ledger.settle(handle, eps);
        let spent = q.eps_spent(handle);
        drop(q);
        self.metrics.set_eps_spent(handle, spent);
        Ok(())
    }

    /// One handle's `(eps_spent, effective budget)` — settled plus
    /// in-flight spend, and the explicit budget falling back to the
    /// server default. For the `info` verb.
    pub fn eps_info(&self, handle: &str) -> (f64, Option<f64>) {
        let (lock, _) = &*self.inner;
        let Ok(q) = lock.lock() else { return (0.0, self.default_eps_budget) };
        (q.eps_spent(handle), q.ledger.effective_budget(handle, self.default_eps_budget))
    }

    /// `(eps_spent, effective budget)` for every handle the ledger or
    /// the live job table knows — one lock acquisition for the whole
    /// `list` verb. Handles absent from the map have zero spend and the
    /// server default budget.
    pub fn eps_overview(&self) -> HashMap<String, (f64, Option<f64>)> {
        let (lock, _) = &*self.inner;
        let Ok(q) = lock.lock() else { return HashMap::new() };
        let mut handles: HashSet<String> = q.ledger.iter().map(|(h, _)| h.to_string()).collect();
        handles.extend(q.live_specs.values().filter_map(|s| s.source.clone()));
        handles
            .into_iter()
            .map(|h| {
                let row = (q.eps_spent(&h), q.ledger.effective_budget(&h, self.default_eps_budget));
                (h, row)
            })
            .collect()
    }

    /// How many unfinished jobs `tenant` currently has — the quantity
    /// its `max_jobs` quota caps.
    pub fn jobs_for_tenant(&self, tenant: &str) -> usize {
        let (lock, _) = &*self.inner;
        let Ok(q) = lock.lock() else { return 0 };
        q.tenant_job_slots(tenant)
    }
}

/// Numeric suffix of a `job-<n>` id.
fn job_number(id: &str) -> Result<u64, String> {
    id.strip_prefix("job-")
        .and_then(|n| n.parse::<u64>().ok())
        .ok_or_else(|| format!("malformed job id {id:?}"))
}

/// Rebuilds queue state from journal text. Strict except for a torn
/// final line (the signature of a crash mid-append), which is ignored:
/// its submit was never acknowledged to any client. Handle-backed specs
/// of unfinished jobs are re-resolved against `store` (and re-pinned);
/// finished jobs never touch the store, so an input deleted after its
/// job completed cannot brick replay.
fn replay(
    text: &str,
    inner: &mut QueueInner,
    store: &DatasetStore,
    spill: Option<&Spill>,
) -> Result<(), String> {
    let lines: Vec<(usize, &str)> =
        text.lines().enumerate().filter(|(_, l)| !l.trim().is_empty()).collect();
    // Submit order and unresolved specs of jobs not yet seen to finish.
    let mut unfinished: Vec<String> = Vec::new();
    let mut specs: HashMap<String, crate::protocol::AnonymizeParams> = HashMap::new();
    // Result handles of jobs aged out of the retention window during
    // replay. Deleted only after the unfinished jobs below re-resolve
    // and pin their inputs: one of them may legitimately reference an
    // old job's result as its dataset, and the pin must win.
    let mut dropped: Vec<String> = Vec::new();
    for (idx, (lineno, line)) in lines.iter().enumerate() {
        let last = idx + 1 == lines.len();
        let v = match crate::json::parse(line) {
            Ok(v) => v,
            Err(_) if last && !text.ends_with('\n') => break, // torn final append
            Err(e) => return Err(format!("line {}: {e}", lineno + 1)),
        };
        let fail = |msg: String| format!("line {}: {msg}", lineno + 1);
        let event =
            v.get("event").and_then(Json::as_str).ok_or_else(|| fail("missing event".into()))?;
        if event == "snapshot" {
            // Compaction header: preserves the id counter across jobs
            // whose records were dropped entirely (finished + evicted)
            // and the settled ε spend those jobs charged.
            let next = v
                .get("next")
                .and_then(Json::as_u64)
                .ok_or_else(|| fail("snapshot without next id".into()))?;
            inner.next_id = inner.next_id.max(next);
            if let Some(ledger) = v.get("ledger") {
                inner.ledger = EpsLedger::from_json(ledger).map_err(fail)?;
            }
            continue;
        }
        if matches!(event, "budget" | "spend" | "reset") {
            // Ledger events carry a dataset handle, not a job id.
            let dataset = v
                .get("dataset")
                .and_then(Json::as_str)
                .ok_or_else(|| fail(format!("{event} without dataset")))?;
            match event {
                "budget" => {
                    let budget = v
                        .get("eps_budget")
                        .and_then(Json::as_f64)
                        .filter(|b| b.is_finite() && *b > 0.0)
                        .ok_or_else(|| fail("budget without a positive eps_budget".into()))?;
                    inner.ledger.set_budget(dataset, budget);
                }
                "spend" => {
                    let eps = v
                        .get("eps")
                        .and_then(Json::as_f64)
                        .filter(|e| e.is_finite() && *e > 0.0)
                        .ok_or_else(|| fail("spend without a positive eps".into()))?;
                    inner.ledger.settle(dataset, eps);
                }
                _ => inner.ledger.forget(dataset),
            }
            continue;
        }
        let id = v
            .get("job")
            .and_then(Json::as_str)
            .ok_or_else(|| fail("missing job id".into()))?
            .to_string();
        inner.next_id = inner.next_id.max(job_number(&id).map_err(fail)?);
        match event {
            "submit" => {
                let spec_json = v.get("spec").ok_or_else(|| fail("submit without spec".into()))?;
                let spec = spec_from_json(spec_json).map_err(|e| fail(e.message))?;
                if specs.insert(id.clone(), spec).is_some() || inner.states.contains_key(&id) {
                    return Err(fail(format!("duplicate submit for {id:?}")));
                }
                unfinished.push(id);
            }
            "finish" => {
                let result = v.get("result").ok_or_else(|| fail("finish without result".into()))?;
                let Some(params) = specs.remove(&id) else {
                    return Err(fail(format!("finish for unsubmitted job {id:?}")));
                };
                // Settle the finished job's ε exactly as the original
                // run did: same f64, added in journal (= completion)
                // order, so the replayed total is bit-identical.
                if let DataRef::Handle(handle) = &params.data {
                    inner.ledger.settle(handle, params.epsilon);
                }
                unfinished.retain(|u| u != &id);
                let state = done_state(spill, &id, result.clone());
                let (handles, files) = inner.record_done(&id, state);
                dropped.extend(handles);
                for file in files {
                    let _ = std::fs::remove_file(file);
                }
            }
            "done" => {
                // Compacted form of submit + finish; the spec is gone.
                let result = v.get("result").ok_or_else(|| fail("done without result".into()))?;
                if specs.contains_key(&id) || inner.states.contains_key(&id) {
                    return Err(fail(format!("duplicate record for {id:?}")));
                }
                let state = done_state(spill, &id, result.clone());
                let (handles, files) = inner.record_done(&id, state);
                dropped.extend(handles);
                for file in files {
                    let _ = std::fs::remove_file(file);
                }
            }
            "cancel" => {
                // A cancelled job's record was removed entirely; its
                // in-flight charge went with its spec, so the ledger
                // needs no adjustment.
                if specs.remove(&id).is_none() {
                    return Err(fail(format!("cancel for a job not queued: {id:?}")));
                }
                unfinished.retain(|u| u != &id);
            }
            other => return Err(fail(format!("unknown event {other:?}"))),
        }
    }
    // Jobs caught mid-flight re-queue in their original submit order,
    // re-resolving and re-pinning journaled dataset handles.
    for id in unfinished {
        let params = specs.remove(&id).expect("unfinished implies spec recorded");
        let spec = params
            .resolve(store)
            .map_err(|e| format!("cannot re-resolve journaled job {id:?}: {e}"))?;
        if let Some(handle) = &spec.source {
            let _ = store.pin(handle);
        }
        inner.states.insert(id.clone(), JobState::Queued);
        inner.live_specs.insert(id.clone(), spec);
        inner.pending.push_back(id);
    }
    // Now that every live input is pinned, drop the results whose job
    // records aged out. Ones still pinned (a queued job's input) are
    // deferred: reclaim retries when the pinning job finishes.
    for handle in dropped {
        if !store.try_reclaim(&handle) {
            inner.deferred_deletes.insert(handle);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use trajdp_core::Model;
    use trajdp_model::csv::to_csv;
    use trajdp_synth::{generate, GeneratorConfig};

    fn spec() -> AnonymizeSpec {
        let world = generate(&GeneratorConfig::tdrive_profile(4, 20, 3));
        AnonymizeSpec {
            model: Model::PureLocal,
            epsilon: 1.0,
            eps_split: 0.5,
            m: 2,
            seed: 5,
            workers: 1,
            store_result: false,
            source: None,
            csv: std::sync::Arc::new(to_csv(&world.dataset)),
        }
    }

    fn wait_done(q: &JobQueue, id: &str) -> Arc<Json> {
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(30);
        loop {
            match q.state(id) {
                Some(JobState::Done(result)) => return result,
                _ if std::time::Instant::now() > deadline => panic!("job never finished"),
                _ => std::thread::sleep(std::time::Duration::from_millis(10)),
            }
        }
    }

    #[test]
    fn ids_are_sequential_and_unique() {
        let q = JobQueue::new();
        let a = q.submit(spec()).unwrap();
        let b = q.submit(spec()).unwrap();
        assert_ne!(a, b);
        assert_eq!(q.state(&a), Some(JobState::Queued));
        assert_eq!(q.outstanding(), 2);
        assert_eq!(q.list(), vec![(a, "queued"), (b, "queued")]);
    }

    #[test]
    fn worker_drains_queue_and_finishes_jobs() {
        let q = JobQueue::new();
        let id = q.submit(spec()).unwrap();
        let worker = {
            let q = q.clone();
            std::thread::spawn(move || q.work())
        };
        let result = wait_done(&q, &id);
        assert_eq!(result.get("ok"), Some(&Json::Bool(true)), "{result}");
        let status = render_v1(q.status_response(&id));
        assert_eq!(status.get("state").and_then(Json::as_str), Some("done"));
        assert_eq!(status.get("job").and_then(Json::as_str), Some(id.as_str()));
        assert!(status.get("csv").is_some(), "done status inlines the result");
        q.shutdown();
        worker.join().unwrap();
    }

    #[test]
    fn shutdown_releases_idle_workers() {
        let q = JobQueue::new();
        let worker = {
            let q = q.clone();
            std::thread::spawn(move || q.work())
        };
        std::thread::sleep(std::time::Duration::from_millis(20));
        q.shutdown();
        worker.join().unwrap();
    }

    #[test]
    fn submit_after_shutdown_is_rejected() {
        // Regression: a post-shutdown submit used to enqueue a job no
        // worker would ever run, reporting "queued" forever.
        let q = JobQueue::new();
        let accepted = q.submit(spec()).unwrap();
        q.shutdown();
        let err = q.submit(spec()).unwrap_err();
        assert_eq!(err.code, crate::api::ErrorCode::ShuttingDown);
        assert!(err.message.contains("shutting down"), "{err}");
        // The pre-shutdown job is still drained by a late worker.
        let worker = {
            let q = q.clone();
            std::thread::spawn(move || q.work())
        };
        worker.join().unwrap();
        assert!(matches!(q.state(&accepted), Some(JobState::Done(_))));
        // And the rejected submit left no trace.
        assert_eq!(q.outstanding(), 0);
    }

    #[test]
    fn finished_jobs_are_evicted_oldest_first_beyond_cap() {
        let q = JobQueue::new();
        for i in 0..=MAX_FINISHED_RETAINED {
            q.finish(&format!("job-{i}"), Json::obj([("ok", Json::Bool(true))]));
        }
        // job-0 (oldest) evicted, newest retained.
        assert_eq!(q.state("job-0"), None, "oldest finished job must be evicted");
        assert!(matches!(
            q.state(&format!("job-{MAX_FINISHED_RETAINED}")),
            Some(JobState::Done(_))
        ));
        let r = q.status_response("job-0").unwrap_err();
        assert_eq!(r.code, crate::api::ErrorCode::JobNotFound, "evicted id reports unknown");
    }

    #[test]
    fn retention_eviction_deletes_stored_result_handles() {
        // A store:true result lives as long as its job record: when the
        // record ages out of MAX_FINISHED_RETAINED, the handle (and its
        // slot) goes with it instead of lingering unreachable.
        let store = crate::store::DatasetStore::with_config(crate::store::StoreConfig {
            capacity: 2 * MAX_FINISHED_RETAINED,
            ..crate::store::StoreConfig::default()
        })
        .unwrap();
        let q = JobQueue::with_store(store.clone());
        let mut handles = Vec::new();
        for i in 1..=MAX_FINISHED_RETAINED + 1 {
            let (h, _) = store.insert_with_provenance(format!("result {i}\n"), true).unwrap();
            q.finish(
                &format!("job-{i}"),
                Json::obj([("ok", Json::Bool(true)), ("dataset", Json::from(h.clone()))]),
            );
            handles.push(h);
        }
        assert_eq!(q.state("job-1"), None, "oldest job record evicted");
        assert!(
            store.resolve(&handles[0]).unwrap_err().message.contains("unknown"),
            "evicted job's result handle must be deleted with it"
        );
        assert!(store.resolve(&handles[1]).is_ok(), "retained jobs keep their results");
        assert!(store.resolve(handles.last().unwrap()).is_ok());
    }

    #[test]
    fn deferred_reclaim_fires_when_the_last_pin_drops() {
        // An aged-out job's result handle that is pinned as a queued
        // job's input must survive until that job finishes — and then
        // be reclaimed, not leak for the process lifetime.
        let store = crate::store::DatasetStore::with_config(crate::store::StoreConfig {
            capacity: 2 * MAX_FINISHED_RETAINED,
            ..crate::store::StoreConfig::default()
        })
        .unwrap();
        let q = JobQueue::with_store(store.clone());
        // ds_r: old job-0's store:true result, re-used as the input of
        // a new queued job (content need not parse — a failed run still
        // finishes and unpins).
        let (ds_r, _) = store.insert_with_provenance("not,really,csv\n".to_string(), true).unwrap();
        let params = crate::protocol::AnonymizeParams {
            model: Model::PureLocal,
            epsilon: 1.0,
            eps_split: 0.5,
            m: 2,
            seed: 5,
            workers: 1,
            store_result: false,
            data: crate::protocol::DataRef::Handle(ds_r.clone()),
        };
        let pinned_job = q.submit(params.resolve(&store).unwrap()).unwrap();
        // Age job-0's record (which names ds_r) out of retention.
        q.finish(
            "job-0",
            Json::obj([("ok", Json::Bool(true)), ("dataset", Json::from(ds_r.clone()))]),
        );
        for i in 1..=MAX_FINISHED_RETAINED {
            q.finish(&format!("old-{i}"), Json::obj([("ok", Json::Bool(true))]));
        }
        assert_eq!(q.state("job-0"), None, "job-0's record must have aged out");
        assert!(store.resolve(&ds_r).is_ok(), "pinned handle must survive its record's eviction");
        // The pinning job runs (and fails on the garbage CSV — fine);
        // its finish drops the pin and retries the deferred reclaim.
        let worker = {
            let q = q.clone();
            std::thread::spawn(move || q.work())
        };
        wait_done(&q, &pinned_job);
        q.shutdown();
        worker.join().unwrap();
        assert!(
            store.resolve(&ds_r).unwrap_err().message.contains("unknown"),
            "deferred reclaim must fire once the last pin drops"
        );
    }

    #[test]
    fn unknown_job_is_an_error() {
        let q = JobQueue::new();
        let err = q.status_response("job-404").unwrap_err();
        assert_eq!(err.code, crate::api::ErrorCode::JobNotFound);
        assert_eq!(
            render_v1(q.status_response("job-404")).to_string(),
            r#"{"error":"unknown job \"job-404\"","ok":false}"#,
            "the v1 error shape is frozen"
        );
    }

    #[test]
    fn journal_replay_restores_finished_and_requeues_unfinished() {
        let dir = std::env::temp_dir().join("trajdp-journal-test");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("jobs.jsonl");

        // Session 1: one job runs to completion, a second is accepted
        // but never picked up (the process "dies" mid-queue).
        let q1 = JobQueue::with_journal(DatasetStore::new(), &path).unwrap();
        let done_id = q1.submit(spec()).unwrap();
        let worker = {
            let q = q1.clone();
            std::thread::spawn(move || q.work())
        };
        let first_result = wait_done(&q1, &done_id);
        let queued_id = q1.submit(spec()).unwrap();
        q1.shutdown(); // stop the worker; queued_id may or may not start
        worker.join().unwrap();
        let queued_result = q1.state(&queued_id);
        drop(q1);

        // Session 2: replay. The finished job answers status with its
        // recorded result; the mid-queue job re-runs deterministically.
        let q2 = JobQueue::with_journal(DatasetStore::new(), &path).unwrap();
        assert_eq!(q2.state(&done_id), Some(JobState::Done(first_result.clone())));
        match q2.state(&queued_id).unwrap() {
            JobState::Done(replayed) => {
                // The graceful shutdown drained it in session 1; the
                // journaled result must have been restored verbatim.
                assert_eq!(Some(JobState::Done(replayed)), queued_result);
            }
            JobState::Queued => {
                let worker = {
                    let q = q2.clone();
                    std::thread::spawn(move || q.work())
                };
                let replayed = wait_done(&q2, &queued_id);
                assert_eq!(replayed.get("ok"), Some(&Json::Bool(true)), "{replayed}");
                q2.shutdown();
                worker.join().unwrap();
            }
            other => panic!("unexpected replayed state {other:?}"),
        }
        // Ids keep counting up; no collision with replayed jobs.
        let fresh = q2.submit(spec()).unwrap();
        assert!(job_number(&fresh).unwrap() > job_number(&queued_id).unwrap());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn journal_replay_reruns_job_byte_identically() {
        let dir = std::env::temp_dir().join("trajdp-journal-determinism-test");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("jobs.jsonl");
        let the_spec = spec();
        let reference = render_v1(run_anonymize(&the_spec));

        // Submit, then "crash" before any worker runs.
        let q1 = JobQueue::with_journal(DatasetStore::new(), &path).unwrap();
        let id = q1.submit(the_spec).unwrap();
        drop(q1);

        let q2 = JobQueue::with_journal(DatasetStore::new(), &path).unwrap();
        assert_eq!(q2.state(&id), Some(JobState::Queued));
        let worker = {
            let q = q2.clone();
            std::thread::spawn(move || q.work())
        };
        let replayed = wait_done(&q2, &id);
        assert_eq!(
            replayed.get("csv"),
            reference.get("csv"),
            "replayed run must be byte-identical to the original"
        );
        q2.shutdown();
        worker.join().unwrap();
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn journal_replay_is_strict_but_tolerates_a_torn_final_line() {
        let dir = std::env::temp_dir().join("trajdp-journal-strict-test");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("jobs.jsonl");
        let q = JobQueue::with_journal(DatasetStore::new(), &path).unwrap();
        q.submit(spec()).unwrap();
        drop(q);

        // A torn final append (no trailing newline) is ignored — and
        // truncated out of the file, so later appends start clean.
        let good = std::fs::read_to_string(&path).unwrap();
        std::fs::write(&path, format!("{good}{{\"event\":\"sub")).unwrap();
        let q = JobQueue::with_journal(DatasetStore::new(), &path).unwrap();
        assert_eq!(q.outstanding(), 1);
        // Regression: a submit after the torn-tail restart used to be
        // appended onto the fragment, fusing into one corrupt mid-file
        // line that bricked every later restart of this state dir.
        q.submit(spec()).unwrap();
        drop(q);
        let q = JobQueue::with_journal(DatasetStore::new(), &path).unwrap();
        assert_eq!(q.outstanding(), 2, "restart after torn-tail repair must keep working");
        drop(q);

        // A complete final event that lost only its newline is kept
        // and the terminator restored.
        std::fs::write(&path, good.trim_end_matches('\n')).unwrap();
        let q = JobQueue::with_journal(DatasetStore::new(), &path).unwrap();
        assert_eq!(q.outstanding(), 1);
        q.submit(spec()).unwrap();
        drop(q);
        let q = JobQueue::with_journal(DatasetStore::new(), &path).unwrap();
        assert_eq!(q.outstanding(), 2, "newline repair must keep the journal appendable");
        drop(q);

        // Corruption anywhere else fails startup loudly.
        std::fs::write(&path, format!("not json\n{good}")).unwrap();
        let err = JobQueue::with_journal(DatasetStore::new(), &path).map(|_| ()).unwrap_err();
        assert!(err.contains("line 1"), "{err}");
        // So does a semantically invalid event.
        std::fs::write(
            &path,
            format!("{good}{{\"event\":\"finish\",\"job\":\"job-9\",\"result\":{{}}}}\n"),
        )
        .unwrap();
        let err = JobQueue::with_journal(DatasetStore::new(), &path).map(|_| ()).unwrap_err();
        assert!(err.contains("unsubmitted"), "{err}");
        std::fs::remove_dir_all(&dir).ok();
    }

    /// A spec whose dataset lives in `store` as a committed handle.
    fn handle_spec(store: &DatasetStore) -> (AnonymizeSpec, String) {
        let world = generate(&GeneratorConfig::tdrive_profile(4, 20, 3));
        let (handle, _) = store.insert(to_csv(&world.dataset)).unwrap();
        let params = crate::protocol::AnonymizeParams {
            model: Model::PureLocal,
            epsilon: 1.0,
            eps_split: 0.5,
            m: 2,
            seed: 5,
            workers: 1,
            store_result: false,
            data: crate::protocol::DataRef::Handle(handle.clone()),
        };
        (params.resolve(store).unwrap(), handle)
    }

    #[test]
    fn handle_backed_submits_journal_the_handle_and_pin_it() {
        let dir = std::env::temp_dir().join("trajdp-journal-by-handle-test");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("jobs.jsonl");
        let store = DatasetStore::open(Some(dir.join("datasets"))).unwrap();
        let q = JobQueue::with_journal(store.clone(), &path).unwrap();
        let (the_spec, handle) = handle_spec(&store);
        let csv = std::sync::Arc::clone(&the_spec.csv);
        let id = q.submit(the_spec).unwrap();

        // The journal records the handle id, not the resolved CSV.
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.contains(&format!("\"dataset\":\"{handle}\"")), "{text}");
        assert!(!text.contains(csv.as_str()), "submit must not re-record the CSV text");

        // While the job is queued, the input handle cannot be deleted.
        let err = store.delete(&handle).unwrap_err();
        assert!(err.message.contains("queued or running job"), "{err}");

        // Crash + replay: the handle re-resolves to the same bytes and
        // is re-pinned.
        drop(q);
        let store2 = DatasetStore::open(Some(dir.join("datasets"))).unwrap();
        let q2 = JobQueue::with_journal(store2.clone(), &path).unwrap();
        assert_eq!(q2.state(&id), Some(JobState::Queued));
        assert!(store2.delete(&handle).unwrap_err().message.contains("queued or running"));
        let worker = {
            let q = q2.clone();
            std::thread::spawn(move || q.work())
        };
        let replayed = wait_done(&q2, &id);
        assert_eq!(
            replayed.get("csv"),
            render_v1(run_anonymize(&handle_spec(&store2).0)).get("csv")
        );
        q2.shutdown();
        worker.join().unwrap();
        // Finished: the pin is released and the delete goes through.
        store2.delete(&handle).unwrap();
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn compacted_journal_replays_to_identical_state() {
        let dir = std::env::temp_dir().join("trajdp-journal-compaction-test");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("jobs.jsonl");

        // Session 1: three submits; a and b finish (driven directly so
        // no worker races c into running), c stays queued.
        let q1 = JobQueue::with_journal(DatasetStore::new(), &path).unwrap();
        let a = q1.submit(spec()).unwrap();
        let b = q1.submit(spec()).unwrap();
        let c = q1.submit(spec()).unwrap();
        let result_a = Json::obj([("ok", Json::Bool(true)), ("csv", Json::from("a-bytes\n"))]);
        let result_b = Json::obj([("ok", Json::Bool(true)), ("csv", Json::from("b-bytes\n"))]);
        q1.finish(&a, result_a.clone());
        q1.finish(&b, result_b.clone());
        drop(q1);
        let uncompacted = std::fs::read_to_string(&path).unwrap();
        assert!(uncompacted.contains("\"event\":\"finish\""), "{uncompacted}");

        // Session 2: startup compacts. The rewritten journal must be
        // pure snapshot form — no raw finish events, no dead submits —
        // and replay to exactly the same table as the original text.
        let q2 = JobQueue::with_journal(DatasetStore::new(), &path).unwrap();
        let compacted = std::fs::read_to_string(&path).unwrap();
        assert!(compacted.contains("\"event\":\"snapshot\""), "{compacted}");
        assert!(compacted.contains("\"event\":\"done\""), "{compacted}");
        assert!(!compacted.contains("\"event\":\"finish\""), "{compacted}");
        assert_ne!(compacted, uncompacted);
        assert_eq!(q2.state(&a), Some(JobState::Done(Arc::new(result_a.clone()))));
        assert_eq!(q2.state(&b), Some(JobState::Done(Arc::new(result_b))));
        assert_eq!(q2.state(&c), Some(JobState::Queued));
        // Fresh ids continue past everything the snapshot recorded.
        let fresh = q2.submit(spec()).unwrap();
        assert!(job_number(&fresh).unwrap() > job_number(&c).unwrap());
        drop(q2);

        // Torn-tail repair still works on a compacted journal.
        let good = std::fs::read_to_string(&path).unwrap();
        std::fs::write(&path, format!("{good}{{\"event\":\"fin")).unwrap();
        let q3 = JobQueue::with_journal(DatasetStore::new(), &path).unwrap();
        assert_eq!(q3.state(&a), Some(JobState::Done(Arc::new(result_a))));
        assert_eq!(q3.state(&c), Some(JobState::Queued));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn rollback_after_compaction_keeps_journal_appendable() {
        // Regression: startup compaction swaps the O_APPEND journal fd
        // for the temp file's plain fd. A rollback (a shutdown racing a
        // submit) truncates with set_len, which does NOT move a plain
        // fd's cursor — the next append then wrote a NUL-filled gap
        // that bricked replay on every later restart.
        let dir = std::env::temp_dir().join("trajdp-journal-rollback-test");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("jobs.jsonl");
        let q1 = JobQueue::with_journal(DatasetStore::new(), &path).unwrap();
        q1.submit(spec()).unwrap();
        drop(q1);

        // Reopen: the non-empty journal triggers startup compaction.
        let q2 = JobQueue::with_journal(DatasetStore::new(), &path).unwrap();
        {
            // Append-then-rollback directly on the writer, the exact
            // sequence a shutdown-raced submit performs.
            let mut journal = q2.journal.lock().unwrap();
            let writer = journal.as_mut().unwrap();
            let before = writer.append(&Json::obj([("event", Json::from("rolled-back"))])).unwrap();
            writer.rollback_to(before);
        }
        let second = q2.submit(spec()).unwrap();
        drop(q2);

        let text = std::fs::read_to_string(&path).unwrap();
        assert!(!text.contains('\0'), "rollback left a NUL gap: {text:?}");
        let q3 = JobQueue::with_journal(DatasetStore::new(), &path).unwrap();
        assert_eq!(q3.outstanding(), 2, "both real submits must replay");
        assert_eq!(q3.state(&second), Some(JobState::Queued));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn finish_threshold_triggers_runtime_compaction() {
        let dir = std::env::temp_dir().join("trajdp-journal-threshold-test");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("jobs.jsonl");
        let q = JobQueue::with_journal(DatasetStore::new(), &path).unwrap();
        // Drive finishes directly (no submits needed: compaction writes
        // `done` records, which replay without a spec).
        for i in 1..=COMPACT_FINISHED_EVENTS {
            q.finish(&format!("job-{i}"), Json::obj([("ok", Json::Bool(true))]));
        }
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(
            !text.contains("\"event\":\"finish\""),
            "crossing the threshold must rewrite the journal"
        );
        assert!(text.contains("\"event\":\"snapshot\""));
        drop(q);
        let q2 = JobQueue::with_journal(DatasetStore::new(), &path).unwrap();
        assert!(matches!(q2.state("job-1"), Some(JobState::Done(_))));
        assert!(matches!(
            q2.state(&format!("job-{COMPACT_FINISHED_EVENTS}")),
            Some(JobState::Done(_))
        ));
        std::fs::remove_dir_all(&dir).ok();
    }

    /// Regression for the lifecycle pass's lock contract: a journal
    /// append stalled on a slow disk must not block `status`/`list`
    /// reads — only other journal writes.
    #[test]
    fn status_answers_while_a_journal_append_is_in_flight() {
        let dir = std::env::temp_dir().join("trajdp-journal-nostall-test");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("jobs.jsonl");
        let q = JobQueue::with_journal(DatasetStore::new(), &path).unwrap();
        let first = q.submit(spec()).unwrap();

        // Simulate an in-flight durable write by holding the journal
        // lock, exactly what a large submit does during its fsync.
        let stalled_write = q.journal.lock().unwrap();
        let submitter = {
            let q = q.clone();
            std::thread::spawn(move || q.submit(spec()))
        };
        std::thread::sleep(std::time::Duration::from_millis(50));
        // The second submit is parked behind the "disk"...
        assert_eq!(q.outstanding(), 1);
        // ...but reads must still answer. A regression (reads behind
        // the journal) deadlocks here; detect via a timed channel.
        let (tx, rx) = std::sync::mpsc::channel();
        let reader = {
            let q = q.clone();
            let first = first.clone();
            std::thread::spawn(move || {
                let status = render_v1(q.status_response(&first));
                let listed = q.list();
                tx.send((status, listed)).unwrap();
            })
        };
        let (status, listed) = rx
            .recv_timeout(std::time::Duration::from_secs(5))
            .expect("status/list stalled behind an in-flight journal append");
        assert_eq!(status.get("state").and_then(Json::as_str), Some("queued"));
        assert_eq!(listed.len(), 1);
        reader.join().unwrap();
        drop(stalled_write);
        submitter.join().unwrap().unwrap();
        assert_eq!(q.outstanding(), 2);
        std::fs::remove_dir_all(&dir).ok();
    }

    /// The ISSUE-6 lock contract: the metrics registry must add no lock
    /// shared with request handling. With BOTH the journal lock and the
    /// queue mutex held (a worst-case in-flight submit), snapshotting
    /// and recording must still complete — they are atomics-only.
    #[test]
    fn metrics_answer_while_journal_and_queue_locks_are_held() {
        let dir = std::env::temp_dir().join("trajdp-metrics-nostall-test");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let metrics = Arc::new(Metrics::new());
        let q = JobQueue::with_journal(DatasetStore::new(), &dir.join("jobs.jsonl"))
            .unwrap()
            .with_metrics(Arc::clone(&metrics));
        q.submit(spec()).unwrap();

        // Hold both locks in journal → queue order, exactly what a
        // submit does around its fsync.
        let journal_guard = q.journal.lock().unwrap();
        let (lock, _) = &*q.inner;
        let queue_guard = lock.lock().unwrap();

        let (tx, rx) = std::sync::mpsc::channel();
        let reader = {
            let metrics = Arc::clone(&metrics);
            std::thread::spawn(move || {
                metrics.record_request("status", std::time::Duration::from_micros(10));
                metrics.record_error(crate::api::ErrorCode::JobNotFound);
                tx.send(metrics.snapshot()).unwrap();
            })
        };
        let snap = rx
            .recv_timeout(std::time::Duration::from_secs(5))
            .expect("metrics stalled behind the queue/journal locks");
        assert_eq!(snap.jobs_submitted, 1);
        assert_eq!(snap.queue_depth, 1);
        assert!(snap.journal_appends >= 1, "the submit append must have been counted");
        assert_eq!(snap.journal_fsync.count, snap.journal_appends);
        reader.join().unwrap();
        drop(queue_guard);
        drop(journal_guard);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn queue_publishes_job_counters_and_latencies() {
        let metrics = Arc::new(Metrics::new());
        let q = JobQueue::new().with_metrics(Arc::clone(&metrics));
        let id = q.submit_with_cid(spec(), Some("req-77".to_string())).unwrap();
        assert_eq!(metrics.snapshot().queue_depth, 1);
        let worker = {
            let q = q.clone();
            std::thread::spawn(move || q.work())
        };
        wait_done(&q, &id);
        q.shutdown();
        worker.join().unwrap();
        let snap = metrics.snapshot();
        assert_eq!(snap.jobs_submitted, 1);
        assert_eq!(snap.jobs_completed, 1);
        assert_eq!(snap.queue_depth, 0, "the finish must drain the depth gauge");
        assert_eq!(snap.queue_wait.count, 1);
        assert_eq!(snap.run_time.count, 1);
    }

    #[test]
    fn done_status_reports_duration_and_phase_timings() {
        let q = JobQueue::new();
        let mut the_spec = spec();
        the_spec.model = Model::PureGlobal; // exercises realize_tf → stage timings
        let id = q.submit(the_spec).unwrap();
        let worker = {
            let q = q.clone();
            std::thread::spawn(move || q.work())
        };
        wait_done(&q, &id);
        q.shutdown();
        worker.join().unwrap();
        match q.status_response(&id).unwrap() {
            Response::JobStatus { state: "done", duration_secs, timings, .. } => {
                let d = duration_secs.expect("a finished job must report its wall-clock");
                assert!((0.0..3600.0).contains(&d), "implausible duration {d}");
                let t = timings.expect("an anonymize job must report phase timings");
                assert!(t.total_secs > 0.0);
                assert!(t.realize_secs >= t.build_secs, "realize covers build");
            }
            other => panic!("wrong response {other:?}"),
        }
        // The v2 rendering carries both members; v1 stays frozen.
        let v2 = crate::api::Envelope {
            version: crate::api::ProtocolVersion::V2,
            id: None,
            tenant: None,
        };
        let rendered = crate::api::render(&v2, q.status_response(&id));
        assert!(rendered.get("duration_secs").is_some());
        assert!(rendered.get("timings").is_some());
        let v1 = render_v1(q.status_response(&id));
        assert!(v1.get("duration_secs").is_none(), "v1 done-status shape is frozen");
        assert!(v1.get("timings").is_none(), "v1 done-status shape is frozen");
    }

    #[test]
    fn orphaned_job_results_are_reconciled_at_startup() {
        let dir = std::env::temp_dir().join("trajdp-journal-orphan-test");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("jobs.jsonl");
        let store = DatasetStore::open(Some(dir.join("datasets"))).unwrap();
        let q = JobQueue::with_journal(store.clone(), &path).unwrap();

        // A store:true job runs to completion; its result handle is
        // journaled in the finish event and must survive restarts.
        let mut stored_spec = spec();
        stored_spec.store_result = true;
        let id = q.submit(stored_spec).unwrap();
        let worker = {
            let q = q.clone();
            std::thread::spawn(move || q.work())
        };
        let done = wait_done(&q, &id);
        let kept = done.get("dataset").and_then(Json::as_str).unwrap().to_string();
        q.shutdown();
        worker.join().unwrap();
        drop(q);

        // Simulate the bug scenario: a result insert whose finish event
        // never reached the journal (crash between the two).
        let orphan = store.insert_with_provenance("orphan,result\n".to_string(), true).unwrap().0;
        // And a plain client upload, which no journal ever references.
        let upload = store.insert("client,upload\n".to_string()).unwrap().0;
        drop(store);

        let store2 = DatasetStore::open(Some(dir.join("datasets"))).unwrap();
        let q2 = JobQueue::with_journal(store2.clone(), &path).unwrap();
        assert!(
            store2.resolve(&orphan).unwrap_err().message.contains("unknown"),
            "unreferenced job result must be reconciled away"
        );
        assert!(store2.resolve(&kept).is_ok(), "journal-referenced result must be kept");
        assert!(store2.resolve(&upload).is_ok(), "client uploads are never reconciled");
        assert!(matches!(q2.state(&id), Some(JobState::Done(_))));
        std::fs::remove_dir_all(&dir).ok();
    }

    /// A result body comfortably above the tiny spill thresholds the
    /// tests below configure, and identifiable by its tag.
    fn big_result(tag: &str) -> Json {
        Json::obj([
            ("ok", Json::Bool(true)),
            ("csv", Json::from(format!("{tag},{}\n", "x".repeat(256)))),
        ])
    }

    #[test]
    fn large_results_spill_to_disk_and_status_reads_back() {
        let dir = std::env::temp_dir().join("trajdp-spill-basic-test");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let q =
            JobQueue::with_journal_opts(DatasetStore::new(), &dir.join("jobs.jsonl"), 64).unwrap();

        // Below the threshold: stays inline.
        q.finish("job-1", Json::obj([("ok", Json::Bool(true))]));
        assert!(matches!(q.state("job-1"), Some(JobState::Done(_))));

        // Above it: only the path lives in memory, the payload on disk.
        let result = big_result("spilled");
        q.finish("job-2", result.clone());
        let spilled_path = match q.state("job-2") {
            Some(JobState::Spilled { path, dataset }) => {
                assert_eq!(dataset, None, "no dataset member in this result");
                path
            }
            other => panic!("large result must spill, got {other:?}"),
        };
        assert_eq!(spilled_path, dir.join("results").join("job-2.json"));
        assert_eq!(std::fs::read_to_string(&spilled_path).unwrap(), result.to_string());

        // Status answers byte-identically to an inline result, and the
        // wire cannot tell the states apart.
        assert_eq!(q.outstanding(), 0, "spilled jobs are finished jobs");
        assert_eq!(q.list(), vec![("job-1".to_string(), "done"), ("job-2".to_string(), "done")]);
        let status = render_v1(q.status_response("job-2"));
        assert_eq!(status.get("state").and_then(Json::as_str), Some("done"));
        assert_eq!(status.get("csv"), result.get("csv"));

        // A vanished spill file degrades to an io error on that job
        // only — it must not panic or wedge the queue.
        std::fs::remove_file(&spilled_path).unwrap();
        let err = q.status_response("job-2").unwrap_err();
        assert_eq!(err.code, crate::api::ErrorCode::Io);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn spilled_results_survive_compaction_and_replay() {
        let dir = std::env::temp_dir().join("trajdp-spill-replay-test");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("jobs.jsonl");
        let result = big_result("durable");
        {
            let q = JobQueue::with_journal_opts(DatasetStore::new(), &path, 64).unwrap();
            let id = q.submit(spec()).unwrap();
            assert_eq!(id, "job-1");
            q.finish(&id, result.clone());
        }
        // Restart: replay restores the job from the journal's finish
        // event, re-spills it, and startup compaction must stream the
        // spilled file back into the rewritten journal verbatim.
        let q2 = JobQueue::with_journal_opts(DatasetStore::new(), &path, 64).unwrap();
        let journal = std::fs::read_to_string(&path).unwrap();
        assert!(journal.contains("\"event\":\"done\""), "{journal}");
        assert!(journal.contains("durable,"), "compacted journal must inline the payload");
        assert!(matches!(q2.state("job-1"), Some(JobState::Spilled { .. })));
        let status = render_v1(q2.status_response("job-1"));
        assert_eq!(status.get("csv"), result.get("csv"));
        drop(q2);
        // And the compacted journal replays again, byte-faithfully.
        let q3 = JobQueue::with_journal_opts(DatasetStore::new(), &path, 64).unwrap();
        let status = render_v1(q3.status_response("job-1"));
        assert_eq!(status.get("csv"), result.get("csv"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn evicted_spilled_jobs_unlink_their_files_and_reclaim_their_handles() {
        let dir = std::env::temp_dir().join("trajdp-spill-evict-test");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let store = crate::store::DatasetStore::with_config(crate::store::StoreConfig {
            capacity: 2 * MAX_FINISHED_RETAINED,
            ..crate::store::StoreConfig::default()
        })
        .unwrap();
        let q = JobQueue::with_journal_opts(store.clone(), &dir.join("jobs.jsonl"), 1).unwrap();
        let mut handles = Vec::new();
        for i in 1..=MAX_FINISHED_RETAINED + 1 {
            let (h, _) = store.insert_with_provenance(format!("result {i}\n"), true).unwrap();
            q.finish(
                &format!("job-{i}"),
                Json::obj([("ok", Json::Bool(true)), ("dataset", Json::from(h.clone()))]),
            );
            handles.push(h);
        }
        assert_eq!(q.state("job-1"), None, "oldest job record evicted");
        assert!(
            !dir.join("results").join("job-1.json").exists(),
            "evicted job's spill file must be unlinked with it"
        );
        assert!(
            store.resolve(&handles[0]).unwrap_err().message.contains("unknown"),
            "evicted spilled job's result handle must be reclaimed without reading the file"
        );
        assert!(dir.join("results").join("job-2.json").exists(), "retained files stay");
        assert!(store.resolve(&handles[1]).is_ok());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn orphaned_spill_files_are_swept_at_startup() {
        let dir = std::env::temp_dir().join("trajdp-spill-orphan-test");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("jobs.jsonl");
        {
            let q = JobQueue::with_journal_opts(DatasetStore::new(), &path, 64).unwrap();
            let id = q.submit(spec()).unwrap();
            assert_eq!(id, "job-1");
            q.finish(&id, big_result("kept"));
        }
        // A stray file: a crash between an eviction's table update and
        // its unlink, or a re-run whose first attempt never journaled.
        std::fs::write(dir.join("results").join("job-9.json"), "{\"ok\":true}").unwrap();
        let q = JobQueue::with_journal_opts(DatasetStore::new(), &path, 64).unwrap();
        assert!(!dir.join("results").join("job-9.json").exists(), "orphan must be swept");
        assert!(dir.join("results").join("job-1.json").exists(), "live spill file survives");
        let status = render_v1(q.status_response("job-1"));
        assert_eq!(status.get("csv"), big_result("kept").get("csv"));
        std::fs::remove_dir_all(&dir).ok();
    }

    /// [`handle_spec`], with the job's ε overridden. Dyadic values
    /// (0.25, 0.5) keep the budget arithmetic exact in the asserts.
    fn handle_spec_eps(store: &DatasetStore, epsilon: f64) -> (AnonymizeSpec, String) {
        let (mut s, handle) = handle_spec(store);
        s.epsilon = epsilon;
        (s, handle)
    }

    #[test]
    fn budget_gates_submits_counting_in_flight_jobs() {
        let store = DatasetStore::new();
        let q = JobQueue::with_store(store.clone()).with_eps_budget(Some(1.0));
        let (s, handle) = handle_spec_eps(&store, 0.5);
        // No worker runs, so both accepted jobs stay in flight: the
        // budget must count them, not just settled spend.
        q.submit(s.clone()).unwrap();
        q.submit(s.clone()).unwrap();
        let err = q.submit(s.clone()).unwrap_err();
        assert_eq!(err.code, crate::api::ErrorCode::BudgetExhausted);
        assert!(err.message.contains(&handle), "{err}");
        // Synchronous charges share the same accumulator.
        let err = q.charge_sync(&handle, 0.25).unwrap_err();
        assert_eq!(err.code, crate::api::ErrorCode::BudgetExhausted);
        assert_eq!(q.eps_info(&handle), (1.0, Some(1.0)));
        // An inline (source-less) spec is never budget-gated: the
        // server holds no handle to account it against.
        q.submit(spec()).unwrap();
        // A per-dataset budget overrides the server default — widening
        // to 2.0 lets one more half-ε job through, exactly to the cap.
        q.set_eps_budget(&handle, 2.0).unwrap();
        q.submit(s.clone()).unwrap();
        q.submit(s.clone()).unwrap();
        assert_eq!(q.eps_info(&handle), (2.0, Some(2.0)));
        assert_eq!(q.submit(s).unwrap_err().code, crate::api::ErrorCode::BudgetExhausted);
        // reset_eps forgets the ledger row — settled spend and the
        // explicit budget — but in-flight charges still derive from the
        // live queued specs, so the four queued jobs keep counting.
        q.reset_eps(&handle);
        assert_eq!(q.eps_info(&handle), (2.0, Some(1.0)));
    }

    #[test]
    fn cancel_dequeues_refunds_budget_and_survives_replay() {
        let dir = std::env::temp_dir().join("trajdp-cancel-test");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("jobs.jsonl");
        let store = DatasetStore::open(Some(dir.join("datasets"))).unwrap();
        let q = JobQueue::with_journal(store.clone(), &path).unwrap().with_eps_budget(Some(1.0));
        let (s, handle) = handle_spec_eps(&store, 0.5);
        let a = q.submit(s.clone()).unwrap();
        let b = q.submit(s.clone()).unwrap();
        assert_eq!(q.submit(s.clone()).unwrap_err().code, crate::api::ErrorCode::BudgetExhausted);

        // Cancel dequeues b: its record is gone, its pin released, and
        // its in-flight ε refunded — the third submit now fits.
        match q.cancel(&b).unwrap() {
            Response::Cancelled { job } => assert_eq!(job, b),
            other => panic!("unexpected cancel response {other:?}"),
        }
        assert_eq!(q.state(&b), None);
        assert_eq!(q.cancel(&b).unwrap_err().code, crate::api::ErrorCode::JobNotFound);
        assert_eq!(q.status_response(&b).unwrap_err().code, crate::api::ErrorCode::JobNotFound);
        assert_eq!(q.eps_info(&handle), (0.5, Some(1.0)));
        let c = q.submit(s.clone()).unwrap();

        // Only queued jobs can be cancelled: a finished job reports its
        // state instead of being silently "cancelled".
        q.finish(&a, Json::obj([("ok", Json::Bool(true))]));
        let err = q.cancel(&a).unwrap_err();
        assert_eq!(err.code, crate::api::ErrorCode::DatasetState);
        assert!(err.message.contains("done"), "{err}");

        // Replay: the cancellation is durable (b stays gone, c is
        // re-queued) and the accumulator comes back exactly — a's
        // finish settled 0.5, c holds 0.5 in flight.
        drop(q);
        let store2 = DatasetStore::open(Some(dir.join("datasets"))).unwrap();
        let q2 = JobQueue::with_journal(store2.clone(), &path).unwrap().with_eps_budget(Some(1.0));
        assert_eq!(q2.state(&b), None, "cancelled job must not be resurrected");
        assert_eq!(q2.state(&c), Some(JobState::Queued));
        assert_eq!(q2.eps_info(&handle), (1.0, Some(1.0)));
        assert_eq!(
            q2.submit(s).unwrap_err().code,
            crate::api::ErrorCode::BudgetExhausted,
            "replayed ledger must still refuse over-budget submits"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn ledger_replay_is_exact_across_compaction_and_torn_tails() {
        let dir = std::env::temp_dir().join("trajdp-ledger-replay-test");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("jobs.jsonl");
        let store = DatasetStore::open(Some(dir.join("datasets"))).unwrap();
        let q = JobQueue::with_journal(store.clone(), &path).unwrap();
        let (_, handle) = handle_spec(&store);
        // 0.1 + 0.2 is the classic inexact sum: replay must reproduce
        // the same accumulated f64 bit for bit, not a re-rounded one.
        q.set_eps_budget(&handle, 2.5).unwrap();
        q.charge_sync(&handle, 0.1).unwrap();
        q.charge_sync(&handle, 0.2).unwrap();
        let before = q.eps_info(&handle);
        assert_eq!(before, (0.1 + 0.2, Some(2.5)));
        drop(q);

        // Reopen twice: the first replay compacts the journal into a
        // snapshot event, so the second exercises the snapshot's ledger
        // round-trip as well as the raw event path.
        for reopen in 0..2 {
            let store = DatasetStore::open(Some(dir.join("datasets"))).unwrap();
            let q = JobQueue::with_journal(store, &path).unwrap();
            assert_eq!(q.eps_info(&handle), before, "reopen {reopen} drifted");
            drop(q);
        }

        // A spend torn mid-write (the crash-between-write-and-ack case)
        // is discarded like any torn tail: the spend was never
        // acknowledged, so dropping it cannot under-count an answer.
        let good = std::fs::read_to_string(&path).unwrap();
        std::fs::write(
            &path,
            format!("{good}{{\"event\":\"spend\",\"dataset\":\"{handle}\",\"eps\":0."),
        )
        .unwrap();
        let q =
            JobQueue::with_journal(DatasetStore::open(Some(dir.join("datasets"))).unwrap(), &path)
                .unwrap();
        assert_eq!(q.eps_info(&handle), before);
        drop(q);

        // A complete spend that only lost its newline is kept: it may
        // have been acknowledged, so it must be counted.
        let good = std::fs::read_to_string(&path).unwrap();
        std::fs::write(
            &path,
            format!("{good}{{\"event\":\"spend\",\"dataset\":\"{handle}\",\"eps\":0.25}}"),
        )
        .unwrap();
        let q =
            JobQueue::with_journal(DatasetStore::open(Some(dir.join("datasets"))).unwrap(), &path)
                .unwrap();
        assert_eq!(q.eps_info(&handle), (before.0 + 0.25, Some(2.5)));
        drop(q);

        // Semantically invalid ledger events fail startup loudly.
        for (bad, diagnostic) in [
            ("{\"event\":\"spend\",\"eps\":0.5}", "without dataset"),
            ("{\"event\":\"spend\",\"dataset\":\"ds-1\",\"eps\":-1}", "positive"),
            ("{\"event\":\"budget\",\"dataset\":\"ds-1\"}", "eps_budget"),
        ] {
            let good = std::fs::read_to_string(&path).unwrap();
            std::fs::write(&path, format!("{good}{bad}\n")).unwrap();
            let err = JobQueue::with_journal(DatasetStore::new(), &path).map(|_| ()).unwrap_err();
            assert!(err.contains(diagnostic), "{bad} must fail with {diagnostic}: {err}");
            std::fs::write(&path, good).unwrap();
        }
        std::fs::remove_dir_all(&dir).ok();
    }
}

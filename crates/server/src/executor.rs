//! The sharded parallel anonymization executor.
//!
//! [`anonymize_parallel`] reproduces [`trajdp_core::anonymize`] **bit
//! for bit** at any worker count. That works because the core pipeline
//! draws all randomness from per-unit streams (`trajdp_core::stream`):
//! the global mechanism has one stream per candidate point, the local
//! mechanism one per trajectory slot. Sharding therefore only changes
//! *which thread* evaluates a unit, never *what* it draws:
//!
//! * **global phase** — the sorted candidate set is cut into one
//!   contiguous shard per worker; each worker perturbs its frequency
//!   partition with `perturb_tf_shard`, shards merge into the full
//!   perturbed TF map, and the randomness-free inter-trajectory
//!   modification runs on the merged map with its own deterministic
//!   chunked parallelism (`realize_tf` with the same worker count).
//! * **local phase** — trajectory slots are cut into contiguous shards;
//!   each worker runs `local_unit_streamed` per slot, and the units
//!   merge in slot order (fixed float-summation order, so even the
//!   report's aggregates match the serial run exactly).
//!
//! Both phases shard through `trajdp_core::pool::map_chunks`, the same
//! scoped-thread chunk pool the modification phase uses internally.
//! Budget accounting is identical to the serial pipeline: the ledger
//! records one spend per mechanism, not per shard.

use trajdp_core::freq::FrequencyAnalysis;
use trajdp_core::global::{perturb_tf_shard, realize_tf, GlobalReport};
use trajdp_core::local::{local_unit_streamed, merge_local_units, LocalReport, LocalUnit};
use trajdp_core::pool::map_chunks;
use trajdp_core::{run_model, AnonymizedOutput, FreqDpConfig, Model};
use trajdp_mech::MechError;
use trajdp_model::Dataset;

/// Runs the global mechanism with the TF perturbation sharded over
/// `workers` threads, then the modification phase parallelized over the
/// same worker count.
fn parallel_global(
    input: &Dataset,
    analysis: &FrequencyAnalysis,
    cfg: &FreqDpConfig,
    workers: usize,
) -> Result<(Dataset, GlobalReport), MechError> {
    let candidates = analysis.candidate_points();
    let partials = map_chunks(workers, &candidates, |lo, chunk| {
        perturb_tf_shard(analysis, chunk, lo, cfg.eps_global, cfg.seed)
    });
    let mut perturbed = std::collections::HashMap::with_capacity(candidates.len());
    for partial in partials {
        perturbed.extend(partial?);
    }
    Ok(realize_tf(input, analysis, &perturbed, cfg.index, cfg.bbox_pruning, workers))
}

/// Runs the local mechanism sharded over `workers` threads, merging
/// per-trajectory units in slot order.
fn parallel_local(
    input: &Dataset,
    analysis: &FrequencyAnalysis,
    cfg: &FreqDpConfig,
    workers: usize,
) -> Result<(Dataset, LocalReport), MechError> {
    let partials: Vec<Result<Vec<LocalUnit>, MechError>> =
        map_chunks(workers, &input.trajectories, |lo, chunk| {
            chunk
                .iter()
                .enumerate()
                .map(|(offset, traj)| {
                    local_unit_streamed(
                        traj,
                        analysis,
                        lo + offset,
                        cfg.eps_local,
                        cfg.index,
                        cfg.local_opts,
                        input.domain,
                        cfg.seed,
                    )
                })
                .collect()
        });
    let mut units = Vec::with_capacity(input.len());
    for partial in partials {
        units.extend(partial?);
    }
    Ok(merge_local_units(input.domain, units))
}

/// Runs a model end to end with both mechanisms sharded over `workers`
/// std threads. Semantics-equivalent to [`trajdp_core::anonymize`]: for
/// a fixed `cfg.seed` the output dataset and reports are identical at
/// every worker count, including `workers == 1`.
pub fn anonymize_parallel(
    ds: &Dataset,
    model: Model,
    cfg: &FreqDpConfig,
    workers: usize,
) -> Result<AnonymizedOutput, MechError> {
    let analysis = FrequencyAnalysis::compute(ds, cfg.m);
    run_model(
        ds,
        model,
        cfg,
        &analysis,
        |input, analysis| parallel_global(input, analysis, cfg, workers),
        |input, analysis| parallel_local(input, analysis, cfg, workers),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use trajdp_model::{Point, Sample, Trajectory};

    fn ds() -> Dataset {
        let mk = |id: u64, pts: &[(f64, f64)]| {
            Trajectory::new(
                id,
                pts.iter()
                    .enumerate()
                    .map(|(i, &(x, y))| Sample::new(Point::new(x, y), i as i64 * 10))
                    .collect(),
            )
        };
        Dataset::from_trajectories(vec![
            mk(0, &[(0.0, 0.0), (10.0, 0.0), (0.0, 0.0), (20.0, 5.0), (0.0, 0.0)]),
            mk(1, &[(100.0, 100.0), (110.0, 100.0), (100.0, 100.0), (120.0, 100.0)]),
            mk(2, &[(200.0, 0.0), (210.0, 0.0), (220.0, 0.0), (210.0, 0.0)]),
            mk(3, &[(50.0, 50.0), (60.0, 50.0), (50.0, 50.0), (70.0, 55.0)]),
            mk(4, &[(5.0, 5.0), (6.0, 5.0), (5.0, 5.0)]),
        ])
    }

    #[test]
    fn executor_matches_pipeline_with_parallel_modification() {
        // The serial pipeline with `cfg.workers > 1` parallelizes only
        // its modification phase; the executor additionally shards the
        // perturbation. All three paths must agree byte for byte.
        let d = ds();
        let serial = trajdp_core::anonymize(
            &d,
            Model::Combined,
            &FreqDpConfig { m: 3, workers: 1, ..Default::default() },
        )
        .unwrap();
        for workers in [2usize, 8] {
            let cfg = FreqDpConfig { m: 3, workers, ..Default::default() };
            let pipeline = trajdp_core::anonymize(&d, Model::Combined, &cfg).unwrap();
            let executor = anonymize_parallel(&d, Model::Combined, &cfg, workers).unwrap();
            assert_eq!(pipeline.dataset, serial.dataset, "pipeline at {workers} workers");
            assert_eq!(executor.dataset, serial.dataset, "executor at {workers} workers");
        }
    }

    #[test]
    fn matches_serial_for_every_model_and_worker_count() {
        let d = ds();
        let cfg = FreqDpConfig { m: 3, seed: 0xFEED, ..Default::default() };
        for model in
            [Model::PureGlobal, Model::PureLocal, Model::Combined, Model::CombinedLocalFirst]
        {
            let serial = trajdp_core::anonymize(&d, model, &cfg).unwrap();
            for workers in [1, 2, 3, 8] {
                let parallel = anonymize_parallel(&d, model, &cfg, workers).unwrap();
                assert_eq!(
                    parallel.dataset, serial.dataset,
                    "{model:?} with {workers} workers diverged from serial"
                );
                assert_eq!(parallel.epsilon_spent, serial.epsilon_spent);
                assert_eq!(parallel.total_edits(), serial.total_edits(), "{model:?}");
                assert_eq!(parallel.utility_loss(), serial.utility_loss(), "{model:?}");
            }
        }
    }

    #[test]
    fn more_workers_than_units_is_fine() {
        let d = ds();
        let cfg = FreqDpConfig { m: 2, ..Default::default() };
        let serial = trajdp_core::anonymize(&d, Model::Combined, &cfg).unwrap();
        let parallel = anonymize_parallel(&d, Model::Combined, &cfg, 64).unwrap();
        assert_eq!(parallel.dataset, serial.dataset);
    }

    #[test]
    fn empty_dataset_is_handled() {
        let cfg = FreqDpConfig { m: 2, eps_global: 0.5, eps_local: 0.5, ..Default::default() };
        // eps itself is validated by the accountant/pipeline before the
        // shards run; a degenerate dataset still works.
        let empty = Dataset::from_trajectories(vec![]);
        let out = anonymize_parallel(&empty, Model::PureLocal, &cfg, 4).unwrap();
        assert_eq!(out.dataset.len(), 0);
    }
}

//! A minimal, serde-free JSON value type with parser and writer.
//!
//! The service layer speaks JSON-lines: one request object per line, one
//! response object per line. The build environment is offline, so
//! instead of `serde_json` this module implements the small subset of
//! JSON the protocol needs — objects, arrays, strings (with standard
//! escapes), `f64` numbers, booleans, and `null` — in plain std Rust.
//!
//! Numbers are kept as `f64` (the protocol's integers all fit in the
//! 53-bit mantissa exactly). Duplicate object keys keep the last value,
//! matching common JSON implementations.

use std::collections::BTreeMap;
use std::fmt;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (always carried as `f64`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; `BTreeMap` so serialization order is deterministic.
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// Builds an object from key/value pairs.
    pub fn obj(pairs: impl IntoIterator<Item = (&'static str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Member lookup on objects; `None` elsewhere.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(m) => m.get(key),
            _ => None,
        }
    }

    /// The value as a string slice, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a number, if it is one.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a non-negative integer, if it is a whole number.
    pub fn as_u64(&self) -> Option<u64> {
        // Numbers travel as f64, so any integer ≥ 2^53 may already have
        // been silently rounded during parsing — reject those instead
        // of returning lost precision (matters for RNG seeds, where a
        // rounded seed reproduces different noise than requested).
        const EXACT_LIMIT: f64 = 9_007_199_254_740_992.0; // 2^53
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n < EXACT_LIMIT => Some(*n as u64),
            _ => None,
        }
    }

    /// The value as a bool, if it is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }
}

impl From<&str> for Json {
    fn from(s: &str) -> Self {
        Json::Str(s.to_string())
    }
}

impl From<String> for Json {
    fn from(s: String) -> Self {
        Json::Str(s)
    }
}

impl From<f64> for Json {
    fn from(n: f64) -> Self {
        Json::Num(n)
    }
}

impl From<u64> for Json {
    fn from(n: u64) -> Self {
        Json::Num(n as f64)
    }
}

impl From<usize> for Json {
    fn from(n: usize) -> Self {
        Json::Num(n as f64)
    }
}

impl From<bool> for Json {
    fn from(b: bool) -> Self {
        Json::Bool(b)
    }
}

fn escape_into(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

impl fmt::Display for Json {
    /// Compact single-line serialization (newline-free, as JSON-lines
    /// requires: the only newline in a frame is the terminator).
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut buf = String::new();
        write_into(self, &mut buf);
        f.write_str(&buf)
    }
}

fn write_into(v: &Json, out: &mut String) {
    match v {
        Json::Null => out.push_str("null"),
        Json::Bool(true) => out.push_str("true"),
        Json::Bool(false) => out.push_str("false"),
        Json::Num(n) => {
            if n.is_finite() {
                if n.fract() == 0.0 && n.abs() < 2f64.powi(53) {
                    let _ = fmt::Write::write_fmt(out, format_args!("{}", *n as i64));
                } else {
                    let _ = fmt::Write::write_fmt(out, format_args!("{n}"));
                }
            } else {
                // JSON has no Inf/NaN; degrade to null like serde_json.
                out.push_str("null");
            }
        }
        Json::Str(s) => escape_into(s, out),
        Json::Arr(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_into(item, out);
            }
            out.push(']');
        }
        Json::Obj(map) => {
            out.push('{');
            for (i, (k, val)) in map.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                escape_into(k, out);
                out.push(':');
                write_into(val, out);
            }
            out.push('}');
        }
    }
}

/// A JSON parse error with byte position.
#[derive(Debug, Clone, PartialEq)]
pub struct ParseError {
    /// What went wrong.
    pub message: String,
    /// Byte offset in the input.
    pub at: usize,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON parse error at byte {}: {}", self.at, self.message)
    }
}

impl std::error::Error for ParseError {}

/// Parses one complete JSON value; trailing non-whitespace is an error.
pub fn parse(input: &str) -> Result<Json, ParseError> {
    let mut p = Parser { bytes: input.as_bytes(), pos: 0 };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after value"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &str) -> ParseError {
        ParseError { message: message.to_string(), at: self.pos }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected {:?}", b as char)))
        }
    }

    fn literal(&mut self, word: &str, v: Json) -> Result<Json, ParseError> {
        // PANIC: `pos` only ever advances by the length of bytes already
        // peeked, so `pos <= bytes.len()` and the open range is valid.
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected {word}")))
        }
    }

    fn value(&mut self) -> Result<Json, ParseError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn number(&mut self) -> Result<Json, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')) {
            self.pos += 1;
        }
        // PANIC: every byte in `start..pos` matched the ASCII digit/sign
        // classes above, so the range is in bounds and valid UTF-8.
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| ParseError { message: format!("bad number {text:?}"), at: start })
    }

    fn hex4(&mut self) -> Result<u16, ParseError> {
        if self.pos + 4 > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        // PANIC: `pos + 4 <= bytes.len()` was checked two lines up.
        let s = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| self.err("non-ASCII in \\u escape"))?;
        let v = u16::from_str_radix(s, 16).map_err(|_| self.err("bad \\u escape"))?;
        self.pos += 4;
        Ok(v)
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            self.pos += 1;
                            let hi = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: expect \uXXXX low half.
                                if self.peek() == Some(b'\\') {
                                    self.pos += 1;
                                    self.expect(b'u')?;
                                    let lo = self.hex4()?;
                                    let code = 0x10000
                                        + ((hi as u32 - 0xD800) << 10)
                                        + (lo as u32 - 0xDC00);
                                    char::from_u32(code)
                                        .ok_or_else(|| self.err("bad surrogate pair"))?
                                } else {
                                    return Err(self.err("lone high surrogate"));
                                }
                            } else {
                                char::from_u32(hi as u32)
                                    .ok_or_else(|| self.err("bad \\u code point"))?
                            };
                            out.push(c);
                            continue;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar.
                    // PANIC: `peek()` returned `Some`, so `pos` is in
                    // bounds and the open range is valid.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.err("invalid UTF-8"))?;
                    // PANIC: `peek()` saw a byte, so `rest` is non-empty.
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn array(&mut self) -> Result<Json, ParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, ParseError> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            map.insert(key, val);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(map));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrips_basic_values() {
        for text in [
            "null",
            "true",
            "false",
            "0",
            "-7",
            "3.5",
            "\"hi\"",
            "[]",
            "[1,2,3]",
            "{}",
            "{\"a\":1,\"b\":[true,null]}",
        ] {
            let v = parse(text).unwrap();
            assert_eq!(parse(&v.to_string()).unwrap(), v, "{text}");
        }
    }

    #[test]
    fn escapes_roundtrip() {
        let original = "line1\nline2\t\"quoted\" \\ slash \u{1F600} control:\u{1}";
        let v = Json::Str(original.to_string());
        let text = v.to_string();
        assert!(!text.contains('\n'), "serialized form must be single-line");
        assert_eq!(parse(&text).unwrap(), v);
    }

    #[test]
    fn unicode_escapes_parse() {
        assert_eq!(parse(r#""A""#).unwrap(), Json::Str("A".into()));
        // Surrogate pair for 😀.
        assert_eq!(parse(r#""😀""#).unwrap(), Json::Str("😀".into()));
    }

    #[test]
    fn whitespace_tolerated() {
        let v = parse(" { \"a\" : [ 1 , 2 ] , \"b\" : \"x\" } ").unwrap();
        assert_eq!(v.get("a"), Some(&Json::Arr(vec![Json::Num(1.0), Json::Num(2.0)])));
    }

    #[test]
    fn errors_carry_position() {
        assert!(parse("").is_err());
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("\"unterminated").is_err());
        assert!(parse("{\"a\":1} extra").is_err());
        let e = parse("nope").unwrap_err();
        assert!(e.to_string().contains("byte 0"));
    }

    #[test]
    fn integers_serialize_without_fraction() {
        assert_eq!(Json::Num(42.0).to_string(), "42");
        assert_eq!(Json::Num(-1.0).to_string(), "-1");
        assert_eq!(Json::Num(2.5).to_string(), "2.5");
        assert_eq!(Json::Num(f64::NAN).to_string(), "null");
    }

    #[test]
    fn as_u64_rejects_values_that_lost_precision() {
        // 2^53 + 1 parses to the f64 2^53; returning that would silently
        // change an RNG seed, so everything ≥ 2^53 is rejected.
        let v = parse(r#"{"seed":9007199254740993}"#).unwrap();
        assert_eq!(v.get("seed").and_then(Json::as_u64), None);
        let v = parse(r#"{"seed":9007199254740992}"#).unwrap();
        assert_eq!(v.get("seed").and_then(Json::as_u64), None);
        // The largest exactly-representable accepted integer.
        let v = parse(r#"{"seed":9007199254740991}"#).unwrap();
        assert_eq!(v.get("seed").and_then(Json::as_u64), Some(9007199254740991));
    }

    #[test]
    fn accessors() {
        let v = parse(r#"{"n":7,"s":"x","b":true,"f":1.5}"#).unwrap();
        assert_eq!(v.get("n").and_then(Json::as_u64), Some(7));
        assert_eq!(v.get("s").and_then(Json::as_str), Some("x"));
        assert_eq!(v.get("b").and_then(Json::as_bool), Some(true));
        assert_eq!(v.get("f").and_then(Json::as_f64), Some(1.5));
        assert_eq!(v.get("f").and_then(Json::as_u64), None, "fractional is not u64");
        assert_eq!(v.get("missing"), None);
    }
}

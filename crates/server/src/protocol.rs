//! The JSON-lines request/response protocol.
//!
//! One request object per line, one response object per line. Every
//! request carries a `"cmd"` member; datasets travel either inline as
//! CSV text (the `trajdp_model::csv` interchange format) inside JSON
//! strings, or by reference to a server-side handle (`ds-<id>`) built
//! up with the chunked-transfer commands.
//!
//! | cmd         | members                                                           |
//! |-------------|-------------------------------------------------------------------|
//! | `health`    | —                                                                 |
//! | `gen`       | `size?`, `len?`, `seed?`, `store?`                                |
//! | `anonymize` | `model`, `csv` \| `dataset`, `epsilon?`, `eps_split?`, `m?`, `seed?`, `workers?`, `async?`, `store?` |
//! | `evaluate`  | `original` \| `original_dataset`, `anonymized` \| `anonymized_dataset` |
//! | `stats`     | `csv` \| `dataset`                                                |
//! | `status`    | `job`                                                             |
//! | `upload`    | — (answers with a fresh pending `dataset` handle)                 |
//! | `chunk`     | `dataset`, `data` (appends one piece)                             |
//! | `commit`    | `dataset` (seals the handle for use)                              |
//! | `download`  | `dataset`, `offset?`, `max_bytes?` (one bounded piece back)       |
//! | `delete`    | `dataset` (frees the handle; rejected while a job pins it)        |
//! | `list`      | — (all jobs and dataset handles)                                  |
//!
//! Unknown members are rejected by name — a misspelled `"epsilom"`
//! must fail loudly, never run with the default (the same contract the
//! CLI enforces on flags).
//!
//! Responses always carry `"ok"` (`true`/`false`); failures add
//! `"error"`. An `anonymize` request with `"async": true` enqueues a job
//! and answers `{"ok":true,"job":"<id>","state":"queued"}` immediately;
//! `status` polls it and returns the finished result inline once done.
//! `"store": true` on `gen`/`anonymize` keeps the produced CSV
//! server-side and answers with its `dataset` handle (for `download`)
//! instead of the inline text.

use crate::json::Json;
use crate::store::{DatasetStore, DEFAULT_DOWNLOAD_CHUNK_BYTES};
use trajdp_core::{FreqDpConfig, Model};
use trajdp_metrics::{
    diameter_divergence, frequent_pattern_f1, information_loss, mutual_information, trip_divergence,
};
use trajdp_model::csv::{from_csv, to_csv};
use trajdp_model::stats::DatasetStats;
use trajdp_synth::{generate, GeneratorConfig};

/// Dataset input of a request: inline CSV text or a committed
/// server-side handle from the chunked-upload commands.
#[derive(Debug, Clone, PartialEq)]
pub enum DataRef {
    /// CSV text shipped inside the request line.
    Inline(String),
    /// A `ds-<id>` handle minted by `upload` and sealed by `commit`.
    Handle(String),
}

impl DataRef {
    /// The full CSV text, fetching handles from the store without
    /// deep-copying them (committed handles are immutable, so sharing
    /// the `Arc` is safe — a multi-GB handle must not double peak
    /// memory on resolution). Resolution happens once, at dispatch
    /// time, so a job owns its data: restarting the store after submit
    /// cannot change what a queued job computes.
    pub fn resolve_shared(self, store: &DatasetStore) -> Result<std::sync::Arc<String>, String> {
        match self {
            DataRef::Inline(csv) => Ok(std::sync::Arc::new(csv)),
            DataRef::Handle(id) => store.resolve(&id),
        }
    }
}

/// A fully validated anonymize request, ready to execute.
#[derive(Debug, Clone, PartialEq)]
pub struct AnonymizeSpec {
    /// Which published model to run.
    pub model: Model,
    /// Total privacy budget ε — the end-to-end guarantee of the run,
    /// whatever the model.
    pub epsilon: f64,
    /// Fraction of ε given to the global mechanism in combined models;
    /// pure models spend the whole ε on their single mechanism (see
    /// [`budget_split`]). Must lie strictly inside (0, 1).
    pub eps_split: f64,
    /// Signature size `m`.
    pub m: usize,
    /// Root RNG seed.
    pub seed: u64,
    /// Executor worker threads.
    pub workers: usize,
    /// Keep the released CSV server-side (answer with a `dataset`
    /// handle for chunked download) instead of inlining it.
    pub store_result: bool,
    /// The store handle the dataset was resolved from, when it came by
    /// reference. The job journal records this id instead of the
    /// resolved text (the handle's bytes are already durable in the
    /// store), and the queue pins it while the job is queued/running so
    /// neither `delete` nor eviction can yank the data a replay needs.
    pub source: Option<String>,
    /// The private dataset as CSV text — shared, not owned, so a
    /// handle-based spec aliases the store's copy instead of
    /// duplicating it.
    pub csv: std::sync::Arc<String>,
}

/// A parsed anonymize request whose dataset may still be a handle;
/// [`AnonymizeParams::resolve`] turns it into an executable
/// [`AnonymizeSpec`].
#[derive(Debug, Clone, PartialEq)]
pub struct AnonymizeParams {
    /// Which published model to run.
    pub model: Model,
    /// Total privacy budget ε.
    pub epsilon: f64,
    /// Global-share fraction of ε for combined models.
    pub eps_split: f64,
    /// Signature size `m`.
    pub m: usize,
    /// Root RNG seed.
    pub seed: u64,
    /// Executor worker threads.
    pub workers: usize,
    /// Keep the released CSV server-side.
    pub store_result: bool,
    /// The private dataset, inline or by handle.
    pub data: DataRef,
}

impl AnonymizeParams {
    /// Resolves the dataset reference against the store. A handle-based
    /// run is byte-identical to the inline run because both paths feed
    /// the exact same CSV text to the executor.
    pub fn resolve(self, store: &DatasetStore) -> Result<AnonymizeSpec, String> {
        let source = match &self.data {
            DataRef::Handle(id) => Some(id.clone()),
            DataRef::Inline(_) => None,
        };
        Ok(AnonymizeSpec {
            model: self.model,
            epsilon: self.epsilon,
            eps_split: self.eps_split,
            m: self.m,
            seed: self.seed,
            workers: self.workers,
            store_result: self.store_result,
            source,
            csv: self.data.resolve_shared(store)?,
        })
    }
}

impl AnonymizeSpec {
    /// The derived core pipeline configuration.
    pub fn config(&self) -> FreqDpConfig {
        let (eps_global, eps_local) = budget_split(self.model, self.epsilon, self.eps_split);
        FreqDpConfig {
            m: self.m,
            eps_global,
            eps_local,
            seed: self.seed,
            workers: self.workers,
            ..Default::default()
        }
    }
}

/// Divides a **total** budget ε between the two mechanisms for a model.
///
/// Pure models give their single mechanism the whole ε — `epsilon` is
/// the end-to-end guarantee the caller asked for, not a pool to halve
/// when only one mechanism runs. Combined models split it by
/// `eps_split` (global share). The unused side of a pure model keeps
/// its nominal share; the pipeline never spends it.
pub fn budget_split(model: Model, epsilon: f64, eps_split: f64) -> (f64, f64) {
    match model {
        Model::PureGlobal => (epsilon, epsilon * (1.0 - eps_split)),
        Model::PureLocal => (epsilon * eps_split, epsilon),
        Model::Combined | Model::CombinedLocalFirst => {
            (epsilon * eps_split, epsilon * (1.0 - eps_split))
        }
    }
}

/// Caps on synthetic-generation and executor parameters: one request
/// must not be able to allocate unbounded memory or spawn unbounded
/// threads in a shared server process.
pub const MAX_GEN_POINTS: u64 = 20_000_000;
/// Upper bound on the signature size `m`.
pub const MAX_M: u64 = 100_000;
/// Upper bound on executor worker threads per request.
pub const MAX_WORKERS: u64 = 1_024;

/// A parsed protocol request.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Liveness probe.
    Health,
    /// Generate a synthetic dataset.
    Gen {
        /// Number of trajectories.
        size: usize,
        /// Points per trajectory.
        len: usize,
        /// Generator seed.
        seed: u64,
        /// Keep the generated CSV server-side as a dataset handle.
        store_result: bool,
    },
    /// Anonymize a dataset; `asynchronous` requests become queued jobs.
    Anonymize {
        /// The validated parameters (dataset possibly still a handle).
        params: AnonymizeParams,
        /// Whether to enqueue as a job instead of answering inline.
        asynchronous: bool,
    },
    /// Compare an anonymized dataset against its original.
    Evaluate {
        /// Original dataset.
        original: DataRef,
        /// Anonymized dataset.
        anonymized: DataRef,
    },
    /// Shape statistics of a dataset.
    Stats {
        /// The dataset.
        data: DataRef,
    },
    /// Poll a queued job.
    Status {
        /// The job id returned by an async `anonymize`.
        job: String,
    },
    /// Open a pending dataset handle for chunked upload.
    Upload,
    /// Append one piece to a pending dataset handle.
    Chunk {
        /// The pending handle.
        dataset: String,
        /// The piece to append.
        data: String,
    },
    /// Seal a pending dataset handle.
    Commit {
        /// The pending handle.
        dataset: String,
    },
    /// Read one bounded piece of a committed dataset.
    Download {
        /// The committed handle.
        dataset: String,
        /// Byte offset to read from (a boundary handed out by a
        /// previous piece).
        offset: usize,
        /// Upper bound on the piece size.
        max_bytes: usize,
    },
    /// Free a dataset handle (pending or committed). Rejected with a
    /// distinct error while a queued/running job pins the handle.
    Delete {
        /// The handle to free.
        dataset: String,
    },
    /// Enumerate all jobs and dataset handles.
    List,
}

/// Parses a model name as accepted by the CLI.
pub fn parse_model(name: &str) -> Result<Model, String> {
    match name {
        "pureg" => Ok(Model::PureGlobal),
        "purel" => Ok(Model::PureLocal),
        "gl" => Ok(Model::Combined),
        "lg" => Ok(Model::CombinedLocalFirst),
        other => Err(format!("unknown model {other:?} (pureg|purel|gl|lg)")),
    }
}

/// Validates an ε-split fraction: must lie strictly inside (0, 1).
pub fn validate_eps_split(split: f64) -> Result<f64, String> {
    if split.is_finite() && split > 0.0 && split < 1.0 {
        Ok(split)
    } else {
        Err(format!("--eps-split must lie in (0, 1), got {split}"))
    }
}

/// Validates a worker-thread count at the CLI/protocol boundary: must
/// lie in `[1, MAX_WORKERS]`. A zero count used to be clamped silently
/// deep inside the chunking helper; rejecting it here keeps the
/// contract visible, mirroring [`validate_eps_split`].
pub fn validate_workers(workers: u64) -> Result<usize, String> {
    if workers == 0 {
        Err("workers must be at least 1".into())
    } else if workers > MAX_WORKERS {
        Err(format!("workers must not exceed {MAX_WORKERS}"))
    } else {
        Ok(workers as usize)
    }
}

fn get_u64(v: &Json, key: &str, default: u64) -> Result<u64, String> {
    match v.get(key) {
        None => Ok(default),
        Some(j) => {
            j.as_u64().ok_or_else(|| format!("{key} must be a non-negative integer below 2^53"))
        }
    }
}

fn get_f64(v: &Json, key: &str, default: f64) -> Result<f64, String> {
    match v.get(key) {
        None => Ok(default),
        Some(j) => j.as_f64().ok_or_else(|| format!("{key} must be a number")),
    }
}

fn get_bool(v: &Json, key: &str, default: bool) -> Result<bool, String> {
    // A non-bool value (`"async": 1`, `"async": "true"`) must be an
    // error: falling back to the default would silently run a
    // potentially huge job with the wrong mode.
    match v.get(key) {
        None => Ok(default),
        Some(j) => j.as_bool().ok_or_else(|| format!("{key} must be a boolean (true or false)")),
    }
}

fn get_str<'a>(v: &'a Json, key: &str) -> Result<&'a str, String> {
    v.get(key).and_then(Json::as_str).ok_or_else(|| format!("missing string member {key:?}"))
}

/// Rejects members outside the command's accepted set by name — a
/// misspelled `"epsilom"` or `"worker"` must never be silently ignored
/// and run with the default (the bug class the CLI's strict flag parser
/// already kills for flags).
fn check_members(v: &Json, cmd: &str, accepted: &[&str]) -> Result<(), String> {
    if let Json::Obj(map) = v {
        for key in map.keys() {
            if key != "cmd" && !accepted.contains(&key.as_str()) {
                let list = if accepted.is_empty() {
                    "none besides \"cmd\"".to_string()
                } else {
                    accepted.iter().map(|m| format!("{m:?}")).collect::<Vec<_>>().join(", ")
                };
                return Err(format!("unknown member {key:?} for cmd {cmd:?} (accepted: {list})"));
            }
        }
    }
    Ok(())
}

/// Reads a dataset given either inline (`inline_key`) or by handle
/// (`handle_key`); exactly one of the two must be present.
fn get_data_ref(v: &Json, inline_key: &str, handle_key: &str) -> Result<DataRef, String> {
    let want_str = |j: &Json, key: &str| {
        j.as_str().map(str::to_string).ok_or_else(|| format!("{key} must be a string"))
    };
    match (v.get(inline_key), v.get(handle_key)) {
        (Some(_), Some(_)) => {
            Err(format!("members {inline_key:?} and {handle_key:?} are mutually exclusive"))
        }
        (Some(j), None) => Ok(DataRef::Inline(want_str(j, inline_key)?)),
        (None, Some(j)) => Ok(DataRef::Handle(want_str(j, handle_key)?)),
        (None, None) => Err(format!("missing member {inline_key:?} or {handle_key:?}")),
    }
}

/// Parses one request line.
pub fn parse_request(line: &str) -> Result<Request, String> {
    let v = crate::json::parse(line).map_err(|e| e.to_string())?;
    let cmd = get_str(&v, "cmd")?;
    match cmd {
        "health" => {
            check_members(&v, cmd, &[])?;
            Ok(Request::Health)
        }
        "gen" => {
            check_members(&v, cmd, &["size", "len", "seed", "store"])?;
            let size = get_u64(&v, "size", 200)?;
            let len = get_u64(&v, "len", 150)?;
            if size == 0 || len == 0 {
                return Err("size and len must be at least 1".into());
            }
            if size.saturating_mul(len) > MAX_GEN_POINTS {
                return Err(format!("size * len must not exceed {MAX_GEN_POINTS} points"));
            }
            Ok(Request::Gen {
                size: size as usize,
                len: len as usize,
                seed: get_u64(&v, "seed", 42)?,
                store_result: get_bool(&v, "store", false)?,
            })
        }
        "anonymize" => {
            check_members(
                &v,
                cmd,
                &[
                    "model",
                    "csv",
                    "dataset",
                    "epsilon",
                    "eps_split",
                    "m",
                    "seed",
                    "workers",
                    "async",
                    "store",
                ],
            )?;
            let model = parse_model(get_str(&v, "model")?)?;
            let epsilon = get_f64(&v, "epsilon", 1.0)?;
            if epsilon <= 0.0 || !epsilon.is_finite() {
                return Err("epsilon must be positive".into());
            }
            let eps_split = validate_eps_split(get_f64(&v, "eps_split", 0.5)?)?;
            let m = get_u64(&v, "m", 10)?;
            if m == 0 || m > MAX_M {
                return Err(format!("m must lie in [1, {MAX_M}]"));
            }
            let workers = validate_workers(get_u64(&v, "workers", 1)?)?;
            let params = AnonymizeParams {
                model,
                epsilon,
                eps_split,
                m: m as usize,
                seed: get_u64(&v, "seed", 42)?,
                workers,
                store_result: get_bool(&v, "store", false)?,
                data: get_data_ref(&v, "csv", "dataset")?,
            };
            let asynchronous = get_bool(&v, "async", false)?;
            Ok(Request::Anonymize { params, asynchronous })
        }
        "evaluate" => {
            check_members(
                &v,
                cmd,
                &["original", "anonymized", "original_dataset", "anonymized_dataset"],
            )?;
            Ok(Request::Evaluate {
                original: get_data_ref(&v, "original", "original_dataset")?,
                anonymized: get_data_ref(&v, "anonymized", "anonymized_dataset")?,
            })
        }
        "stats" => {
            check_members(&v, cmd, &["csv", "dataset"])?;
            Ok(Request::Stats { data: get_data_ref(&v, "csv", "dataset")? })
        }
        "status" => {
            check_members(&v, cmd, &["job"])?;
            Ok(Request::Status { job: get_str(&v, "job")?.to_string() })
        }
        "upload" => {
            check_members(&v, cmd, &[])?;
            Ok(Request::Upload)
        }
        "chunk" => {
            check_members(&v, cmd, &["dataset", "data"])?;
            Ok(Request::Chunk {
                dataset: get_str(&v, "dataset")?.to_string(),
                data: get_str(&v, "data")?.to_string(),
            })
        }
        "commit" => {
            check_members(&v, cmd, &["dataset"])?;
            Ok(Request::Commit { dataset: get_str(&v, "dataset")?.to_string() })
        }
        "download" => {
            check_members(&v, cmd, &["dataset", "offset", "max_bytes"])?;
            let max_bytes = get_u64(&v, "max_bytes", DEFAULT_DOWNLOAD_CHUNK_BYTES as u64)?;
            if max_bytes == 0 {
                return Err("max_bytes must be at least 1".into());
            }
            Ok(Request::Download {
                dataset: get_str(&v, "dataset")?.to_string(),
                offset: get_u64(&v, "offset", 0)? as usize,
                max_bytes: max_bytes as usize,
            })
        }
        "delete" => {
            check_members(&v, cmd, &["dataset"])?;
            Ok(Request::Delete { dataset: get_str(&v, "dataset")?.to_string() })
        }
        "list" => {
            check_members(&v, cmd, &[])?;
            Ok(Request::List)
        }
        other => Err(format!("unknown cmd {other:?}")),
    }
}

/// An error response.
pub fn error_response(message: &str) -> Json {
    Json::obj([("ok", Json::Bool(false)), ("error", Json::from(message))])
}

/// Protocol/CLI name of a model — inverse of [`parse_model`].
pub fn model_name(model: Model) -> &'static str {
    match model {
        Model::PureGlobal => "pureg",
        Model::PureLocal => "purel",
        Model::Combined => "gl",
        Model::CombinedLocalFirst => "lg",
    }
}

/// Serializes a spec for the job journal — inverse of
/// [`spec_from_json`]. A spec resolved from a store handle journals the
/// handle id (`"dataset"`), not the resolved CSV: the bytes are already
/// durable in the store and pinned for the job's lifetime, so
/// re-recording megabytes of text per submit would only bloat the
/// journal and slow every restart.
pub fn spec_to_json(spec: &AnonymizeSpec) -> Json {
    let mut obj = match Json::obj([
        ("model", Json::from(model_name(spec.model))),
        ("epsilon", Json::from(spec.epsilon)),
        ("eps_split", Json::from(spec.eps_split)),
        ("m", Json::from(spec.m)),
        ("seed", Json::from(spec.seed)),
        ("workers", Json::from(spec.workers)),
        ("store", Json::from(spec.store_result)),
    ]) {
        Json::Obj(m) => m,
        _ => unreachable!(),
    };
    match &spec.source {
        Some(handle) => obj.insert("dataset".to_string(), Json::from(handle.clone())),
        None => obj.insert("csv".to_string(), Json::from(spec.csv.as_str())),
    };
    Json::Obj(obj)
}

/// Deserializes a journaled spec, re-validating every field: a replayed
/// job must satisfy the same contracts a live request does, so a
/// corrupted or hand-edited journal fails loudly instead of executing
/// out-of-contract work. Returns unresolved [`AnonymizeParams`]: a
/// handle-backed spec is re-resolved against the store only when the
/// job actually re-queues — a job that also has a journaled finish
/// never touches the store, so deleting its input after it finished
/// cannot brick replay.
pub fn spec_from_json(v: &Json) -> Result<AnonymizeParams, String> {
    let require =
        |key: &str| v.get(key).ok_or_else(|| format!("journaled spec is missing member {key:?}"));
    let model = parse_model(get_str(v, "model")?)?;
    let epsilon = require("epsilon")?.as_f64().ok_or("epsilon must be a number")?;
    if epsilon <= 0.0 || !epsilon.is_finite() {
        return Err("epsilon must be positive".into());
    }
    let eps_split =
        validate_eps_split(require("eps_split")?.as_f64().ok_or("eps_split must be a number")?)?;
    let m = require("m")?.as_u64().ok_or("m must be a non-negative integer")?;
    if m == 0 || m > MAX_M {
        return Err(format!("m must lie in [1, {MAX_M}]"));
    }
    let workers =
        validate_workers(require("workers")?.as_u64().ok_or("workers must be an integer")?)?;
    Ok(AnonymizeParams {
        model,
        epsilon,
        eps_split,
        m: m as usize,
        seed: require("seed")?.as_u64().ok_or("seed must be a non-negative integer")?,
        workers,
        store_result: require("store")?.as_bool().ok_or("store must be a boolean")?,
        data: get_data_ref(v, "csv", "dataset")?,
    })
}

/// Moves the `"csv"` payload of a successful response into the dataset
/// store, answering with a `"dataset"` handle and its byte size instead
/// of the inline text. Error responses pass through untouched; a full
/// store turns the response into an error (the computed result would
/// otherwise be silently dropped). `from_job` marks results minted by
/// async jobs, whose handles are reconciled against the replayed
/// journal at startup (a synchronous `store:true` response has no
/// journal record, so its handle must never be treated as an orphan).
pub fn store_response_csv(response: Json, store: &DatasetStore, from_job: bool) -> Json {
    if response.get("ok") != Some(&Json::Bool(true)) {
        return response;
    }
    let Json::Obj(mut obj) = response else { return response };
    let Some(Json::Str(csv)) = obj.remove("csv") else {
        return Json::Obj(obj);
    };
    match store.insert_with_provenance(csv, from_job) {
        Ok((id, bytes)) => {
            obj.insert("dataset".to_string(), Json::from(id));
            obj.insert("bytes".to_string(), Json::from(bytes));
            Json::Obj(obj)
        }
        Err(e) => error_response(&format!("cannot store result: {e}")),
    }
}

/// Executes an `upload` request: opens a pending dataset handle.
pub fn run_upload(store: &DatasetStore) -> Json {
    match store.begin() {
        Ok(id) => Json::obj([("ok", Json::Bool(true)), ("dataset", Json::from(id))]),
        Err(e) => error_response(&e),
    }
}

/// Executes a `chunk` request: appends one piece to a pending handle.
pub fn run_chunk(store: &DatasetStore, dataset: &str, data: &str) -> Json {
    match store.append(dataset, data) {
        Ok(bytes) => Json::obj([
            ("ok", Json::Bool(true)),
            ("dataset", Json::from(dataset)),
            ("bytes", Json::from(bytes)),
        ]),
        Err(e) => error_response(&e),
    }
}

/// Executes a `commit` request: seals a pending handle.
pub fn run_commit(store: &DatasetStore, dataset: &str) -> Json {
    match store.commit(dataset) {
        Ok(bytes) => Json::obj([
            ("ok", Json::Bool(true)),
            ("dataset", Json::from(dataset)),
            ("bytes", Json::from(bytes)),
        ]),
        Err(e) => error_response(&e),
    }
}

/// Executes a `download` request: one bounded piece of a committed
/// dataset.
pub fn run_download(store: &DatasetStore, dataset: &str, offset: usize, max_bytes: usize) -> Json {
    match store.read_chunk(dataset, offset, max_bytes) {
        Ok((piece, total, eof)) => Json::obj([
            ("ok", Json::Bool(true)),
            ("dataset", Json::from(dataset)),
            ("offset", Json::from(offset)),
            ("bytes", Json::from(piece.len())),
            ("total_bytes", Json::from(total)),
            ("eof", Json::Bool(eof)),
            ("data", Json::from(piece)),
        ]),
        Err(e) => error_response(&e),
    }
}

/// Executes a `delete` request: frees a handle (and its persisted
/// file). A handle pinned by a queued/running job answers a distinct
/// error instead of yanking the job's data.
pub fn run_delete(store: &DatasetStore, dataset: &str) -> Json {
    match store.delete(dataset) {
        Ok(bytes) => Json::obj([
            ("ok", Json::Bool(true)),
            ("dataset", Json::from(dataset)),
            ("bytes", Json::from(bytes)),
        ]),
        Err(e) => error_response(&e),
    }
}

/// Executes a `gen` request.
pub fn run_gen(size: usize, len: usize, seed: u64) -> Json {
    let world = generate(&GeneratorConfig::tdrive_profile(size, len, seed));
    let stats = DatasetStats::compute(&world.dataset);
    Json::obj([
        ("ok", Json::Bool(true)),
        ("csv", Json::from(to_csv(&world.dataset))),
        ("trajectories", Json::from(stats.num_trajectories)),
        ("points", Json::from(stats.total_points)),
        ("distinct_locations", Json::from(stats.distinct_locations)),
    ])
}

/// Executes an `anonymize` request through the sharded executor.
pub fn run_anonymize(spec: &AnonymizeSpec) -> Json {
    let ds = match from_csv(&spec.csv) {
        Ok(ds) => ds,
        Err(e) => return error_response(&format!("cannot parse csv: {e}")),
    };
    let cfg = spec.config();
    match crate::executor::anonymize_parallel(&ds, spec.model, &cfg, spec.workers) {
        Ok(result) => Json::obj([
            ("ok", Json::Bool(true)),
            ("csv", Json::from(to_csv(&result.dataset))),
            ("epsilon_spent", Json::from(result.epsilon_spent)),
            ("edits", Json::from(result.total_edits())),
            ("utility_loss", Json::from(result.utility_loss())),
            ("workers", Json::from(spec.workers)),
        ]),
        Err(e) => error_response(&e.to_string()),
    }
}

/// Executes an `evaluate` request.
pub fn run_evaluate(original: &str, anonymized: &str) -> Json {
    let orig = match from_csv(original) {
        Ok(ds) => ds,
        Err(e) => return error_response(&format!("cannot parse original: {e}")),
    };
    let anon = match from_csv(anonymized) {
        Ok(ds) => ds,
        Err(e) => return error_response(&format!("cannot parse anonymized: {e}")),
    };
    if orig.len() != anon.len() {
        return error_response("datasets must contain the same number of trajectories");
    }
    Json::obj([
        ("ok", Json::Bool(true)),
        ("mi", Json::from(mutual_information(&orig, &anon, 64))),
        ("inf", Json::from(information_loss(&orig, &anon))),
        ("de", Json::from(diameter_divergence(&orig, &anon, 24))),
        ("te", Json::from(trip_divergence(&orig, &anon, 16))),
        ("ffp", Json::from(frequent_pattern_f1(&orig, &anon, 64, 2, 200))),
    ])
}

/// Executes a `stats` request.
pub fn run_stats(csv: &str) -> Json {
    let ds = match from_csv(csv) {
        Ok(ds) => ds,
        Err(e) => return error_response(&format!("cannot parse csv: {e}")),
    };
    let s = DatasetStats::compute(&ds);
    Json::obj([
        ("ok", Json::Bool(true)),
        ("trajectories", Json::from(s.num_trajectories)),
        ("points", Json::from(s.total_points)),
        ("distinct_locations", Json::from(s.distinct_locations)),
        ("avg_traj_len", Json::from(s.avg_traj_len)),
        ("avg_point_spacing", Json::from(s.avg_point_spacing)),
        ("avg_sampling_period", Json::from(s.avg_sampling_period)),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_all_commands() {
        assert_eq!(parse_request(r#"{"cmd":"health"}"#).unwrap(), Request::Health);
        assert_eq!(
            parse_request(r#"{"cmd":"gen","size":10,"len":20,"seed":3}"#).unwrap(),
            Request::Gen { size: 10, len: 20, seed: 3, store_result: false }
        );
        let r = parse_request(
            r#"{"cmd":"anonymize","model":"gl","epsilon":2.0,"eps_split":0.25,"m":4,"seed":9,"workers":8,"csv":"traj_id,x,y,t\n"}"#,
        )
        .unwrap();
        match r {
            Request::Anonymize { params, asynchronous } => {
                assert_eq!(params.model, Model::Combined);
                assert_eq!(params.epsilon, 2.0);
                assert_eq!(params.eps_split, 0.25);
                assert_eq!(params.m, 4);
                assert_eq!(params.workers, 8);
                assert_eq!(params.data, DataRef::Inline("traj_id,x,y,t\n".to_string()));
                assert!(!asynchronous);
                let cfg = params.resolve(&DatasetStore::new()).unwrap().config();
                assert!((cfg.eps_global - 0.5).abs() < 1e-12);
                assert!((cfg.eps_local - 1.5).abs() < 1e-12);
            }
            other => panic!("wrong request {other:?}"),
        }
        assert!(matches!(
            parse_request(r#"{"cmd":"status","job":"job-1"}"#).unwrap(),
            Request::Status { .. }
        ));
        assert_eq!(parse_request(r#"{"cmd":"upload"}"#).unwrap(), Request::Upload);
        assert_eq!(
            parse_request(r#"{"cmd":"chunk","dataset":"ds-1","data":"0,1,2,3\n"}"#).unwrap(),
            Request::Chunk { dataset: "ds-1".to_string(), data: "0,1,2,3\n".to_string() }
        );
        assert_eq!(
            parse_request(r#"{"cmd":"commit","dataset":"ds-1"}"#).unwrap(),
            Request::Commit { dataset: "ds-1".to_string() }
        );
        assert_eq!(
            parse_request(r#"{"cmd":"download","dataset":"ds-1","offset":7,"max_bytes":64}"#)
                .unwrap(),
            Request::Download { dataset: "ds-1".to_string(), offset: 7, max_bytes: 64 }
        );
    }

    #[test]
    fn defaults_applied() {
        let r = parse_request(r#"{"cmd":"anonymize","model":"pureg","csv":""}"#).unwrap();
        match r {
            Request::Anonymize { params, asynchronous } => {
                assert_eq!(params.epsilon, 1.0);
                assert_eq!(params.eps_split, 0.5);
                assert_eq!(params.m, 10);
                assert_eq!(params.seed, 42);
                assert_eq!(params.workers, 1);
                assert!(!params.store_result);
                assert!(!asynchronous);
            }
            other => panic!("wrong request {other:?}"),
        }
        match parse_request(r#"{"cmd":"download","dataset":"ds-2"}"#).unwrap() {
            Request::Download { offset, max_bytes, .. } => {
                assert_eq!(offset, 0);
                assert_eq!(max_bytes, DEFAULT_DOWNLOAD_CHUNK_BYTES);
            }
            other => panic!("wrong request {other:?}"),
        }
    }

    #[test]
    fn dataset_handle_accepted_as_csv_alternative() {
        let r = parse_request(r#"{"cmd":"anonymize","model":"gl","dataset":"ds-3"}"#).unwrap();
        match r {
            Request::Anonymize { params, .. } => {
                assert_eq!(params.data, DataRef::Handle("ds-3".to_string()));
            }
            other => panic!("wrong request {other:?}"),
        }
        assert!(matches!(
            parse_request(r#"{"cmd":"stats","dataset":"ds-3"}"#).unwrap(),
            Request::Stats { data: DataRef::Handle(_) }
        ));
        match parse_request(r#"{"cmd":"evaluate","original_dataset":"ds-1","anonymized":"x"}"#)
            .unwrap()
        {
            Request::Evaluate { original, anonymized } => {
                assert_eq!(original, DataRef::Handle("ds-1".to_string()));
                assert_eq!(anonymized, DataRef::Inline("x".to_string()));
            }
            other => panic!("wrong request {other:?}"),
        }
        // Exactly one of inline/handle: both or neither is an error.
        let err = parse_request(r#"{"cmd":"anonymize","model":"gl","csv":"","dataset":"ds-1"}"#)
            .unwrap_err();
        assert!(err.contains("mutually exclusive"), "{err}");
        let err = parse_request(r#"{"cmd":"anonymize","model":"gl"}"#).unwrap_err();
        assert!(err.contains("\"csv\"") && err.contains("\"dataset\""), "{err}");
        let err = parse_request(r#"{"cmd":"stats"}"#).unwrap_err();
        assert!(err.contains("\"csv\"") && err.contains("\"dataset\""), "{err}");
    }

    #[test]
    fn non_bool_async_and_store_are_errors_not_false() {
        for bad in [r#""async":1"#, r#""async":"true""#, r#""async":null"#] {
            let line = format!(r#"{{"cmd":"anonymize","model":"gl","csv":"",{bad}}}"#);
            let err = parse_request(&line).unwrap_err();
            assert!(err.contains("async must be a boolean"), "{bad}: {err}");
        }
        let err = parse_request(r#"{"cmd":"anonymize","model":"gl","csv":"","store":"yes"}"#)
            .unwrap_err();
        assert!(err.contains("store must be a boolean"), "{err}");
        let err = parse_request(r#"{"cmd":"gen","store":1}"#).unwrap_err();
        assert!(err.contains("store must be a boolean"), "{err}");
        // A proper boolean still parses.
        assert!(matches!(
            parse_request(r#"{"cmd":"anonymize","model":"gl","csv":"","async":true}"#).unwrap(),
            Request::Anonymize { asynchronous: true, .. }
        ));
    }

    #[test]
    fn unknown_members_are_rejected_by_name() {
        // The misspellings from the wild: epsilom, worker.
        let err = parse_request(r#"{"cmd":"anonymize","model":"gl","csv":"","epsilom":2.0}"#)
            .unwrap_err();
        assert!(err.contains("\"epsilom\""), "{err}");
        assert!(err.contains("\"epsilon\""), "error must name the accepted set: {err}");
        let err =
            parse_request(r#"{"cmd":"anonymize","model":"gl","csv":"","worker":4}"#).unwrap_err();
        assert!(err.contains("\"worker\"") && err.contains("\"workers\""), "{err}");
        // Every command validates its member set, including no-member ones.
        assert!(parse_request(r#"{"cmd":"health","extra":1}"#).unwrap_err().contains("extra"));
        assert!(parse_request(r#"{"cmd":"upload","size":1}"#).unwrap_err().contains("size"));
        assert!(parse_request(r#"{"cmd":"gen","sizee":5}"#).unwrap_err().contains("sizee"));
        assert!(parse_request(r#"{"cmd":"status","job":"j","jb":"x"}"#)
            .unwrap_err()
            .contains("jb"));
        assert!(parse_request(r#"{"cmd":"download","dataset":"ds-1","off":3}"#)
            .unwrap_err()
            .contains("off"));
    }

    #[test]
    fn journaled_spec_roundtrips_and_is_validated() {
        let store = DatasetStore::new();
        let spec = AnonymizeSpec {
            model: Model::CombinedLocalFirst,
            epsilon: 2.5,
            eps_split: 0.25,
            m: 7,
            seed: 99,
            workers: 3,
            store_result: true,
            source: None,
            csv: std::sync::Arc::new("traj_id,x,y,t\n0,1.0,2.0,3\n".to_string()),
        };
        let v = spec_to_json(&spec);
        assert!(v.get("csv").is_some() && v.get("dataset").is_none());
        assert_eq!(spec_from_json(&v).unwrap().resolve(&store).unwrap(), spec);
        // A handle-backed spec journals the handle, not the text —
        // and re-resolution restores the identical bytes.
        let (handle, _) = store.insert("traj_id,x,y,t\n0,1.0,2.0,3\n".to_string()).unwrap();
        let mut by_handle = spec.clone();
        by_handle.source = Some(handle.clone());
        let v = spec_to_json(&by_handle);
        assert_eq!(v.get("dataset").and_then(Json::as_str), Some(handle.as_str()));
        assert!(v.get("csv").is_none(), "handle-backed spec must not re-record the CSV");
        let resolved = spec_from_json(&v).unwrap().resolve(&store).unwrap();
        assert_eq!(resolved.csv, spec.csv);
        assert_eq!(resolved.source, Some(handle));
        // Tampered journals fail re-validation.
        let mut bad = match spec_to_json(&spec) {
            Json::Obj(m) => m,
            _ => unreachable!(),
        };
        bad.insert("workers".to_string(), Json::from(0u64));
        assert!(spec_from_json(&Json::Obj(bad.clone())).is_err());
        bad.remove("workers");
        assert!(spec_from_json(&Json::Obj(bad)).unwrap_err().contains("workers"));
    }

    #[test]
    fn rejects_bad_requests() {
        assert!(parse_request("not json").is_err());
        assert!(parse_request(r#"{"nocmd":1}"#).is_err());
        assert!(parse_request(r#"{"cmd":"bogus"}"#).is_err());
        assert!(parse_request(r#"{"cmd":"anonymize","model":"zzz","csv":""}"#).is_err());
        assert!(parse_request(r#"{"cmd":"anonymize","model":"gl","epsilon":-1,"csv":""}"#).is_err());
        assert!(
            parse_request(r#"{"cmd":"anonymize","model":"gl","eps_split":0,"csv":""}"#).is_err()
        );
        assert!(
            parse_request(r#"{"cmd":"anonymize","model":"gl","eps_split":1,"csv":""}"#).is_err()
        );
        assert!(parse_request(r#"{"cmd":"status"}"#).is_err());
    }

    #[test]
    fn pure_models_spend_the_full_requested_epsilon() {
        assert_eq!(budget_split(Model::PureGlobal, 1.0, 0.5).0, 1.0);
        assert_eq!(budget_split(Model::PureLocal, 1.0, 0.5).1, 1.0);
        assert_eq!(budget_split(Model::Combined, 2.0, 0.25), (0.5, 1.5));
        // End to end: a pureg run reports ε spent = the requested total.
        let world = generate(&GeneratorConfig::tdrive_profile(4, 15, 2));
        let spec = AnonymizeSpec {
            model: Model::PureGlobal,
            epsilon: 1.0,
            eps_split: 0.5,
            m: 2,
            seed: 1,
            workers: 1,
            store_result: false,
            source: None,
            csv: std::sync::Arc::new(to_csv(&world.dataset)),
        };
        let out = run_anonymize(&spec);
        assert_eq!(out.get("epsilon_spent").and_then(Json::as_f64), Some(1.0), "{out}");
    }

    #[test]
    fn oversized_requests_are_rejected_at_parse_time() {
        // gen that would allocate billions of points.
        assert!(parse_request(r#"{"cmd":"gen","size":9007199254740991,"len":150}"#)
            .unwrap_err()
            .contains("points"));
        assert!(parse_request(r#"{"cmd":"gen","size":0,"len":10}"#).is_err());
        // anonymize with absurd m / workers.
        assert!(parse_request(r#"{"cmd":"anonymize","model":"gl","m":1000000,"csv":""}"#)
            .unwrap_err()
            .contains("m must"));
        assert!(parse_request(r#"{"cmd":"anonymize","model":"gl","m":0,"csv":""}"#).is_err());
        assert!(parse_request(r#"{"cmd":"anonymize","model":"gl","workers":100000,"csv":""}"#)
            .unwrap_err()
            .contains("workers"));
        // Seeds above 2^53 would silently lose precision in f64 transit.
        assert!(parse_request(r#"{"cmd":"gen","size":5,"len":10,"seed":9007199254740993}"#)
            .unwrap_err()
            .contains("2^53"));
    }

    #[test]
    fn eps_split_validation_bounds() {
        assert!(validate_eps_split(0.5).is_ok());
        assert!(validate_eps_split(1e-9).is_ok());
        assert!(validate_eps_split(0.0).is_err());
        assert!(validate_eps_split(1.0).is_err());
        assert!(validate_eps_split(-0.1).is_err());
        assert!(validate_eps_split(f64::NAN).is_err());
    }

    #[test]
    fn workers_validation_bounds() {
        assert_eq!(validate_workers(1), Ok(1));
        assert_eq!(validate_workers(MAX_WORKERS), Ok(MAX_WORKERS as usize));
        assert!(validate_workers(0).unwrap_err().contains("at least 1"));
        assert!(validate_workers(MAX_WORKERS + 1).unwrap_err().contains("exceed"));
        // Zero workers in a request must error, not clamp silently.
        assert!(parse_request(r#"{"cmd":"anonymize","model":"gl","workers":0,"csv":""}"#)
            .unwrap_err()
            .contains("workers"));
    }

    #[test]
    fn gen_anonymize_stats_roundtrip_inline() {
        let gen = run_gen(6, 30, 5);
        assert_eq!(gen.get("ok"), Some(&Json::Bool(true)));
        let csv = gen.get("csv").and_then(Json::as_str).unwrap().to_string();
        let spec = AnonymizeSpec {
            model: Model::Combined,
            epsilon: 1.0,
            eps_split: 0.5,
            m: 4,
            seed: 7,
            workers: 2,
            store_result: false,
            source: None,
            csv: std::sync::Arc::new(csv.clone()),
        };
        let anon = run_anonymize(&spec);
        assert_eq!(anon.get("ok"), Some(&Json::Bool(true)), "{anon}");
        let released = anon.get("csv").and_then(Json::as_str).unwrap();
        let eval = run_evaluate(&csv, released);
        assert_eq!(eval.get("ok"), Some(&Json::Bool(true)), "{eval}");
        assert!(eval.get("mi").and_then(Json::as_f64).is_some());
        let stats = run_stats(released);
        assert_eq!(stats.get("trajectories").and_then(Json::as_u64), Some(6));
    }

    #[test]
    fn handle_based_run_is_byte_identical_to_inline() {
        let store = DatasetStore::new();
        let gen = run_gen(5, 25, 8);
        let csv = gen.get("csv").and_then(Json::as_str).unwrap().to_string();

        // Stream the dataset through the chunked-upload handlers.
        let up = run_upload(&store);
        let id = up.get("dataset").and_then(Json::as_str).unwrap().to_string();
        for piece in csv.as_bytes().chunks(37) {
            let piece = std::str::from_utf8(piece).unwrap();
            assert_eq!(run_chunk(&store, &id, piece).get("ok"), Some(&Json::Bool(true)));
        }
        let committed = run_commit(&store, &id);
        assert_eq!(committed.get("bytes").and_then(Json::as_u64), Some(csv.len() as u64));

        let params = AnonymizeParams {
            model: Model::Combined,
            epsilon: 1.0,
            eps_split: 0.5,
            m: 3,
            seed: 17,
            workers: 2,
            store_result: false,
            data: DataRef::Handle(id.clone()),
        };
        let mut inline = params.clone();
        inline.data = DataRef::Inline(csv.clone());
        let by_handle = run_anonymize(&params.resolve(&store).unwrap());
        let by_inline = run_anonymize(&inline.resolve(&store).unwrap());
        assert_eq!(by_handle, by_inline, "handle-based run must match the inline run exactly");

        // `store` moves the result CSV behind a handle; downloading it
        // piecewise reassembles the identical bytes.
        let released = by_inline.get("csv").and_then(Json::as_str).unwrap().to_string();
        let stored = store_response_csv(by_handle, &store, false);
        assert!(stored.get("csv").is_none(), "{stored}");
        let result_id = stored.get("dataset").and_then(Json::as_str).unwrap().to_string();
        assert_eq!(stored.get("bytes").and_then(Json::as_u64), Some(released.len() as u64));
        let mut out = String::new();
        loop {
            let piece = run_download(&store, &result_id, out.len(), 53);
            assert_eq!(piece.get("ok"), Some(&Json::Bool(true)), "{piece}");
            out.push_str(piece.get("data").and_then(Json::as_str).unwrap());
            if piece.get("eof") == Some(&Json::Bool(true)) {
                break;
            }
        }
        assert_eq!(out, released, "chunked download must reassemble the inline release");
    }

    #[test]
    fn run_anonymize_reports_csv_errors() {
        let spec = AnonymizeSpec {
            model: Model::PureLocal,
            epsilon: 1.0,
            eps_split: 0.5,
            m: 2,
            seed: 1,
            workers: 1,
            store_result: false,
            source: None,
            csv: std::sync::Arc::new("complete garbage\nwith, too, many, commas, here".into()),
        };
        let out = run_anonymize(&spec);
        assert_eq!(out.get("ok"), Some(&Json::Bool(false)));
        assert!(out.get("error").is_some());
    }
}

//! The JSON-lines request/response protocol.
//!
//! One request object per line, one response object per line. Every
//! request carries a `"cmd"` member; datasets travel inline as CSV text
//! (the `trajdp_model::csv` interchange format) inside JSON strings.
//!
//! | cmd         | members                                                           |
//! |-------------|-------------------------------------------------------------------|
//! | `health`    | —                                                                 |
//! | `gen`       | `size`, `len`, `seed?`                                            |
//! | `anonymize` | `model`, `csv`, `epsilon?`, `eps_split?`, `m?`, `seed?`, `workers?`, `async?` |
//! | `evaluate`  | `original`, `anonymized` (CSV strings)                            |
//! | `stats`     | `csv`                                                             |
//! | `status`    | `job`                                                             |
//!
//! Responses always carry `"ok"` (`true`/`false`); failures add
//! `"error"`. An `anonymize` request with `"async": true` enqueues a job
//! and answers `{"ok":true,"job":"<id>","state":"queued"}` immediately;
//! `status` polls it and returns the finished result inline once done.

use crate::json::Json;
use trajdp_core::{FreqDpConfig, Model};
use trajdp_metrics::{
    diameter_divergence, frequent_pattern_f1, information_loss, mutual_information, trip_divergence,
};
use trajdp_model::csv::{from_csv, to_csv};
use trajdp_model::stats::DatasetStats;
use trajdp_synth::{generate, GeneratorConfig};

/// A fully validated anonymize request, ready to execute.
#[derive(Debug, Clone, PartialEq)]
pub struct AnonymizeSpec {
    /// Which published model to run.
    pub model: Model,
    /// Total privacy budget ε — the end-to-end guarantee of the run,
    /// whatever the model.
    pub epsilon: f64,
    /// Fraction of ε given to the global mechanism in combined models;
    /// pure models spend the whole ε on their single mechanism (see
    /// [`budget_split`]). Must lie strictly inside (0, 1).
    pub eps_split: f64,
    /// Signature size `m`.
    pub m: usize,
    /// Root RNG seed.
    pub seed: u64,
    /// Executor worker threads.
    pub workers: usize,
    /// The private dataset as CSV text.
    pub csv: String,
}

impl AnonymizeSpec {
    /// The derived core pipeline configuration.
    pub fn config(&self) -> FreqDpConfig {
        let (eps_global, eps_local) = budget_split(self.model, self.epsilon, self.eps_split);
        FreqDpConfig {
            m: self.m,
            eps_global,
            eps_local,
            seed: self.seed,
            workers: self.workers,
            ..Default::default()
        }
    }
}

/// Divides a **total** budget ε between the two mechanisms for a model.
///
/// Pure models give their single mechanism the whole ε — `epsilon` is
/// the end-to-end guarantee the caller asked for, not a pool to halve
/// when only one mechanism runs. Combined models split it by
/// `eps_split` (global share). The unused side of a pure model keeps
/// its nominal share; the pipeline never spends it.
pub fn budget_split(model: Model, epsilon: f64, eps_split: f64) -> (f64, f64) {
    match model {
        Model::PureGlobal => (epsilon, epsilon * (1.0 - eps_split)),
        Model::PureLocal => (epsilon * eps_split, epsilon),
        Model::Combined | Model::CombinedLocalFirst => {
            (epsilon * eps_split, epsilon * (1.0 - eps_split))
        }
    }
}

/// Caps on synthetic-generation and executor parameters: one request
/// must not be able to allocate unbounded memory or spawn unbounded
/// threads in a shared server process.
pub const MAX_GEN_POINTS: u64 = 20_000_000;
/// Upper bound on the signature size `m`.
pub const MAX_M: u64 = 100_000;
/// Upper bound on executor worker threads per request.
pub const MAX_WORKERS: u64 = 1_024;

/// A parsed protocol request.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Liveness probe.
    Health,
    /// Generate a synthetic dataset.
    Gen {
        /// Number of trajectories.
        size: usize,
        /// Points per trajectory.
        len: usize,
        /// Generator seed.
        seed: u64,
    },
    /// Anonymize a dataset; `asynchronous` requests become queued jobs.
    Anonymize {
        /// The validated parameters.
        spec: AnonymizeSpec,
        /// Whether to enqueue as a job instead of answering inline.
        asynchronous: bool,
    },
    /// Compare an anonymized dataset against its original.
    Evaluate {
        /// Original dataset CSV.
        original: String,
        /// Anonymized dataset CSV.
        anonymized: String,
    },
    /// Shape statistics of a dataset.
    Stats {
        /// Dataset CSV.
        csv: String,
    },
    /// Poll a queued job.
    Status {
        /// The job id returned by an async `anonymize`.
        job: String,
    },
}

/// Parses a model name as accepted by the CLI.
pub fn parse_model(name: &str) -> Result<Model, String> {
    match name {
        "pureg" => Ok(Model::PureGlobal),
        "purel" => Ok(Model::PureLocal),
        "gl" => Ok(Model::Combined),
        "lg" => Ok(Model::CombinedLocalFirst),
        other => Err(format!("unknown model {other:?} (pureg|purel|gl|lg)")),
    }
}

/// Validates an ε-split fraction: must lie strictly inside (0, 1).
pub fn validate_eps_split(split: f64) -> Result<f64, String> {
    if split.is_finite() && split > 0.0 && split < 1.0 {
        Ok(split)
    } else {
        Err(format!("--eps-split must lie in (0, 1), got {split}"))
    }
}

/// Validates a worker-thread count at the CLI/protocol boundary: must
/// lie in `[1, MAX_WORKERS]`. A zero count used to be clamped silently
/// deep inside the chunking helper; rejecting it here keeps the
/// contract visible, mirroring [`validate_eps_split`].
pub fn validate_workers(workers: u64) -> Result<usize, String> {
    if workers == 0 {
        Err("workers must be at least 1".into())
    } else if workers > MAX_WORKERS {
        Err(format!("workers must not exceed {MAX_WORKERS}"))
    } else {
        Ok(workers as usize)
    }
}

fn get_u64(v: &Json, key: &str, default: u64) -> Result<u64, String> {
    match v.get(key) {
        None => Ok(default),
        Some(j) => {
            j.as_u64().ok_or_else(|| format!("{key} must be a non-negative integer below 2^53"))
        }
    }
}

fn get_f64(v: &Json, key: &str, default: f64) -> Result<f64, String> {
    match v.get(key) {
        None => Ok(default),
        Some(j) => j.as_f64().ok_or_else(|| format!("{key} must be a number")),
    }
}

fn get_str<'a>(v: &'a Json, key: &str) -> Result<&'a str, String> {
    v.get(key).and_then(Json::as_str).ok_or_else(|| format!("missing string member {key:?}"))
}

/// Parses one request line.
pub fn parse_request(line: &str) -> Result<Request, String> {
    let v = crate::json::parse(line).map_err(|e| e.to_string())?;
    let cmd = get_str(&v, "cmd")?;
    match cmd {
        "health" => Ok(Request::Health),
        "gen" => {
            let size = get_u64(&v, "size", 200)?;
            let len = get_u64(&v, "len", 150)?;
            if size == 0 || len == 0 {
                return Err("size and len must be at least 1".into());
            }
            if size.saturating_mul(len) > MAX_GEN_POINTS {
                return Err(format!("size * len must not exceed {MAX_GEN_POINTS} points"));
            }
            Ok(Request::Gen {
                size: size as usize,
                len: len as usize,
                seed: get_u64(&v, "seed", 42)?,
            })
        }
        "anonymize" => {
            let model = parse_model(get_str(&v, "model")?)?;
            let epsilon = get_f64(&v, "epsilon", 1.0)?;
            if epsilon <= 0.0 || !epsilon.is_finite() {
                return Err("epsilon must be positive".into());
            }
            let eps_split = validate_eps_split(get_f64(&v, "eps_split", 0.5)?)?;
            let m = get_u64(&v, "m", 10)?;
            if m == 0 || m > MAX_M {
                return Err(format!("m must lie in [1, {MAX_M}]"));
            }
            let workers = validate_workers(get_u64(&v, "workers", 1)?)?;
            let spec = AnonymizeSpec {
                model,
                epsilon,
                eps_split,
                m: m as usize,
                seed: get_u64(&v, "seed", 42)?,
                workers,
                csv: get_str(&v, "csv")?.to_string(),
            };
            let asynchronous = v.get("async").and_then(Json::as_bool).unwrap_or(false);
            Ok(Request::Anonymize { spec, asynchronous })
        }
        "evaluate" => Ok(Request::Evaluate {
            original: get_str(&v, "original")?.to_string(),
            anonymized: get_str(&v, "anonymized")?.to_string(),
        }),
        "stats" => Ok(Request::Stats { csv: get_str(&v, "csv")?.to_string() }),
        "status" => Ok(Request::Status { job: get_str(&v, "job")?.to_string() }),
        other => Err(format!("unknown cmd {other:?}")),
    }
}

/// An error response.
pub fn error_response(message: &str) -> Json {
    Json::obj([("ok", Json::Bool(false)), ("error", Json::from(message))])
}

/// Executes a `gen` request.
pub fn run_gen(size: usize, len: usize, seed: u64) -> Json {
    let world = generate(&GeneratorConfig::tdrive_profile(size, len, seed));
    let stats = DatasetStats::compute(&world.dataset);
    Json::obj([
        ("ok", Json::Bool(true)),
        ("csv", Json::from(to_csv(&world.dataset))),
        ("trajectories", Json::from(stats.num_trajectories)),
        ("points", Json::from(stats.total_points)),
        ("distinct_locations", Json::from(stats.distinct_locations)),
    ])
}

/// Executes an `anonymize` request through the sharded executor.
pub fn run_anonymize(spec: &AnonymizeSpec) -> Json {
    let ds = match from_csv(&spec.csv) {
        Ok(ds) => ds,
        Err(e) => return error_response(&format!("cannot parse csv: {e}")),
    };
    let cfg = spec.config();
    match crate::executor::anonymize_parallel(&ds, spec.model, &cfg, spec.workers) {
        Ok(result) => Json::obj([
            ("ok", Json::Bool(true)),
            ("csv", Json::from(to_csv(&result.dataset))),
            ("epsilon_spent", Json::from(result.epsilon_spent)),
            ("edits", Json::from(result.total_edits())),
            ("utility_loss", Json::from(result.utility_loss())),
            ("workers", Json::from(spec.workers)),
        ]),
        Err(e) => error_response(&e.to_string()),
    }
}

/// Executes an `evaluate` request.
pub fn run_evaluate(original: &str, anonymized: &str) -> Json {
    let orig = match from_csv(original) {
        Ok(ds) => ds,
        Err(e) => return error_response(&format!("cannot parse original: {e}")),
    };
    let anon = match from_csv(anonymized) {
        Ok(ds) => ds,
        Err(e) => return error_response(&format!("cannot parse anonymized: {e}")),
    };
    if orig.len() != anon.len() {
        return error_response("datasets must contain the same number of trajectories");
    }
    Json::obj([
        ("ok", Json::Bool(true)),
        ("mi", Json::from(mutual_information(&orig, &anon, 64))),
        ("inf", Json::from(information_loss(&orig, &anon))),
        ("de", Json::from(diameter_divergence(&orig, &anon, 24))),
        ("te", Json::from(trip_divergence(&orig, &anon, 16))),
        ("ffp", Json::from(frequent_pattern_f1(&orig, &anon, 64, 2, 200))),
    ])
}

/// Executes a `stats` request.
pub fn run_stats(csv: &str) -> Json {
    let ds = match from_csv(csv) {
        Ok(ds) => ds,
        Err(e) => return error_response(&format!("cannot parse csv: {e}")),
    };
    let s = DatasetStats::compute(&ds);
    Json::obj([
        ("ok", Json::Bool(true)),
        ("trajectories", Json::from(s.num_trajectories)),
        ("points", Json::from(s.total_points)),
        ("distinct_locations", Json::from(s.distinct_locations)),
        ("avg_traj_len", Json::from(s.avg_traj_len)),
        ("avg_point_spacing", Json::from(s.avg_point_spacing)),
        ("avg_sampling_period", Json::from(s.avg_sampling_period)),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_all_commands() {
        assert_eq!(parse_request(r#"{"cmd":"health"}"#).unwrap(), Request::Health);
        assert_eq!(
            parse_request(r#"{"cmd":"gen","size":10,"len":20,"seed":3}"#).unwrap(),
            Request::Gen { size: 10, len: 20, seed: 3 }
        );
        let r = parse_request(
            r#"{"cmd":"anonymize","model":"gl","epsilon":2.0,"eps_split":0.25,"m":4,"seed":9,"workers":8,"csv":"traj_id,x,y,t\n"}"#,
        )
        .unwrap();
        match r {
            Request::Anonymize { spec, asynchronous } => {
                assert_eq!(spec.model, Model::Combined);
                assert_eq!(spec.epsilon, 2.0);
                assert_eq!(spec.eps_split, 0.25);
                assert_eq!(spec.m, 4);
                assert_eq!(spec.workers, 8);
                assert!(!asynchronous);
                let cfg = spec.config();
                assert!((cfg.eps_global - 0.5).abs() < 1e-12);
                assert!((cfg.eps_local - 1.5).abs() < 1e-12);
            }
            other => panic!("wrong request {other:?}"),
        }
        assert!(matches!(
            parse_request(r#"{"cmd":"status","job":"job-1"}"#).unwrap(),
            Request::Status { .. }
        ));
    }

    #[test]
    fn defaults_applied() {
        let r = parse_request(r#"{"cmd":"anonymize","model":"pureg","csv":""}"#).unwrap();
        match r {
            Request::Anonymize { spec, asynchronous } => {
                assert_eq!(spec.epsilon, 1.0);
                assert_eq!(spec.eps_split, 0.5);
                assert_eq!(spec.m, 10);
                assert_eq!(spec.seed, 42);
                assert_eq!(spec.workers, 1);
                assert!(!asynchronous);
            }
            other => panic!("wrong request {other:?}"),
        }
    }

    #[test]
    fn rejects_bad_requests() {
        assert!(parse_request("not json").is_err());
        assert!(parse_request(r#"{"nocmd":1}"#).is_err());
        assert!(parse_request(r#"{"cmd":"bogus"}"#).is_err());
        assert!(parse_request(r#"{"cmd":"anonymize","model":"zzz","csv":""}"#).is_err());
        assert!(parse_request(r#"{"cmd":"anonymize","model":"gl","epsilon":-1,"csv":""}"#).is_err());
        assert!(
            parse_request(r#"{"cmd":"anonymize","model":"gl","eps_split":0,"csv":""}"#).is_err()
        );
        assert!(
            parse_request(r#"{"cmd":"anonymize","model":"gl","eps_split":1,"csv":""}"#).is_err()
        );
        assert!(parse_request(r#"{"cmd":"status"}"#).is_err());
    }

    #[test]
    fn pure_models_spend_the_full_requested_epsilon() {
        assert_eq!(budget_split(Model::PureGlobal, 1.0, 0.5).0, 1.0);
        assert_eq!(budget_split(Model::PureLocal, 1.0, 0.5).1, 1.0);
        assert_eq!(budget_split(Model::Combined, 2.0, 0.25), (0.5, 1.5));
        // End to end: a pureg run reports ε spent = the requested total.
        let world = generate(&GeneratorConfig::tdrive_profile(4, 15, 2));
        let spec = AnonymizeSpec {
            model: Model::PureGlobal,
            epsilon: 1.0,
            eps_split: 0.5,
            m: 2,
            seed: 1,
            workers: 1,
            csv: to_csv(&world.dataset),
        };
        let out = run_anonymize(&spec);
        assert_eq!(out.get("epsilon_spent").and_then(Json::as_f64), Some(1.0), "{out}");
    }

    #[test]
    fn oversized_requests_are_rejected_at_parse_time() {
        // gen that would allocate billions of points.
        assert!(parse_request(r#"{"cmd":"gen","size":9007199254740991,"len":150}"#)
            .unwrap_err()
            .contains("points"));
        assert!(parse_request(r#"{"cmd":"gen","size":0,"len":10}"#).is_err());
        // anonymize with absurd m / workers.
        assert!(parse_request(r#"{"cmd":"anonymize","model":"gl","m":1000000,"csv":""}"#)
            .unwrap_err()
            .contains("m must"));
        assert!(parse_request(r#"{"cmd":"anonymize","model":"gl","m":0,"csv":""}"#).is_err());
        assert!(parse_request(r#"{"cmd":"anonymize","model":"gl","workers":100000,"csv":""}"#)
            .unwrap_err()
            .contains("workers"));
        // Seeds above 2^53 would silently lose precision in f64 transit.
        assert!(parse_request(r#"{"cmd":"gen","size":5,"len":10,"seed":9007199254740993}"#)
            .unwrap_err()
            .contains("2^53"));
    }

    #[test]
    fn eps_split_validation_bounds() {
        assert!(validate_eps_split(0.5).is_ok());
        assert!(validate_eps_split(1e-9).is_ok());
        assert!(validate_eps_split(0.0).is_err());
        assert!(validate_eps_split(1.0).is_err());
        assert!(validate_eps_split(-0.1).is_err());
        assert!(validate_eps_split(f64::NAN).is_err());
    }

    #[test]
    fn workers_validation_bounds() {
        assert_eq!(validate_workers(1), Ok(1));
        assert_eq!(validate_workers(MAX_WORKERS), Ok(MAX_WORKERS as usize));
        assert!(validate_workers(0).unwrap_err().contains("at least 1"));
        assert!(validate_workers(MAX_WORKERS + 1).unwrap_err().contains("exceed"));
        // Zero workers in a request must error, not clamp silently.
        assert!(parse_request(r#"{"cmd":"anonymize","model":"gl","workers":0,"csv":""}"#)
            .unwrap_err()
            .contains("workers"));
    }

    #[test]
    fn gen_anonymize_stats_roundtrip_inline() {
        let gen = run_gen(6, 30, 5);
        assert_eq!(gen.get("ok"), Some(&Json::Bool(true)));
        let csv = gen.get("csv").and_then(Json::as_str).unwrap().to_string();
        let spec = AnonymizeSpec {
            model: Model::Combined,
            epsilon: 1.0,
            eps_split: 0.5,
            m: 4,
            seed: 7,
            workers: 2,
            csv: csv.clone(),
        };
        let anon = run_anonymize(&spec);
        assert_eq!(anon.get("ok"), Some(&Json::Bool(true)), "{anon}");
        let released = anon.get("csv").and_then(Json::as_str).unwrap();
        let eval = run_evaluate(&csv, released);
        assert_eq!(eval.get("ok"), Some(&Json::Bool(true)), "{eval}");
        assert!(eval.get("mi").and_then(Json::as_f64).is_some());
        let stats = run_stats(released);
        assert_eq!(stats.get("trajectories").and_then(Json::as_u64), Some(6));
    }

    #[test]
    fn run_anonymize_reports_csv_errors() {
        let spec = AnonymizeSpec {
            model: Model::PureLocal,
            epsilon: 1.0,
            eps_split: 0.5,
            m: 2,
            seed: 1,
            workers: 1,
            csv: "complete garbage\nwith, too, many, commas, here".into(),
        };
        let out = run_anonymize(&spec);
        assert_eq!(out.get("ok"), Some(&Json::Bool(false)));
        assert!(out.get("error").is_some());
    }
}

//! The JSON-lines request/response protocol.
//!
//! One request object per line, one response object per line. Every
//! request carries a `"cmd"` member; datasets travel either inline as
//! CSV text (the `trajdp_model::csv` interchange format) inside JSON
//! strings, or by reference to a server-side handle (`ds-<id>`) built
//! up with the chunked-transfer commands.
//!
//! | cmd         | members                                                           |
//! |-------------|-------------------------------------------------------------------|
//! | `health`    | —                                                                 |
//! | `info`      | — (server version, protocol versions, limits, uptime)             |
//! | `metrics`   | — (observability snapshot: counters, gauges, histograms)          |
//! | `gen`       | `size?`, `len?`, `seed?`, `store?`                                |
//! | `anonymize` | `model`, `csv` \| `dataset`, `epsilon?`, `eps_split?`, `m?`, `seed?`, `workers?`, `async?`, `store?` |
//! | `evaluate`  | `original` \| `original_dataset`, `anonymized` \| `anonymized_dataset` |
//! | `stats`     | `csv` \| `dataset`                                                |
//! | `status`    | `job`                                                             |
//! | `upload`    | — (answers with a fresh pending `dataset` handle)                 |
//! | `chunk`     | `dataset`, `data` (appends one piece)                             |
//! | `commit`    | `dataset` (seals the handle for use)                              |
//! | `download`  | `dataset`, `offset?`, `max_bytes?` (one bounded piece back)       |
//! | `delete`    | `dataset` (frees the handle; rejected while a job pins it)        |
//! | `list`      | — (all jobs and dataset handles)                                  |
//!
//! Besides its verb members, every request may carry the envelope
//! members `"v"` (protocol version, `1` or `2`; absent means 1) and —
//! with `"v": 2` — an opaque `"id"` echoed in the response for
//! correlation. Unknown members are rejected by name — a misspelled
//! `"epsilom"` must fail loudly, never run with the default (the same
//! contract the CLI enforces on flags).
//!
//! Responses always carry `"ok"` (`true`/`false`); failures add
//! `"error"` — a bare message string in v1, a
//! `{"code","message"}` object with a stable [`crate::api::ErrorCode`]
//! in v2 (see [`crate::api`] for the envelope contract). An `anonymize`
//! request with `"async": true` enqueues a job and answers
//! `{"ok":true,"job":"<id>","state":"queued"}` immediately; `status`
//! polls it and returns the finished result once done. `"store": true`
//! on `gen`/`anonymize` keeps the produced CSV server-side and answers
//! with its `dataset` handle (for `download`) instead of the inline
//! text.

use crate::api::{ApiError, Envelope, Payload, ProtocolVersion, Response};
use crate::json::Json;
use crate::store::{DatasetStore, DEFAULT_DOWNLOAD_CHUNK_BYTES};
use trajdp_core::{FreqDpConfig, Model};
use trajdp_metrics::{
    diameter_divergence, frequent_pattern_f1, information_loss, mutual_information, trip_divergence,
};
use trajdp_model::csv::{from_csv, to_csv};
use trajdp_model::stats::DatasetStats;
use trajdp_synth::{generate, GeneratorConfig};

/// Dataset input of a request: inline CSV text or a committed
/// server-side handle from the chunked-upload commands.
#[derive(Debug, Clone, PartialEq)]
pub enum DataRef {
    /// CSV text shipped inside the request line.
    Inline(String),
    /// A `ds-<id>` handle minted by `upload` and sealed by `commit`.
    Handle(String),
}

impl DataRef {
    /// The full CSV text, fetching handles from the store without
    /// deep-copying them (committed handles are immutable, so sharing
    /// the `Arc` is safe — a multi-GB handle must not double peak
    /// memory on resolution). Resolution happens once, at dispatch
    /// time, so a job owns its data: restarting the store after submit
    /// cannot change what a queued job computes.
    pub fn resolve_shared(self, store: &DatasetStore) -> Result<std::sync::Arc<String>, ApiError> {
        match self {
            DataRef::Inline(csv) => Ok(std::sync::Arc::new(csv)),
            DataRef::Handle(id) => store.resolve(&id),
        }
    }
}

/// A fully validated anonymize request, ready to execute.
#[derive(Debug, Clone, PartialEq)]
pub struct AnonymizeSpec {
    /// Which published model to run.
    pub model: Model,
    /// Total privacy budget ε — the end-to-end guarantee of the run,
    /// whatever the model.
    pub epsilon: f64,
    /// Fraction of ε given to the global mechanism in combined models;
    /// pure models spend the whole ε on their single mechanism (see
    /// [`budget_split`]). Must lie strictly inside (0, 1).
    pub eps_split: f64,
    /// Signature size `m`.
    pub m: usize,
    /// Root RNG seed.
    pub seed: u64,
    /// Executor worker threads.
    pub workers: usize,
    /// Keep the released CSV server-side (answer with a `dataset`
    /// handle for chunked download) instead of inlining it.
    pub store_result: bool,
    /// The store handle the dataset was resolved from, when it came by
    /// reference. The job journal records this id instead of the
    /// resolved text (the handle's bytes are already durable in the
    /// store), and the queue pins it while the job is queued/running so
    /// neither `delete` nor eviction can yank the data a replay needs.
    pub source: Option<String>,
    /// The private dataset as CSV text — shared, not owned, so a
    /// handle-based spec aliases the store's copy instead of
    /// duplicating it.
    pub csv: std::sync::Arc<String>,
}

/// A parsed anonymize request whose dataset may still be a handle;
/// [`AnonymizeParams::resolve`] turns it into an executable
/// [`AnonymizeSpec`].
#[derive(Debug, Clone, PartialEq)]
pub struct AnonymizeParams {
    /// Which published model to run.
    pub model: Model,
    /// Total privacy budget ε.
    pub epsilon: f64,
    /// Global-share fraction of ε for combined models.
    pub eps_split: f64,
    /// Signature size `m`.
    pub m: usize,
    /// Root RNG seed.
    pub seed: u64,
    /// Executor worker threads.
    pub workers: usize,
    /// Keep the released CSV server-side.
    pub store_result: bool,
    /// The private dataset, inline or by handle.
    pub data: DataRef,
}

impl AnonymizeParams {
    /// Resolves the dataset reference against the store. A handle-based
    /// run is byte-identical to the inline run because both paths feed
    /// the exact same CSV text to the executor.
    pub fn resolve(self, store: &DatasetStore) -> Result<AnonymizeSpec, ApiError> {
        let source = match &self.data {
            DataRef::Handle(id) => Some(id.clone()),
            DataRef::Inline(_) => None,
        };
        Ok(AnonymizeSpec {
            model: self.model,
            epsilon: self.epsilon,
            eps_split: self.eps_split,
            m: self.m,
            seed: self.seed,
            workers: self.workers,
            store_result: self.store_result,
            source,
            csv: self.data.resolve_shared(store)?,
        })
    }
}

impl AnonymizeSpec {
    /// The derived core pipeline configuration.
    pub fn config(&self) -> FreqDpConfig {
        let (eps_global, eps_local) = budget_split(self.model, self.epsilon, self.eps_split);
        FreqDpConfig {
            m: self.m,
            eps_global,
            eps_local,
            seed: self.seed,
            workers: self.workers,
            ..Default::default()
        }
    }
}

/// Divides a **total** budget ε between the two mechanisms for a model.
///
/// Pure models give their single mechanism the whole ε — `epsilon` is
/// the end-to-end guarantee the caller asked for, not a pool to halve
/// when only one mechanism runs. Combined models split it by
/// `eps_split` (global share). The unused side of a pure model keeps
/// its nominal share; the pipeline never spends it.
pub fn budget_split(model: Model, epsilon: f64, eps_split: f64) -> (f64, f64) {
    match model {
        Model::PureGlobal => (epsilon, epsilon * (1.0 - eps_split)),
        Model::PureLocal => (epsilon * eps_split, epsilon),
        Model::Combined | Model::CombinedLocalFirst => {
            (epsilon * eps_split, epsilon * (1.0 - eps_split))
        }
    }
}

/// Caps on synthetic-generation and executor parameters: one request
/// must not be able to allocate unbounded memory or spawn unbounded
/// threads in a shared server process.
pub const MAX_GEN_POINTS: u64 = 20_000_000;
/// Upper bound on the signature size `m`.
pub const MAX_M: u64 = 100_000;
/// Upper bound on executor worker threads per request.
pub const MAX_WORKERS: u64 = 1_024;

/// A parsed protocol request.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Liveness probe.
    Health,
    /// Server identity, supported protocol versions, and limits.
    Info,
    /// Snapshot of the observability registry (counters, gauges,
    /// latency histograms).
    Metrics,
    /// Generate a synthetic dataset.
    Gen {
        /// Number of trajectories.
        size: usize,
        /// Points per trajectory.
        len: usize,
        /// Generator seed.
        seed: u64,
        /// Keep the generated CSV server-side as a dataset handle.
        store_result: bool,
    },
    /// Anonymize a dataset; `asynchronous` requests become queued jobs.
    Anonymize {
        /// The validated parameters (dataset possibly still a handle).
        params: AnonymizeParams,
        /// Whether to enqueue as a job instead of answering inline.
        asynchronous: bool,
    },
    /// Compare an anonymized dataset against its original.
    Evaluate {
        /// Original dataset.
        original: DataRef,
        /// Anonymized dataset.
        anonymized: DataRef,
    },
    /// Shape statistics of a dataset.
    Stats {
        /// The dataset.
        data: DataRef,
    },
    /// Poll a queued job.
    Status {
        /// The job id returned by an async `anonymize`.
        job: String,
    },
    /// Dequeue a not-yet-running job. Running jobs are not preempted.
    Cancel {
        /// The job id returned by an async `anonymize`.
        job: String,
    },
    /// Open a pending dataset handle for chunked upload.
    Upload {
        /// Privacy budget for the dataset being uploaded; overrides
        /// the server's `--eps-budget` default for this handle.
        eps_budget: Option<f64>,
    },
    /// Append one piece to a pending dataset handle.
    Chunk {
        /// The pending handle.
        dataset: String,
        /// The piece to append.
        data: String,
    },
    /// Seal a pending dataset handle.
    Commit {
        /// The pending handle.
        dataset: String,
    },
    /// Read one bounded piece of a committed dataset.
    Download {
        /// The committed handle.
        dataset: String,
        /// Byte offset to read from (a boundary handed out by a
        /// previous piece).
        offset: usize,
        /// Upper bound on the piece size.
        max_bytes: usize,
    },
    /// Free a dataset handle (pending or committed). Rejected with a
    /// distinct error while a queued/running job pins the handle.
    Delete {
        /// The handle to free.
        dataset: String,
    },
    /// Enumerate all jobs and dataset handles.
    List,
}

/// Parses a model name as accepted by the CLI.
pub fn parse_model(name: &str) -> Result<Model, ApiError> {
    match name {
        "pureg" => Ok(Model::PureGlobal),
        "purel" => Ok(Model::PureLocal),
        "gl" => Ok(Model::Combined),
        "lg" => Ok(Model::CombinedLocalFirst),
        other => Err(ApiError::bad_request(format!("unknown model {other:?} (pureg|purel|gl|lg)"))),
    }
}

/// Validates an ε-split fraction: must lie strictly inside (0, 1).
pub fn validate_eps_split(split: f64) -> Result<f64, ApiError> {
    if split.is_finite() && split > 0.0 && split < 1.0 {
        Ok(split)
    } else {
        Err(ApiError::bad_request(format!("--eps-split must lie in (0, 1), got {split}")))
    }
}

/// Validates a worker-thread count at the CLI/protocol boundary: must
/// lie in `[1, MAX_WORKERS]`. A zero count used to be clamped silently
/// deep inside the chunking helper; rejecting it here keeps the
/// contract visible, mirroring [`validate_eps_split`].
pub fn validate_workers(workers: u64) -> Result<usize, ApiError> {
    if workers == 0 {
        Err(ApiError::bad_request("workers must be at least 1"))
    } else if workers > MAX_WORKERS {
        Err(ApiError::bad_request(format!("workers must not exceed {MAX_WORKERS}")))
    } else {
        Ok(workers as usize)
    }
}

fn get_u64(v: &Json, key: &str, default: u64) -> Result<u64, ApiError> {
    match v.get(key) {
        None => Ok(default),
        Some(j) => j.as_u64().ok_or_else(|| {
            ApiError::bad_request(format!("{key} must be a non-negative integer below 2^53"))
        }),
    }
}

fn get_f64(v: &Json, key: &str, default: f64) -> Result<f64, ApiError> {
    match v.get(key) {
        None => Ok(default),
        Some(j) => {
            j.as_f64().ok_or_else(|| ApiError::bad_request(format!("{key} must be a number")))
        }
    }
}

fn get_bool(v: &Json, key: &str, default: bool) -> Result<bool, ApiError> {
    // A non-bool value (`"async": 1`, `"async": "true"`) must be an
    // error: falling back to the default would silently run a
    // potentially huge job with the wrong mode.
    match v.get(key) {
        None => Ok(default),
        Some(j) => j.as_bool().ok_or_else(|| {
            ApiError::bad_request(format!("{key} must be a boolean (true or false)"))
        }),
    }
}

fn get_str<'a>(v: &'a Json, key: &str) -> Result<&'a str, ApiError> {
    v.get(key)
        .and_then(Json::as_str)
        .ok_or_else(|| ApiError::bad_request(format!("missing string member {key:?}")))
}

/// Rejects members outside the command's accepted set by name — a
/// misspelled `"epsilom"` or `"worker"` must never be silently ignored
/// and run with the default (the bug class the CLI's strict flag parser
/// already kills for flags). The envelope members `"v"`, `"id"`, and
/// `"tenant"` are accepted on every command, like `"cmd"` itself.
fn check_members(v: &Json, cmd: &str, accepted: &[&str]) -> Result<(), ApiError> {
    if let Json::Obj(map) = v {
        for key in map.keys() {
            if key != "cmd"
                && key != "v"
                && key != "id"
                && key != "tenant"
                && !accepted.contains(&key.as_str())
            {
                let list = if accepted.is_empty() {
                    "none besides \"cmd\"".to_string()
                } else {
                    accepted.iter().map(|m| format!("{m:?}")).collect::<Vec<_>>().join(", ")
                };
                return Err(ApiError::bad_request(format!(
                    "unknown member {key:?} for cmd {cmd:?} (accepted: {list})"
                )));
            }
        }
    }
    Ok(())
}

/// Reads a dataset given either inline (`inline_key`) or by handle
/// (`handle_key`); exactly one of the two must be present.
fn get_data_ref(v: &Json, inline_key: &str, handle_key: &str) -> Result<DataRef, ApiError> {
    let want_str = |j: &Json, key: &str| {
        j.as_str()
            .map(str::to_string)
            .ok_or_else(|| ApiError::bad_request(format!("{key} must be a string")))
    };
    match (v.get(inline_key), v.get(handle_key)) {
        (Some(_), Some(_)) => Err(ApiError::bad_request(format!(
            "members {inline_key:?} and {handle_key:?} are mutually exclusive"
        ))),
        (Some(j), None) => Ok(DataRef::Inline(want_str(j, inline_key)?)),
        (None, Some(j)) => Ok(DataRef::Handle(want_str(j, handle_key)?)),
        (None, None) => {
            Err(ApiError::bad_request(format!("missing member {inline_key:?} or {handle_key:?}")))
        }
    }
}

/// Parses one request line into its envelope (protocol version +
/// correlation id) and verb. The envelope is always returned — even
/// when the verb fails to validate, the error must be rendered in the
/// shape the client asked for. Only a line that does not parse as JSON
/// at all (or one with an unusable `"v"`) falls back to the v1 shape.
pub fn parse_request_line(line: &str) -> (Envelope, Result<Request, ApiError>) {
    let v = match crate::json::parse(line) {
        Ok(v) => v,
        Err(e) => return (Envelope::V1, Err(ApiError::bad_request(e.to_string()))),
    };
    let version = match v.get("v") {
        None => ProtocolVersion::V1,
        Some(j) => match j.as_u64() {
            Some(1) => ProtocolVersion::V1,
            Some(2) => ProtocolVersion::V2,
            _ => {
                return (
                    Envelope::V1,
                    Err(ApiError::bad_request("v must be a supported protocol version (1 or 2)")),
                )
            }
        },
    };
    let mut envelope = Envelope { version, id: None, tenant: None };
    match v.get("id") {
        None => {}
        Some(Json::Str(s)) if version == ProtocolVersion::V2 => envelope.id = Some(s.clone()),
        Some(Json::Str(_)) => {
            // An id on a version-less request would be silently dropped
            // (v1 response shapes are frozen and carry no id) — reject
            // instead, so the client learns its correlation id is not
            // coming back.
            return (envelope, Err(ApiError::bad_request("member \"id\" requires \"v\": 2")));
        }
        Some(_) => return (envelope, Err(ApiError::bad_request("id must be a string"))),
    }
    match v.get("tenant") {
        None => {}
        Some(Json::Str(s)) if version == ProtocolVersion::V2 => envelope.tenant = Some(s.clone()),
        Some(Json::Str(_)) => {
            // Same reasoning as `id`: a tenant credential on a v1
            // request would be silently ignored (and the request
            // accounted to the default tenant) — reject instead.
            return (envelope, Err(ApiError::bad_request("member \"tenant\" requires \"v\": 2")));
        }
        Some(_) => return (envelope, Err(ApiError::bad_request("tenant must be a string"))),
    }
    (envelope, parse_verb(&v))
}

/// Parses just the verb of one request line, ignoring the envelope —
/// the convenient form for tests and single-shot callers.
pub fn parse_request(line: &str) -> Result<Request, ApiError> {
    parse_request_line(line).1
}

fn parse_verb(v: &Json) -> Result<Request, ApiError> {
    let cmd = get_str(v, "cmd")?;
    match cmd {
        "health" => {
            check_members(v, cmd, &[])?;
            Ok(Request::Health)
        }
        "info" => {
            check_members(v, cmd, &[])?;
            Ok(Request::Info)
        }
        "metrics" => {
            check_members(v, cmd, &[])?;
            Ok(Request::Metrics)
        }
        "gen" => {
            check_members(v, cmd, &["size", "len", "seed", "store"])?;
            let size = get_u64(v, "size", 200)?;
            let len = get_u64(v, "len", 150)?;
            if size == 0 || len == 0 {
                return Err(ApiError::bad_request("size and len must be at least 1"));
            }
            if size.saturating_mul(len) > MAX_GEN_POINTS {
                return Err(ApiError::bad_request(format!(
                    "size * len must not exceed {MAX_GEN_POINTS} points"
                )));
            }
            Ok(Request::Gen {
                size: size as usize,
                len: len as usize,
                seed: get_u64(v, "seed", 42)?,
                store_result: get_bool(v, "store", false)?,
            })
        }
        "anonymize" => {
            check_members(
                v,
                cmd,
                &[
                    "model",
                    "csv",
                    "dataset",
                    "epsilon",
                    "eps_split",
                    "m",
                    "seed",
                    "workers",
                    "async",
                    "store",
                ],
            )?;
            let model = parse_model(get_str(v, "model")?)?;
            let epsilon = get_f64(v, "epsilon", 1.0)?;
            if epsilon <= 0.0 || !epsilon.is_finite() {
                return Err(ApiError::bad_request("epsilon must be positive"));
            }
            let eps_split = validate_eps_split(get_f64(v, "eps_split", 0.5)?)?;
            let m = get_u64(v, "m", 10)?;
            if m == 0 || m > MAX_M {
                return Err(ApiError::bad_request(format!("m must lie in [1, {MAX_M}]")));
            }
            let workers = validate_workers(get_u64(v, "workers", 1)?)?;
            let params = AnonymizeParams {
                model,
                epsilon,
                eps_split,
                m: m as usize,
                seed: get_u64(v, "seed", 42)?,
                workers,
                store_result: get_bool(v, "store", false)?,
                data: get_data_ref(v, "csv", "dataset")?,
            };
            let asynchronous = get_bool(v, "async", false)?;
            Ok(Request::Anonymize { params, asynchronous })
        }
        "evaluate" => {
            check_members(
                v,
                cmd,
                &["original", "anonymized", "original_dataset", "anonymized_dataset"],
            )?;
            Ok(Request::Evaluate {
                original: get_data_ref(v, "original", "original_dataset")?,
                anonymized: get_data_ref(v, "anonymized", "anonymized_dataset")?,
            })
        }
        "stats" => {
            check_members(v, cmd, &["csv", "dataset"])?;
            Ok(Request::Stats { data: get_data_ref(v, "csv", "dataset")? })
        }
        "status" => {
            check_members(v, cmd, &["job"])?;
            Ok(Request::Status { job: get_str(v, "job")?.to_string() })
        }
        "cancel" => {
            check_members(v, cmd, &["job"])?;
            Ok(Request::Cancel { job: get_str(v, "job")?.to_string() })
        }
        "upload" => {
            check_members(v, cmd, &["eps_budget"])?;
            let eps_budget = match v.get("eps_budget") {
                None => None,
                Some(j) => {
                    let b = j
                        .as_f64()
                        .ok_or_else(|| ApiError::bad_request("eps_budget must be a number"))?;
                    if !b.is_finite() || b <= 0.0 {
                        return Err(ApiError::bad_request("eps_budget must be positive"));
                    }
                    Some(b)
                }
            };
            Ok(Request::Upload { eps_budget })
        }
        "chunk" => {
            check_members(v, cmd, &["dataset", "data"])?;
            Ok(Request::Chunk {
                dataset: get_str(v, "dataset")?.to_string(),
                data: get_str(v, "data")?.to_string(),
            })
        }
        "commit" => {
            check_members(v, cmd, &["dataset"])?;
            Ok(Request::Commit { dataset: get_str(v, "dataset")?.to_string() })
        }
        "download" => {
            check_members(v, cmd, &["dataset", "offset", "max_bytes"])?;
            let max_bytes = get_u64(v, "max_bytes", DEFAULT_DOWNLOAD_CHUNK_BYTES as u64)?;
            if max_bytes == 0 {
                return Err(ApiError::bad_request("max_bytes must be at least 1"));
            }
            Ok(Request::Download {
                dataset: get_str(v, "dataset")?.to_string(),
                offset: get_u64(v, "offset", 0)? as usize,
                max_bytes: max_bytes as usize,
            })
        }
        "delete" => {
            check_members(v, cmd, &["dataset"])?;
            Ok(Request::Delete { dataset: get_str(v, "dataset")?.to_string() })
        }
        "list" => {
            check_members(v, cmd, &[])?;
            Ok(Request::List)
        }
        other => Err(ApiError::unknown_verb(format!("unknown cmd {other:?}"))),
    }
}

/// Protocol/CLI name of a model — inverse of [`parse_model`].
pub fn model_name(model: Model) -> &'static str {
    match model {
        Model::PureGlobal => "pureg",
        Model::PureLocal => "purel",
        Model::Combined => "gl",
        Model::CombinedLocalFirst => "lg",
    }
}

/// Serializes a spec for the job journal — inverse of
/// [`spec_from_json`]. A spec resolved from a store handle journals the
/// handle id (`"dataset"`), not the resolved CSV: the bytes are already
/// durable in the store and pinned for the job's lifetime, so
/// re-recording megabytes of text per submit would only bloat the
/// journal and slow every restart.
pub fn spec_to_json(spec: &AnonymizeSpec) -> Json {
    let mut obj = match Json::obj([
        ("model", Json::from(model_name(spec.model))),
        ("epsilon", Json::from(spec.epsilon)),
        ("eps_split", Json::from(spec.eps_split)),
        ("m", Json::from(spec.m)),
        ("seed", Json::from(spec.seed)),
        ("workers", Json::from(spec.workers)),
        ("store", Json::from(spec.store_result)),
    ]) {
        Json::Obj(m) => m,
        // PANIC: `Json::obj` returns the `Obj` variant by construction.
        _ => unreachable!(),
    };
    match &spec.source {
        Some(handle) => obj.insert("dataset".to_string(), Json::from(handle.clone())),
        None => obj.insert("csv".to_string(), Json::from(spec.csv.as_str())),
    };
    Json::Obj(obj)
}

/// Deserializes a journaled spec, re-validating every field: a replayed
/// job must satisfy the same contracts a live request does, so a
/// corrupted or hand-edited journal fails loudly instead of executing
/// out-of-contract work. Returns unresolved [`AnonymizeParams`]: a
/// handle-backed spec is re-resolved against the store only when the
/// job actually re-queues — a job that also has a journaled finish
/// never touches the store, so deleting its input after it finished
/// cannot brick replay.
pub fn spec_from_json(v: &Json) -> Result<AnonymizeParams, ApiError> {
    let require = |key: &str| {
        v.get(key).ok_or_else(|| {
            ApiError::bad_request(format!("journaled spec is missing member {key:?}"))
        })
    };
    let want = |msg: &str| ApiError::bad_request(msg);
    let model = parse_model(get_str(v, "model")?)?;
    let epsilon = require("epsilon")?.as_f64().ok_or_else(|| want("epsilon must be a number"))?;
    if epsilon <= 0.0 || !epsilon.is_finite() {
        return Err(ApiError::bad_request("epsilon must be positive"));
    }
    let eps_split = validate_eps_split(
        require("eps_split")?.as_f64().ok_or_else(|| want("eps_split must be a number"))?,
    )?;
    let m = require("m")?.as_u64().ok_or_else(|| want("m must be a non-negative integer"))?;
    if m == 0 || m > MAX_M {
        return Err(ApiError::bad_request(format!("m must lie in [1, {MAX_M}]")));
    }
    let workers = validate_workers(
        require("workers")?.as_u64().ok_or_else(|| want("workers must be an integer"))?,
    )?;
    Ok(AnonymizeParams {
        model,
        epsilon,
        eps_split,
        m: m as usize,
        seed: require("seed")?
            .as_u64()
            .ok_or_else(|| want("seed must be a non-negative integer"))?,
        workers,
        store_result: require("store")?.as_bool().ok_or_else(|| want("store must be a boolean"))?,
        data: get_data_ref(v, "csv", "dataset")?,
    })
}

/// Moves an inline result payload of a `gen`/`anonymize` response into
/// the dataset store, so the response answers with a `dataset` handle
/// and its byte size instead of the inline text. A full store turns
/// the outcome into an error (the computed result would otherwise be
/// silently dropped) — with the underlying code preserved. `from_job`
/// marks results minted by async jobs, whose handles are reconciled
/// against the replayed journal at startup (a synchronous `store:true`
/// response has no journal record, so its handle must never be treated
/// as an orphan).
pub fn store_result(
    response: Response,
    store: &DatasetStore,
    from_job: bool,
) -> Result<Response, ApiError> {
    let mut response = response;
    if let Response::Gen { data, .. } | Response::Anonymize { data, .. } = &mut response {
        if let Payload::Inline(csv) = data {
            let csv = std::mem::take(csv);
            let (dataset, bytes) = store
                .insert_with_provenance(csv, from_job)
                .map_err(|e| e.context("cannot store result"))?;
            *data = Payload::Stored { dataset, bytes };
        }
    }
    Ok(response)
}

/// Executes an `upload` request: opens a pending dataset handle.
pub fn run_upload(store: &DatasetStore) -> Result<Response, ApiError> {
    store.begin().map(|dataset| Response::Upload { dataset })
}

/// Executes a `chunk` request: appends one piece to a pending handle.
pub fn run_chunk(store: &DatasetStore, dataset: &str, data: &str) -> Result<Response, ApiError> {
    store.append(dataset, data).map(|bytes| Response::Chunk { dataset: dataset.to_string(), bytes })
}

/// Executes a `commit` request: seals a pending handle.
pub fn run_commit(store: &DatasetStore, dataset: &str) -> Result<Response, ApiError> {
    store.commit(dataset).map(|bytes| Response::Commit { dataset: dataset.to_string(), bytes })
}

/// Executes a `download` request: one bounded piece of a committed
/// dataset.
pub fn run_download(
    store: &DatasetStore,
    dataset: &str,
    offset: usize,
    max_bytes: usize,
) -> Result<Response, ApiError> {
    store.read_chunk(dataset, offset, max_bytes).map(|(piece, total, eof)| Response::Download {
        dataset: dataset.to_string(),
        offset,
        data: piece,
        total_bytes: total,
        eof,
    })
}

/// Executes a `delete` request: frees a handle (and its persisted
/// file). A handle pinned by a queued/running job answers a distinct
/// [`crate::api::ErrorCode::DatasetInUse`] error instead of yanking the
/// job's data.
pub fn run_delete(store: &DatasetStore, dataset: &str) -> Result<Response, ApiError> {
    store.delete(dataset).map(|bytes| Response::Delete { dataset: dataset.to_string(), bytes })
}

/// Executes a `gen` request (infallible: parameters were validated at
/// parse time).
pub fn run_gen(size: usize, len: usize, seed: u64) -> Response {
    let world = generate(&GeneratorConfig::tdrive_profile(size, len, seed));
    let stats = DatasetStats::compute(&world.dataset);
    Response::Gen {
        data: Payload::Inline(to_csv(&world.dataset)),
        trajectories: stats.num_trajectories as u64,
        points: stats.total_points as u64,
        distinct_locations: stats.distinct_locations as u64,
    }
}

/// Executes an `anonymize` request through the sharded executor.
pub fn run_anonymize(spec: &AnonymizeSpec) -> Result<Response, ApiError> {
    let started = std::time::Instant::now();
    let ds = from_csv(&spec.csv)
        .map_err(|e| ApiError::invalid_dataset(format!("cannot parse csv: {e}")))?;
    let cfg = spec.config();
    let result = crate::executor::anonymize_parallel(&ds, spec.model, &cfg, spec.workers)
        .map_err(|e| ApiError::internal(e.to_string()))?;
    let stage = result.global.as_ref().map(|g| g.timings).unwrap_or_default();
    let timings = crate::obs::PhaseTimings {
        total_secs: started.elapsed().as_secs_f64(),
        global_secs: result.global_time.as_secs_f64(),
        local_secs: result.local_time.as_secs_f64(),
        build_secs: stage.build.as_secs_f64(),
        increase_secs: stage.increase.as_secs_f64(),
        decrease_secs: stage.decrease.as_secs_f64(),
        realize_secs: stage.realize.as_secs_f64(),
    };
    Ok(Response::Anonymize {
        data: Payload::Inline(to_csv(&result.dataset)),
        epsilon_spent: result.epsilon_spent,
        edits: result.total_edits() as u64,
        utility_loss: result.utility_loss(),
        workers: spec.workers,
        timings: Some(timings),
    })
}

/// Executes an `evaluate` request.
pub fn run_evaluate(original: &str, anonymized: &str) -> Result<Response, ApiError> {
    let orig = from_csv(original)
        .map_err(|e| ApiError::invalid_dataset(format!("cannot parse original: {e}")))?;
    let anon = from_csv(anonymized)
        .map_err(|e| ApiError::invalid_dataset(format!("cannot parse anonymized: {e}")))?;
    if orig.len() != anon.len() {
        return Err(ApiError::invalid_dataset(
            "datasets must contain the same number of trajectories",
        ));
    }
    Ok(Response::Evaluate {
        mi: mutual_information(&orig, &anon, 64),
        inf: information_loss(&orig, &anon),
        de: diameter_divergence(&orig, &anon, 24),
        te: trip_divergence(&orig, &anon, 16),
        ffp: frequent_pattern_f1(&orig, &anon, 64, 2, 200),
    })
}

/// Executes a `stats` request.
pub fn run_stats(csv: &str) -> Result<Response, ApiError> {
    let ds =
        from_csv(csv).map_err(|e| ApiError::invalid_dataset(format!("cannot parse csv: {e}")))?;
    let s = DatasetStats::compute(&ds);
    Ok(Response::Stats {
        trajectories: s.num_trajectories as u64,
        points: s.total_points as u64,
        distinct_locations: s.distinct_locations as u64,
        avg_traj_len: s.avg_traj_len,
        avg_point_spacing: s.avg_point_spacing,
        avg_sampling_period: s.avg_sampling_period,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_all_commands() {
        assert_eq!(parse_request(r#"{"cmd":"health"}"#).unwrap(), Request::Health);
        assert_eq!(parse_request(r#"{"cmd":"info"}"#).unwrap(), Request::Info);
        assert_eq!(parse_request(r#"{"cmd":"metrics"}"#).unwrap(), Request::Metrics);
        assert_eq!(
            parse_request(r#"{"cmd":"gen","size":10,"len":20,"seed":3}"#).unwrap(),
            Request::Gen { size: 10, len: 20, seed: 3, store_result: false }
        );
        let r = parse_request(
            r#"{"cmd":"anonymize","model":"gl","epsilon":2.0,"eps_split":0.25,"m":4,"seed":9,"workers":8,"csv":"traj_id,x,y,t\n"}"#,
        )
        .unwrap();
        match r {
            Request::Anonymize { params, asynchronous } => {
                assert_eq!(params.model, Model::Combined);
                assert_eq!(params.epsilon, 2.0);
                assert_eq!(params.eps_split, 0.25);
                assert_eq!(params.m, 4);
                assert_eq!(params.workers, 8);
                assert_eq!(params.data, DataRef::Inline("traj_id,x,y,t\n".to_string()));
                assert!(!asynchronous);
                let cfg = params.resolve(&DatasetStore::new()).unwrap().config();
                assert!((cfg.eps_global - 0.5).abs() < 1e-12);
                assert!((cfg.eps_local - 1.5).abs() < 1e-12);
            }
            other => panic!("wrong request {other:?}"),
        }
        assert!(matches!(
            parse_request(r#"{"cmd":"status","job":"job-1"}"#).unwrap(),
            Request::Status { .. }
        ));
        assert_eq!(
            parse_request(r#"{"cmd":"upload"}"#).unwrap(),
            Request::Upload { eps_budget: None }
        );
        assert_eq!(
            parse_request(r#"{"cmd":"upload","eps_budget":2.5}"#).unwrap(),
            Request::Upload { eps_budget: Some(2.5) }
        );
        assert_eq!(
            parse_request(r#"{"cmd":"cancel","job":"job-4"}"#).unwrap(),
            Request::Cancel { job: "job-4".to_string() }
        );
        assert_eq!(
            parse_request(r#"{"cmd":"chunk","dataset":"ds-1","data":"0,1,2,3\n"}"#).unwrap(),
            Request::Chunk { dataset: "ds-1".to_string(), data: "0,1,2,3\n".to_string() }
        );
        assert_eq!(
            parse_request(r#"{"cmd":"commit","dataset":"ds-1"}"#).unwrap(),
            Request::Commit { dataset: "ds-1".to_string() }
        );
        assert_eq!(
            parse_request(r#"{"cmd":"download","dataset":"ds-1","offset":7,"max_bytes":64}"#)
                .unwrap(),
            Request::Download { dataset: "ds-1".to_string(), offset: 7, max_bytes: 64 }
        );
    }

    #[test]
    fn defaults_applied() {
        let r = parse_request(r#"{"cmd":"anonymize","model":"pureg","csv":""}"#).unwrap();
        match r {
            Request::Anonymize { params, asynchronous } => {
                assert_eq!(params.epsilon, 1.0);
                assert_eq!(params.eps_split, 0.5);
                assert_eq!(params.m, 10);
                assert_eq!(params.seed, 42);
                assert_eq!(params.workers, 1);
                assert!(!params.store_result);
                assert!(!asynchronous);
            }
            other => panic!("wrong request {other:?}"),
        }
        match parse_request(r#"{"cmd":"download","dataset":"ds-2"}"#).unwrap() {
            Request::Download { offset, max_bytes, .. } => {
                assert_eq!(offset, 0);
                assert_eq!(max_bytes, DEFAULT_DOWNLOAD_CHUNK_BYTES);
            }
            other => panic!("wrong request {other:?}"),
        }
    }

    #[test]
    fn dataset_handle_accepted_as_csv_alternative() {
        let r = parse_request(r#"{"cmd":"anonymize","model":"gl","dataset":"ds-3"}"#).unwrap();
        match r {
            Request::Anonymize { params, .. } => {
                assert_eq!(params.data, DataRef::Handle("ds-3".to_string()));
            }
            other => panic!("wrong request {other:?}"),
        }
        assert!(matches!(
            parse_request(r#"{"cmd":"stats","dataset":"ds-3"}"#).unwrap(),
            Request::Stats { data: DataRef::Handle(_) }
        ));
        match parse_request(r#"{"cmd":"evaluate","original_dataset":"ds-1","anonymized":"x"}"#)
            .unwrap()
        {
            Request::Evaluate { original, anonymized } => {
                assert_eq!(original, DataRef::Handle("ds-1".to_string()));
                assert_eq!(anonymized, DataRef::Inline("x".to_string()));
            }
            other => panic!("wrong request {other:?}"),
        }
        // Exactly one of inline/handle: both or neither is an error.
        let err = parse_request(r#"{"cmd":"anonymize","model":"gl","csv":"","dataset":"ds-1"}"#)
            .unwrap_err();
        assert!(err.message.contains("mutually exclusive"), "{err}");
        let err = parse_request(r#"{"cmd":"anonymize","model":"gl"}"#).unwrap_err();
        assert!(err.message.contains("\"csv\"") && err.message.contains("\"dataset\""), "{err}");
        let err = parse_request(r#"{"cmd":"stats"}"#).unwrap_err();
        assert!(err.message.contains("\"csv\"") && err.message.contains("\"dataset\""), "{err}");
    }

    #[test]
    fn non_bool_async_and_store_are_errors_not_false() {
        for bad in [r#""async":1"#, r#""async":"true""#, r#""async":null"#] {
            let line = format!(r#"{{"cmd":"anonymize","model":"gl","csv":"",{bad}}}"#);
            let err = parse_request(&line).unwrap_err();
            assert!(err.message.contains("async must be a boolean"), "{bad}: {err}");
        }
        let err = parse_request(r#"{"cmd":"anonymize","model":"gl","csv":"","store":"yes"}"#)
            .unwrap_err();
        assert!(err.message.contains("store must be a boolean"), "{err}");
        let err = parse_request(r#"{"cmd":"gen","store":1}"#).unwrap_err();
        assert!(err.message.contains("store must be a boolean"), "{err}");
        // A proper boolean still parses.
        assert!(matches!(
            parse_request(r#"{"cmd":"anonymize","model":"gl","csv":"","async":true}"#).unwrap(),
            Request::Anonymize { asynchronous: true, .. }
        ));
    }

    #[test]
    fn unknown_members_are_rejected_by_name() {
        // The misspellings from the wild: epsilom, worker.
        let err = parse_request(r#"{"cmd":"anonymize","model":"gl","csv":"","epsilom":2.0}"#)
            .unwrap_err();
        assert!(err.message.contains("\"epsilom\""), "{err}");
        assert!(err.message.contains("\"epsilon\""), "error must name the accepted set: {err}");
        let err =
            parse_request(r#"{"cmd":"anonymize","model":"gl","csv":"","worker":4}"#).unwrap_err();
        assert!(err.message.contains("\"worker\"") && err.message.contains("\"workers\""), "{err}");
        // Every command validates its member set, including no-member ones.
        assert!(parse_request(r#"{"cmd":"health","extra":1}"#)
            .unwrap_err()
            .message
            .contains("extra"));
        assert!(parse_request(r#"{"cmd":"upload","size":1}"#)
            .unwrap_err()
            .message
            .contains("size"));
        // `metrics` takes no members and mirrors health's phrasing.
        let err = parse_request(r#"{"cmd":"metrics","verbose":true}"#).unwrap_err();
        assert!(err.message.contains("verbose"), "{err}");
        assert!(err.message.contains("none besides \"cmd\""), "{err}");
        assert!(parse_request(r#"{"cmd":"gen","sizee":5}"#).unwrap_err().message.contains("sizee"));
        assert!(parse_request(r#"{"cmd":"status","job":"j","jb":"x"}"#)
            .unwrap_err()
            .message
            .contains("jb"));
        assert!(parse_request(r#"{"cmd":"download","dataset":"ds-1","off":3}"#)
            .unwrap_err()
            .message
            .contains("off"));
    }

    #[test]
    fn journaled_spec_roundtrips_and_is_validated() {
        let store = DatasetStore::new();
        let spec = AnonymizeSpec {
            model: Model::CombinedLocalFirst,
            epsilon: 2.5,
            eps_split: 0.25,
            m: 7,
            seed: 99,
            workers: 3,
            store_result: true,
            source: None,
            csv: std::sync::Arc::new("traj_id,x,y,t\n0,1.0,2.0,3\n".to_string()),
        };
        let v = spec_to_json(&spec);
        assert!(v.get("csv").is_some() && v.get("dataset").is_none());
        assert_eq!(spec_from_json(&v).unwrap().resolve(&store).unwrap(), spec);
        // A handle-backed spec journals the handle, not the text —
        // and re-resolution restores the identical bytes.
        let (handle, _) = store.insert("traj_id,x,y,t\n0,1.0,2.0,3\n".to_string()).unwrap();
        let mut by_handle = spec.clone();
        by_handle.source = Some(handle.clone());
        let v = spec_to_json(&by_handle);
        assert_eq!(v.get("dataset").and_then(Json::as_str), Some(handle.as_str()));
        assert!(v.get("csv").is_none(), "handle-backed spec must not re-record the CSV");
        let resolved = spec_from_json(&v).unwrap().resolve(&store).unwrap();
        assert_eq!(resolved.csv, spec.csv);
        assert_eq!(resolved.source, Some(handle));
        // Tampered journals fail re-validation.
        let mut bad = match spec_to_json(&spec) {
            Json::Obj(m) => m,
            _ => unreachable!(),
        };
        bad.insert("workers".to_string(), Json::from(0u64));
        assert!(spec_from_json(&Json::Obj(bad.clone())).is_err());
        bad.remove("workers");
        assert!(spec_from_json(&Json::Obj(bad)).unwrap_err().message.contains("workers"));
    }

    #[test]
    fn rejects_bad_requests() {
        assert!(parse_request("not json").is_err());
        assert!(parse_request(r#"{"nocmd":1}"#).is_err());
        assert!(parse_request(r#"{"cmd":"bogus"}"#).is_err());
        assert!(parse_request(r#"{"cmd":"anonymize","model":"zzz","csv":""}"#).is_err());
        assert!(parse_request(r#"{"cmd":"anonymize","model":"gl","epsilon":-1,"csv":""}"#).is_err());
        assert!(
            parse_request(r#"{"cmd":"anonymize","model":"gl","eps_split":0,"csv":""}"#).is_err()
        );
        assert!(
            parse_request(r#"{"cmd":"anonymize","model":"gl","eps_split":1,"csv":""}"#).is_err()
        );
        assert!(parse_request(r#"{"cmd":"status"}"#).is_err());
    }

    #[test]
    fn pure_models_spend_the_full_requested_epsilon() {
        assert_eq!(budget_split(Model::PureGlobal, 1.0, 0.5).0, 1.0);
        assert_eq!(budget_split(Model::PureLocal, 1.0, 0.5).1, 1.0);
        assert_eq!(budget_split(Model::Combined, 2.0, 0.25), (0.5, 1.5));
        // End to end: a pureg run reports ε spent = the requested total.
        let world = generate(&GeneratorConfig::tdrive_profile(4, 15, 2));
        let spec = AnonymizeSpec {
            model: Model::PureGlobal,
            epsilon: 1.0,
            eps_split: 0.5,
            m: 2,
            seed: 1,
            workers: 1,
            store_result: false,
            source: None,
            csv: std::sync::Arc::new(to_csv(&world.dataset)),
        };
        match run_anonymize(&spec).unwrap() {
            Response::Anonymize { epsilon_spent, .. } => assert_eq!(epsilon_spent, 1.0),
            other => panic!("wrong response {other:?}"),
        }
    }

    #[test]
    fn oversized_requests_are_rejected_at_parse_time() {
        // gen that would allocate billions of points.
        assert!(parse_request(r#"{"cmd":"gen","size":9007199254740991,"len":150}"#)
            .unwrap_err()
            .message
            .contains("points"));
        assert!(parse_request(r#"{"cmd":"gen","size":0,"len":10}"#).is_err());
        // anonymize with absurd m / workers.
        assert!(parse_request(r#"{"cmd":"anonymize","model":"gl","m":1000000,"csv":""}"#)
            .unwrap_err()
            .message
            .contains("m must"));
        assert!(parse_request(r#"{"cmd":"anonymize","model":"gl","m":0,"csv":""}"#).is_err());
        assert!(parse_request(r#"{"cmd":"anonymize","model":"gl","workers":100000,"csv":""}"#)
            .unwrap_err()
            .message
            .contains("workers"));
        // Seeds above 2^53 would silently lose precision in f64 transit.
        assert!(parse_request(r#"{"cmd":"gen","size":5,"len":10,"seed":9007199254740993}"#)
            .unwrap_err()
            .message
            .contains("2^53"));
    }

    #[test]
    fn eps_split_validation_bounds() {
        assert!(validate_eps_split(0.5).is_ok());
        assert!(validate_eps_split(1e-9).is_ok());
        assert!(validate_eps_split(0.0).is_err());
        assert!(validate_eps_split(1.0).is_err());
        assert!(validate_eps_split(-0.1).is_err());
        assert!(validate_eps_split(f64::NAN).is_err());
    }

    #[test]
    fn workers_validation_bounds() {
        assert_eq!(validate_workers(1), Ok(1));
        assert_eq!(validate_workers(MAX_WORKERS), Ok(MAX_WORKERS as usize));
        assert!(validate_workers(0).unwrap_err().message.contains("at least 1"));
        assert!(validate_workers(MAX_WORKERS + 1).unwrap_err().message.contains("exceed"));
        // Zero workers in a request must error, not clamp silently.
        assert!(parse_request(r#"{"cmd":"anonymize","model":"gl","workers":0,"csv":""}"#)
            .unwrap_err()
            .message
            .contains("workers"));
    }

    /// The inline CSV of a `gen`/`anonymize` response, for tests.
    fn inline_csv(response: &Response) -> &str {
        match response {
            Response::Gen { data: Payload::Inline(csv), .. }
            | Response::Anonymize { data: Payload::Inline(csv), .. } => csv,
            other => panic!("no inline csv in {other:?}"),
        }
    }

    #[test]
    fn gen_anonymize_stats_roundtrip_inline() {
        let gen = run_gen(6, 30, 5);
        let csv = inline_csv(&gen).to_string();
        let spec = AnonymizeSpec {
            model: Model::Combined,
            epsilon: 1.0,
            eps_split: 0.5,
            m: 4,
            seed: 7,
            workers: 2,
            store_result: false,
            source: None,
            csv: std::sync::Arc::new(csv.clone()),
        };
        let anon = run_anonymize(&spec).unwrap();
        let released = inline_csv(&anon).to_string();
        match run_evaluate(&csv, &released).unwrap() {
            Response::Evaluate { mi, .. } => assert!(mi.is_finite()),
            other => panic!("wrong response {other:?}"),
        }
        match run_stats(&released).unwrap() {
            Response::Stats { trajectories, .. } => assert_eq!(trajectories, 6),
            other => panic!("wrong response {other:?}"),
        }
    }

    #[test]
    fn handle_based_run_is_byte_identical_to_inline() {
        let store = DatasetStore::new();
        let gen = run_gen(5, 25, 8);
        let csv = inline_csv(&gen).to_string();

        // Stream the dataset through the chunked-upload handlers.
        let Response::Upload { dataset: id } = run_upload(&store).unwrap() else {
            panic!("wrong response")
        };
        for piece in csv.as_bytes().chunks(37) {
            let piece = std::str::from_utf8(piece).unwrap();
            run_chunk(&store, &id, piece).unwrap();
        }
        match run_commit(&store, &id).unwrap() {
            Response::Commit { bytes, .. } => assert_eq!(bytes, csv.len()),
            other => panic!("wrong response {other:?}"),
        }

        let params = AnonymizeParams {
            model: Model::Combined,
            epsilon: 1.0,
            eps_split: 0.5,
            m: 3,
            seed: 17,
            workers: 2,
            store_result: false,
            data: DataRef::Handle(id.clone()),
        };
        let mut inline = params.clone();
        inline.data = DataRef::Inline(csv.clone());
        let by_handle = run_anonymize(&params.resolve(&store).unwrap()).unwrap();
        let by_inline = run_anonymize(&inline.resolve(&store).unwrap()).unwrap();
        // Strip the wall-clock phase timings before comparing: they are
        // observability, not output, and never identical across runs.
        let strip = |r: &Response| match r.clone() {
            Response::Anonymize { data, epsilon_spent, edits, utility_loss, workers, .. } => {
                Response::Anonymize {
                    data,
                    epsilon_spent,
                    edits,
                    utility_loss,
                    workers,
                    timings: None,
                }
            }
            other => other,
        };
        assert_eq!(
            strip(&by_handle),
            strip(&by_inline),
            "handle-based run must match the inline run exactly"
        );

        // `store` moves the result CSV behind a handle; downloading it
        // piecewise reassembles the identical bytes.
        let released = inline_csv(&by_inline).to_string();
        let stored = store_result(by_handle, &store, false).unwrap();
        let (result_id, bytes) = match &stored {
            Response::Anonymize { data: Payload::Stored { dataset, bytes }, .. } => {
                (dataset.clone(), *bytes)
            }
            other => panic!("store_result must swap the payload: {other:?}"),
        };
        assert_eq!(bytes, released.len());
        let mut out = String::new();
        loop {
            match run_download(&store, &result_id, out.len(), 53).unwrap() {
                Response::Download { data, eof, .. } => {
                    out.push_str(&data);
                    if eof {
                        break;
                    }
                }
                other => panic!("wrong response {other:?}"),
            }
        }
        assert_eq!(out, released, "chunked download must reassemble the inline release");
    }

    #[test]
    fn run_anonymize_reports_csv_errors() {
        let spec = AnonymizeSpec {
            model: Model::PureLocal,
            epsilon: 1.0,
            eps_split: 0.5,
            m: 2,
            seed: 1,
            workers: 1,
            store_result: false,
            source: None,
            csv: std::sync::Arc::new("complete garbage\nwith, too, many, commas, here".into()),
        };
        let err = run_anonymize(&spec).unwrap_err();
        assert_eq!(err.code, crate::api::ErrorCode::InvalidDataset);
        assert!(err.message.contains("cannot parse csv"), "{err}");
    }

    #[test]
    fn envelope_defaults_to_v1_without_members() {
        let (envelope, req) = parse_request_line(r#"{"cmd":"health"}"#);
        assert_eq!(envelope, Envelope::V1);
        assert_eq!(req.unwrap(), Request::Health);
        // An explicit "v":1 is the same envelope.
        let (envelope, req) = parse_request_line(r#"{"cmd":"health","v":1}"#);
        assert_eq!(envelope, Envelope::V1);
        assert!(req.is_ok());
    }

    #[test]
    fn envelope_v2_with_id_parses_on_every_command() {
        for line in [
            r#"{"cmd":"health","v":2,"id":"req-1"}"#,
            r#"{"cmd":"info","v":2,"id":"req-1"}"#,
            r#"{"cmd":"upload","v":2,"id":"req-1"}"#,
            r#"{"cmd":"list","v":2,"id":"req-1"}"#,
            r#"{"cmd":"gen","size":2,"len":3,"v":2,"id":"req-1"}"#,
            r#"{"cmd":"anonymize","model":"gl","csv":"","v":2,"id":"req-1"}"#,
            r#"{"cmd":"status","job":"job-1","v":2,"id":"req-1"}"#,
            r#"{"cmd":"download","dataset":"ds-1","v":2,"id":"req-1"}"#,
            r#"{"cmd":"delete","dataset":"ds-1","v":2,"id":"req-1"}"#,
        ] {
            let (envelope, req) = parse_request_line(line);
            assert_eq!(envelope.version, ProtocolVersion::V2, "{line}");
            assert_eq!(envelope.id.as_deref(), Some("req-1"), "{line}");
            assert!(req.is_ok(), "{line}: {req:?}");
        }
        // v2 without an id is fine; the id is optional.
        let (envelope, req) = parse_request_line(r#"{"cmd":"health","v":2}"#);
        assert_eq!(envelope, Envelope { version: ProtocolVersion::V2, id: None, tenant: None });
        assert!(req.is_ok());
    }

    #[test]
    fn envelope_tenant_is_v2_only_and_must_be_a_string() {
        // A v2 tenant credential parses on every command.
        let (envelope, req) =
            parse_request_line(r#"{"cmd":"health","v":2,"tenant":"acme:s3cret"}"#);
        assert_eq!(envelope.version, ProtocolVersion::V2);
        assert_eq!(envelope.tenant.as_deref(), Some("acme:s3cret"));
        assert!(req.is_ok());
        // Tenant composes with the id member.
        let (envelope, _) =
            parse_request_line(r#"{"cmd":"upload","v":2,"id":"r-1","tenant":"acme:t"}"#);
        assert_eq!(envelope.id.as_deref(), Some("r-1"));
        assert_eq!(envelope.tenant.as_deref(), Some("acme:t"));
        // A tenant on a version-less request is rejected, like id: it
        // would silently be accounted to the default tenant otherwise.
        let (envelope, req) = parse_request_line(r#"{"cmd":"health","tenant":"acme:t"}"#);
        assert_eq!(envelope.version, ProtocolVersion::V1);
        assert!(req.unwrap_err().message.contains("requires \"v\": 2"));
        // A non-string tenant is rejected.
        let (_, req) = parse_request_line(r#"{"cmd":"health","v":2,"tenant":9}"#);
        assert!(req.unwrap_err().message.contains("tenant must be a string"));
    }

    #[test]
    fn envelope_survives_a_verb_error() {
        // The verb fails to validate, but the envelope is still parsed
        // so the error can be rendered in the shape the client asked
        // for, with its id echoed.
        let (envelope, req) = parse_request_line(r#"{"cmd":"bogus","v":2,"id":"x-9"}"#);
        assert_eq!(envelope.version, ProtocolVersion::V2);
        assert_eq!(envelope.id.as_deref(), Some("x-9"));
        let err = req.unwrap_err();
        assert_eq!(err.code, crate::api::ErrorCode::UnknownVerb);
        let (envelope, req) = parse_request_line(
            r#"{"cmd":"anonymize","model":"gl","csv":"","epsilom":1,"v":2,"id":"x-10"}"#,
        );
        assert_eq!(envelope.id.as_deref(), Some("x-10"));
        assert_eq!(req.unwrap_err().code, crate::api::ErrorCode::BadRequest);
    }

    #[test]
    fn envelope_rejects_bad_version_and_id() {
        let (envelope, req) = parse_request_line(r#"{"cmd":"health","v":3}"#);
        assert_eq!(envelope, Envelope::V1, "an unusable v falls back to v1 shapes");
        let err = req.unwrap_err();
        assert_eq!(err.code, crate::api::ErrorCode::BadRequest);
        assert!(err.message.contains("1 or 2"), "{err}");
        for bad in [r#"{"cmd":"health","v":"2"}"#, r#"{"cmd":"health","v":2.5}"#] {
            assert!(parse_request_line(bad).1.is_err(), "{bad}");
        }
        // A non-string id, and an id without v:2, are both rejected.
        let (envelope, req) = parse_request_line(r#"{"cmd":"health","v":2,"id":7}"#);
        assert_eq!(envelope.version, ProtocolVersion::V2);
        assert!(req.unwrap_err().message.contains("id must be a string"));
        let (envelope, req) = parse_request_line(r#"{"cmd":"health","id":"x"}"#);
        assert_eq!(envelope.version, ProtocolVersion::V1);
        assert!(req.unwrap_err().message.contains("requires"), "id without v:2 must be rejected");
    }
}

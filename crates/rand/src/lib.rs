//! Vendored, dependency-free stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this workspace
//! ships the **subset of the rand 0.8 API it actually uses** as a local
//! path dependency: the [`Rng`] extension trait (`gen`, `gen_range`,
//! `gen_bool`), [`SeedableRng::seed_from_u64`], and [`rngs::StdRng`].
//!
//! `StdRng` here is **xoshiro256++** seeded through SplitMix64 — a
//! high-quality, well-studied generator, but *not* the ChaCha12 stream
//! the real `rand` crate uses. Streams are therefore reproducible across
//! runs of this workspace (everything downstream seeds via
//! `seed_from_u64`) but deliberately make no compatibility promise with
//! upstream `rand`.
//!
//! Integer `gen_range` uses rejection sampling (no modulo bias); float
//! `gen_range` and `gen::<f64>()` use the standard 53-bit mantissa
//! construction yielding uniform values in `[0, 1)`.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Low-level source of randomness: a stream of `u64` words.
pub trait RngCore {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 uniformly random bits (upper half of a word).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Deterministic construction from seeds.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed (the only constructor this
    /// workspace uses; expansion is SplitMix64 as recommended by the
    /// xoshiro authors).
    fn seed_from_u64(state: u64) -> Self;
}

/// Types samplable uniformly from a raw bit stream (the rand `Standard`
/// distribution, reduced to what the workspace needs).
pub trait Standard: Sized {
    /// Draws one value.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits -> [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Uniform `u64` in `[0, span)` by rejection (bias-free). `span` must be
/// non-zero.
fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    // Largest multiple of `span` representable; accept only below it.
    let zone = u64::MAX - (u64::MAX % span);
    loop {
        let v = rng.next_u64();
        if v < zone {
            return v % span;
        }
    }
}

/// Ranges samplable by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value from the range. Panics if the range is empty.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty => $u:ty),* $(,)?) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as $u).wrapping_sub(self.start as $u) as u64;
                self.start.wrapping_add(uniform_below(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = ((hi as $u).wrapping_sub(lo as $u) as u64).wrapping_add(1);
                if span == 0 {
                    // Full integer domain.
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(uniform_below(rng, span) as $t)
            }
        }
    )*};
}

impl_int_range!(
    usize => usize,
    u64 => u64,
    u32 => u32,
    isize => usize,
    i64 => u64,
    i32 => u32,
);

macro_rules! impl_float_range {
    ($($t:ty),* $(,)?) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let u = f64::sample_standard(rng) as $t;
                let v = self.start + (self.end - self.start) * u;
                // `start + span * u` can round up to `end` (e.g. one-ulp
                // spans with u near 1); the range contract is
                // end-exclusive, so step back to the previous float.
                if v >= self.end {
                    self.end.next_down().max(self.start)
                } else {
                    v
                }
            }
        }
    )*};
}

impl_float_range!(f64, f32);

/// The user-facing extension trait: every [`RngCore`] is an [`Rng`].
pub trait Rng: RngCore {
    /// Samples a value of type `T` from the standard distribution
    /// (`f64` in `[0, 1)`, full-range integers, fair `bool`).
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Samples uniformly from a range; panics on an empty range.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool {
        f64::sample_standard(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// The concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: **xoshiro256++**.
    ///
    /// Not stream-compatible with upstream rand's ChaCha12 `StdRng`;
    /// everything in this workspace derives seeds via `seed_from_u64`,
    /// so reproducibility is internal to the workspace.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0].wrapping_add(self.s[3]).rotate_left(23).wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    /// SplitMix64 step, the xoshiro authors' recommended seed expander.
    pub(crate) fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let mut s = [0u64; 4];
            for w in &mut s {
                *w = splitmix64(&mut sm);
            }
            // xoshiro requires a non-zero state; with SplitMix64 expansion
            // this is unreachable in practice, but guard anyway.
            if s == [0; 4] {
                s = [0x9E37_79B9_7F4A_7C15, 1, 2, 3];
            }
            Self { s }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let xs: Vec<u64> = (0..32).map(|_| a.gen::<u64>()).collect();
        let ys: Vec<u64> = (0..32).map(|_| b.gen::<u64>()).collect();
        let zs: Vec<u64> = (0..32).map(|_| c.gen::<u64>()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn f64_in_unit_interval_and_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(1);
        let n = 100_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn gen_range_respects_bounds_all_types() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..10_000 {
            let a = rng.gen_range(3usize..17);
            assert!((3..17).contains(&a));
            let b = rng.gen_range(-5i64..5);
            assert!((-5..5).contains(&b));
            let c = rng.gen_range(0usize..=4);
            assert!(c <= 4);
            let d = rng.gen_range(-2.5f64..2.5);
            assert!((-2.5..2.5).contains(&d));
        }
    }

    #[test]
    fn gen_range_hits_every_bucket() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut counts = [0usize; 5];
        for _ in 0..50_000 {
            counts[rng.gen_range(0usize..5)] += 1;
        }
        for (i, &c) in counts.iter().enumerate() {
            // Expectation 10 000 each; allow generous slack.
            assert!((8_500..11_500).contains(&c), "bucket {i}: {c}");
        }
    }

    #[test]
    fn inclusive_range_reaches_endpoints() {
        let mut rng = StdRng::seed_from_u64(4);
        let (mut lo_seen, mut hi_seen) = (false, false);
        for _ in 0..10_000 {
            match rng.gen_range(0usize..=2) {
                0 => lo_seen = true,
                2 => hi_seen = true,
                _ => {}
            }
        }
        assert!(lo_seen && hi_seen);
    }

    #[test]
    fn float_range_stays_end_exclusive_even_for_one_ulp_spans() {
        let mut rng = StdRng::seed_from_u64(11);
        let start = 1.0f64;
        let end = start.next_up();
        for _ in 0..1_000 {
            let v = rng.gen_range(start..end);
            assert!(v >= start && v < end, "got {v}, must stay below {end}");
        }
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let mut rng = StdRng::seed_from_u64(5);
        let _ = rng.gen_range(5usize..5);
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(6);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.3)).count();
        let frac = hits as f64 / 100_000.0;
        assert!((frac - 0.3).abs() < 0.01, "frac {frac}");
    }

    #[test]
    fn works_through_unsized_references() {
        // Mirrors the workspace's `R: Rng + ?Sized` call sites.
        fn draw<R: Rng + ?Sized>(rng: &mut R) -> f64 {
            rng.gen::<f64>()
        }
        let mut rng = StdRng::seed_from_u64(9);
        let dynamic: &mut StdRng = &mut rng;
        let x = draw(dynamic);
        assert!((0.0..1.0).contains(&x));
    }
}

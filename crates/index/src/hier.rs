//! The hierarchical grid index (§IV-C) and its three K-nearest-segment
//! search strategies.
//!
//! The index stacks nested power-of-two grid levels (granularity 1, 2, 4,
//! …, `finest`). Every segment lives in its **best-fit cell**
//! (Definition 11): the finest cell that contains both endpoints. Cells
//! record parent/child relationships implicitly through their
//! coordinates (`parent(col) = col >> 1`); nodes are materialized
//! sparsely, with ancestors created on demand so every occupied cell is
//! reachable from the root.
//!
//! Searches are exact; they differ in how quickly they shrink the pruning
//! threshold θ_K of Theorem 4:
//!
//! * [`Strategy::TopDown`] — classic best-first descent from the root.
//! * [`Strategy::BottomUp`] — stack-driven exploration starting at the
//!   finest occupied cell around the query.
//! * [`Strategy::BottomUpDown`] — Algorithm 3: a bottom-up stack phase
//!   that tightens θ_K early, switching to best-first top-down once the
//!   root is reached, which then permits early termination.

use crate::entry::{Neighbor, SearchStats, SegmentEntry, TopK, TotalF64};
use crate::SegmentIndex;
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap, HashSet};
use trajdp_model::{CellId, GridLevel, Point, Rect};

/// Which traversal order a KNN search uses. All strategies return the
/// same (exact) results.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Strategy {
    /// Best-first from the root (`HGt` in Figure 5).
    TopDown,
    /// Stack-based from the finest occupied cell (`HGb`).
    BottomUp,
    /// The paper's bottom-up-down search, Algorithm 3 (`HG+`).
    BottomUpDown,
}

#[derive(Debug, Clone, Default)]
struct Node {
    entries: Vec<SegmentEntry>,
    /// Segments stored in this cell or any descendant; nodes are dropped
    /// when this reaches zero.
    subtree_count: usize,
}

/// The hierarchical grid index.
///
/// # Examples
///
/// ```
/// use trajdp_index::{HierGrid, SegmentEntry, SegmentIndex, Strategy};
/// use trajdp_model::{Point, Rect, Segment};
///
/// let domain = Rect::new(0.0, 0.0, 1024.0, 1024.0);
/// let mut index = HierGrid::new(domain, 512);
/// index.insert(SegmentEntry::new(
///     7,
///     Segment::new(Point::new(100.0, 100.0), Point::new(110.0, 100.0)),
/// ));
/// index.insert(SegmentEntry::new(
///     8,
///     Segment::new(Point::new(900.0, 900.0), Point::new(910.0, 900.0)),
/// ));
///
/// // Algorithm 3 (bottom-up-down) K-nearest segment search:
/// let (hits, stats) = index.knn_with_stats(
///     &Point::new(105.0, 130.0), 1, Strategy::BottomUpDown, None,
/// );
/// assert_eq!(hits[0].id, 7);
/// assert_eq!(hits[0].dist, 30.0);
/// assert!(stats.segments_checked >= 1);
/// ```
#[derive(Debug, Clone)]
pub struct HierGrid {
    levels: Vec<GridLevel>,
    nodes: HashMap<CellId, Node>,
    locations: HashMap<u64, CellId>,
    len: usize,
}

impl HierGrid {
    /// Creates an empty index over `domain` whose finest level has
    /// `finest × finest` cells. `finest` must be a power of two (the
    /// paper uses 512).
    pub fn new(domain: Rect, finest: u32) -> Self {
        assert!(finest.is_power_of_two(), "finest granularity must be a power of two");
        let num_levels = finest.trailing_zeros() as usize + 1;
        let levels = (0..num_levels).map(|l| GridLevel::new(domain, 1 << l, l as u8)).collect();
        Self { levels, nodes: HashMap::new(), locations: HashMap::new(), len: 0 }
    }

    /// Builds the index from entries.
    pub fn from_entries(domain: Rect, finest: u32, entries: Vec<SegmentEntry>) -> Self {
        let mut g = Self::new(domain, finest);
        for e in entries {
            g.insert(e);
        }
        g
    }

    /// Number of grid levels (`log₂(finest) + 1`).
    pub fn num_levels(&self) -> usize {
        self.levels.len()
    }

    /// Number of materialized cells (for diagnostics).
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    fn finest(&self) -> &GridLevel {
        self.levels.last().expect("at least one level")
    }

    /// Best-fit cell of a segment: the finest level at which both
    /// endpoints share a cell (Definition 11). Level 0 (1×1) always
    /// qualifies.
    pub fn best_fit(&self, e: &SegmentEntry) -> CellId {
        let fa = self.finest().locate(&e.seg.a);
        let fb = self.finest().locate(&e.seg.b);
        let h = self.levels.len() - 1;
        // At level l, col = finest_col >> (h − l). Find the deepest l
        // where both coordinates agree.
        for l in (0..=h).rev() {
            let shift = (h - l) as u32;
            if fa.col >> shift == fb.col >> shift && fa.row >> shift == fb.row >> shift {
                return CellId::new(l as u8, fa.col >> shift, fb.row >> shift);
            }
        }
        CellId::new(0, 0, 0)
    }

    fn parent(cell: CellId) -> Option<CellId> {
        (cell.level > 0).then(|| CellId::new(cell.level - 1, cell.col >> 1, cell.row >> 1))
    }

    /// The up-to-four direct children of `cell` that are materialized.
    fn children(&self, cell: CellId) -> impl Iterator<Item = CellId> + '_ {
        let next = cell.level + 1;
        let exists = (next as usize) < self.levels.len();
        let base = (cell.col << 1, cell.row << 1);
        (0..4u32)
            .map(move |i| CellId::new(next, base.0 + (i & 1), base.1 + (i >> 1)))
            .filter(move |c| exists && self.nodes.contains_key(c))
    }

    fn cell_rect(&self, cell: CellId) -> Rect {
        self.levels[cell.level as usize].cell_rect(cell)
    }

    /// Adds one segment into its best-fit cell, materializing ancestors.
    /// Panics if the payload id is already present.
    pub fn insert(&mut self, e: SegmentEntry) {
        assert!(!self.locations.contains_key(&e.id), "duplicate segment id {}", e.id);
        let target = self.best_fit(&e);
        let mut cell = target;
        loop {
            let node = self.nodes.entry(cell).or_default();
            node.subtree_count += 1;
            if cell == target {
                node.entries.push(e);
            }
            match Self::parent(cell) {
                Some(p) => cell = p,
                None => break,
            }
        }
        self.locations.insert(e.id, target);
        self.len += 1;
    }

    /// Removes the segment with payload `id`, pruning emptied nodes;
    /// returns whether it existed.
    pub fn remove(&mut self, id: u64) -> bool {
        let Some(target) = self.locations.remove(&id) else {
            return false;
        };
        let mut cell = target;
        loop {
            let node = self.nodes.get_mut(&cell).expect("ancestor chain must exist");
            if cell == target {
                node.entries.retain(|e| e.id != id);
            }
            node.subtree_count -= 1;
            if node.subtree_count == 0 {
                self.nodes.remove(&cell);
            }
            match Self::parent(cell) {
                Some(p) => cell = p,
                None => break,
            }
        }
        self.len -= 1;
        true
    }

    /// The deepest materialized cell whose region contains `q` — the
    /// starting point of the bottom-up strategies (Algorithm 3, line 1).
    fn deepest_occupied(&self, q: &Point) -> Option<CellId> {
        if self.nodes.is_empty() {
            return None;
        }
        let f = self.finest().locate(q);
        let h = self.levels.len() - 1;
        for l in (0..=h).rev() {
            let shift = (h - l) as u32;
            let cell = CellId::new(l as u8, f.col >> shift, f.row >> shift);
            if self.nodes.contains_key(&cell) {
                return Some(cell);
            }
        }
        None
    }

    /// KNN with an explicit strategy and work counters.
    pub fn knn_with_stats(
        &self,
        q: &Point,
        k: usize,
        strategy: Strategy,
        filter: Option<&dyn Fn(u64) -> bool>,
    ) -> (Vec<Neighbor>, SearchStats) {
        match strategy {
            Strategy::TopDown => self.search_top_down(q, k, filter),
            Strategy::BottomUp => self.search_bottom_up(q, k, filter, false),
            Strategy::BottomUpDown => self.search_bottom_up(q, k, filter, true),
        }
    }

    fn check_cell(
        &self,
        cell: CellId,
        q: &Point,
        top: &mut TopK,
        stats: &mut SearchStats,
        filter: Option<&dyn Fn(u64) -> bool>,
    ) {
        stats.cells_visited += 1;
        let node = &self.nodes[&cell];
        for e in &node.entries {
            if let Some(f) = filter {
                if !f(e.id) {
                    continue;
                }
            }
            stats.segments_checked += 1;
            top.offer(e.id, e.seg.dist_to_point(q), e.seg);
        }
    }

    fn search_top_down(
        &self,
        q: &Point,
        k: usize,
        filter: Option<&dyn Fn(u64) -> bool>,
    ) -> (Vec<Neighbor>, SearchStats) {
        let mut top = TopK::new(k);
        let mut stats = SearchStats::default();
        let root = CellId::new(0, 0, 0);
        if k == 0 || !self.nodes.contains_key(&root) {
            return (top.into_sorted(), stats);
        }
        let mut queue: BinaryHeap<Reverse<(TotalF64, CellId)>> = BinaryHeap::new();
        queue.push(Reverse((TotalF64(0.0), root)));
        while let Some(Reverse((TotalF64(dist), cell))) = queue.pop() {
            if top.is_full() && dist > top.threshold() {
                break; // best-first order: everything remaining is worse
            }
            self.check_cell(cell, q, &mut top, &mut stats, filter);
            for child in self.children(cell) {
                let d = self.cell_rect(child).min_dist(q);
                if !(top.is_full() && d > top.threshold()) {
                    queue.push(Reverse((TotalF64(d), child)));
                }
            }
        }
        (top.into_sorted(), stats)
    }

    /// The shared bottom-up engine. With `switch_top_down == false` this
    /// is `HGb`: the stack runs to exhaustion. With `true` it is
    /// Algorithm 3 (`HG+`): once the root has been reached, candidates
    /// move through a best-first queue that allows early termination.
    fn search_bottom_up(
        &self,
        q: &Point,
        k: usize,
        filter: Option<&dyn Fn(u64) -> bool>,
        switch_top_down: bool,
    ) -> (Vec<Neighbor>, SearchStats) {
        let mut top = TopK::new(k);
        let mut stats = SearchStats::default();
        let Some(start) = self.deepest_occupied(q) else {
            return (top.into_sorted(), stats);
        };
        if k == 0 {
            return (top.into_sorted(), stats);
        }
        let mut stack: Vec<(CellId, f64)> = vec![(start, 0.0)];
        let mut queue: BinaryHeap<Reverse<(TotalF64, CellId)>> = BinaryHeap::new();
        let mut visited: HashSet<CellId> = HashSet::new();
        let mut root_access = false;

        while !stack.is_empty() || !queue.is_empty() {
            let (cell, dist, from_queue) = if !root_access || !switch_top_down {
                match stack.pop() {
                    Some((c, d)) => (c, d, false),
                    None => match queue.pop() {
                        Some(Reverse((TotalF64(d), c))) => (c, d, true),
                        None => break,
                    },
                }
            } else {
                match queue.pop() {
                    Some(Reverse((TotalF64(d), c))) => (c, d, true),
                    None => break,
                }
            };
            if !visited.insert(cell) {
                continue;
            }
            if top.is_full() && dist > top.threshold() {
                if from_queue {
                    break; // queue is ordered: early termination (line 16)
                }
                continue; // stack is not ordered: skip only this cell
            }
            self.check_cell(cell, q, &mut top, &mut stats, filter);

            // Push the parent first so finer-grained children are
            // examined before coarser regions (Algorithm 3, lines 24–29).
            if let Some(parent) = Self::parent(cell) {
                if !visited.contains(&parent) {
                    if parent.level == 0 {
                        root_access = true;
                        if switch_top_down {
                            queue.push(Reverse((TotalF64(0.0), parent)));
                        } else {
                            stack.push((parent, 0.0));
                        }
                    } else {
                        stack.push((parent, 0.0));
                    }
                }
            } else {
                root_access = true;
            }
            for child in self.children(cell) {
                if visited.contains(&child) {
                    continue;
                }
                let d = self.cell_rect(child).min_dist(q);
                if top.is_full() && d > top.threshold() {
                    continue;
                }
                if root_access && switch_top_down {
                    queue.push(Reverse((TotalF64(d), child)));
                } else {
                    stack.push((child, d));
                }
            }
        }
        (top.into_sorted(), stats)
    }
}

impl SegmentIndex for HierGrid {
    fn knn(&self, q: &Point, k: usize) -> Vec<Neighbor> {
        self.knn_with_stats(q, k, Strategy::BottomUpDown, None).0
    }

    fn knn_filtered(&self, q: &Point, k: usize, filter: &dyn Fn(u64) -> bool) -> Vec<Neighbor> {
        self.knn_with_stats(q, k, Strategy::BottomUpDown, Some(filter)).0
    }

    fn len(&self) -> usize {
        self.len
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::linear::LinearScan;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use trajdp_model::Segment;

    const STRATEGIES: [Strategy; 3] =
        [Strategy::TopDown, Strategy::BottomUp, Strategy::BottomUpDown];

    fn domain() -> Rect {
        Rect::new(0.0, 0.0, 1024.0, 1024.0)
    }

    fn random_entries(n: usize, seed: u64) -> Vec<SegmentEntry> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|i| {
                let ax: f64 = rng.gen_range(0.0..1024.0);
                let ay: f64 = rng.gen_range(0.0..1024.0);
                // Mix of short and long segments to exercise all levels.
                let span: f64 = if i % 7 == 0 { 400.0 } else { 12.0 };
                let bx = (ax + rng.gen_range(-span..span)).clamp(0.0, 1024.0);
                let by = (ay + rng.gen_range(-span..span)).clamp(0.0, 1024.0);
                SegmentEntry::new(i as u64, Segment::new(Point::new(ax, ay), Point::new(bx, by)))
            })
            .collect()
    }

    #[test]
    fn best_fit_matches_definition() {
        let g = HierGrid::new(domain(), 8); // levels 1,2,4,8 → cells 128px at finest
                                            // Both endpoints in the same finest cell (cells are 128 wide).
        let e = SegmentEntry::new(0, Segment::new(Point::new(10.0, 10.0), Point::new(100.0, 90.0)));
        let c = g.best_fit(&e);
        assert_eq!(c.level as usize, g.num_levels() - 1);
        // Endpoints split at the very top → root.
        let e2 =
            SegmentEntry::new(1, Segment::new(Point::new(10.0, 10.0), Point::new(1000.0, 1000.0)));
        assert_eq!(g.best_fit(&e2), CellId::new(0, 0, 0));
        // Split at finest but joint at level 2 (256px cells):
        let e3 =
            SegmentEntry::new(2, Segment::new(Point::new(10.0, 10.0), Point::new(200.0, 200.0)));
        let c3 = g.best_fit(&e3);
        assert!(c3.level >= 1 && (c3.level as usize) < g.num_levels() - 1);
        let rect = g.cell_rect(c3);
        assert!(rect.contains(&e3.seg.a) && rect.contains(&e3.seg.b));
    }

    #[test]
    fn insert_materializes_ancestors_and_remove_prunes() {
        let mut g = HierGrid::new(domain(), 16);
        let e = SegmentEntry::new(7, Segment::new(Point::new(5.0, 5.0), Point::new(6.0, 6.0)));
        g.insert(e);
        assert_eq!(g.len(), 1);
        // Best-fit is at the finest level; the full ancestor chain exists.
        assert_eq!(g.num_nodes(), g.num_levels());
        assert!(g.remove(7));
        assert_eq!(g.len(), 0);
        assert_eq!(g.num_nodes(), 0);
        assert!(!g.remove(7));
    }

    #[test]
    fn all_strategies_match_linear_scan() {
        let entries = random_entries(500, 42);
        let g = HierGrid::from_entries(domain(), 512, entries.clone());
        let lin = LinearScan::from_entries(entries);
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..40 {
            let q = Point::new(rng.gen_range(0.0..1024.0), rng.gen_range(0.0..1024.0));
            for k in [1, 3, 10] {
                let expected: Vec<f64> = lin.knn(&q, k).iter().map(|n| n.dist).collect();
                for s in STRATEGIES {
                    let got: Vec<f64> =
                        g.knn_with_stats(&q, k, s, None).0.iter().map(|n| n.dist).collect();
                    assert_eq!(got.len(), expected.len(), "{s:?} wrong count at {q:?}");
                    for (a, b) in got.iter().zip(&expected) {
                        assert!((a - b).abs() < 1e-9, "{s:?} dist mismatch at {q:?}: {a} vs {b}");
                    }
                }
            }
        }
    }

    #[test]
    fn filtered_matches_linear() {
        let entries = random_entries(300, 9);
        let g = HierGrid::from_entries(domain(), 256, entries.clone());
        let lin = LinearScan::from_entries(entries);
        let q = Point::new(512.0, 512.0);
        let filter = |id: u64| id.is_multiple_of(3);
        let expected: Vec<u64> = lin.knn_filtered(&q, 5, &filter).iter().map(|n| n.id).collect();
        for s in STRATEGIES {
            let got: Vec<u64> =
                g.knn_with_stats(&q, 5, s, Some(&filter)).0.iter().map(|n| n.id).collect();
            assert!(got.iter().all(|id| id % 3 == 0));
            assert_eq!(got.len(), expected.len());
        }
    }

    #[test]
    fn removal_keeps_results_exact() {
        let entries = random_entries(200, 5);
        let mut g = HierGrid::from_entries(domain(), 128, entries.clone());
        let mut lin = LinearScan::from_entries(entries);
        for id in (0..200).step_by(2) {
            assert!(g.remove(id));
            assert!(lin.remove(id));
        }
        let q = Point::new(100.0, 900.0);
        let expected: Vec<f64> = lin.knn(&q, 8).iter().map(|n| n.dist).collect();
        let got: Vec<f64> = g.knn(&q, 8).iter().map(|n| n.dist).collect();
        assert_eq!(got.len(), expected.len());
        for (a, b) in got.iter().zip(&expected) {
            assert!((a - b).abs() < 1e-9);
        }
    }

    #[test]
    fn empty_index_returns_nothing() {
        let g = HierGrid::new(domain(), 64);
        for s in STRATEGIES {
            assert!(g.knn_with_stats(&Point::new(1.0, 1.0), 4, s, None).0.is_empty());
        }
    }

    #[test]
    fn k_zero_returns_nothing() {
        let g = HierGrid::from_entries(domain(), 64, random_entries(10, 3));
        for s in STRATEGIES {
            assert!(g.knn_with_stats(&Point::new(1.0, 1.0), 0, s, None).0.is_empty());
        }
    }

    #[test]
    fn hierarchical_search_prunes_most_segments() {
        // The point of the index (Figure 5): all strategies examine a
        // small fraction of the dataset, and HG+ stays in the same work
        // ballpark as HGt while enabling the early-termination rule.
        let entries = random_entries(2000, 77);
        let g = HierGrid::from_entries(domain(), 512, entries);
        let mut rng = StdRng::seed_from_u64(8);
        let queries = 50;
        let (mut work_plus, mut work_top, mut work_bot) = (0usize, 0usize, 0usize);
        for _ in 0..queries {
            let q = Point::new(rng.gen_range(0.0..1024.0), rng.gen_range(0.0..1024.0));
            work_plus += g.knn_with_stats(&q, 5, Strategy::BottomUpDown, None).1.segments_checked;
            work_top += g.knn_with_stats(&q, 5, Strategy::TopDown, None).1.segments_checked;
            work_bot += g.knn_with_stats(&q, 5, Strategy::BottomUp, None).1.segments_checked;
        }
        let linear_work = 2000 * queries;
        assert!(work_plus * 5 < linear_work, "HG+ checked {work_plus} of {linear_work}");
        assert!(work_top * 5 < linear_work);
        assert!(work_bot * 5 < linear_work);
        // HG+ must not do substantially more distance computations than
        // plain top-down (they share the same pruning bound).
        assert!(
            work_plus <= work_top + work_top / 4,
            "HG+ checked {work_plus} segments vs HGt {work_top}"
        );
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_finest_panics() {
        HierGrid::new(domain(), 100);
    }

    #[test]
    #[should_panic(expected = "duplicate segment id")]
    fn duplicate_id_panics() {
        let mut g = HierGrid::new(domain(), 8);
        let e = SegmentEntry::new(0, Segment::new(Point::new(1.0, 1.0), Point::new(2.0, 2.0)));
        g.insert(e);
        g.insert(e);
    }

    mod properties {
        use super::*;
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};

        fn arb_segment(rng: &mut StdRng) -> Segment {
            Segment::new(
                Point::new(rng.gen_range(0.0..1024.0), rng.gen_range(0.0..1024.0)),
                Point::new(rng.gen_range(0.0..1024.0), rng.gen_range(0.0..1024.0)),
            )
        }

        /// Interleaved inserts and removes leave the index exactly
        /// consistent with a mirrored linear scan, for every strategy.
        #[test]
        fn dynamic_updates_stay_exact() {
            let mut rng = StdRng::seed_from_u64(0x41E8);
            for case in 0..32 {
                let initial: Vec<Segment> =
                    (0..rng.gen_range(1..60)).map(|_| arb_segment(&mut rng)).collect();
                let extra: Vec<Segment> =
                    (0..rng.gen_range(0..20)).map(|_| arb_segment(&mut rng)).collect();
                let remove_mask: Vec<bool> = (0..60).map(|_| rng.gen::<bool>()).collect();
                let q = Point::new(rng.gen_range(0.0..1024.0), rng.gen_range(0.0..1024.0));

                let mut hier = HierGrid::new(domain(), 128);
                let mut lin = LinearScan::new();
                let mut next_id = 0u64;
                for s in &initial {
                    let e = SegmentEntry::new(next_id, *s);
                    next_id += 1;
                    hier.insert(e);
                    lin.insert(e);
                }
                // Remove a masked subset.
                for (id, &rm) in remove_mask.iter().enumerate() {
                    if rm && (id as u64) < next_id {
                        assert_eq!(hier.remove(id as u64), lin.remove(id as u64));
                    }
                }
                // Insert more.
                for s in &extra {
                    let e = SegmentEntry::new(next_id, *s);
                    next_id += 1;
                    hier.insert(e);
                    lin.insert(e);
                }
                assert_eq!(SegmentIndex::len(&hier), lin.len(), "case {case}");
                let expected: Vec<f64> = lin.knn(&q, 5).iter().map(|n| n.dist).collect();
                for s in STRATEGIES {
                    let got: Vec<f64> =
                        hier.knn_with_stats(&q, 5, s, None).0.iter().map(|n| n.dist).collect();
                    assert_eq!(got.len(), expected.len(), "case {case} {s:?}");
                    for (a, b) in got.iter().zip(&expected) {
                        assert!((a - b).abs() < 1e-9, "case {case} {s:?}: {a} vs {b}");
                    }
                }
            }
        }

        /// Best-fit assignment always satisfies Definition 11: the cell
        /// contains both endpoints, and no child cell does.
        #[test]
        fn best_fit_is_deepest_containing_cell() {
            let mut rng = StdRng::seed_from_u64(0x41E9);
            for case in 0..64 {
                let s = arb_segment(&mut rng);
                let g = HierGrid::new(domain(), 64);
                let e = SegmentEntry::new(0, s);
                let cell = g.best_fit(&e);
                let rect = g.cell_rect(cell);
                assert!(rect.contains(&s.a) && rect.contains(&s.b), "case {case}");
                // At the next finer level the endpoints split (unless
                // already at the finest level).
                if (cell.level as usize) < g.num_levels() - 1 {
                    let finer = &g.levels[cell.level as usize + 1];
                    assert!(
                        !finer.same_cell(&s.a, &s.b),
                        "case {case}: a finer cell also contains both endpoints"
                    );
                }
            }
        }
    }
}

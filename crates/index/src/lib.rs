//! # trajdp-index
//!
//! Spatial indexing for K-nearest trajectory-segment search (§IV-C of the
//! paper), the engine behind efficient trajectory modification.
//!
//! Three index families are provided, matching the paper's efficiency
//! comparison (Figure 5):
//!
//! * [`LinearScan`] — the naive baseline that checks every segment.
//! * [`UniformGrid`] — a single-level grid (default 512×512) searched by
//!   expanding rings around the query cell.
//! * [`HierGrid`] — the paper's hierarchical grid: nested power-of-two
//!   levels, each segment stored in its *best-fit* cell (Definition 11:
//!   the finest cell containing both endpoints), searched top-down
//!   (`HGt`), bottom-up (`HGb`), or with the novel bottom-up-down
//!   strategy of Algorithm 3 (`HG+`).
//!
//! All searches return exact K-nearest results; the strategies differ
//! only in pruning power, which [`SearchStats`] exposes for the
//! efficiency experiments.

#![forbid(unsafe_code)]

pub mod entry;
pub mod hier;
pub mod linear;
pub mod uniform;

pub use entry::{Neighbor, SearchStats, SegmentEntry, TotalF64};
pub use hier::{HierGrid, Strategy};
pub use linear::LinearScan;
pub use uniform::UniformGrid;

use trajdp_model::Point;

/// Common interface of every K-nearest segment index.
pub trait SegmentIndex {
    /// The `k` segments nearest to `q` (by point–segment distance),
    /// sorted by ascending distance. Fewer than `k` results are returned
    /// when the index holds fewer segments.
    fn knn(&self, q: &Point, k: usize) -> Vec<Neighbor>;

    /// Like [`SegmentIndex::knn`] but only counting segments whose payload
    /// id satisfies `filter`.
    fn knn_filtered(&self, q: &Point, k: usize, filter: &dyn Fn(u64) -> bool) -> Vec<Neighbor>;

    /// Number of segments currently indexed.
    fn len(&self) -> usize;

    /// Whether the index holds no segments.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

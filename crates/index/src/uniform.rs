//! Single-level uniform grid (`UG` in the paper's Figure 5).
//!
//! Each segment is registered in every cell its bounding box overlaps;
//! search proceeds in expanding Chebyshev rings around the query cell and
//! terminates once the ring's distance lower bound exceeds the current
//! K-th best distance.

use crate::entry::{Neighbor, SearchStats, SegmentEntry, TopK};
use crate::SegmentIndex;
use std::collections::{HashMap, HashSet};
use trajdp_model::{GridLevel, Point, Rect};

/// A uniform grid over the dataset domain.
#[derive(Debug, Clone)]
pub struct UniformGrid {
    grid: GridLevel,
    cells: HashMap<(u32, u32), Vec<SegmentEntry>>,
    /// Reverse map for O(cells-per-segment) removal.
    locations: HashMap<u64, Vec<(u32, u32)>>,
    len: usize,
}

impl UniformGrid {
    /// Creates an empty grid of `granularity × granularity` cells over
    /// `domain`.
    pub fn new(domain: Rect, granularity: u32) -> Self {
        Self {
            grid: GridLevel::new(domain, granularity, 0),
            cells: HashMap::new(),
            locations: HashMap::new(),
            len: 0,
        }
    }

    /// Builds a grid from entries.
    pub fn from_entries(domain: Rect, granularity: u32, entries: Vec<SegmentEntry>) -> Self {
        let mut g = Self::new(domain, granularity);
        for e in entries {
            g.insert(e);
        }
        g
    }

    /// The grid cells a segment passes through (supercover traversal):
    /// O(length / cell size) cells, not the O(area) of its bounding box.
    fn covered_cells(&self, e: &SegmentEntry) -> Vec<(u32, u32)> {
        let start = self.grid.locate(&e.seg.a);
        let end = self.grid.locate(&e.seg.b);
        if start == end {
            return vec![(start.col, start.row)];
        }
        // Amanatides–Woo voxel traversal from a to b, clamped to the
        // grid. Conservative: also registers the 8-neighbourhood step
        // corners so near-diagonal crossings are never missed.
        let mut out = Vec::new();
        let (w, h) = (self.grid.cell_width(), self.grid.cell_height());
        let origin_x = self.grid.domain.min_x;
        let origin_y = self.grid.domain.min_y;
        let g = self.grid.granularity as i64;
        let (mut cx, mut cy) = (start.col as i64, start.row as i64);
        let (ex, ey) = (end.col as i64, end.row as i64);
        let dx = e.seg.b.x - e.seg.a.x;
        let dy = e.seg.b.y - e.seg.a.y;
        let step_x: i64 = if dx > 0.0 { 1 } else { -1 };
        let step_y: i64 = if dy > 0.0 { 1 } else { -1 };
        // Parametric distance to the next vertical / horizontal cell
        // boundary, in units of the segment parameter t ∈ [0, 1].
        let next_boundary = |c: i64, step: i64, origin: f64, size: f64| -> f64 {
            origin + (c + i64::from(step > 0)) as f64 * size
        };
        let mut t_max_x = if dx == 0.0 {
            f64::INFINITY
        } else {
            (next_boundary(cx, step_x, origin_x, w) - e.seg.a.x) / dx
        };
        let mut t_max_y = if dy == 0.0 {
            f64::INFINITY
        } else {
            (next_boundary(cy, step_y, origin_y, h) - e.seg.a.y) / dy
        };
        let t_delta_x = if dx == 0.0 { f64::INFINITY } else { (w / dx).abs() };
        let t_delta_y = if dy == 0.0 { f64::INFINITY } else { (h / dy).abs() };
        let clamp = |v: i64| -> u32 { v.clamp(0, g - 1) as u32 };
        out.push((clamp(cx), clamp(cy)));
        // Bounded by the Manhattan cell distance; guards against float
        // edge cases looping forever.
        let max_steps = ((ex - cx).abs() + (ey - cy).abs() + 2) as usize * 2;
        for _ in 0..max_steps {
            if cx == ex && cy == ey {
                break;
            }
            if (t_max_x - t_max_y).abs() < 1e-12 {
                // Passing exactly through a cell corner: take both
                // adjacent cells to stay conservative.
                out.push((clamp(cx + step_x), clamp(cy)));
                out.push((clamp(cx), clamp(cy + step_y)));
                cx += step_x;
                cy += step_y;
                t_max_x += t_delta_x;
                t_max_y += t_delta_y;
            } else if t_max_x < t_max_y {
                cx += step_x;
                t_max_x += t_delta_x;
            } else {
                cy += step_y;
                t_max_y += t_delta_y;
            }
            out.push((clamp(cx), clamp(cy)));
        }
        // Both endpoint cells are always registered (guards clamped
        // out-of-domain endpoints and float boundary cases).
        out.push((end.col, end.row));
        out.sort_unstable();
        out.dedup();
        out
    }

    /// Adds one segment. Panics if the payload id is already present.
    pub fn insert(&mut self, e: SegmentEntry) {
        assert!(!self.locations.contains_key(&e.id), "duplicate segment id {}", e.id);
        let covered = self.covered_cells(&e);
        for &c in &covered {
            self.cells.entry(c).or_default().push(e);
        }
        self.locations.insert(e.id, covered);
        self.len += 1;
    }

    /// Removes the segment with payload `id`; returns whether it existed.
    pub fn remove(&mut self, id: u64) -> bool {
        let Some(covered) = self.locations.remove(&id) else {
            return false;
        };
        for c in covered {
            if let Some(v) = self.cells.get_mut(&c) {
                v.retain(|e| e.id != id);
                if v.is_empty() {
                    self.cells.remove(&c);
                }
            }
        }
        self.len -= 1;
        true
    }

    /// KNN with work counters.
    pub fn knn_with_stats(
        &self,
        q: &Point,
        k: usize,
        filter: Option<&dyn Fn(u64) -> bool>,
    ) -> (Vec<Neighbor>, SearchStats) {
        let mut top = TopK::new(k);
        let mut stats = SearchStats::default();
        if k == 0 || self.len == 0 {
            return (top.into_sorted(), stats);
        }
        let origin = self.grid.locate(q);
        let cell_min = self.grid.cell_width().min(self.grid.cell_height());
        let g = self.grid.granularity as i64;
        let max_ring = g; // enough to cover the whole grid from any origin
        let mut seen: HashSet<u64> = HashSet::new();
        for ring in 0..=max_ring {
            // Cheap lower bound on the distance from q to any ring-`ring`
            // cell: q may sit at its cell's edge, hence the −1.
            let lower = ((ring - 1).max(0)) as f64 * cell_min;
            if top.is_full() && lower > top.threshold() {
                break;
            }
            for (dc, dr) in ring_offsets(ring) {
                let col = origin.col as i64 + dc;
                let row = origin.row as i64 + dr;
                if col < 0 || row < 0 || col >= g || row >= g {
                    continue;
                }
                let key = (col as u32, row as u32);
                let Some(entries) = self.cells.get(&key) else {
                    continue;
                };
                let rect =
                    self.grid.cell_rect(trajdp_model::CellId::new(self.grid.level, key.0, key.1));
                if top.is_full() && rect.min_dist(q) > top.threshold() {
                    continue;
                }
                stats.cells_visited += 1;
                for e in entries {
                    if !seen.insert(e.id) {
                        continue;
                    }
                    if let Some(f) = filter {
                        if !f(e.id) {
                            continue;
                        }
                    }
                    stats.segments_checked += 1;
                    top.offer(e.id, e.seg.dist_to_point(q), e.seg);
                }
            }
        }
        (top.into_sorted(), stats)
    }
}

/// Offsets of the cells at Chebyshev distance exactly `ring` from the
/// origin (the origin itself for `ring == 0`).
fn ring_offsets(ring: i64) -> Vec<(i64, i64)> {
    if ring == 0 {
        return vec![(0, 0)];
    }
    let mut out = Vec::with_capacity((8 * ring) as usize);
    for d in -ring..=ring {
        out.push((d, -ring));
        out.push((d, ring));
    }
    for d in (-ring + 1)..ring {
        out.push((-ring, d));
        out.push((ring, d));
    }
    out
}

impl SegmentIndex for UniformGrid {
    fn knn(&self, q: &Point, k: usize) -> Vec<Neighbor> {
        self.knn_with_stats(q, k, None).0
    }

    fn knn_filtered(&self, q: &Point, k: usize, filter: &dyn Fn(u64) -> bool) -> Vec<Neighbor> {
        self.knn_with_stats(q, k, Some(filter)).0
    }

    fn len(&self) -> usize {
        self.len
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::linear::LinearScan;
    use trajdp_model::Segment;

    fn domain() -> Rect {
        Rect::new(0.0, 0.0, 1000.0, 1000.0)
    }

    fn entries() -> Vec<SegmentEntry> {
        let pts = [
            ((10.0, 10.0), (50.0, 40.0)),
            ((900.0, 900.0), (950.0, 990.0)),
            ((500.0, 500.0), (510.0, 500.0)),
            ((0.0, 999.0), (999.0, 0.0)), // long diagonal spanning many cells
            ((498.0, 505.0), (505.0, 498.0)),
        ];
        pts.iter()
            .enumerate()
            .map(|(i, &((ax, ay), (bx, by)))| {
                SegmentEntry::new(i as u64, Segment::new(Point::new(ax, ay), Point::new(bx, by)))
            })
            .collect()
    }

    #[test]
    fn ring_offsets_cover_square_perimeter() {
        assert_eq!(ring_offsets(0), vec![(0, 0)]);
        let r1 = ring_offsets(1);
        assert_eq!(r1.len(), 8);
        let r3 = ring_offsets(3);
        assert_eq!(r3.len(), 24);
        assert!(r3.iter().all(|&(a, b)| a.abs().max(b.abs()) == 3));
        // No duplicates.
        let set: HashSet<_> = r3.iter().collect();
        assert_eq!(set.len(), 24);
    }

    #[test]
    fn matches_linear_scan() {
        let ug = UniformGrid::from_entries(domain(), 32, entries());
        let lin = LinearScan::from_entries(entries());
        for q in [
            Point::new(0.0, 0.0),
            Point::new(505.0, 505.0),
            Point::new(999.0, 1.0),
            Point::new(250.0, 750.0),
        ] {
            for k in [1, 2, 5] {
                let a = ug.knn(&q, k);
                let b = lin.knn(&q, k);
                let da: Vec<f64> = a.iter().map(|n| n.dist).collect();
                let db: Vec<f64> = b.iter().map(|n| n.dist).collect();
                assert_eq!(da, db, "distance mismatch at q={q:?} k={k}");
            }
        }
    }

    #[test]
    fn long_segment_found_from_any_side() {
        let ug = UniformGrid::from_entries(domain(), 64, entries());
        // The diagonal (id 3) passes near (300,700): closest of all.
        let out = ug.knn(&Point::new(300.0, 700.0), 1);
        assert_eq!(out[0].id, 3);
    }

    #[test]
    fn remove_deregisters_from_all_cells() {
        let mut ug = UniformGrid::from_entries(domain(), 16, entries());
        assert!(ug.remove(3));
        assert!(!ug.remove(3));
        assert_eq!(ug.len(), 4);
        let out = ug.knn(&Point::new(300.0, 700.0), 5);
        assert!(out.iter().all(|n| n.id != 3));
    }

    #[test]
    fn filtered_search() {
        let ug = UniformGrid::from_entries(domain(), 16, entries());
        let out = ug.knn_filtered(&Point::new(505.0, 505.0), 1, &|id| id != 2 && id != 4);
        assert_eq!(out[0].id, 3);
    }

    #[test]
    fn empty_grid() {
        let ug = UniformGrid::new(domain(), 8);
        assert!(ug.is_empty());
        assert!(ug.knn(&Point::new(1.0, 1.0), 3).is_empty());
    }

    #[test]
    #[should_panic(expected = "duplicate segment id")]
    fn duplicate_id_panics() {
        let mut ug = UniformGrid::new(domain(), 8);
        let e = entries()[0];
        ug.insert(e);
        ug.insert(e);
    }
}

//! Naive linear-scan baseline: exact KNN by checking every segment.
//!
//! This is the `Linear` series of Figure 5 and the ground truth the
//! property tests compare every other index against.

use crate::entry::{Neighbor, SearchStats, SegmentEntry, TopK};
use crate::SegmentIndex;
use trajdp_model::Point;

/// A flat list of segments searched exhaustively.
#[derive(Debug, Clone, Default)]
pub struct LinearScan {
    entries: Vec<SegmentEntry>,
}

impl LinearScan {
    /// Creates an empty index.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds the index from entries.
    pub fn from_entries(entries: Vec<SegmentEntry>) -> Self {
        Self { entries }
    }

    /// Adds one segment.
    pub fn insert(&mut self, entry: SegmentEntry) {
        self.entries.push(entry);
    }

    /// Removes the segment with payload `id`; returns whether it existed.
    pub fn remove(&mut self, id: u64) -> bool {
        match self.entries.iter().position(|e| e.id == id) {
            Some(pos) => {
                self.entries.swap_remove(pos);
                true
            }
            None => false,
        }
    }

    /// KNN with work counters (every segment is always checked).
    pub fn knn_with_stats(
        &self,
        q: &Point,
        k: usize,
        filter: Option<&dyn Fn(u64) -> bool>,
    ) -> (Vec<Neighbor>, SearchStats) {
        let mut top = TopK::new(k);
        let mut stats = SearchStats::default();
        for e in &self.entries {
            if let Some(f) = filter {
                if !f(e.id) {
                    continue;
                }
            }
            stats.segments_checked += 1;
            top.offer(e.id, e.seg.dist_to_point(q), e.seg);
        }
        (top.into_sorted(), stats)
    }
}

impl SegmentIndex for LinearScan {
    fn knn(&self, q: &Point, k: usize) -> Vec<Neighbor> {
        self.knn_with_stats(q, k, None).0
    }

    fn knn_filtered(&self, q: &Point, k: usize, filter: &dyn Fn(u64) -> bool) -> Vec<Neighbor> {
        self.knn_with_stats(q, k, Some(filter)).0
    }

    fn len(&self) -> usize {
        self.entries.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use trajdp_model::Segment;

    fn entries() -> Vec<SegmentEntry> {
        (0..10)
            .map(|i| {
                let x = i as f64 * 10.0;
                SegmentEntry::new(i, Segment::new(Point::new(x, 0.0), Point::new(x + 5.0, 0.0)))
            })
            .collect()
    }

    #[test]
    fn knn_returns_nearest_sorted() {
        let idx = LinearScan::from_entries(entries());
        let out = idx.knn(&Point::new(12.0, 3.0), 3);
        assert_eq!(out.len(), 3);
        assert_eq!(out[0].id, 1); // segment [10,15] contains x=12 → dist 3
        assert_eq!(out[0].dist, 3.0);
        assert!(out.windows(2).all(|w| w[0].dist <= w[1].dist));
    }

    #[test]
    fn filter_excludes_ids() {
        let idx = LinearScan::from_entries(entries());
        let out = idx.knn_filtered(&Point::new(12.0, 3.0), 1, &|id| id != 1);
        assert_eq!(out[0].id, 0); // nearest allowed is segment [0,5] at x=5
    }

    #[test]
    fn insert_and_remove() {
        let mut idx = LinearScan::new();
        assert!(idx.is_empty());
        for e in entries() {
            idx.insert(e);
        }
        assert_eq!(idx.len(), 10);
        assert!(idx.remove(3));
        assert!(!idx.remove(3));
        assert_eq!(idx.len(), 9);
        assert!(idx.knn(&Point::new(32.0, 0.0), 10).iter().all(|n| n.id != 3));
    }

    #[test]
    fn k_larger_than_len() {
        let idx = LinearScan::from_entries(entries());
        assert_eq!(idx.knn(&Point::new(0.0, 0.0), 100).len(), 10);
    }

    #[test]
    fn stats_count_all_segments() {
        let idx = LinearScan::from_entries(entries());
        let (_, stats) = idx.knn_with_stats(&Point::new(0.0, 0.0), 1, None);
        assert_eq!(stats.segments_checked, 10);
    }
}

//! Shared search types: indexed entries, results, statistics, and a
//! totally ordered float wrapper for priority queues.

use trajdp_model::Segment;

/// A segment registered in an index, tagged with an opaque payload id.
///
/// Callers encode whatever they need in `id` — the core crate packs
/// `(trajectory slot, segment position)` for inter-trajectory search and
/// a plain segment position for intra-trajectory search.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SegmentEntry {
    /// Opaque payload identifying the segment to the caller.
    pub id: u64,
    /// Segment geometry.
    pub seg: Segment,
}

impl SegmentEntry {
    /// Creates an entry.
    pub const fn new(id: u64, seg: Segment) -> Self {
        Self { id, seg }
    }
}

/// One K-nearest-neighbour result.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Neighbor {
    /// Payload id of the matched segment.
    pub id: u64,
    /// Point–segment distance from the query (the insertion utility loss).
    pub dist: f64,
    /// Geometry of the matched segment.
    pub seg: Segment,
}

/// Work counters recorded during one search, used by the efficiency
/// experiments to compare pruning power across strategies.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SearchStats {
    /// Grid cells whose contents were examined.
    pub cells_visited: usize,
    /// Segments whose exact distance was computed.
    pub segments_checked: usize,
}

/// An `f64` with a total order (via `f64::total_cmp`), usable as a
/// priority in `BinaryHeap`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TotalF64(pub f64);

impl Eq for TotalF64 {}

impl PartialOrd for TotalF64 {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for TotalF64 {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.total_cmp(&other.0)
    }
}

/// Bounded max-heap collecting the K smallest distances seen so far.
///
/// `threshold()` exposes the current K-th smallest distance — the pruning
/// bound θ_K of Theorem 4.
#[derive(Debug, Clone)]
pub(crate) struct TopK {
    k: usize,
    heap: std::collections::BinaryHeap<(TotalF64, u64)>,
    segs: std::collections::HashMap<u64, Segment>,
}

impl TopK {
    pub fn new(k: usize) -> Self {
        Self {
            k,
            heap: std::collections::BinaryHeap::with_capacity(k + 1),
            segs: std::collections::HashMap::with_capacity(k + 1),
        }
    }

    /// Offers a candidate; keeps only the K nearest.
    pub fn offer(&mut self, id: u64, dist: f64, seg: Segment) {
        if self.k == 0 {
            return;
        }
        if self.heap.len() < self.k {
            self.heap.push((TotalF64(dist), id));
            self.segs.insert(id, seg);
        } else if dist < self.heap.peek().expect("non-empty at capacity").0 .0 {
            if let Some((_, evicted)) = self.heap.pop() {
                self.segs.remove(&evicted);
            }
            self.heap.push((TotalF64(dist), id));
            self.segs.insert(id, seg);
        }
    }

    /// Whether K candidates have been collected.
    pub fn is_full(&self) -> bool {
        self.heap.len() >= self.k
    }

    /// Current pruning threshold θ_K: the K-th smallest distance so far,
    /// or +∞ while fewer than K candidates exist.
    pub fn threshold(&self) -> f64 {
        if self.is_full() {
            self.heap.peek().map_or(f64::INFINITY, |(d, _)| d.0)
        } else {
            f64::INFINITY
        }
    }

    /// Consumes the collector, returning neighbours sorted by distance.
    pub fn into_sorted(self) -> Vec<Neighbor> {
        let segs = self.segs;
        let mut v: Vec<Neighbor> = self
            .heap
            .into_iter()
            .map(|(d, id)| Neighbor { id, dist: d.0, seg: segs[&id] })
            .collect();
        v.sort_by(|a, b| a.dist.total_cmp(&b.dist).then(a.id.cmp(&b.id)));
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use trajdp_model::Point;

    fn seg(x: f64) -> Segment {
        Segment::new(Point::new(x, 0.0), Point::new(x + 1.0, 0.0))
    }

    #[test]
    fn total_f64_orders_specials() {
        let mut v = [TotalF64(f64::INFINITY), TotalF64(-1.0), TotalF64(0.0), TotalF64(f64::NAN)];
        v.sort();
        assert_eq!(v[0].0, -1.0);
        assert_eq!(v[1].0, 0.0);
        assert!(v[2].0.is_infinite());
        assert!(v[3].0.is_nan()); // NaN sorts last under total_cmp
    }

    #[test]
    fn topk_keeps_k_smallest() {
        let mut t = TopK::new(3);
        for (i, d) in [5.0, 1.0, 4.0, 2.0, 3.0].iter().enumerate() {
            t.offer(i as u64, *d, seg(i as f64));
        }
        let out = t.into_sorted();
        let dists: Vec<f64> = out.iter().map(|n| n.dist).collect();
        assert_eq!(dists, vec![1.0, 2.0, 3.0]);
        let ids: Vec<u64> = out.iter().map(|n| n.id).collect();
        assert_eq!(ids, vec![1, 3, 4]);
    }

    #[test]
    fn topk_threshold_evolves() {
        let mut t = TopK::new(2);
        assert_eq!(t.threshold(), f64::INFINITY);
        t.offer(0, 9.0, seg(0.0));
        assert_eq!(t.threshold(), f64::INFINITY); // not yet full
        t.offer(1, 4.0, seg(1.0));
        assert_eq!(t.threshold(), 9.0);
        t.offer(2, 1.0, seg(2.0));
        assert_eq!(t.threshold(), 4.0);
    }

    #[test]
    fn topk_zero_k_collects_nothing() {
        let mut t = TopK::new(0);
        t.offer(0, 1.0, seg(0.0));
        assert!(t.into_sorted().is_empty());
    }

    #[test]
    fn topk_fewer_candidates_than_k() {
        let mut t = TopK::new(10);
        t.offer(5, 2.0, seg(0.0));
        let out = t.into_sorted();
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].id, 5);
    }

    #[test]
    fn topk_ties_break_by_id_in_output() {
        let mut t = TopK::new(2);
        t.offer(9, 1.0, seg(0.0));
        t.offer(3, 1.0, seg(1.0));
        let ids: Vec<u64> = t.into_sorted().iter().map(|n| n.id).collect();
        assert_eq!(ids, vec![3, 9]);
    }
}

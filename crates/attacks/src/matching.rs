//! HMM map-matching recovery attack (Newson & Krumm, SIGSPATIAL'09).
//!
//! Given an anonymized trajectory, the attacker matches every sample to
//! a road-network node and re-infers the route between consecutive
//! matches, reconstructing a plausible original trace:
//!
//! * **Emission**: a sample observes its true node through Gaussian GPS
//!   noise, `p(z | node) ∝ exp(−d(z, node)² / 2σ²)`.
//! * **Transition**: the network route length between consecutive
//!   matched nodes should resemble the crow-fly distance between their
//!   samples, `p ∝ exp(−|route − crowfly| / β)`.
//! * **Decoding**: Viterbi over the candidate lattice; broken lattices
//!   (no candidate within range) restart at the next sample.
//!
//! The recovered route then expands matched nodes via shortest paths —
//! the paper's §V-B3 measures how much of the original data such an
//! attacker can reconstruct from each anonymization model's output.

use std::collections::HashMap;
use trajdp_model::{Point, Sample, Trajectory};
use trajdp_synth::road::{NodeId, RoadNetwork};

/// A configured HMM map-matcher.
#[derive(Debug, Clone, Copy)]
pub struct HmmMapMatcher<'a> {
    /// The road network routes are inferred on.
    pub network: &'a RoadNetwork,
    /// GPS noise standard deviation σ, metres.
    pub sigma: f64,
    /// Transition tolerance β, metres.
    pub beta: f64,
    /// Candidate search radius around each sample, metres.
    pub radius: f64,
    /// Maximum candidates per sample.
    pub max_candidates: usize,
}

impl<'a> HmmMapMatcher<'a> {
    /// Creates a matcher with Newson–Krumm-style defaults scaled to the
    /// synthetic network (600 m edges).
    pub fn new(network: &'a RoadNetwork) -> Self {
        Self { network, sigma: 150.0, beta: 500.0, radius: 900.0, max_candidates: 4 }
    }

    fn candidates(&self, p: &Point) -> Vec<(NodeId, f64)> {
        let mut c = self.network.nodes_within(p, self.radius);
        c.sort_by(|a, b| a.1.total_cmp(&b.1));
        c.truncate(self.max_candidates);
        if c.is_empty() {
            // Always provide at least the nearest node so decoding can
            // continue.
            let n = self.network.nearest_node(p);
            c.push((n, self.network.node(n).dist(p)));
        }
        c
    }

    fn emission_log(&self, dist: f64) -> f64 {
        -(dist * dist) / (2.0 * self.sigma * self.sigma)
    }

    fn transition_log(&self, route: f64, crowfly: f64) -> f64 {
        -(route - crowfly).abs() / self.beta
    }

    /// Bounded multi-target Dijkstra: network distances from `from` to
    /// every node in `targets`, abandoning routes longer than `bound`.
    fn route_distances(
        &self,
        from: NodeId,
        targets: &[NodeId],
        bound: f64,
    ) -> HashMap<NodeId, f64> {
        use std::cmp::Reverse;
        use std::collections::BinaryHeap;
        let mut out = HashMap::with_capacity(targets.len());
        let mut pending: usize = targets.len();
        let mut dist: HashMap<NodeId, f64> = HashMap::new();
        let mut heap: BinaryHeap<Reverse<(u64, NodeId)>> = BinaryHeap::new();
        dist.insert(from, 0.0);
        heap.push(Reverse((0u64, from)));
        while let Some(Reverse((dbits, u))) = heap.pop() {
            let d = f64::from_bits(dbits);
            if d > *dist.get(&u).unwrap_or(&f64::INFINITY) {
                continue;
            }
            if targets.contains(&u) && !out.contains_key(&u) {
                out.insert(u, d);
                pending -= 1;
                if pending == 0 {
                    break;
                }
            }
            if d > bound {
                break;
            }
            for &v in self.network.neighbors(u) {
                let nd = d + self.network.node(u).dist(&self.network.node(v));
                if nd < *dist.get(&v).unwrap_or(&f64::INFINITY) {
                    dist.insert(v, nd);
                    heap.push(Reverse((nd.to_bits(), v)));
                }
            }
        }
        out
    }

    /// Matches each sample of `traj` to a network node via Viterbi.
    pub fn match_nodes(&self, traj: &Trajectory) -> Vec<NodeId> {
        if traj.is_empty() {
            return Vec::new();
        }
        let cands: Vec<Vec<(NodeId, f64)>> =
            traj.samples.iter().map(|s| self.candidates(&s.loc)).collect();
        let n = traj.len();
        // viterbi[i][j] = (score, backpointer into layer i−1)
        let mut score: Vec<Vec<(f64, usize)>> = Vec::with_capacity(n);
        score.push(cands[0].iter().map(|&(_, d)| (self.emission_log(d), usize::MAX)).collect());
        for i in 1..n {
            let crowfly = traj.samples[i - 1].loc.dist(&traj.samples[i].loc);
            let bound = crowfly * 4.0 + 4.0 * self.radius;
            let targets: Vec<NodeId> = cands[i].iter().map(|&(id, _)| id).collect();
            let mut layer = Vec::with_capacity(cands[i].len());
            // Route distances from each previous candidate to all current.
            let routes: Vec<HashMap<NodeId, f64>> = cands[i - 1]
                .iter()
                .map(|&(prev, _)| self.route_distances(prev, &targets, bound))
                .collect();
            for &(node, d) in &cands[i] {
                let em = self.emission_log(d);
                let mut best = (f64::NEG_INFINITY, usize::MAX);
                for (j, &(_, _)) in cands[i - 1].iter().enumerate() {
                    let prev_score = score[i - 1][j].0;
                    if prev_score == f64::NEG_INFINITY {
                        continue;
                    }
                    let tr = match routes[j].get(&node) {
                        Some(&r) => self.transition_log(r, crowfly),
                        None => -1e6, // unreachable within bound
                    };
                    let s = prev_score + tr;
                    if s > best.0 {
                        best = (s, j);
                    }
                }
                if best.1 == usize::MAX {
                    // Lattice break: restart scoring at this sample.
                    layer.push((em, usize::MAX));
                } else {
                    layer.push((best.0 + em, best.1));
                }
            }
            score.push(layer);
        }
        // Backtrack from the best final state.
        let mut idx = score[n - 1]
            .iter()
            .enumerate()
            .max_by(|a, b| a.1 .0.total_cmp(&b.1 .0))
            .map(|(i, _)| i)
            .unwrap_or(0);
        let mut matched = vec![0usize; n];
        for i in (0..n).rev() {
            matched[i] = idx;
            let bp = score[i][idx].1;
            idx = if bp == usize::MAX {
                // Restart point: pick the best state of the previous layer.
                if i > 0 {
                    score[i - 1]
                        .iter()
                        .enumerate()
                        .max_by(|a, b| a.1 .0.total_cmp(&b.1 .0))
                        .map(|(j, _)| j)
                        .unwrap_or(0)
                } else {
                    0
                }
            } else {
                bp
            };
        }
        matched.iter().enumerate().map(|(i, &j)| cands[i][j].0).collect()
    }

    /// Full recovery: match nodes, then expand consecutive matches into
    /// network shortest paths, producing the recovered trajectory with
    /// interpolated timestamps.
    pub fn recover(&self, traj: &Trajectory) -> Trajectory {
        let matched = self.match_nodes(traj);
        let mut samples: Vec<Sample> = Vec::with_capacity(traj.len());
        for (i, &node) in matched.iter().enumerate() {
            let t = traj.samples[i].t;
            let loc = self.network.node(node);
            if let Some(last) = samples.last() {
                if last.loc.key() == loc.key() {
                    continue; // collapse repeats at the same node
                }
                // Expand the route between the previous match and this one.
                let prev = self.network.nearest_node(&last.loc);
                if let Some(path) = self.network.shortest_path(prev, node) {
                    let hops = path.len().saturating_sub(1).max(1);
                    let t0 = last.t;
                    for (h, &mid) in path.iter().enumerate().skip(1) {
                        let tt = t0 + ((t - t0) as f64 * h as f64 / hops as f64).round() as i64;
                        samples.push(Sample::new(self.network.node(mid), tt));
                    }
                    continue;
                }
            }
            samples.push(Sample::new(loc, t));
        }
        Trajectory::new(traj.id, samples)
    }

    /// Recovers every trajectory of a dataset.
    pub fn recover_all(&self, trajs: &[Trajectory]) -> Vec<Trajectory> {
        trajs.iter().map(|t| self.recover(t)).collect()
    }
}

/// The naive recovery baseline: snap every sample to its nearest
/// network node independently, with no route inference and no
/// transition model. Cheap, but it cannot fill observation gaps and a
/// single displaced sample snaps to the wrong road — the contrast that
/// motivates HMM map-matching in the recovery experiment.
pub fn snap_recover(network: &RoadNetwork, traj: &Trajectory) -> Trajectory {
    let mut samples: Vec<Sample> = Vec::with_capacity(traj.len());
    for s in &traj.samples {
        let node = network.nearest_node(&s.loc);
        let loc = network.node(node);
        if samples.last().map(|p| p.loc.key()) == Some(loc.key()) {
            continue;
        }
        samples.push(Sample::new(loc, s.t));
    }
    Trajectory::new(traj.id, samples)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use trajdp_model::Dataset;
    use trajdp_synth::road::RoadNetworkConfig;
    use trajdp_synth::{generate, GeneratorConfig};

    fn world() -> trajdp_synth::generator::SyntheticWorld {
        generate(&GeneratorConfig {
            num_trajectories: 10,
            points_per_trajectory: 60,
            network: RoadNetworkConfig { nx: 12, ny: 12, ..Default::default() },
            num_hotspots: 4,
            anchors_per_agent: 3,
            seed: 7,
            ..Default::default()
        })
    }

    #[test]
    fn on_network_trajectories_recover_near_perfectly() {
        let w = world();
        let matcher = HmmMapMatcher::new(&w.network);
        let m = trajdp_metrics_recovery(&w.dataset, &matcher);
        assert!(m.0 > 0.95, "precision on clean data should be ≈1, got {}", m.0);
        assert!(m.1 > 0.95, "recall on clean data should be ≈1, got {}", m.1);
    }

    /// (precision, recall) of recovery over a dataset, route-set based.
    fn trajdp_metrics_recovery(ds: &Dataset, matcher: &HmmMapMatcher) -> (f64, f64) {
        let mut precision = 0.0;
        let mut recall = 0.0;
        for t in &ds.trajectories {
            let rec = matcher.recover(t);
            let truth: std::collections::HashSet<_> =
                t.samples.iter().map(|s| s.loc.key()).collect();
            let guess: std::collections::HashSet<_> =
                rec.samples.iter().map(|s| s.loc.key()).collect();
            let inter = truth.intersection(&guess).count() as f64;
            precision += inter / guess.len().max(1) as f64;
            recall += inter / truth.len().max(1) as f64;
        }
        let n = ds.len() as f64;
        (precision / n, recall / n)
    }

    #[test]
    fn gps_noise_is_tolerated() {
        let w = world();
        let mut rng = StdRng::seed_from_u64(1);
        let mut noisy = w.dataset.clone();
        for t in &mut noisy.trajectories {
            for s in &mut t.samples {
                s.loc = Point::new(
                    s.loc.x + rng.gen_range(-80.0..80.0),
                    s.loc.y + rng.gen_range(-80.0..80.0),
                );
            }
        }
        let matcher = HmmMapMatcher::new(&w.network);
        // Compare recovered routes against the *original* on-network data.
        let mut recall = 0.0;
        for (orig, noisy) in w.dataset.trajectories.iter().zip(&noisy.trajectories) {
            let rec = matcher.recover(noisy);
            let truth: std::collections::HashSet<_> =
                orig.samples.iter().map(|s| s.loc.key()).collect();
            let guess: std::collections::HashSet<_> =
                rec.samples.iter().map(|s| s.loc.key()).collect();
            recall += truth.intersection(&guess).count() as f64 / truth.len().max(1) as f64;
        }
        recall /= w.dataset.len() as f64;
        assert!(
            recall > 0.8,
            "80 m GPS noise should still recover most of the route, got {recall}"
        );
    }

    #[test]
    fn recovery_preserves_time_order_and_id() {
        let w = world();
        let matcher = HmmMapMatcher::new(&w.network);
        for t in &w.dataset.trajectories {
            let rec = matcher.recover(t);
            assert_eq!(rec.id, t.id);
            assert!(rec.samples.windows(2).all(|p| p[0].t <= p[1].t));
            assert!(!rec.is_empty());
        }
    }

    #[test]
    fn empty_trajectory_recovers_empty() {
        let w = world();
        let matcher = HmmMapMatcher::new(&w.network);
        let rec = matcher.recover(&Trajectory::new(9, vec![]));
        assert!(rec.is_empty());
        assert!(matcher.match_nodes(&Trajectory::new(9, vec![])).is_empty());
    }

    #[test]
    fn candidate_fallback_off_network() {
        let w = world();
        let matcher = HmmMapMatcher::new(&w.network);
        // A point far outside the network still yields one candidate.
        let far = Point::new(-50_000.0, -50_000.0);
        let c = matcher.candidates(&far);
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn sparse_observations_are_reexpanded() {
        // Drop every other sample (the stride-2 publication regime): the
        // recovered route should re-include most of the skipped nodes.
        let w = world();
        let matcher = HmmMapMatcher::new(&w.network);
        let mut recall = 0.0;
        for t in &w.dataset.trajectories {
            let sparse = Trajectory::new(t.id, t.samples.iter().step_by(2).copied().collect());
            let rec = matcher.recover(&sparse);
            let truth: std::collections::HashSet<_> =
                t.samples.iter().map(|s| s.loc.key()).collect();
            let guess: std::collections::HashSet<_> =
                rec.samples.iter().map(|s| s.loc.key()).collect();
            recall += truth.intersection(&guess).count() as f64 / truth.len().max(1) as f64;
        }
        recall /= w.dataset.len() as f64;
        assert!(recall > 0.7, "path inference should reconstruct most skipped nodes, got {recall}");
    }

    #[test]
    fn recover_all_matches_individual_calls() {
        let w = world();
        let matcher = HmmMapMatcher::new(&w.network);
        let all = matcher.recover_all(&w.dataset.trajectories[..3]);
        for (t, r) in w.dataset.trajectories[..3].iter().zip(&all) {
            assert_eq!(&matcher.recover(t), r);
        }
    }

    #[test]
    fn match_nodes_returns_one_node_per_sample() {
        let w = world();
        let matcher = HmmMapMatcher::new(&w.network);
        let t = &w.dataset.trajectories[0];
        let matched = matcher.match_nodes(t);
        assert_eq!(matched.len(), t.len());
        for &n in &matched {
            assert!(n < w.network.num_nodes());
        }
    }

    #[test]
    fn emission_and_transition_likelihoods_decay() {
        let w = world();
        let m = HmmMapMatcher::new(&w.network);
        assert!(m.emission_log(0.0) > m.emission_log(100.0));
        assert!(m.emission_log(100.0) > m.emission_log(500.0));
        // Route equal to crow-fly is the most plausible transition.
        assert!(m.transition_log(1000.0, 1000.0) > m.transition_log(2500.0, 1000.0));
        assert!(m.transition_log(1000.0, 1000.0) > m.transition_log(400.0, 1000.0));
    }

    #[test]
    fn snap_baseline_is_weaker_than_hmm_under_noise() {
        let w = world();
        let matcher = HmmMapMatcher::new(&w.network);
        let mut rng = StdRng::seed_from_u64(21);
        let mut hmm_recall = 0.0;
        let mut snap_recall = 0.0;
        for orig in &w.dataset.trajectories {
            // Sparse + noisy publication: every other node, ±150 m.
            let sparse = Trajectory::new(
                orig.id,
                orig.samples
                    .iter()
                    .step_by(2)
                    .map(|s| {
                        Sample::new(
                            Point::new(
                                s.loc.x + rng.gen_range(-150.0..150.0),
                                s.loc.y + rng.gen_range(-150.0..150.0),
                            ),
                            s.t,
                        )
                    })
                    .collect(),
            );
            let truth: std::collections::HashSet<_> =
                orig.samples.iter().map(|s| s.loc.key()).collect();
            let rec = |t: &Trajectory| -> f64 {
                let guess: std::collections::HashSet<_> =
                    t.samples.iter().map(|s| s.loc.key()).collect();
                truth.intersection(&guess).count() as f64 / truth.len().max(1) as f64
            };
            hmm_recall += rec(&matcher.recover(&sparse));
            snap_recall += rec(&crate::matching::snap_recover(&w.network, &sparse));
        }
        let n = w.dataset.len() as f64;
        hmm_recall /= n;
        snap_recall /= n;
        assert!(
            hmm_recall > snap_recall,
            "HMM ({hmm_recall:.3}) must beat naive snapping ({snap_recall:.3})"
        );
    }

    #[test]
    fn snap_recover_collapses_repeats() {
        let w = world();
        let loc = w.network.node(3);
        let t = Trajectory::new(
            0,
            vec![Sample::new(loc, 0), Sample::new(loc, 10), Sample::new(loc, 20)],
        );
        let rec = snap_recover(&w.network, &t);
        assert_eq!(rec.len(), 1);
    }

    #[test]
    fn single_sample_trajectory_recovers_single_node() {
        let w = world();
        let matcher = HmmMapMatcher::new(&w.network);
        let loc = w.network.node(5);
        let t = Trajectory::new(1, vec![Sample::new(loc, 0)]);
        let rec = matcher.recover(&t);
        assert_eq!(rec.len(), 1);
        assert_eq!(rec.samples[0].loc.key(), loc.key());
    }
}

//! Signature-based re-identification (linkage) attack.
//!
//! Following the paper's threat model, the adversary holds the original
//! dataset, learns one signature per object, then receives the
//! anonymized release (object labels removed) and links each anonymized
//! trajectory back to an object by maximum signature similarity. The
//! **linking accuracy** (LA) is the fraction of correct links — lower
//! LA means better privacy.
//!
//! Signatures are sparse feature vectors compared by cosine similarity:
//!
//! * **Spatial** — top-k grid cells weighted by
//!   representativeness × distinctiveness (the same weighting that
//!   drives the defence, making this the strongest spatial adversary);
//! * **Temporal** — hour-of-day visit histogram;
//! * **Spatiotemporal** — (cell × hour-bucket) features;
//! * **Sequential** — cell-transition bigrams.

use std::collections::HashMap;
use trajdp_model::{Dataset, GridLevel, Trajectory};

/// One sparse signature vector per object.
pub type SignatureSet = Vec<HashMap<u64, f64>>;

/// The signature family used by the attack (the LAs/LAt/LAst/LAsq
/// variants of Table II).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SignatureType {
    /// Top-k weighted grid cells (LAs).
    Spatial,
    /// Hour-of-day visit histogram (LAt).
    Temporal,
    /// Cell × hour-bucket features (LAst).
    Spatiotemporal,
    /// Cell-transition bigrams (LAsq).
    Sequential,
}

/// A configured linkage attack.
#[derive(Debug, Clone, Copy)]
pub struct LinkingAttack {
    /// Signature family.
    pub signature: SignatureType,
    /// Grid granularity used to discretize locations.
    pub granularity: u32,
    /// Probe signature size: the number of top-weighted features the
    /// attacker extracts from each anonymized trajectory (ignored by the
    /// temporal signature, which is a fixed 24-bin histogram). Matches
    /// the paper's signature size m = 10 by default.
    pub k: usize,
    /// Trained profile size. The attacker holds the original data and
    /// does not know how many points the defender protected, so it
    /// trains a richer profile than it probes with (default `2k`).
    pub train_k: usize,
}

impl LinkingAttack {
    /// Creates an attack with the paper-style defaults
    /// (`k = 10`, `train_k = 20`).
    pub fn new(signature: SignatureType) -> Self {
        Self { signature, granularity: 64, k: 10, train_k: 20 }
    }

    fn cell_feature(grid: &GridLevel, t: &Trajectory) -> HashMap<u64, f64> {
        let mut counts: HashMap<u64, f64> = HashMap::new();
        for s in &t.samples {
            let c = grid.locate(&s.loc);
            *counts.entry(u64::from(c.col) << 32 | u64::from(c.row)).or_insert(0.0) += 1.0;
        }
        counts
    }

    fn temporal_feature(t: &Trajectory) -> HashMap<u64, f64> {
        let mut h: HashMap<u64, f64> = HashMap::new();
        for s in &t.samples {
            let hour = (s.t.rem_euclid(86_400) / 3_600) as u64;
            *h.entry(hour).or_insert(0.0) += 1.0;
        }
        h
    }

    fn st_feature(grid: &GridLevel, t: &Trajectory) -> HashMap<u64, f64> {
        let mut h: HashMap<u64, f64> = HashMap::new();
        for s in &t.samples {
            let c = grid.locate(&s.loc);
            // 6 four-hour buckets keep the feature space dense enough to
            // survive moderate time shifts.
            let bucket = (s.t.rem_euclid(86_400) / 14_400) as u64;
            let key = (u64::from(c.col) << 35) | (u64::from(c.row) << 3) | bucket;
            *h.entry(key).or_insert(0.0) += 1.0;
        }
        h
    }

    fn seq_feature(grid: &GridLevel, t: &Trajectory) -> HashMap<u64, f64> {
        let mut cells: Vec<u64> = Vec::with_capacity(t.len());
        for s in &t.samples {
            let c = grid.locate(&s.loc);
            let id = u64::from(c.col) << 16 | u64::from(c.row);
            if cells.last() != Some(&id) {
                cells.push(id);
            }
        }
        let mut h: HashMap<u64, f64> = HashMap::new();
        for w in cells.windows(2) {
            *h.entry(w[0] << 32 | w[1]).or_insert(0.0) += 1.0;
        }
        h
    }

    /// Raw (unweighted) feature counts for one trajectory.
    fn features(&self, grid: &GridLevel, t: &Trajectory) -> HashMap<u64, f64> {
        match self.signature {
            SignatureType::Spatial => Self::cell_feature(grid, t),
            SignatureType::Temporal => Self::temporal_feature(t),
            SignatureType::Spatiotemporal => Self::st_feature(grid, t),
            SignatureType::Sequential => Self::seq_feature(grid, t),
        }
    }

    /// Weighted signature vectors for every trajectory of a dataset:
    /// feature counts weighted by `(count/|τ|) · ln(|D|/df)` (df =
    /// number of objects exhibiting the feature), truncated to the
    /// top-`keep` features.
    fn weighted_signatures(&self, ds: &Dataset, keep: usize) -> Vec<HashMap<u64, f64>> {
        let grid = GridLevel::new(ds.domain, self.granularity, 0);
        let raw: Vec<HashMap<u64, f64>> =
            ds.trajectories.iter().map(|t| self.features(&grid, t)).collect();
        // Document frequency of each feature.
        let mut df: HashMap<u64, f64> = HashMap::new();
        for f in &raw {
            for &k in f.keys() {
                *df.entry(k).or_insert(0.0) += 1.0;
            }
        }
        let n = ds.len().max(1) as f64;
        raw.into_iter()
            .zip(&ds.trajectories)
            .map(|(f, t)| {
                let len = t.len().max(1) as f64;
                let mut weighted: Vec<(u64, f64)> = f
                    .into_iter()
                    .map(|(k, c)| (k, (c / len) * (n / df[&k]).max(1.0).ln().max(1e-6)))
                    .collect();
                weighted.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
                if self.signature != SignatureType::Temporal {
                    weighted.truncate(keep);
                }
                weighted.into_iter().collect()
            })
            .collect()
    }

    /// Learns the per-object signatures from a training dataset.
    pub fn train(&self, ds: &Dataset) -> Vec<HashMap<u64, f64>> {
        self.weighted_signatures(ds, self.train_k)
    }

    /// Links every anonymized trajectory to the most similar trained
    /// signature; returns the matched object index per trajectory.
    ///
    /// Probe signatures are always truncated to the top-`k` features —
    /// the signature the attacker can extract from the release.
    pub fn link(&self, trained: &[HashMap<u64, f64>], anonymized: &Dataset) -> Vec<usize> {
        let probes = self.weighted_signatures(anonymized, self.k);
        probes
            .iter()
            .map(|probe| {
                trained
                    .iter()
                    .enumerate()
                    .map(|(i, sig)| (i, cosine(sig, probe)))
                    .max_by(|a, b| a.1.total_cmp(&b.1).then(b.0.cmp(&a.0)))
                    .map(|(i, _)| i)
                    .unwrap_or(0)
            })
            .collect()
    }

    /// Ranks every trained object for one probe, most similar first.
    pub fn rank(&self, trained: &[HashMap<u64, f64>], probe: &HashMap<u64, f64>) -> Vec<usize> {
        let mut scored: Vec<(f64, usize)> =
            trained.iter().enumerate().map(|(i, sig)| (cosine(sig, probe), i)).collect();
        scored.sort_by(|a, b| b.0.total_cmp(&a.0).then(a.1.cmp(&b.1)));
        scored.into_iter().map(|(_, i)| i).collect()
    }

    /// End-to-end linking accuracy: train on `original`, attack
    /// `anonymized` (object order preserved), report the fraction of
    /// trajectories linked back to their true object.
    pub fn linking_accuracy(&self, original: &Dataset, anonymized: &Dataset) -> f64 {
        assert_eq!(original.len(), anonymized.len(), "datasets must contain the same objects");
        if original.is_empty() {
            return 0.0;
        }
        let trained = self.train(original);
        let links = self.link(&trained, anonymized);
        let hits = links.iter().enumerate().filter(|(truth, &guess)| *truth == guess).count();
        hits as f64 / original.len() as f64
    }

    /// Success@k: the fraction of objects whose true identity appears in
    /// the attacker's `top` most similar candidates — a weaker adversary
    /// goal than exact linking, useful for risk curves.
    pub fn success_at(&self, original: &Dataset, anonymized: &Dataset, top: usize) -> f64 {
        assert_eq!(original.len(), anonymized.len(), "datasets must contain the same objects");
        assert!(top >= 1, "top must be at least 1");
        if original.is_empty() {
            return 0.0;
        }
        let trained = self.train(original);
        let probes = self.weighted_signatures(anonymized, self.k);
        let hits = probes
            .iter()
            .enumerate()
            .filter(|(truth, probe)| {
                self.rank(&trained, probe).iter().take(top).any(|g| g == truth)
            })
            .count();
        hits as f64 / original.len() as f64
    }
}

/// An ensemble adversary that combines several signature families by
/// rank fusion (Borda count): each family ranks the candidates and the
/// candidate with the best combined rank wins. Strictly stronger than
/// any single family when their errors are uncorrelated.
#[derive(Debug, Clone)]
pub struct EnsembleAttack {
    /// The member attacks; all are trained on the same original data.
    pub members: Vec<LinkingAttack>,
}

impl EnsembleAttack {
    /// Creates the four-family ensemble with default parameters.
    pub fn all_signatures() -> Self {
        Self {
            members: vec![
                LinkingAttack::new(SignatureType::Spatial),
                LinkingAttack::new(SignatureType::Temporal),
                LinkingAttack::new(SignatureType::Spatiotemporal),
                LinkingAttack::new(SignatureType::Sequential),
            ],
        }
    }

    /// Linking accuracy of the fused ranking.
    pub fn linking_accuracy(&self, original: &Dataset, anonymized: &Dataset) -> f64 {
        assert_eq!(original.len(), anonymized.len(), "datasets must contain the same objects");
        assert!(!self.members.is_empty(), "ensemble needs at least one member");
        let n = original.len();
        if n == 0 {
            return 0.0;
        }
        // Per-member: trained profiles + probe signatures.
        let prepared: Vec<(SignatureSet, SignatureSet)> = self
            .members
            .iter()
            .map(|a| (a.train(original), a.weighted_signatures(anonymized, a.k)))
            .collect();
        let mut hits = 0usize;
        for truth in 0..n {
            let mut borda = vec![0usize; n];
            for (member, (trained, probes)) in self.members.iter().zip(&prepared) {
                for (rank_pos, &candidate) in
                    member.rank(trained, &probes[truth]).iter().enumerate()
                {
                    borda[candidate] += rank_pos;
                }
            }
            let best = borda
                .iter()
                .enumerate()
                .min_by_key(|&(i, &score)| (score, i))
                .map(|(i, _)| i)
                .expect("non-empty candidate set");
            if best == truth {
                hits += 1;
            }
        }
        hits as f64 / n as f64
    }
}

/// Cosine similarity of two sparse vectors.
fn cosine(a: &HashMap<u64, f64>, b: &HashMap<u64, f64>) -> f64 {
    if a.is_empty() || b.is_empty() {
        return 0.0;
    }
    let (small, large) = if a.len() <= b.len() { (a, b) } else { (b, a) };
    let dot: f64 = small.iter().filter_map(|(k, v)| large.get(k).map(|w| v * w)).sum();
    let na: f64 = a.values().map(|v| v * v).sum::<f64>().sqrt();
    let nb: f64 = b.values().map(|v| v * v).sum::<f64>().sqrt();
    if na == 0.0 || nb == 0.0 {
        0.0
    } else {
        dot / (na * nb)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use trajdp_model::{Point, Rect, Sample};

    const ALL: [SignatureType; 4] = [
        SignatureType::Spatial,
        SignatureType::Temporal,
        SignatureType::Spatiotemporal,
        SignatureType::Sequential,
    ];

    /// Objects with distinctive home regions, visit times, and routes.
    fn distinctive_dataset(n: usize, seed: u64) -> Dataset {
        let mut rng = StdRng::seed_from_u64(seed);
        let trajs = (0..n)
            .map(|id| {
                // Each object lives in its own 100 m neighbourhood and is
                // active in its own time window.
                let cx = (id % 8) as f64 * 120.0 + 10.0;
                let cy = (id / 8) as f64 * 120.0 + 10.0;
                let t0 = (id as i64 % 24) * 3_600;
                let samples = (0..60)
                    .map(|i| {
                        let x = cx + rng.gen_range(0.0..80.0);
                        let y = cy + rng.gen_range(0.0..80.0);
                        Sample::new(Point::new(x, y), t0 + i as i64 * 60)
                    })
                    .collect();
                Trajectory::new(id as u64, samples)
            })
            .collect();
        Dataset::new(Rect::new(0.0, 0.0, 1000.0, 1000.0), trajs)
    }

    #[test]
    fn identity_release_is_fully_linkable() {
        // 24 objects so each gets a unique hour window (the temporal
        // signature cannot distinguish objects that share one).
        let d = distinctive_dataset(24, 1);
        for sig in ALL {
            let attack = LinkingAttack::new(sig);
            let la = attack.linking_accuracy(&d, &d);
            assert!(la > 0.9, "{sig:?}: identity LA should be ≈1, got {la}");
        }
    }

    #[test]
    fn shuffled_objects_break_linking() {
        // Swap every object's data with another region's: links must fail.
        let d = distinctive_dataset(30, 2);
        let mut anon = d.clone();
        anon.trajectories.rotate_left(1);
        for (i, t) in anon.trajectories.iter_mut().enumerate() {
            t.id = i as u64;
        }
        let attack = LinkingAttack::new(SignatureType::Spatial);
        let la = attack.linking_accuracy(&d, &anon);
        assert!(la < 0.2, "rotated data should not link, got {la}");
    }

    #[test]
    fn spatial_linking_survives_small_noise() {
        let d = distinctive_dataset(30, 3);
        let mut rng = StdRng::seed_from_u64(4);
        let mut anon = d.clone();
        for t in &mut anon.trajectories {
            for s in &mut t.samples {
                s.loc = Point::new(
                    s.loc.x + rng.gen_range(-5.0..5.0),
                    s.loc.y + rng.gen_range(-5.0..5.0),
                );
            }
        }
        let attack = LinkingAttack::new(SignatureType::Spatial);
        let la = attack.linking_accuracy(&d, &anon);
        assert!(la > 0.8, "5 m jitter within 15 m cells should still link, got {la}");
    }

    #[test]
    fn removing_distinctive_cells_hurts_spatial_linking() {
        let d = distinctive_dataset(30, 5);
        // Coarse "anonymization": collapse everyone onto one hotspot.
        let mut anon = d.clone();
        for t in &mut anon.trajectories {
            for s in &mut t.samples {
                s.loc = Point::new(500.0, 500.0);
            }
        }
        let attack = LinkingAttack::new(SignatureType::Spatial);
        let la = attack.linking_accuracy(&d, &anon);
        assert!(la < 0.2, "all-identical spatial data must not link, got {la}");
    }

    #[test]
    fn temporal_signature_ignores_space() {
        let d = distinctive_dataset(24, 6);
        // Move everyone spatially but keep times: temporal links persist.
        let mut anon = d.clone();
        for t in &mut anon.trajectories {
            for s in &mut t.samples {
                s.loc = Point::new(s.loc.x + 400.0, s.loc.y);
            }
        }
        let attack = LinkingAttack::new(SignatureType::Temporal);
        let la = attack.linking_accuracy(&d, &anon);
        assert!(la > 0.8, "temporal LA should survive spatial shifts, got {la}");
        let spatial = LinkingAttack::new(SignatureType::Spatial).linking_accuracy(&d, &anon);
        assert!(spatial < la, "spatial LA should suffer more than temporal");
    }

    #[test]
    fn cosine_basics() {
        let a: HashMap<u64, f64> = [(1, 1.0), (2, 1.0)].into();
        let b: HashMap<u64, f64> = [(1, 1.0), (2, 1.0)].into();
        let c: HashMap<u64, f64> = [(3, 1.0)].into();
        assert!((cosine(&a, &b) - 1.0).abs() < 1e-12);
        assert_eq!(cosine(&a, &c), 0.0);
        assert_eq!(cosine(&a, &HashMap::new()), 0.0);
    }

    #[test]
    fn empty_dataset_accuracy_zero() {
        let d = Dataset::new(Rect::new(0.0, 0.0, 1.0, 1.0), vec![]);
        let attack = LinkingAttack::new(SignatureType::Spatial);
        assert_eq!(attack.linking_accuracy(&d, &d), 0.0);
        assert_eq!(attack.success_at(&d, &d, 3), 0.0);
        assert_eq!(EnsembleAttack::all_signatures().linking_accuracy(&d, &d), 0.0);
    }

    #[test]
    fn success_at_k_is_monotone_in_k() {
        let d = distinctive_dataset(20, 11);
        let mut anon = d.clone();
        // Perturb so exact linking is imperfect.
        let mut rng = StdRng::seed_from_u64(12);
        for t in &mut anon.trajectories {
            for s in &mut t.samples {
                s.loc = Point::new(s.loc.x + rng.gen_range(-60.0..60.0), s.loc.y);
            }
        }
        let attack = LinkingAttack::new(SignatureType::Spatial);
        let exact = attack.linking_accuracy(&d, &anon);
        let s1 = attack.success_at(&d, &anon, 1);
        let s3 = attack.success_at(&d, &anon, 3);
        let s10 = attack.success_at(&d, &anon, 10);
        assert!((s1 - exact).abs() < 1e-12, "success@1 must equal exact linking");
        assert!(s1 <= s3 && s3 <= s10, "success@k must be monotone: {s1} {s3} {s10}");
        assert!(s10 <= 1.0);
    }

    #[test]
    fn rank_puts_best_match_first() {
        let d = distinctive_dataset(10, 13);
        let attack = LinkingAttack::new(SignatureType::Spatial);
        let trained = attack.train(&d);
        // Probe with object 4's own signature: rank 0 must be object 4.
        let ranks = attack.rank(&trained, &trained[4]);
        assert_eq!(ranks[0], 4);
        assert_eq!(ranks.len(), 10);
    }

    #[test]
    fn ensemble_links_identity_perfectly() {
        let d = distinctive_dataset(24, 14);
        let la = EnsembleAttack::all_signatures().linking_accuracy(&d, &d);
        assert!(la > 0.9, "ensemble identity LA should be ≈1, got {la}");
    }

    #[test]
    fn ensemble_beats_or_matches_weak_member_under_spatial_shift() {
        // Shift space but keep time: the spatial member degrades, but the
        // temporal member keeps the ensemble strong.
        let d = distinctive_dataset(24, 15);
        let mut anon = d.clone();
        for t in &mut anon.trajectories {
            for s in &mut t.samples {
                s.loc = Point::new(s.loc.x + 350.0, s.loc.y);
            }
        }
        let spatial = LinkingAttack::new(SignatureType::Spatial).linking_accuracy(&d, &anon);
        let ensemble = EnsembleAttack::all_signatures().linking_accuracy(&d, &anon);
        assert!(
            ensemble >= spatial,
            "ensemble {ensemble} should not be weaker than its degraded member {spatial}"
        );
    }
}

//! # trajdp-attacks
//!
//! The two adversaries of the paper's evaluation (§V):
//!
//! * [`linking`] — the re-identification (linkage) attack in the style
//!   of Jin et al., ICDE'19 \[3\]: per-object signatures are learnt from
//!   the original dataset and matched against the anonymized release.
//!   Four signature families are provided — spatial, temporal,
//!   spatiotemporal, and sequential — giving the LAs/LAt/LAst/LAsq
//!   columns of Table II.
//! * [`matching`] — the recovery attack: HMM map-matching after Newson
//!   & Krumm \[34\] (Gaussian emissions, route-vs-crow-fly transition
//!   likelihood, Viterbi decoding) over the road network, reconstructing
//!   plausible original routes from anonymized trajectories.

#![forbid(unsafe_code)]

pub mod linking;
pub mod matching;

pub use linking::{EnsembleAttack, LinkingAttack, SignatureType};
pub use matching::{snap_recover, HmmMapMatcher};

//! Serial pipeline vs. the sharded executor at 1/2/4/8 workers on the
//! T-Drive synth profile. Because the executor is bit-identical to the
//! serial path, any spread between the bars is pure scheduling cost /
//! parallel speedup — the work is the same.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use trajdp_bench::standard_world;
use trajdp_core::freq::FrequencyAnalysis;
use trajdp_core::global::{perturb_tf_streamed, realize_tf};
use trajdp_core::{anonymize, FreqDpConfig, IndexKind, Model};
use trajdp_server::anonymize_parallel;

fn bench_serial_vs_sharded(c: &mut Criterion) {
    let world = standard_world(80, 120, 47);
    let cfg = FreqDpConfig { m: 10, ..Default::default() };
    let mut group = c.benchmark_group("parallel_pipeline");
    group.sample_size(10);
    group.bench_function("serial", |b| {
        b.iter(|| black_box(anonymize(&world.dataset, Model::Combined, &cfg).expect("valid")))
    });
    for workers in [1usize, 2, 4, 8] {
        group.bench_with_input(BenchmarkId::new("sharded", workers), &workers, |b, &w| {
            b.iter(|| {
                black_box(
                    anonymize_parallel(&world.dataset, Model::Combined, &cfg, w).expect("valid"),
                )
            })
        });
    }
    group.finish();
}

fn bench_phase_split(c: &mut Criterion) {
    // The local phase is embarrassingly parallel; the global phase only
    // shards its perturbation. Benchmarked separately so regressions
    // are attributable.
    let world = standard_world(80, 120, 47);
    let cfg = FreqDpConfig { m: 10, ..Default::default() };
    let mut group = c.benchmark_group("parallel_phases");
    group.sample_size(10);
    for workers in [1usize, 8] {
        group.bench_with_input(BenchmarkId::new("local-only", workers), &workers, |b, &w| {
            b.iter(|| {
                black_box(
                    anonymize_parallel(&world.dataset, Model::PureLocal, &cfg, w).expect("valid"),
                )
            })
        });
        group.bench_with_input(BenchmarkId::new("global-only", workers), &workers, |b, &w| {
            b.iter(|| {
                black_box(
                    anonymize_parallel(&world.dataset, Model::PureGlobal, &cfg, w).expect("valid"),
                )
            })
        });
    }
    group.finish();
}

fn bench_global_modification(c: &mut Criterion) {
    // The dominant cost of the pipeline: `GlobalEdit` in isolation
    // (perturbation precomputed), at several worker counts. The output
    // is byte-identical across the bars; the spread is pure parallel
    // speedup of the modification phase.
    let world = standard_world(160, 130, 53);
    let fa = FrequencyAnalysis::compute(&world.dataset, 10);
    let perturbed = perturb_tf_streamed(&fa, 0.4, 99).expect("valid epsilon");
    let mut group = c.benchmark_group("global_modification");
    group.sample_size(10);
    for workers in [1usize, 2, 4, 8] {
        group.bench_with_input(BenchmarkId::new("realize-tf", workers), &workers, |b, &w| {
            b.iter(|| {
                black_box(realize_tf(
                    &world.dataset,
                    &fa,
                    &perturbed,
                    IndexKind::default(),
                    true,
                    w,
                ))
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_serial_vs_sharded, bench_phase_split, bench_global_modification);
criterion_main!(benches);

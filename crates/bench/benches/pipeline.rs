//! End-to-end benchmarks of the three published models (PureG, PureL,
//! GL) and of the recovery attack they must withstand.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use trajdp_attacks::HmmMapMatcher;
use trajdp_bench::standard_world;
use trajdp_core::{anonymize, FreqDpConfig, Model};

fn bench_models(c: &mut Criterion) {
    let world = standard_world(60, 100, 41);
    let cfg = FreqDpConfig { m: 10, ..Default::default() };
    let mut group = c.benchmark_group("anonymize");
    group.sample_size(10);
    for (name, model) in
        [("PureG", Model::PureGlobal), ("PureL", Model::PureLocal), ("GL", Model::Combined)]
    {
        group.bench_with_input(BenchmarkId::from_parameter(name), &model, |b, &m| {
            b.iter(|| black_box(anonymize(&world.dataset, m, &cfg).expect("valid config")))
        });
    }
    group.finish();
}

fn bench_recovery(c: &mut Criterion) {
    let world = standard_world(10, 80, 42);
    let matcher = HmmMapMatcher::new(&world.network);
    let mut group = c.benchmark_group("recovery-attack");
    group.sample_size(10);
    group.bench_function("hmm-recover-trajectory", |b| {
        let t = &world.dataset.trajectories[0];
        b.iter(|| black_box(matcher.recover(t)))
    });
    group.finish();
}

criterion_group!(benches, bench_models, bench_recovery);
criterion_main!(benches);

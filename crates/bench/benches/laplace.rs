//! Microbenchmarks of the Laplace machinery: zero-mean vs shifted
//! sampling, and the full TF/PF perturbation passes.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use trajdp_bench::standard_world;
use trajdp_core::freq::FrequencyAnalysis;
use trajdp_core::global::perturb_tf;
use trajdp_core::local::{perturb_pf, select_point_list, LocalOptions};
use trajdp_mech::{Laplace, LaplaceMechanism};

fn bench_sampling(c: &mut Criterion) {
    let mut g = c.benchmark_group("laplace-sampling");
    let zero = Laplace::new(0.0, 2.0).expect("valid");
    let shifted = Laplace::new(-7.0, 2.0).expect("valid");
    g.bench_function("zero-mean", |b| {
        let mut rng = StdRng::seed_from_u64(1);
        b.iter(|| black_box(zero.sample(&mut rng)))
    });
    g.bench_function("shifted-mean", |b| {
        let mut rng = StdRng::seed_from_u64(1);
        b.iter(|| black_box(shifted.sample(&mut rng)))
    });
    let mech = LaplaceMechanism::new(0.5, 1.0).expect("valid");
    g.bench_function("mechanism-randomize", |b| {
        let mut rng = StdRng::seed_from_u64(2);
        b.iter(|| black_box(mech.randomize(black_box(13.0), &mut rng)))
    });
    g.finish();
}

fn bench_perturbation(c: &mut Criterion) {
    let world = standard_world(50, 100, 7);
    let analysis = FrequencyAnalysis::compute(&world.dataset, 10);
    let mut g = c.benchmark_group("frequency-perturbation");
    g.bench_function("global-tf", |b| {
        let mut rng = StdRng::seed_from_u64(3);
        b.iter(|| black_box(perturb_tf(&analysis, 0.5, &mut rng).expect("valid")))
    });
    g.bench_function("local-pf-per-trajectory", |b| {
        let mut rng = StdRng::seed_from_u64(4);
        let traj = &world.dataset.trajectories[0];
        let list = select_point_list(traj, &analysis, 0, &mut rng);
        b.iter(|| {
            black_box(
                perturb_pf(traj, &list, 10, 0.5, LocalOptions::default(), &mut rng).expect("valid"),
            )
        })
    });
    g.finish();
}

criterion_group!(benches, bench_sampling, bench_perturbation);
criterion_main!(benches);

//! Benchmarks of the modification phase in isolation: intra-trajectory
//! (local) vs inter-trajectory (global) editing under the HG+ index —
//! the paper's observation that global alteration dominates (~90% of
//! total time, Figure 5 right) — plus the chunked parallel scans of the
//! inter-trajectory selection at several worker counts.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use trajdp_bench::standard_world;
use trajdp_core::editor::{DatasetEditor, TrajectoryEditor};
use trajdp_core::IndexKind;
use trajdp_model::{Point, Trajectory};

fn bench_intra(c: &mut Criterion) {
    let world = standard_world(20, 200, 31);
    let traj = world.dataset.trajectories[0].clone();
    let domain = world.dataset.domain;
    let target = traj.samples[traj.len() / 2].loc;
    let off_target = Point::new(target.x + 210.0, target.y + 140.0);
    c.bench_function("intra-insert-5", |b| {
        b.iter(|| {
            let mut ed = TrajectoryEditor::new(traj.clone(), IndexKind::default(), domain);
            black_box(ed.insert_occurrences(off_target, 5));
        })
    });
    c.bench_function("intra-delete-all", |b| {
        let key = target.key();
        b.iter(|| {
            let mut ed = TrajectoryEditor::new(traj.clone(), IndexKind::default(), domain);
            black_box(ed.delete_occurrences(key, usize::MAX));
        })
    });
}

fn bench_inter(c: &mut Criterion) {
    let world = standard_world(60, 100, 32);
    let trajs = world.dataset.trajectories.clone();
    let domain = world.dataset.domain;
    let q = world.node_point(world.hotspots[0]);
    let off = Point::new(q.x + 150.0, q.y + 150.0);
    c.bench_function("inter-increase-tf-10", |b| {
        b.iter(|| {
            let mut ed = DatasetEditor::new(trajs.clone(), IndexKind::default(), domain);
            black_box(ed.increase_tf(off, 10));
        })
    });
    c.bench_function("inter-decrease-tf-10", |b| {
        let key = q.key();
        b.iter(|| {
            let mut ed = DatasetEditor::new(trajs.clone(), IndexKind::default(), domain);
            black_box(ed.decrease_tf(key, 10));
        })
    });
}

fn bench_inter_workers(c: &mut Criterion) {
    // The large config: enough long trajectories that the exact-loss
    // candidate scans dominate. A linear index keeps the per-iteration
    // editor build cheap (neither parallelized scan consults the
    // segment index), so the worker-count spread reflects the scans.
    let world = standard_world(320, 150, 34);
    let trajs = world.dataset.trajectories.clone();
    let domain = world.dataset.domain;
    let q = world.node_point(world.hotspots[0]);
    let off = Point::new(q.x + 260.0, q.y + 170.0);
    // Plant a common point so the decrease scan has a wide candidate set.
    let with_shared: Vec<Trajectory> = trajs
        .iter()
        .cloned()
        .map(|mut t| {
            t.push_point(q);
            t
        })
        .collect();
    let mut group = c.benchmark_group("inter-modification-workers");
    group.sample_size(10);
    for workers in [1usize, 2, 4, 8] {
        group.bench_with_input(BenchmarkId::new("increase-bbox-12", workers), &workers, |b, &w| {
            b.iter(|| {
                let mut ed = DatasetEditor::new(trajs.clone(), IndexKind::Linear, domain);
                ed.use_bbox_pruning = true;
                ed.workers = w;
                black_box(ed.increase_tf(off, 12));
            })
        });
        group.bench_with_input(BenchmarkId::new("decrease-tf-24", workers), &workers, |b, &w| {
            let key = q.key();
            b.iter(|| {
                let mut ed = DatasetEditor::new(with_shared.clone(), IndexKind::Linear, domain);
                ed.workers = w;
                black_box(ed.decrease_tf(key, 24));
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_intra, bench_inter, bench_inter_workers);
criterion_main!(benches);

//! The Figure 5 microbenchmark: K-nearest segment search across all
//! index variants (Linear, UG, HGt, HGb, HG+) at several scales.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use trajdp_index::{HierGrid, LinearScan, SegmentEntry, SegmentIndex, Strategy, UniformGrid};
use trajdp_model::{Point, Rect, Segment};

fn random_entries(n: usize, seed: u64) -> Vec<SegmentEntry> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|i| {
            let ax: f64 = rng.gen_range(0.0..30_000.0);
            let ay: f64 = rng.gen_range(0.0..30_000.0);
            let span: f64 = if i % 9 == 0 { 5_000.0 } else { 650.0 };
            let bx = (ax + rng.gen_range(-span..span)).clamp(0.0, 30_000.0);
            let by = (ay + rng.gen_range(-span..span)).clamp(0.0, 30_000.0);
            SegmentEntry::new(i as u64, Segment::new(Point::new(ax, ay), Point::new(bx, by)))
        })
        .collect()
}

fn domain() -> Rect {
    Rect::new(0.0, 0.0, 30_000.0, 30_000.0)
}

fn bench_knn(c: &mut Criterion) {
    let mut group = c.benchmark_group("knn-by-index");
    for &n in &[2_000usize, 20_000] {
        let entries = random_entries(n, 11);
        let linear = LinearScan::from_entries(entries.clone());
        let uniform = UniformGrid::from_entries(domain(), 512, entries.clone());
        let hier = HierGrid::from_entries(domain(), 512, entries);
        let mut rng = StdRng::seed_from_u64(5);
        let queries: Vec<Point> = (0..64)
            .map(|_| Point::new(rng.gen_range(0.0..30_000.0), rng.gen_range(0.0..30_000.0)))
            .collect();
        group.bench_with_input(BenchmarkId::new("Linear", n), &queries, |b, qs| {
            b.iter(|| {
                for q in qs {
                    black_box(linear.knn(q, 8));
                }
            })
        });
        group.bench_with_input(BenchmarkId::new("UG", n), &queries, |b, qs| {
            b.iter(|| {
                for q in qs {
                    black_box(uniform.knn(q, 8));
                }
            })
        });
        for (name, s) in [
            ("HGt", Strategy::TopDown),
            ("HGb", Strategy::BottomUp),
            ("HG+", Strategy::BottomUpDown),
        ] {
            group.bench_with_input(BenchmarkId::new(name, n), &queries, |b, qs| {
                b.iter(|| {
                    for q in qs {
                        black_box(hier.knn_with_stats(q, 8, s, None).0);
                    }
                })
            });
        }
    }
    group.finish();
}

fn bench_build(c: &mut Criterion) {
    let mut group = c.benchmark_group("index-build");
    let entries = random_entries(20_000, 13);
    group.bench_function("hier-512", |b| {
        b.iter(|| black_box(HierGrid::from_entries(domain(), 512, entries.clone())))
    });
    group.bench_function("uniform-512", |b| {
        b.iter(|| black_box(UniformGrid::from_entries(domain(), 512, entries.clone())))
    });
    group.finish();
}

criterion_group!(benches, bench_knn, bench_build);
criterion_main!(benches);

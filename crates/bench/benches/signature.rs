//! Benchmarks of the frequency analysis: TF table construction and
//! top-m signature extraction over growing datasets.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use trajdp_bench::standard_world;
use trajdp_core::freq::FrequencyAnalysis;

fn bench_signature(c: &mut Criterion) {
    let mut group = c.benchmark_group("signature-extraction");
    for &size in &[100usize, 400] {
        let world = standard_world(size, 120, 21);
        group.bench_with_input(BenchmarkId::new("analyze-m10", size), &world, |b, w| {
            b.iter(|| black_box(FrequencyAnalysis::compute(&w.dataset, 10)))
        });
    }
    group.finish();
}

fn bench_tf_table(c: &mut Criterion) {
    let world = standard_world(300, 120, 22);
    c.bench_function("tf-table-300x120", |b| b.iter(|| black_box(world.dataset.tf_table())));
}

criterion_group!(benches, bench_signature, bench_tf_table);
criterion_main!(benches);

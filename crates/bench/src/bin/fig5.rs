//! Regenerates **Figure 5**: modification efficiency.
//!
//! Left plot: total GL modification time across index variants
//! (Linear, UG, HGt, HGb, HG+) as the dataset size grows. The uniform
//! grid uses 64×64 cells — the same cell-size-to-sample-spacing ratio
//! the paper's 512×512 grid has over the full Beijing extent; the
//! hierarchical grid keeps a 512×512 finest level, since tolerating
//! over-fine leaves is exactly its advantage.
//! Right plot: time split between local (intra-) and global (inter-)
//! modification under the best index (HG+).
//!
//! ```text
//! cargo run -p trajdp-bench --release --bin fig5
//! TRAJDP_SIZES="1000 2000 4000" cargo run -p trajdp-bench --release --bin fig5
//! ```

#![forbid(unsafe_code)]

use trajdp_bench::{env_param, standard_world};
use trajdp_core::{anonymize, FreqDpConfig, IndexKind, Model};
use trajdp_index::Strategy;

fn sizes_from_env() -> Vec<usize> {
    std::env::var("TRAJDP_SIZES")
        .ok()
        .map(|s| s.split_whitespace().filter_map(|v| v.parse().ok()).collect())
        .filter(|v: &Vec<usize>| !v.is_empty())
        .unwrap_or_else(|| vec![100, 200, 400, 600, 800, 1000])
}

fn main() {
    let len = env_param("TRAJDP_LEN", 100);
    let seed = env_param("TRAJDP_SEED", 42) as u64;
    let sizes = sizes_from_env();
    let kinds: [(&str, IndexKind); 5] = [
        ("Linear", IndexKind::Linear),
        ("UG", IndexKind::Uniform(64)),
        ("HGt", IndexKind::Hier(512, Strategy::TopDown)),
        ("HGb", IndexKind::Hier(512, Strategy::BottomUp)),
        ("HG+", IndexKind::Hier(512, Strategy::BottomUpDown)),
    ];
    eprintln!("Figure 5 reproduction: sizes {sizes:?}, |τ| = {len}, ε_G = ε_L = 0.5");

    println!("Left: total modification time (ms) per index variant");
    print!("{:<8}", "|D|");
    for (name, _) in &kinds {
        print!(" {name:>10}");
    }
    println!();
    let mut hgplus_split: Vec<(usize, f64, f64)> = Vec::new();
    for &size in &sizes {
        let world = standard_world(size, len, seed);
        print!("{size:<8}");
        for (name, kind) in kinds {
            let cfg = FreqDpConfig { m: 10, index: kind, seed, ..Default::default() };
            let out = anonymize(&world.dataset, Model::Combined, &cfg).expect("valid config");
            let total = out.global_time + out.local_time;
            print!(" {:>10.1}", total.as_secs_f64() * 1e3);
            if name == "HG+" {
                hgplus_split.push((
                    size,
                    out.local_time.as_secs_f64() * 1e3,
                    out.global_time.as_secs_f64() * 1e3,
                ));
            }
        }
        println!();
    }

    println!("\nRight: local vs global modification time under HG+ (ms)");
    println!("{:<8} {:>10} {:>10} {:>10}", "|D|", "Local", "Global", "Total");
    for (size, local, global) in hgplus_split {
        println!("{size:<8} {local:>10.1} {global:>10.1} {:>10.1}", local + global);
    }
}

//! Ablation: the **trajectory-bbox branch-and-bound** optimization for
//! global (inter-trajectory) modification — the improvement §V-C of the
//! paper explicitly leaves as future work ("early pruning unpromising
//! trajectories based on their bounding box").
//!
//! Compares wall time and segment-distance work of the global phase
//! with the segment-index search vs the bbox branch-and-bound, as the
//! dataset grows. Outputs are identical by construction (tested in
//! `trajdp-core`).
//!
//! ```text
//! cargo run -p trajdp-bench --release --bin ablation_bboxprune
//! ```

#![forbid(unsafe_code)]

use trajdp_bench::{env_param, standard_world};
use trajdp_core::{anonymize, FreqDpConfig, Model};

fn main() {
    let len = env_param("TRAJDP_LEN", 100);
    let seed = env_param("TRAJDP_SEED", 42) as u64;
    println!(
        "{:<8} {:>14} {:>14} {:>10} | {:>16} {:>16}",
        "|D|", "index (ms)", "bbox (ms)", "speedup", "seg-dists index", "seg-dists bbox"
    );
    println!("{}", "-".repeat(88));
    for size in [100usize, 200, 400, 800] {
        let world = standard_world(size, len, seed);
        let run = |bbox: bool| {
            let cfg = FreqDpConfig { m: 10, bbox_pruning: bbox, seed, ..Default::default() };
            let out = anonymize(&world.dataset, Model::PureGlobal, &cfg).expect("valid config");
            let work = out.global.as_ref().expect("global ran").search_stats.segments_checked;
            (out.global_time.as_secs_f64() * 1e3, work)
        };
        let (t_index, w_index) = run(false);
        let (t_bbox, w_bbox) = run(true);
        println!(
            "{size:<8} {t_index:>14.1} {t_bbox:>14.1} {:>9.2}x | {w_index:>16} {w_bbox:>16}",
            t_index / t_bbox.max(1e-9)
        );
    }
    println!("\nNote: both searches produce identical modifications. On the compact");
    println!("synthetic city, trajectory bounding boxes overlap heavily, so the bound");
    println!("rarely prunes whole trajectories and the index-based search stays ahead —");
    println!("an honest negative result for the paper's future-work idea at this scale;");
    println!("the bound can only pay off when trajectories are spatially localized.");
}

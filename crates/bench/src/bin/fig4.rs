//! Regenerates **Figure 4**: impact of the privacy budget ε on the three
//! frequency-based models (PureG, PureL, GL), |D| = 1000.
//!
//! Eight series per model, matching subplots (a)–(h): LAs, INF, DE, TE,
//! FFP, route-based F-score, route-based RMF, point-based accuracy.
//!
//! ```text
//! cargo run -p trajdp-bench --release --bin fig4
//! TRAJDP_SIZE=1000 cargo run -p trajdp-bench --release --bin fig4
//! ```

#![forbid(unsafe_code)]

use trajdp_bench::{env_param, evaluate, standard_world, timed, EvalOptions};
use trajdp_core::{anonymize, FreqDpConfig, Model};

fn main() {
    let size = env_param("TRAJDP_SIZE", 200);
    let len = env_param("TRAJDP_LEN", 120);
    let seed = env_param("TRAJDP_SEED", 42) as u64;
    let epsilons = [0.1, 0.5, 1.0, 2.0, 5.0, 10.0];
    let models =
        [("PureG", Model::PureGlobal), ("PureL", Model::PureLocal), ("GL", Model::Combined)];
    eprintln!("Figure 4 reproduction: |D| = {size}, ε ∈ {epsilons:?}");
    let world = standard_world(size, len, seed);

    println!(
        "{:<7} {:>5} | {:>6} {:>6} {:>6} {:>6} {:>6} {:>7} {:>6} {:>6}",
        "model", "eps", "LAs", "INF", "DE", "TE", "FFP", "F-score", "RMF", "Acc"
    );
    println!("{}", "-".repeat(78));
    for (name, model) in models {
        for eps in epsilons {
            // Even budget split for GL, full budget for the pure models
            // (the paper plots every model against the total ε).
            let (eps_g, eps_l) = match model {
                Model::PureGlobal => (eps, eps),
                Model::PureLocal => (eps, eps),
                _ => (eps / 2.0, eps / 2.0),
            };
            let cfg = FreqDpConfig {
                m: 10,
                eps_global: eps_g,
                eps_local: eps_l,
                seed,
                ..Default::default()
            };
            let (out, t) = timed(|| anonymize(&world.dataset, model, &cfg).expect("valid config"));
            let row = evaluate(name, &world, &out.dataset, t, EvalOptions::default());
            let rec = row.recovery.expect("recovery enabled");
            println!(
                "{:<7} {:>5.1} | {:>6.3} {:>6.3} {:>6.3} {:>6.3} {:>6.3} {:>7.3} {:>6.3} {:>6.3}",
                name,
                eps,
                row.la_s,
                row.inf,
                row.de,
                row.te,
                row.ffp,
                rec.f_score,
                rec.rmf,
                rec.accuracy
            );
        }
        println!();
    }
}

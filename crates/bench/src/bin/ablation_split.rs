//! Ablation: the **budget split** ε_G : ε_L of the combined GL model.
//!
//! The paper fixes an even split (ε_G = ε_L = ε/2). This ablation sweeps
//! the ratio at fixed total ε = 1.0 and reports the privacy/utility
//! frontier, justifying (or challenging) the 50/50 choice.
//!
//! ```text
//! cargo run -p trajdp-bench --release --bin ablation_split
//! ```

#![forbid(unsafe_code)]

use trajdp_attacks::{LinkingAttack, SignatureType};
use trajdp_bench::{env_param, standard_world};
use trajdp_core::{anonymize, FreqDpConfig, Model};
use trajdp_metrics::{frequent_pattern_f1, information_loss};

fn main() {
    let size = env_param("TRAJDP_SIZE", 150);
    let len = env_param("TRAJDP_LEN", 120);
    let seed = env_param("TRAJDP_SEED", 42) as u64;
    let total = 1.0;
    let world = standard_world(size, len, seed);
    eprintln!("Budget-split ablation: |D| = {size}, total ε = {total}");

    println!("{:<14} | {:>8} {:>8} {:>8}", "eps_G : eps_L", "LAs", "INF", "FFP");
    println!("{}", "-".repeat(46));
    for g_share in [0.1, 0.25, 0.5, 0.75, 0.9] {
        let cfg = FreqDpConfig {
            m: 10,
            eps_global: total * g_share,
            eps_local: total * (1.0 - g_share),
            seed,
            ..Default::default()
        };
        let out = anonymize(&world.dataset, Model::Combined, &cfg).expect("valid config");
        let la = LinkingAttack::new(SignatureType::Spatial)
            .linking_accuracy(&world.dataset, &out.dataset);
        let inf = information_loss(&world.dataset, &out.dataset);
        let ffp = frequent_pattern_f1(&world.dataset, &out.dataset, 64, 2, 200);
        println!(
            "{:<14} | {:>8.3} {:>8.3} {:>8.3}",
            format!("{:.2} : {:.2}", total * g_share, total * (1.0 - g_share)),
            la,
            inf,
            ffp
        );
    }
    println!("\nNote: smaller ε means more noise, so a small ε_L share strengthens the local");
    println!("mechanism. The paper's 50/50 split balances both attack surfaces.");
}

//! Regenerates **Table II**: effectiveness of all fourteen methods
//! (|D| = 1000, ε = 1.0, m = 10, k = 5, l = 3).
//!
//! ```text
//! cargo run -p trajdp-bench --release --bin table2
//! TRAJDP_SIZE=1000 TRAJDP_LEN=200 cargo run -p trajdp-bench --release --bin table2
//! ```
//!
//! The default size is reduced so the full table finishes in minutes on
//! a laptop; set `TRAJDP_SIZE=1000` for the paper-scale run. Absolute
//! numbers differ from the paper (synthetic data, Rust reimplementation)
//! but the method ordering — who wins on which axis — is the
//! reproduction target (see EXPERIMENTS.md).

#![forbid(unsafe_code)]

use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Duration;
use trajdp_baselines::{
    adatrace, dpt, glove, klt, rsc, sc, w4m, AdaTraceConfig, DptConfig, GloveConfig, KltConfig,
    W4mConfig,
};
use trajdp_bench::{env_param, evaluate, print_table, standard_world, timed, EvalOptions, EvalRow};
use trajdp_core::{anonymize, FreqDpConfig, Model};
use trajdp_model::Dataset;

fn main() {
    let size = env_param("TRAJDP_SIZE", 300);
    let len = env_param("TRAJDP_LEN", 120);
    let m = env_param("TRAJDP_M", 10);
    let seed = env_param("TRAJDP_SEED", 42) as u64;
    eprintln!("Table II reproduction: |D| = {size}, |τ| = {len}, m = {m}, ε = 1.0");
    eprintln!("generating synthetic T-Drive world...");
    let world = standard_world(size, len, seed);
    let ds = &world.dataset;

    let mut rows: Vec<EvalRow> = Vec::new();
    let mut eval = |name: &str, anon: Dataset, time: Duration, generative: bool| {
        eprintln!("evaluating {name}...");
        rows.push(evaluate(
            name,
            &world,
            &anon,
            time,
            EvalOptions { generative, ..Default::default() },
        ));
    };

    // Signature-closure family.
    let (out, t) = timed(|| sc(ds, m));
    eval("SC", out, t, false);
    for alpha_m in [100.0, 500.0, 1000.0, 3000.0, 5000.0] {
        let (out, t) = timed(|| rsc(ds, m, alpha_m));
        eval(&format!("RSC-{}", alpha_m / 1000.0), out, t, false);
    }

    // k-anonymity family.
    let (out, t) = timed(|| w4m(ds, &W4mConfig { k: 5, delta: 300.0 }));
    eval("W4M", out, t, false);
    let (out, t) = timed(|| glove(ds, &GloveConfig { k: 5 }));
    eval("GLOVE", out, t, false);
    let (out, t) = timed(|| klt(ds, &KltConfig { k: 5, l: 3, ..Default::default() }));
    eval("KLT", out, t, false);

    // Generative DP family.
    let mut rng = StdRng::seed_from_u64(seed ^ 0xD9);
    let (out, t) = timed(|| {
        dpt(ds, &DptConfig { epsilon: 1.0, synthetic_len: len, ..Default::default() }, &mut rng)
    });
    eval("DPT", out, t, true);
    let mut rng = StdRng::seed_from_u64(seed ^ 0xAD);
    let (out, t) =
        timed(|| adatrace(ds, &AdaTraceConfig { epsilon: 1.0, ..Default::default() }, &mut rng));
    eval("AdaTrace", out, t, true);

    // Frequency-based randomized DP models (this paper).
    let cfg = FreqDpConfig { m, eps_global: 0.5, eps_local: 0.5, seed, ..Default::default() };
    let (out, t) = timed(|| anonymize(ds, Model::PureGlobal, &cfg).expect("valid config"));
    eval("PureG", out.dataset, t, false);
    let (out, t) = timed(|| anonymize(ds, Model::PureLocal, &cfg).expect("valid config"));
    eval("PureL", out.dataset, t, false);
    let (out, t) = timed(|| anonymize(ds, Model::Combined, &cfg).expect("valid config"));
    eval("GL", out.dataset, t, false);

    println!("\nTable II (reproduction) — |D| = {size}, ε = 1.0");
    print_table(&rows);
}

//! Deterministic observability benchmark harness.
//!
//! Unlike the criterion benches (statistical, minutes-long), this bin
//! runs a fixed iteration count over the pipeline and modification
//! workloads with pinned seeds and writes a machine-readable summary —
//! the `BENCH_*.json` artifact CI checks for well-formedness:
//!
//! ```text
//! cargo run -p trajdp_bench --release --bin trajdp-bench -- --quick --out BENCH_6.json
//! ```
//!
//! `--quick` shrinks the world and iteration counts so the run finishes
//! in seconds (the CI mode); without it the sizes match the criterion
//! `pipeline`/`modification` benches. Timings are wall-clock and
//! machine-dependent; the *shape* of the file is the contract.

use std::time::Instant;
use trajdp_bench::standard_world;
use trajdp_core::editor::{DatasetEditor, TrajectoryEditor};
use trajdp_core::{anonymize, FreqDpConfig, IndexKind, Model};
use trajdp_model::Point;
use trajdp_server::json::Json;

struct BenchResult {
    name: &'static str,
    iters: u64,
    total_ms: f64,
}

/// Runs `f` once as warmup, then `iters` timed iterations.
fn bench(name: &'static str, iters: u64, mut f: impl FnMut()) -> BenchResult {
    eprintln!("bench {name}: {iters} iterations...");
    f();
    let started = Instant::now();
    for _ in 0..iters {
        f();
    }
    let total_ms = started.elapsed().as_secs_f64() * 1e3;
    BenchResult { name, iters, total_ms }
}

fn usage() -> ! {
    eprintln!("usage: trajdp-bench [--quick] [--out FILE.json]");
    std::process::exit(2);
}

fn main() {
    let mut quick = false;
    let mut out = String::from("BENCH_6.json");
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => quick = true,
            "--out" => match args.next() {
                Some(path) => out = path,
                None => usage(),
            },
            _ => usage(),
        }
    }

    let (size, len, m, iters) = if quick { (20, 60, 6, 3) } else { (60, 100, 10, 10) };
    let world = standard_world(size, len, 41);
    let cfg = FreqDpConfig { m, ..Default::default() };
    let mut results = Vec::new();
    for (name, model) in [
        ("pipeline/PureG", Model::PureGlobal),
        ("pipeline/PureL", Model::PureLocal),
        ("pipeline/GL", Model::Combined),
    ] {
        results.push(bench(name, iters, || {
            std::hint::black_box(anonymize(&world.dataset, model, &cfg).expect("valid config"));
        }));
    }

    // Modification phase in isolation, mirroring benches/modification.rs.
    let (msize, mlen) = if quick { (10, 80) } else { (20, 200) };
    let world = standard_world(msize, mlen, 31);
    let traj = world.dataset.trajectories[0].clone();
    let domain = world.dataset.domain;
    let target = traj.samples[traj.len() / 2].loc;
    let off_target = Point::new(target.x + 210.0, target.y + 140.0);
    results.push(bench("modification/intra-insert-5", iters, || {
        let mut ed = TrajectoryEditor::new(traj.clone(), IndexKind::default(), domain);
        std::hint::black_box(ed.insert_occurrences(off_target, 5));
    }));
    results.push(bench("modification/intra-delete-all", iters, || {
        let mut ed = TrajectoryEditor::new(traj.clone(), IndexKind::default(), domain);
        std::hint::black_box(ed.delete_occurrences(target.key(), usize::MAX));
    }));
    let trajs = world.dataset.trajectories.clone();
    let q = world.node_point(world.hotspots[0]);
    let off = Point::new(q.x + 150.0, q.y + 150.0);
    results.push(bench("modification/inter-increase-tf-10", iters, || {
        let mut ed = DatasetEditor::new(trajs.clone(), IndexKind::default(), domain);
        std::hint::black_box(ed.increase_tf(off, 10));
    }));
    results.push(bench("modification/inter-decrease-tf-10", iters, || {
        let mut ed = DatasetEditor::new(trajs.clone(), IndexKind::default(), domain);
        std::hint::black_box(ed.decrease_tf(q.key(), 10));
    }));

    let report = Json::obj([
        ("schema", "trajdp-bench/v1".into()),
        ("pr", 6u64.into()),
        ("quick", quick.into()),
        (
            "benches",
            Json::Arr(
                results
                    .iter()
                    .map(|r| {
                        Json::obj([
                            ("name", r.name.into()),
                            ("iters", r.iters.into()),
                            ("total_ms", r.total_ms.into()),
                            ("mean_ms", (r.total_ms / r.iters as f64).into()),
                        ])
                    })
                    .collect(),
            ),
        ),
    ]);
    if let Err(e) = std::fs::write(&out, format!("{report}\n")) {
        eprintln!("cannot write {out}: {e}");
        std::process::exit(1);
    }
    eprintln!("wrote {out}: {} benches", results.len());
}

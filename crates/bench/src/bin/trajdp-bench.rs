//! Deterministic observability benchmark harness.
//!
//! Unlike the criterion benches (statistical, minutes-long), this bin
//! runs a fixed iteration count over the pipeline and modification
//! workloads with pinned seeds and writes a machine-readable summary —
//! the `BENCH_*.json` artifact CI checks for well-formedness:
//!
//! ```text
//! cargo run -p trajdp_bench --release --bin trajdp-bench -- --quick --out BENCH_7.json
//! ```
//!
//! `--quick` shrinks the world and iteration counts so the run finishes
//! in seconds (the CI mode); without it the sizes match the criterion
//! `pipeline`/`modification` benches. Timings are wall-clock and
//! machine-dependent; the *shape* of the file is the contract.
//!
//! Besides the pipeline/modification timings, the harness runs a
//! connection storm against an in-process server: 128 concurrent
//! clients — far past the old thread-per-connection worker cap — each
//! holding its socket open for a run of request/response round trips.
//! CI asserts the storm completes with zero dropped clients.

#![forbid(unsafe_code)]

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::time::Instant;
use trajdp_bench::standard_world;
use trajdp_core::editor::{DatasetEditor, TrajectoryEditor};
use trajdp_core::{anonymize, FreqDpConfig, IndexKind, Model};
use trajdp_model::Point;
use trajdp_server::json::Json;
use trajdp_server::{Server, ServerConfig};

struct BenchResult {
    name: &'static str,
    iters: u64,
    total_ms: f64,
}

/// Outcome of the connection-storm workload: every client's per-request
/// round-trip latencies pooled, plus how many clients failed outright.
struct StormResult {
    clients: usize,
    requests_per_client: usize,
    completed: u64,
    dropped: u64,
    p50_ms: f64,
    p99_ms: f64,
    throughput_rps: f64,
}

/// Hammers an in-process server with `clients` concurrent connections,
/// each performing `per_client` request/response round trips (health
/// and metrics alternating). This exercises the reactor's readiness
/// loop well past the old thread-per-connection cap: all clients hold
/// their sockets open for the whole run. A client counts as dropped if
/// it fails to connect, loses its stream mid-run, or reads a non-`ok`
/// response — on a healthy server all three are zero.
fn storm(clients: usize, per_client: usize) -> StormResult {
    eprintln!("bench storm: {clients} clients x {per_client} requests...");
    let server = Server::start(ServerConfig::default()).expect("bench server");
    let addr = server.local_addr();
    let started = Instant::now();
    let handles: Vec<_> = (0..clients)
        .map(|_| {
            std::thread::spawn(move || -> Option<Vec<f64>> {
                let stream = TcpStream::connect(addr).ok()?;
                let mut reader = BufReader::new(stream.try_clone().ok()?);
                let mut writer = stream;
                let mut latencies = Vec::with_capacity(per_client);
                for i in 0..per_client {
                    let line = if i % 2 == 0 {
                        "{\"cmd\":\"health\"}\n"
                    } else {
                        "{\"cmd\":\"metrics\"}\n"
                    };
                    let sent = Instant::now();
                    writer.write_all(line.as_bytes()).ok()?;
                    let mut response = String::new();
                    reader.read_line(&mut response).ok()?;
                    if !response.contains("\"ok\":true") {
                        return None;
                    }
                    latencies.push(sent.elapsed().as_secs_f64() * 1e3);
                }
                Some(latencies)
            })
        })
        .collect();
    let mut latencies: Vec<f64> = Vec::new();
    let mut dropped = 0u64;
    for handle in handles {
        match handle.join().expect("storm client panicked") {
            Some(client_latencies) => latencies.extend(client_latencies),
            None => dropped += 1,
        }
    }
    let elapsed = started.elapsed().as_secs_f64();
    server.shutdown();
    latencies.sort_by(|a, b| a.total_cmp(b));
    let percentile = |p: f64| -> f64 {
        if latencies.is_empty() {
            return 0.0;
        }
        let idx = ((latencies.len() as f64 - 1.0) * p).round() as usize;
        latencies[idx]
    };
    StormResult {
        clients,
        requests_per_client: per_client,
        completed: latencies.len() as u64,
        dropped,
        p50_ms: percentile(0.50),
        p99_ms: percentile(0.99),
        throughput_rps: latencies.len() as f64 / elapsed.max(f64::EPSILON),
    }
}

/// Runs `f` once as warmup, then `iters` timed iterations.
fn bench(name: &'static str, iters: u64, mut f: impl FnMut()) -> BenchResult {
    eprintln!("bench {name}: {iters} iterations...");
    f();
    let started = Instant::now();
    for _ in 0..iters {
        f();
    }
    let total_ms = started.elapsed().as_secs_f64() * 1e3;
    BenchResult { name, iters, total_ms }
}

fn usage() -> ! {
    eprintln!("usage: trajdp-bench [--quick] [--out FILE.json]");
    std::process::exit(2);
}

fn main() {
    let mut quick = false;
    let mut out = String::from("BENCH_7.json");
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => quick = true,
            "--out" => match args.next() {
                Some(path) => out = path,
                None => usage(),
            },
            _ => usage(),
        }
    }

    let (size, len, m, iters) = if quick { (20, 60, 6, 3) } else { (60, 100, 10, 10) };
    let world = standard_world(size, len, 41);
    let cfg = FreqDpConfig { m, ..Default::default() };
    let mut results = Vec::new();
    for (name, model) in [
        ("pipeline/PureG", Model::PureGlobal),
        ("pipeline/PureL", Model::PureLocal),
        ("pipeline/GL", Model::Combined),
    ] {
        results.push(bench(name, iters, || {
            std::hint::black_box(anonymize(&world.dataset, model, &cfg).expect("valid config"));
        }));
    }

    // Modification phase in isolation, mirroring benches/modification.rs.
    let (msize, mlen) = if quick { (10, 80) } else { (20, 200) };
    let world = standard_world(msize, mlen, 31);
    let traj = world.dataset.trajectories[0].clone();
    let domain = world.dataset.domain;
    let target = traj.samples[traj.len() / 2].loc;
    let off_target = Point::new(target.x + 210.0, target.y + 140.0);
    results.push(bench("modification/intra-insert-5", iters, || {
        let mut ed = TrajectoryEditor::new(traj.clone(), IndexKind::default(), domain);
        std::hint::black_box(ed.insert_occurrences(off_target, 5));
    }));
    results.push(bench("modification/intra-delete-all", iters, || {
        let mut ed = TrajectoryEditor::new(traj.clone(), IndexKind::default(), domain);
        std::hint::black_box(ed.delete_occurrences(target.key(), usize::MAX));
    }));
    let trajs = world.dataset.trajectories.clone();
    let q = world.node_point(world.hotspots[0]);
    let off = Point::new(q.x + 150.0, q.y + 150.0);
    results.push(bench("modification/inter-increase-tf-10", iters, || {
        let mut ed = DatasetEditor::new(trajs.clone(), IndexKind::default(), domain);
        std::hint::black_box(ed.increase_tf(off, 10));
    }));
    results.push(bench("modification/inter-decrease-tf-10", iters, || {
        let mut ed = DatasetEditor::new(trajs.clone(), IndexKind::default(), domain);
        std::hint::black_box(ed.decrease_tf(q.key(), 10));
    }));

    // Connection storm against the reactor. The client count stays at
    // 128 even in --quick (holding 128 sockets open is the point — CI
    // asserts it); only the per-client request count shrinks.
    let storm_result = storm(128, if quick { 8 } else { 32 });
    eprintln!(
        "bench storm: {} completed, {} dropped, p50 {:.3} ms, p99 {:.3} ms, {:.0} req/s",
        storm_result.completed,
        storm_result.dropped,
        storm_result.p50_ms,
        storm_result.p99_ms,
        storm_result.throughput_rps
    );

    let report = Json::obj([
        ("schema", "trajdp-bench/v1".into()),
        ("pr", 7u64.into()),
        ("quick", quick.into()),
        (
            "benches",
            Json::Arr(
                results
                    .iter()
                    .map(|r| {
                        Json::obj([
                            ("name", r.name.into()),
                            ("iters", r.iters.into()),
                            ("total_ms", r.total_ms.into()),
                            ("mean_ms", (r.total_ms / r.iters as f64).into()),
                        ])
                    })
                    .collect(),
            ),
        ),
        (
            "storm",
            Json::obj([
                ("clients", (storm_result.clients as u64).into()),
                ("requests_per_client", (storm_result.requests_per_client as u64).into()),
                ("completed", storm_result.completed.into()),
                ("dropped", storm_result.dropped.into()),
                ("p50_ms", storm_result.p50_ms.into()),
                ("p99_ms", storm_result.p99_ms.into()),
                ("throughput_rps", storm_result.throughput_rps.into()),
            ]),
        ),
    ]);
    if let Err(e) = std::fs::write(&out, format!("{report}\n")) {
        eprintln!("cannot write {out}: {e}");
        std::process::exit(1);
    }
    eprintln!("wrote {out}: {} benches", results.len());
}

//! Ablation: the importance of **Stage 2** in the local mechanism
//! (§III-B3, "The Importance of Stage-2").
//!
//! Stage 1 alone shrinks trajectories (negative-mean noise only
//! removes); stage 2 re-inflates cardinality by raising the PF of the
//! second `m` points. This ablation quantifies the claim: cardinality
//! drift and INF with and without stage 2, across ε.
//!
//! ```text
//! cargo run -p trajdp-bench --release --bin ablation_stage2
//! ```

#![forbid(unsafe_code)]

use trajdp_bench::{env_param, standard_world};
use trajdp_core::local::LocalOptions;
use trajdp_core::{anonymize, FreqDpConfig, Model};
use trajdp_metrics::information_loss;

fn main() {
    let size = env_param("TRAJDP_SIZE", 150);
    let len = env_param("TRAJDP_LEN", 120);
    let seed = env_param("TRAJDP_SEED", 42) as u64;
    let world = standard_world(size, len, seed);
    let original_points = world.dataset.total_points() as f64;
    eprintln!("Stage-2 ablation: |D| = {size}, original points = {original_points}");

    println!("{:<6} {:<9} | {:>12} {:>10} {:>8}", "eps", "stage2", "points", "drift(%)", "INF");
    println!("{}", "-".repeat(52));
    for eps in [0.5, 1.0, 2.0] {
        for stage2 in [true, false] {
            let cfg = FreqDpConfig {
                m: 10,
                eps_local: eps,
                local_opts: LocalOptions { stage2, ..Default::default() },
                seed,
                ..Default::default()
            };
            let out = anonymize(&world.dataset, Model::PureLocal, &cfg).expect("valid config");
            let points = out.dataset.total_points() as f64;
            let drift = (points - original_points) / original_points * 100.0;
            let inf = information_loss(&world.dataset, &out.dataset);
            println!(
                "{:<6.1} {:<9} | {:>12.0} {:>10.2} {:>8.3}",
                eps,
                if stage2 { "on" } else { "off" },
                points,
                drift,
                inf
            );
        }
    }
    println!("\nExpected shape: stage2=off rows show a strictly larger cardinality drop.");
}

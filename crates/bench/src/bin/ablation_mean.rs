//! Ablation: the **non-zero-mean Laplace** design of the local
//! mechanism (Theorem 2) versus classical zero-mean noise.
//!
//! The shifted distribution `Lap(−f_k, 1/ε)` suppresses signature
//! occurrences with high probability; zero-mean noise leaves them in
//! place half the time, weakening protection at identical ε. This
//! ablation measures the spatial linking accuracy and the mean residual
//! signature PF under both settings.
//!
//! ```text
//! cargo run -p trajdp-bench --release --bin ablation_mean
//! ```

#![forbid(unsafe_code)]

use trajdp_attacks::{LinkingAttack, SignatureType};
use trajdp_bench::{env_param, standard_world};
use trajdp_core::freq::FrequencyAnalysis;
use trajdp_core::local::LocalOptions;
use trajdp_core::{anonymize, FreqDpConfig, Model};

fn main() {
    let size = env_param("TRAJDP_SIZE", 150);
    let len = env_param("TRAJDP_LEN", 120);
    let seed = env_param("TRAJDP_SEED", 42) as u64;
    let world = standard_world(size, len, seed);
    let analysis = FrequencyAnalysis::compute(&world.dataset, 10);
    eprintln!("Mean-shift ablation: |D| = {size}");

    println!("{:<6} {:<10} | {:>8} {:>18}", "eps", "mean", "LAs", "residual sig PF");
    println!("{}", "-".repeat(50));
    for eps in [0.5, 1.0, 2.0] {
        for zero_mean in [false, true] {
            let cfg = FreqDpConfig {
                m: 10,
                eps_local: eps,
                local_opts: LocalOptions { zero_mean, ..Default::default() },
                seed,
                ..Default::default()
            };
            let out = anonymize(&world.dataset, Model::PureLocal, &cfg).expect("valid config");
            let la = LinkingAttack::new(SignatureType::Spatial)
                .linking_accuracy(&world.dataset, &out.dataset);
            // Residual PF: how many occurrences of the original top
            // signature points survive, averaged per trajectory.
            let mut residual = 0.0;
            for (slot, traj) in out.dataset.trajectories.iter().enumerate() {
                for p in analysis.signature_points(slot) {
                    residual += traj.count_point(p) as f64;
                }
            }
            residual /= out.dataset.len() as f64;
            println!(
                "{:<6.1} {:<10} | {:>8.3} {:>18.2}",
                eps,
                if zero_mean { "zero" } else { "shifted" },
                la,
                residual
            );
        }
    }
    println!("\nExpected shape: shifted rows show lower residual signature PF and lower LAs.");
}

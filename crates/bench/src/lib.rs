//! # trajdp-bench
//!
//! Shared harness for regenerating the paper's experimental artifacts:
//!
//! * `table2` — Table II: effectiveness of all 14 methods.
//! * `fig4` — Figure 4: impact of the privacy budget ε on PureG /
//!   PureL / GL.
//! * `fig5` — Figure 5: modification efficiency across index variants
//!   and dataset sizes.
//! * `ablation_*` — design-choice ablations (stage 2, mean shift,
//!   budget split).
//!
//! The library half hosts the evaluation pipeline each binary shares:
//! dataset generation ([`standard_world`]), per-model evaluation
//! ([`evaluate`]), and fixed-width table printing.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};
use trajdp_attacks::{HmmMapMatcher, LinkingAttack, SignatureType};
use trajdp_metrics::{
    diameter_divergence, frequent_pattern_f1, information_loss, mutual_information,
    recovery_metrics, trip_divergence, RecoveryMetrics,
};
use trajdp_model::Dataset;
use trajdp_synth::{generate, GeneratorConfig};

/// Re-export the world type for binaries.
pub use trajdp_synth::generator::SyntheticWorld;

/// Default evaluation grid granularity for metrics.
pub const METRIC_GRID: u32 = 64;
/// Point tolerance for recovery accuracy, metres.
pub const POINT_TOLERANCE: f64 = 50.0;

/// Generates the standard experiment world: `size` taxis under the
/// calibrated [`GeneratorConfig::tdrive_profile`] (see its docs for why
/// the profile is shaped the way it is).
pub fn standard_world(size: usize, points_per_trajectory: usize, seed: u64) -> SyntheticWorld {
    generate(&GeneratorConfig::tdrive_profile(size, points_per_trajectory, seed))
}

/// One evaluated method: every column of Table II.
#[derive(Debug, Clone)]
pub struct EvalRow {
    /// Method name as printed.
    pub name: String,
    /// Linking accuracy via spatial signatures.
    pub la_s: f64,
    /// Linking accuracy via temporal signatures (`None` for generative
    /// models without meaningful timestamps).
    pub la_t: Option<f64>,
    /// Linking accuracy via spatiotemporal signatures.
    pub la_st: Option<f64>,
    /// Linking accuracy via sequential signatures.
    pub la_sq: f64,
    /// Normalized mutual information.
    pub mi: f64,
    /// Point-based information loss.
    pub inf: f64,
    /// Diameter-distribution divergence.
    pub de: f64,
    /// Trip-distribution divergence.
    pub te: f64,
    /// Frequent-pattern F-measure.
    pub ffp: f64,
    /// Recovery metrics (`None` for generative models — the synthetic
    /// traces are not aligned to the road network).
    pub recovery: Option<RecoveryMetrics>,
    /// Wall time of the anonymization itself.
    pub anonymize_time: Duration,
}

/// Options for [`evaluate`].
#[derive(Debug, Clone, Copy)]
pub struct EvalOptions {
    /// Run the four linking attacks.
    pub linking: bool,
    /// Run the HMM map-matching recovery attack (the expensive part).
    pub recovery: bool,
    /// Treat the method as generative (skip temporal/ST linking and
    /// recovery, as the paper does for DPT/AdaTrace).
    pub generative: bool,
}

impl Default for EvalOptions {
    fn default() -> Self {
        Self { linking: true, recovery: true, generative: false }
    }
}

/// Evaluates one anonymized release against the original world.
pub fn evaluate(
    name: &str,
    world: &SyntheticWorld,
    anonymized: &Dataset,
    anonymize_time: Duration,
    opts: EvalOptions,
) -> EvalRow {
    let original = &world.dataset;
    let la = |sig: SignatureType| -> f64 {
        LinkingAttack::new(sig).linking_accuracy(original, anonymized)
    };
    let (la_s, la_t, la_st, la_sq) = if opts.linking {
        (
            la(SignatureType::Spatial),
            (!opts.generative).then(|| la(SignatureType::Temporal)),
            (!opts.generative).then(|| la(SignatureType::Spatiotemporal)),
            la(SignatureType::Sequential),
        )
    } else {
        (0.0, None, None, 0.0)
    };
    let mi = mutual_information(original, anonymized, METRIC_GRID);
    let inf = information_loss(original, anonymized);
    let de = diameter_divergence(original, anonymized, 24);
    let te = trip_divergence(original, anonymized, 16);
    let ffp = frequent_pattern_f1(original, anonymized, METRIC_GRID, 2, 200);
    let recovery = if opts.recovery && !opts.generative {
        let matcher = HmmMapMatcher::new(&world.network);
        let recovered = recover_parallel(&matcher, &anonymized.trajectories);
        Some(recovery_metrics(&original.trajectories, &recovered, POINT_TOLERANCE))
    } else {
        None
    };
    EvalRow {
        name: name.to_string(),
        la_s,
        la_t,
        la_st,
        la_sq,
        mi,
        inf,
        de,
        te,
        ffp,
        recovery,
        anonymize_time,
    }
}

/// Runs the recovery attack across trajectories in parallel.
pub fn recover_parallel(
    matcher: &HmmMapMatcher<'_>,
    trajs: &[trajdp_model::Trajectory],
) -> Vec<trajdp_model::Trajectory> {
    let threads = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4);
    let chunk = trajs.len().div_ceil(threads).max(1);
    let mut out: Vec<Option<trajdp_model::Trajectory>> = vec![None; trajs.len()];
    std::thread::scope(|s| {
        for (slice_in, slice_out) in trajs.chunks(chunk).zip(out.chunks_mut(chunk)) {
            s.spawn(move || {
                for (t, slot) in slice_in.iter().zip(slice_out.iter_mut()) {
                    *slot = Some(matcher.recover(t));
                }
            });
        }
    });
    out.into_iter().map(|t| t.expect("all slots filled")).collect()
}

/// Times a closure, returning its output and the elapsed wall time.
pub fn timed<T>(f: impl FnOnce() -> T) -> (T, Duration) {
    let start = Instant::now();
    let out = f();
    (out, start.elapsed())
}

fn fmt_opt(v: Option<f64>) -> String {
    match v {
        Some(x) => format!("{x:.3}"),
        None => "-".to_string(),
    }
}

/// Prints rows in the layout of Table II (metrics as rows, methods as
/// columns would be unwieldy; we print one method per line instead).
pub fn print_table(rows: &[EvalRow]) {
    println!(
        "{:<12} {:>6} {:>6} {:>6} {:>6} {:>6} | {:>6} {:>6} {:>6} {:>6} | {:>6} {:>6} {:>7} {:>6} {:>6} | {:>9}",
        "Method", "LAs", "LAt", "LAst", "LAsq", "MI", "INF", "DE", "TE", "FFP", "Prec", "Rec",
        "F-score", "RMF", "Acc", "time(s)"
    );
    println!("{}", "-".repeat(132));
    for r in rows {
        let rec = r.recovery;
        println!(
            "{:<12} {:>6.3} {:>6} {:>6} {:>6.3} {:>6.3} | {:>6.3} {:>6.3} {:>6.3} {:>6.3} | {:>6} {:>6} {:>7} {:>6} {:>6} | {:>9.2}",
            r.name,
            r.la_s,
            fmt_opt(r.la_t),
            fmt_opt(r.la_st),
            r.la_sq,
            r.mi,
            r.inf,
            r.de,
            r.te,
            r.ffp,
            fmt_opt(rec.map(|m| m.precision)),
            fmt_opt(rec.map(|m| m.recall)),
            fmt_opt(rec.map(|m| m.f_score)),
            fmt_opt(rec.map(|m| m.rmf)),
            fmt_opt(rec.map(|m| m.accuracy)),
            r.anonymize_time.as_secs_f64(),
        );
    }
}

/// Reads a `usize` experiment parameter from the environment, with a
/// default — lets `TRAJDP_SIZE=1000 cargo run --bin table2` reproduce
/// the paper-scale run while keeping the default fast.
pub fn env_param(name: &str, default: usize) -> usize {
    std::env::var(name).ok().and_then(|v| v.parse().ok()).unwrap_or(default)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_world_shape() {
        let w = standard_world(8, 40, 1);
        assert_eq!(w.dataset.len(), 8);
        assert!(w.dataset.trajectories.iter().all(|t| t.len() == 40));
    }

    #[test]
    fn evaluate_identity_release() {
        let w = standard_world(6, 40, 2);
        let row = evaluate(
            "identity",
            &w,
            &w.dataset,
            Duration::ZERO,
            EvalOptions { recovery: false, ..Default::default() },
        );
        assert!(row.la_s > 0.9, "identity release must be fully linkable");
        assert_eq!(row.inf, 0.0);
        assert!(row.de < 1e-9);
        assert_eq!(row.ffp, 1.0);
        assert!(row.mi > 0.99);
    }

    #[test]
    fn evaluate_generative_skips_recovery_and_temporal() {
        let w = standard_world(5, 30, 3);
        let row = evaluate(
            "gen",
            &w,
            &w.dataset,
            Duration::ZERO,
            EvalOptions { generative: true, ..Default::default() },
        );
        assert!(row.recovery.is_none());
        assert!(row.la_t.is_none());
        assert!(row.la_st.is_none());
    }

    #[test]
    fn recover_parallel_matches_serial() {
        let w = standard_world(4, 30, 4);
        let matcher = HmmMapMatcher::new(&w.network);
        let par = recover_parallel(&matcher, &w.dataset.trajectories);
        for (t, p) in w.dataset.trajectories.iter().zip(&par) {
            let serial = matcher.recover(t);
            assert_eq!(&serial, p);
        }
    }

    #[test]
    fn env_param_parsing() {
        std::env::remove_var("TRAJDP_TEST_PARAM_X");
        assert_eq!(env_param("TRAJDP_TEST_PARAM_X", 7), 7);
        std::env::set_var("TRAJDP_TEST_PARAM_X", "42");
        assert_eq!(env_param("TRAJDP_TEST_PARAM_X", 7), 42);
        std::env::set_var("TRAJDP_TEST_PARAM_X", "bogus");
        assert_eq!(env_param("TRAJDP_TEST_PARAM_X", 7), 7);
        std::env::remove_var("TRAJDP_TEST_PARAM_X");
    }

    #[test]
    fn timed_measures() {
        let (v, d) = timed(|| 21 * 2);
        assert_eq!(v, 42);
        assert!(d < Duration::from_secs(1));
    }
}

//! Vendored, dependency-free stand-in for the `criterion` crate.
//!
//! The build environment is offline, so this workspace ships the subset
//! of the criterion 0.5 API its benches use: [`Criterion`],
//! [`BenchmarkGroup`], [`BenchmarkId`], [`Bencher::iter`], [`black_box`],
//! and the [`criterion_group!`] / [`criterion_main!`] macros.
//!
//! Measurement is intentionally simple — calibrate the iteration count
//! to a fixed measurement window, run, and report mean wall time per
//! iteration on stdout. No statistics, plots, or baselines; the numbers
//! are for quick relative comparisons (e.g. serial vs. sharded executor
//! at different worker counts), not rigorous benchmarking.

#![forbid(unsafe_code)]

use std::fmt::Write as _;
use std::time::{Duration, Instant};

/// Opaque value barrier preventing the optimizer from deleting work.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Target wall time each benchmark spends measuring.
const MEASUREMENT_WINDOW: Duration = Duration::from_millis(300);

/// Runs closures and records elapsed time.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `iters` invocations of `f`.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

/// Identifies one benchmark within a group.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `name/parameter`.
    pub fn new<P: std::fmt::Display>(name: &str, parameter: P) -> Self {
        Self { id: format!("{name}/{parameter}") }
    }

    /// Just the parameter, for single-function groups.
    pub fn from_parameter<P: std::fmt::Display>(parameter: P) -> Self {
        Self { id: parameter.to_string() }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        Self { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(id: String) -> Self {
        Self { id }
    }
}

fn format_duration(d: Duration) -> String {
    let ns = d.as_nanos() as f64;
    let mut out = String::new();
    if ns < 1_000.0 {
        let _ = write!(out, "{ns:.1} ns");
    } else if ns < 1_000_000.0 {
        let _ = write!(out, "{:.2} µs", ns / 1_000.0);
    } else if ns < 1_000_000_000.0 {
        let _ = write!(out, "{:.2} ms", ns / 1_000_000.0);
    } else {
        let _ = write!(out, "{:.3} s", ns / 1_000_000_000.0);
    }
    out
}

/// Calibrates an iteration count filling the measurement window, runs,
/// and prints the per-iteration mean.
fn run_one(label: &str, sample_size: Option<usize>, f: &mut dyn FnMut(&mut Bencher)) {
    // One calibration pass.
    let mut b = Bencher { iters: 1, elapsed: Duration::ZERO };
    f(&mut b);
    let per_iter = b.elapsed.max(Duration::from_nanos(1));
    let fitting = (MEASUREMENT_WINDOW.as_nanos() / per_iter.as_nanos()).max(1) as u64;
    let iters = match sample_size {
        Some(n) => fitting.min(n as u64).max(1),
        None => fitting.min(10_000),
    };
    let mut b = Bencher { iters, elapsed: Duration::ZERO };
    f(&mut b);
    let mean = b.elapsed / iters as u32;
    println!("{label:<48} time: {:>12}   ({iters} iters)", format_duration(mean));
}

/// Entry point handed to each benchmark function.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Runs a standalone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        run_one(name, None, &mut f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup { _c: self, name: name.to_string(), sample_size: None }
    }
}

/// A group of related benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    _c: &'a mut Criterion,
    name: String,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    /// Caps the iteration count (criterion's sample count, repurposed).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n);
        self
    }

    /// Runs a benchmark within the group.
    pub fn bench_function<I: Into<BenchmarkId>, F: FnMut(&mut Bencher)>(
        &mut self,
        id: I,
        mut f: F,
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id.into().id);
        run_one(&label, self.sample_size, &mut f);
        self
    }

    /// Runs a benchmark parameterized by an input.
    pub fn bench_with_input<I: Into<BenchmarkId>, T: ?Sized, F: FnMut(&mut Bencher, &T)>(
        &mut self,
        id: I,
        input: &T,
        mut f: F,
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id.into().id);
        run_one(&label, self.sample_size, &mut |b| f(b, input));
        self
    }

    /// Ends the group (printing is immediate, so this is a no-op).
    pub fn finish(self) {}
}

/// Declares a group function running each listed benchmark.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares `main` running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_runs_closure_requested_times() {
        let mut count = 0u64;
        let mut b = Bencher { iters: 17, elapsed: Duration::ZERO };
        b.iter(|| count += 1);
        assert_eq!(count, 17);
        assert!(b.elapsed > Duration::ZERO);
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("knn", 8).id, "knn/8");
        assert_eq!(BenchmarkId::from_parameter("GL").id, "GL");
    }

    #[test]
    fn group_api_composes() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(2);
        group.bench_function(BenchmarkId::from_parameter(1), |b| b.iter(|| black_box(1 + 1)));
        group.bench_with_input(BenchmarkId::new("p", 2), &3, |b, &x| b.iter(|| black_box(x * 2)));
        group.finish();
        c.bench_function("standalone", |b| b.iter(|| black_box(0)));
    }
}

//! # trajdp-synth
//!
//! Synthetic substitute for the T-Drive taxi dataset used in the paper's
//! evaluation (§V-A). The real dataset (10,357 Beijing taxis, 15M GPS
//! points) is not redistributable, so this crate generates datasets with
//! the same *structural* properties the paper's mechanisms and attacks
//! depend on:
//!
//! * road-network-constrained movement (samples snap to network nodes,
//!   so map-matching recovery is meaningful and repeated visits yield
//!   exact location recurrences);
//! * per-agent **personal anchors** — locations an agent visits often
//!   while few others do (high PF, low TF → signature points);
//! * shared **hotspots** — popular locations visited by many agents
//!   (high TF → non-identifying);
//! * the T-Drive sampling profile: ~600 m between consecutive samples,
//!   ~3.1 min sampling period, configurable points per trajectory.
//!
//! Everything is seeded and deterministic.

#![forbid(unsafe_code)]

pub mod agent;
pub mod generator;
pub mod road;

pub use generator::{generate, GeneratorConfig};
pub use road::{NodeId, RoadNetwork, RoadNetworkConfig};

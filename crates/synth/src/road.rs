//! A synthetic road network: a jittered grid of intersections with
//! Manhattan-style connectivity, some edges removed for irregularity.
//!
//! The network is the substrate for both trajectory generation and the
//! HMM map-matching recovery attack — the attack re-infers paths on this
//! graph, exactly as the paper's recovery experiment re-infers paths on
//! the Beijing road network.

use rand::Rng;
use trajdp_model::{Point, Rect};

/// Index of a road-network node (intersection).
pub type NodeId = usize;

/// Configuration of the synthetic road network.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RoadNetworkConfig {
    /// Number of intersections along the x axis.
    pub nx: usize,
    /// Number of intersections along the y axis.
    pub ny: usize,
    /// Mean spacing between adjacent intersections, metres (T-Drive's
    /// mean inter-point spacing is ≈ 600 m).
    pub spacing: f64,
    /// Random positional jitter applied to each intersection, as a
    /// fraction of `spacing` (0 = perfect grid).
    pub jitter: f64,
    /// Probability that a grid edge is removed, creating irregular
    /// block shapes. The generator keeps the network connected by
    /// never removing edges whose removal would disconnect a node
    /// entirely.
    pub drop_edge_prob: f64,
}

impl Default for RoadNetworkConfig {
    fn default() -> Self {
        Self { nx: 48, ny: 48, spacing: 600.0, jitter: 0.25, drop_edge_prob: 0.1 }
    }
}

/// An undirected road graph embedded in the plane.
#[derive(Debug, Clone)]
pub struct RoadNetwork {
    nodes: Vec<Point>,
    adjacency: Vec<Vec<NodeId>>,
    domain: Rect,
}

impl RoadNetwork {
    /// Builds a jittered-grid network. Deterministic given the RNG state.
    pub fn grid<R: Rng + ?Sized>(cfg: &RoadNetworkConfig, rng: &mut R) -> Self {
        assert!(cfg.nx >= 2 && cfg.ny >= 2, "network needs at least a 2×2 grid");
        assert!(cfg.spacing > 0.0, "spacing must be positive");
        let n = cfg.nx * cfg.ny;
        let mut nodes = Vec::with_capacity(n);
        for iy in 0..cfg.ny {
            for ix in 0..cfg.nx {
                let jx = rng.gen_range(-0.5..0.5) * cfg.jitter * cfg.spacing;
                let jy = rng.gen_range(-0.5..0.5) * cfg.jitter * cfg.spacing;
                nodes.push(Point::new(ix as f64 * cfg.spacing + jx, iy as f64 * cfg.spacing + jy));
            }
        }
        let idx = |ix: usize, iy: usize| iy * cfg.nx + ix;
        let mut adjacency: Vec<Vec<NodeId>> = vec![Vec::with_capacity(4); n];
        let add_edge = |adj: &mut Vec<Vec<NodeId>>, a: usize, b: usize| {
            adj[a].push(b);
            adj[b].push(a);
        };
        let mut dropped: Vec<(usize, usize)> = Vec::new();
        for iy in 0..cfg.ny {
            for ix in 0..cfg.nx {
                let a = idx(ix, iy);
                if ix + 1 < cfg.nx {
                    let b = idx(ix + 1, iy);
                    // Keep boundary rows/columns intact so the frame
                    // stays connected even after random edge drops.
                    let on_frame = iy == 0 || iy == cfg.ny - 1;
                    if on_frame || rng.gen::<f64>() >= cfg.drop_edge_prob {
                        add_edge(&mut adjacency, a, b);
                    } else {
                        dropped.push((a, b));
                    }
                }
                if iy + 1 < cfg.ny {
                    let b = idx(ix, iy + 1);
                    let on_frame = ix == 0 || ix == cfg.nx - 1;
                    if on_frame || rng.gen::<f64>() >= cfg.drop_edge_prob {
                        add_edge(&mut adjacency, a, b);
                    } else {
                        dropped.push((a, b));
                    }
                }
            }
        }
        // Random drops can strand interior nodes (or small islands).
        // Restore dropped edges that bridge the visited frontier until
        // the whole graph is connected — the full grid is connected, so
        // this always terminates.
        loop {
            let mut seen = vec![false; n];
            let mut stack = vec![0usize];
            seen[0] = true;
            while let Some(u) = stack.pop() {
                for &v in &adjacency[u] {
                    if !seen[v] {
                        seen[v] = true;
                        stack.push(v);
                    }
                }
            }
            if seen.iter().all(|&s| s) {
                break;
            }
            let bridge = dropped
                .iter()
                .position(|&(a, b)| seen[a] != seen[b])
                .expect("grid is connected, a bridging dropped edge must exist");
            let (a, b) = dropped.swap_remove(bridge);
            add_edge(&mut adjacency, a, b);
        }
        let mut domain = Rect::empty();
        for p in &nodes {
            domain.expand(p);
        }
        // Pad slightly so border nodes are strictly inside.
        let pad = cfg.spacing;
        let domain = Rect::new(
            domain.min_x - pad,
            domain.min_y - pad,
            domain.max_x + pad,
            domain.max_y + pad,
        );
        Self { nodes, adjacency, domain }
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Location of node `id`.
    #[inline]
    pub fn node(&self, id: NodeId) -> Point {
        self.nodes[id]
    }

    /// All node locations.
    pub fn nodes(&self) -> &[Point] {
        &self.nodes
    }

    /// Neighbours of node `id`.
    pub fn neighbors(&self, id: NodeId) -> &[NodeId] {
        &self.adjacency[id]
    }

    /// Spatial domain covering the network with a margin.
    pub fn domain(&self) -> Rect {
        self.domain
    }

    /// The node closest to `p` (linear scan; the network is small).
    pub fn nearest_node(&self, p: &Point) -> NodeId {
        self.nodes
            .iter()
            .enumerate()
            .min_by(|(_, a), (_, b)| a.dist_sq(p).total_cmp(&b.dist_sq(p)))
            .map(|(i, _)| i)
            .expect("network has nodes")
    }

    /// All nodes within `radius` metres of `p`, with distances.
    pub fn nodes_within(&self, p: &Point, radius: f64) -> Vec<(NodeId, f64)> {
        self.nodes
            .iter()
            .enumerate()
            .filter_map(|(i, n)| {
                let d = n.dist(p);
                (d <= radius).then_some((i, d))
            })
            .collect()
    }

    /// Uniformly random node.
    pub fn random_node<R: Rng + ?Sized>(&self, rng: &mut R) -> NodeId {
        rng.gen_range(0..self.nodes.len())
    }

    /// Dijkstra shortest path from `from` to `to` by Euclidean edge
    /// length. Returns the node sequence including both endpoints, or
    /// `None` if unreachable.
    pub fn shortest_path(&self, from: NodeId, to: NodeId) -> Option<Vec<NodeId>> {
        use std::cmp::Reverse;
        use std::collections::BinaryHeap;
        if from == to {
            return Some(vec![from]);
        }
        let n = self.nodes.len();
        let mut dist = vec![f64::INFINITY; n];
        let mut prev = vec![usize::MAX; n];
        let mut heap: BinaryHeap<Reverse<(u64, NodeId)>> = BinaryHeap::new();
        dist[from] = 0.0;
        heap.push(Reverse((0, from)));
        while let Some(Reverse((d_bits, u))) = heap.pop() {
            let d = f64::from_bits(d_bits);
            if d > dist[u] {
                continue;
            }
            if u == to {
                break;
            }
            for &v in &self.adjacency[u] {
                let nd = d + self.nodes[u].dist(&self.nodes[v]);
                if nd < dist[v] {
                    dist[v] = nd;
                    prev[v] = u;
                    // Non-negative distances keep bit order = numeric order.
                    heap.push(Reverse((nd.to_bits(), v)));
                }
            }
        }
        if dist[to].is_infinite() {
            return None;
        }
        let mut path = vec![to];
        let mut cur = to;
        while cur != from {
            cur = prev[cur];
            path.push(cur);
        }
        path.reverse();
        Some(path)
    }

    /// Network length of a node path, metres.
    pub fn path_length(&self, path: &[NodeId]) -> f64 {
        path.windows(2).map(|w| self.nodes[w[0]].dist(&self.nodes[w[1]])).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn net(seed: u64) -> RoadNetwork {
        let cfg = RoadNetworkConfig { nx: 10, ny: 10, ..Default::default() };
        RoadNetwork::grid(&cfg, &mut StdRng::seed_from_u64(seed))
    }

    #[test]
    fn grid_has_expected_size_and_domain() {
        let n = net(1);
        assert_eq!(n.num_nodes(), 100);
        for p in n.nodes() {
            assert!(n.domain().contains(p));
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let a = net(5);
        let b = net(5);
        assert_eq!(a.nodes(), b.nodes());
        for i in 0..a.num_nodes() {
            assert_eq!(a.neighbors(i), b.neighbors(i));
        }
    }

    #[test]
    fn connected_from_corner() {
        // BFS from node 0 must reach every node (frame edges are kept).
        let n = net(3);
        let mut seen = vec![false; n.num_nodes()];
        let mut stack = vec![0usize];
        seen[0] = true;
        while let Some(u) = stack.pop() {
            for &v in n.neighbors(u) {
                if !seen[v] {
                    seen[v] = true;
                    stack.push(v);
                }
            }
        }
        assert!(seen.iter().all(|&s| s), "network must be connected");
    }

    #[test]
    fn shortest_path_is_optimal_on_unjittered_grid() {
        let cfg =
            RoadNetworkConfig { nx: 5, ny: 5, spacing: 100.0, jitter: 0.0, drop_edge_prob: 0.0 };
        let n = RoadNetwork::grid(&cfg, &mut StdRng::seed_from_u64(0));
        // From (0,0) to (4,4): Manhattan distance 8 hops of 100 m.
        let path = n.shortest_path(0, 24).unwrap();
        assert_eq!(path.first(), Some(&0));
        assert_eq!(path.last(), Some(&24));
        assert!((n.path_length(&path) - 800.0).abs() < 1e-9);
    }

    #[test]
    fn shortest_path_trivial_and_consistency() {
        let n = net(7);
        assert_eq!(n.shortest_path(3, 3), Some(vec![3]));
        let p = n.shortest_path(0, 99).unwrap();
        // Consecutive nodes must be adjacent.
        for w in p.windows(2) {
            assert!(n.neighbors(w[0]).contains(&w[1]), "non-adjacent hop {w:?}");
        }
    }

    #[test]
    fn nearest_node_and_nodes_within() {
        let n = net(2);
        let target = n.node(42);
        assert_eq!(n.nearest_node(&target), 42);
        let hits = n.nodes_within(&target, 1.0);
        assert!(hits.iter().any(|&(id, d)| id == 42 && d == 0.0));
        let far = n.nodes_within(&target, 1e9);
        assert_eq!(far.len(), n.num_nodes());
    }

    #[test]
    #[should_panic(expected = "at least a 2×2")]
    fn tiny_grid_panics() {
        let cfg = RoadNetworkConfig { nx: 1, ny: 5, ..Default::default() };
        RoadNetwork::grid(&cfg, &mut StdRng::seed_from_u64(0));
    }
}

//! End-to-end dataset generation with the T-Drive profile.
//!
//! One agent ⇒ one trajectory covering its whole simulated history
//! (matching the paper's "each taxi is associated with a single
//! trajectory"). Samples snap to road nodes, timestamps advance by the
//! sampling period per hop, and trips are drawn from the agent mixture
//! model until the target trajectory length is reached.

use crate::agent::{Agent, TripMix};
use crate::road::{NodeId, RoadNetwork, RoadNetworkConfig};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use trajdp_model::{Dataset, Point, Sample, Trajectory};

/// Configuration of the synthetic dataset generator.
#[derive(Debug, Clone, PartialEq)]
pub struct GeneratorConfig {
    /// Number of trajectories (= agents = moving objects).
    pub num_trajectories: usize,
    /// Target samples per trajectory. T-Drive averages 1,813; the
    /// experiment harness uses a smaller default to keep sweeps fast —
    /// the mechanisms only depend on relative frequencies.
    pub points_per_trajectory: usize,
    /// Road network shape.
    pub network: RoadNetworkConfig,
    /// Number of shared hotspot nodes.
    pub num_hotspots: usize,
    /// Personal anchors per agent.
    pub anchors_per_agent: usize,
    /// Destination mixture.
    pub mix: TripMix,
    /// Time between consecutive road-node *hops*, seconds. With
    /// `sample_stride = 1` this equals the observed sampling period
    /// (T-Drive: ≈ 3.1 min = 186 s); with a larger stride the observed
    /// period between recorded fixes grows accordingly on driving
    /// stretches.
    pub sampling_period: i64,
    /// Emit every `sample_stride`-th node along a driven path (the trip
    /// destination is always emitted). T-Drive's GPS period skips
    /// several road segments between fixes; `stride > 1` reproduces
    /// that sparse-observation regime, which is what makes map-matching
    /// recovery non-trivial. `1` records every node.
    pub sample_stride: usize,
    /// Anchor dwell length range (inclusive): how many consecutive
    /// samples an agent emits while idling at one of its anchors. Longer
    /// dwells concentrate more PF mass on signature points.
    pub anchor_dwell: (usize, usize),
    /// Master seed; everything is deterministic given this.
    pub seed: u64,
}

impl Default for GeneratorConfig {
    fn default() -> Self {
        Self {
            num_trajectories: 1000,
            points_per_trajectory: 200,
            network: RoadNetworkConfig::default(),
            num_hotspots: 24,
            anchors_per_agent: 4,
            mix: TripMix::default(),
            sampling_period: 186,
            sample_stride: 1,
            anchor_dwell: (2, 6),
            seed: 0x7D21E,
        }
    }
}

impl GeneratorConfig {
    /// The calibrated experiment profile used throughout the evaluation
    /// harness: a compact 16×16 city (so the shared road core carries
    /// little identifying information, as in T-Drive), 16 personal
    /// anchors per agent with multi-sample dwells (so signature points
    /// carry substantial PF mass), hotspot-biased trips, and a GPS
    /// sampling stride of 2 (every other road node goes unobserved,
    /// making map-matching recovery non-trivial).
    pub fn tdrive_profile(
        num_trajectories: usize,
        points_per_trajectory: usize,
        seed: u64,
    ) -> Self {
        Self {
            num_trajectories,
            points_per_trajectory,
            network: RoadNetworkConfig { nx: 16, ny: 16, ..Default::default() },
            num_hotspots: 24,
            anchors_per_agent: 16,
            mix: TripMix { anchor: 0.4, hotspot: 0.4, random: 0.2 },
            sampling_period: 186,
            sample_stride: 2,
            anchor_dwell: (2, 6),
            seed,
        }
    }
}

/// Output of [`generate`]: the dataset plus the ground-truth network it
/// was generated on (needed by the map-matching recovery attack).
#[derive(Debug, Clone)]
pub struct SyntheticWorld {
    /// The generated trajectory dataset.
    pub dataset: Dataset,
    /// The road network trajectories travel on.
    pub network: RoadNetwork,
    /// Shared hotspot nodes.
    pub hotspots: Vec<NodeId>,
    /// Per-agent anchor nodes, indexed like `dataset.trajectories`.
    pub anchors: Vec<Vec<NodeId>>,
}

/// Generates a complete synthetic world from a configuration.
pub fn generate(cfg: &GeneratorConfig) -> SyntheticWorld {
    assert!(cfg.num_trajectories > 0, "need at least one trajectory");
    assert!(cfg.points_per_trajectory >= 2, "trajectories need at least two samples");
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let network = RoadNetwork::grid(&cfg.network, &mut rng);

    // Hotspots: distinct random nodes shared by every agent.
    let mut hotspots: Vec<NodeId> = Vec::with_capacity(cfg.num_hotspots);
    while hotspots.len() < cfg.num_hotspots.min(network.num_nodes() / 2) {
        let n = network.random_node(&mut rng);
        if !hotspots.contains(&n) {
            hotspots.push(n);
        }
    }

    let mut trajectories = Vec::with_capacity(cfg.num_trajectories);
    let mut anchors = Vec::with_capacity(cfg.num_trajectories);
    for id in 0..cfg.num_trajectories {
        let mut agent = Agent::spawn(&network, cfg.anchors_per_agent, &hotspots, cfg.mix, &mut rng);
        anchors.push(agent.anchors.clone());
        let mut samples: Vec<Sample> = Vec::with_capacity(cfg.points_per_trajectory);
        // Per-agent shift-start time: drivers begin their day at
        // individual hours, giving each trajectory a temporal identity
        // (the basis of the LAt linking attack).
        let mut t = rng.gen_range(0..86_400i64);
        samples.push(Sample::new(network.node(agent.position), t));
        let stride = cfg.sample_stride.max(1);
        while samples.len() < cfg.points_per_trajectory {
            let dest = agent.next_destination(&network, &mut rng);
            let path = agent.drive_to(&network, dest);
            let last_hop = path.len().saturating_sub(1);
            for (hop, node) in path.into_iter().enumerate() {
                t += cfg.sampling_period;
                // Record every stride-th hop, and always the arrival so
                // destination (anchor/hotspot) visits keep their PF mass.
                if hop % stride != 0 && hop != last_hop {
                    continue;
                }
                samples.push(Sample::new(network.node(node), t));
                if samples.len() >= cfg.points_per_trajectory {
                    break;
                }
            }
            // Dwell at the destination (taxis idle at ranks), re-emitting
            // the same location. Anchors get long dwells — this is what
            // concentrates PF mass on signature points, matching the
            // T-Drive regime where the top-m points carry the majority
            // of a trajectory's samples.
            if samples.len() < cfg.points_per_trajectory {
                let at_anchor = agent.anchors.contains(&agent.position);
                let dwell = if at_anchor {
                    rng.gen_range(cfg.anchor_dwell.0..=cfg.anchor_dwell.1)
                } else if rng.gen::<f64>() < 0.35 {
                    rng.gen_range(1..=3)
                } else {
                    0
                };
                let here = network.node(agent.position);
                for _ in 0..dwell {
                    t += cfg.sampling_period;
                    samples.push(Sample::new(here, t));
                    if samples.len() >= cfg.points_per_trajectory {
                        break;
                    }
                }
            }
        }
        trajectories.push(Trajectory::new(id as u64, samples));
    }

    let dataset = Dataset::new(network.domain(), trajectories);
    SyntheticWorld { dataset, network, hotspots, anchors }
}

impl SyntheticWorld {
    /// Location of a network node (convenience passthrough).
    pub fn node_point(&self, id: NodeId) -> Point {
        self.network.node(id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;
    use trajdp_model::stats::DatasetStats;
    use trajdp_model::PointKey;

    fn small_cfg() -> GeneratorConfig {
        GeneratorConfig {
            num_trajectories: 40,
            points_per_trajectory: 120,
            network: RoadNetworkConfig { nx: 16, ny: 16, ..Default::default() },
            num_hotspots: 6,
            anchors_per_agent: 3,
            seed: 99,
            ..Default::default()
        }
    }

    #[test]
    fn generates_requested_shape() {
        let w = generate(&small_cfg());
        assert_eq!(w.dataset.len(), 40);
        for t in &w.dataset.trajectories {
            assert_eq!(t.len(), 120);
            assert!(t.samples.windows(2).all(|a| a[0].t < a[1].t));
        }
        let stats = DatasetStats::compute(&w.dataset);
        assert_eq!(stats.avg_sampling_period, 186.0);
    }

    #[test]
    fn deterministic_given_seed() {
        let a = generate(&small_cfg());
        let b = generate(&small_cfg());
        assert_eq!(a.dataset, b.dataset);
        assert_eq!(a.hotspots, b.hotspots);
    }

    #[test]
    fn different_seeds_differ() {
        let mut cfg = small_cfg();
        let a = generate(&cfg);
        cfg.seed = 100;
        let b = generate(&cfg);
        assert_ne!(a.dataset, b.dataset);
    }

    #[test]
    fn samples_snap_to_network_nodes() {
        let w = generate(&small_cfg());
        let node_keys: std::collections::HashSet<PointKey> =
            w.network.nodes().iter().map(|p| p.key()).collect();
        for t in &w.dataset.trajectories {
            for s in &t.samples {
                assert!(node_keys.contains(&s.loc.key()), "sample must lie on a node");
            }
        }
    }

    #[test]
    fn consecutive_samples_are_adjacent_or_equal() {
        let w = generate(&small_cfg());
        let pos: HashMap<PointKey, usize> =
            w.network.nodes().iter().enumerate().map(|(i, p)| (p.key(), i)).collect();
        for t in &w.dataset.trajectories {
            for win in t.samples.windows(2) {
                let a = pos[&win[0].loc.key()];
                let b = pos[&win[1].loc.key()];
                assert!(
                    a == b || w.network.neighbors(a).contains(&b),
                    "consecutive samples must dwell or hop along an edge"
                );
            }
        }
    }

    #[test]
    fn anchors_have_signature_structure() {
        // Personal anchors should be visited far more by their owner
        // (high PF) than the typical location, while hotspots accumulate
        // much higher TF than anchors.
        let w = generate(&GeneratorConfig {
            num_trajectories: 60,
            points_per_trajectory: 300,
            ..small_cfg()
        });
        let tf = w.dataset.tf_table();
        let mut anchor_tf = 0.0;
        let mut anchor_count = 0usize;
        for (i, anchors) in w.anchors.iter().enumerate() {
            let traj = &w.dataset.trajectories[i];
            // Home anchor revisited by its owner.
            let home_key = w.network.node(anchors[0]).key();
            assert!(traj.count_point(home_key) >= 1, "agent must visit its home at least once");
            for &a in anchors {
                let k = w.network.node(a).key();
                anchor_tf += *tf.get(&k).unwrap_or(&0) as f64;
                anchor_count += 1;
            }
        }
        let avg_anchor_tf = anchor_tf / anchor_count as f64;
        let avg_hotspot_tf = w
            .hotspots
            .iter()
            .map(|&h| *tf.get(&w.network.node(h).key()).unwrap_or(&0) as f64)
            .sum::<f64>()
            / w.hotspots.len() as f64;
        assert!(
            avg_hotspot_tf > 1.5 * avg_anchor_tf,
            "hotspots (TF {avg_hotspot_tf:.1}) should be notably more shared than anchors (TF {avg_anchor_tf:.1})"
        );
    }

    #[test]
    #[should_panic(expected = "at least one trajectory")]
    fn zero_trajectories_panics() {
        let cfg = GeneratorConfig { num_trajectories: 0, ..small_cfg() };
        generate(&cfg);
    }
}

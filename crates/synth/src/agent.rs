//! Taxi-agent behavioural model.
//!
//! Each agent owns a small set of *personal anchors* (its home/depot and
//! favourite pickup corners — visited often by this agent, rarely by
//! others) and shares a pool of *hotspots* (airport, stations, malls —
//! visited by everyone). Trips alternate between anchors, hotspots and
//! random destinations according to configurable mixture weights. This
//! reproduces the high-PF/low-TF signature structure (Figure 1 of the
//! paper) that the frequency-based mechanisms act on.

use crate::road::{NodeId, RoadNetwork};
use rand::Rng;

/// Mixture weights for destination choice. Normalized internally.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TripMix {
    /// Weight of choosing one of the agent's personal anchors.
    pub anchor: f64,
    /// Weight of choosing a shared hotspot.
    pub hotspot: f64,
    /// Weight of choosing a uniformly random node.
    pub random: f64,
}

impl Default for TripMix {
    fn default() -> Self {
        // Anchors dominate so that signature points emerge, as in real
        // taxi data where drivers return to home/base repeatedly.
        Self { anchor: 0.45, hotspot: 0.25, random: 0.30 }
    }
}

/// A simulated taxi with its behavioural state.
#[derive(Debug, Clone)]
pub struct Agent {
    /// The agent's personal anchor nodes (first one is "home").
    pub anchors: Vec<NodeId>,
    /// Shared hotspot pool (borrowed per trip; stored for convenience).
    pub hotspots: Vec<NodeId>,
    /// Destination mixture.
    pub mix: TripMix,
    /// Node the agent currently occupies.
    pub position: NodeId,
}

impl Agent {
    /// Creates an agent with `num_anchors` personal anchors sampled
    /// uniformly from the network (so anchors are rarely shared between
    /// agents) and the given shared hotspot pool. The agent starts at
    /// its home anchor.
    pub fn spawn<R: Rng + ?Sized>(
        net: &RoadNetwork,
        num_anchors: usize,
        hotspots: &[NodeId],
        mix: TripMix,
        rng: &mut R,
    ) -> Self {
        assert!(num_anchors >= 1, "an agent needs at least a home anchor");
        let mut anchors = Vec::with_capacity(num_anchors);
        while anchors.len() < num_anchors {
            let n = net.random_node(rng);
            if !anchors.contains(&n) && !hotspots.contains(&n) {
                anchors.push(n);
            }
        }
        let position = anchors[0];
        Self { anchors, hotspots: hotspots.to_vec(), mix, position }
    }

    /// Chooses the next trip destination (never the current position).
    pub fn next_destination<R: Rng + ?Sized>(&self, net: &RoadNetwork, rng: &mut R) -> NodeId {
        let total = self.mix.anchor + self.mix.hotspot + self.mix.random;
        assert!(total > 0.0, "trip mix must have positive mass");
        loop {
            let roll = rng.gen::<f64>() * total;
            let dest = if roll < self.mix.anchor && !self.anchors.is_empty() {
                self.anchors[rng.gen_range(0..self.anchors.len())]
            } else if roll < self.mix.anchor + self.mix.hotspot && !self.hotspots.is_empty() {
                self.hotspots[rng.gen_range(0..self.hotspots.len())]
            } else {
                net.random_node(rng)
            };
            if dest != self.position {
                return dest;
            }
        }
    }

    /// Drives to `dest` along the network shortest path, returning the
    /// node sequence travelled (excluding the starting node, including
    /// `dest`). Updates the agent's position. Returns an empty vector if
    /// `dest` is unreachable.
    pub fn drive_to(&mut self, net: &RoadNetwork, dest: NodeId) -> Vec<NodeId> {
        let Some(path) = net.shortest_path(self.position, dest) else {
            return Vec::new();
        };
        self.position = dest;
        path.into_iter().skip(1).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::road::RoadNetworkConfig;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn net() -> RoadNetwork {
        let cfg = RoadNetworkConfig { nx: 8, ny: 8, ..Default::default() };
        RoadNetwork::grid(&cfg, &mut StdRng::seed_from_u64(11))
    }

    #[test]
    fn spawn_avoids_hotspots_and_duplicates() {
        let n = net();
        let hotspots = vec![0, 1, 2, 3];
        let mut rng = StdRng::seed_from_u64(5);
        let a = Agent::spawn(&n, 4, &hotspots, TripMix::default(), &mut rng);
        assert_eq!(a.anchors.len(), 4);
        for w in &a.anchors {
            assert!(!hotspots.contains(w), "anchor must not be a hotspot");
        }
        let mut sorted = a.anchors.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 4, "anchors must be distinct");
        assert_eq!(a.position, a.anchors[0]);
    }

    #[test]
    fn destination_never_current_position() {
        let n = net();
        let mut rng = StdRng::seed_from_u64(6);
        let a = Agent::spawn(&n, 2, &[10, 20], TripMix::default(), &mut rng);
        for _ in 0..100 {
            assert_ne!(a.next_destination(&n, &mut rng), a.position);
        }
    }

    #[test]
    fn anchor_only_mix_always_picks_anchors() {
        let n = net();
        let mut rng = StdRng::seed_from_u64(7);
        let mix = TripMix { anchor: 1.0, hotspot: 0.0, random: 0.0 };
        let a = Agent::spawn(&n, 3, &[], mix, &mut rng);
        for _ in 0..50 {
            let d = a.next_destination(&n, &mut rng);
            assert!(a.anchors.contains(&d));
        }
    }

    #[test]
    fn drive_moves_agent_along_adjacent_nodes() {
        let n = net();
        let mut rng = StdRng::seed_from_u64(8);
        let mut a = Agent::spawn(&n, 1, &[], TripMix::default(), &mut rng);
        let start = a.position;
        let dest = (start + 17) % n.num_nodes();
        let path = a.drive_to(&n, dest);
        assert_eq!(a.position, dest);
        assert_eq!(*path.last().unwrap(), dest);
        // First hop adjacent to start.
        assert!(n.neighbors(start).contains(&path[0]));
    }

    #[test]
    #[should_panic(expected = "at least a home anchor")]
    fn zero_anchors_panics() {
        let n = net();
        let mut rng = StdRng::seed_from_u64(9);
        Agent::spawn(&n, 0, &[], TripMix::default(), &mut rng);
    }
}

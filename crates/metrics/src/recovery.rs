//! Recovery-attack success metrics (§V-B3).
//!
//! A recovery attack (map-matching / path inference) produces, for each
//! anonymized trajectory, a *recovered route* — a sequence of locations
//! it believes the original object travelled. These metrics compare the
//! recovered route against the true original route:
//!
//! * route-based **precision / recall / F-score** over the set of
//!   distinct visited locations;
//! * the length-based **route mismatch fraction** (RMF, after Newson &
//!   Krumm): `(d₊ + d₋) / d₀` where `d₊` is erroneously added route
//!   length, `d₋` missed route length, and `d₀` the true route length —
//!   can exceed 1, and higher means worse recovery (= better privacy);
//! * point-based **accuracy**: the fraction of true samples whose
//!   index-aligned recovered sample lies within a tolerance.

use std::collections::HashSet;
use trajdp_model::{PointKey, Trajectory};

/// Aggregated recovery metrics over a dataset.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct RecoveryMetrics {
    /// Route-based precision.
    pub precision: f64,
    /// Route-based recall.
    pub recall: f64,
    /// Route-based F-score.
    pub f_score: f64,
    /// Length-based route-mismatch fraction (may exceed 1).
    pub rmf: f64,
    /// Point-based accuracy within the tolerance.
    pub accuracy: f64,
}

fn route_set(t: &Trajectory) -> HashSet<PointKey> {
    t.samples.iter().map(|s| s.loc.key()).collect()
}

/// Route length restricted to hops whose *source* location passes the
/// predicate — used to apportion length to matched/unmatched parts.
fn length_where(t: &Trajectory, keep: impl Fn(PointKey) -> bool) -> f64 {
    t.samples.windows(2).filter(|w| keep(w[0].loc.key())).map(|w| w[0].loc.dist(&w[1].loc)).sum()
}

/// Computes recovery metrics for one `(original, recovered)` pair.
pub fn recovery_metrics_single(
    original: &Trajectory,
    recovered: &Trajectory,
    point_tolerance: f64,
) -> RecoveryMetrics {
    let truth = route_set(original);
    let guess = route_set(recovered);
    let inter = truth.intersection(&guess).count() as f64;
    let precision = if guess.is_empty() { 0.0 } else { inter / guess.len() as f64 };
    let recall = if truth.is_empty() { 0.0 } else { inter / truth.len() as f64 };
    let f_score = if precision + recall == 0.0 {
        0.0
    } else {
        2.0 * precision * recall / (precision + recall)
    };

    // RMF: d₊ = recovered length through locations not on the true
    // route; d₋ = true length through locations the recovery missed.
    let d0 = original.path_len().max(1e-9);
    let d_plus = length_where(recovered, |k| !truth.contains(&k));
    let d_minus = length_where(original, |k| !guess.contains(&k));
    let rmf = (d_plus + d_minus) / d0;

    // Point accuracy: index-aligned tolerance matching.
    let n = original.len();
    let accuracy = if n == 0 {
        0.0
    } else {
        let hits = original
            .samples
            .iter()
            .zip(&recovered.samples)
            .filter(|(o, r)| o.loc.dist(&r.loc) <= point_tolerance)
            .count();
        hits as f64 / n as f64
    };

    RecoveryMetrics { precision, recall, f_score, rmf, accuracy }
}

/// Averages [`recovery_metrics_single`] over index-aligned pairs.
pub fn recovery_metrics(
    originals: &[Trajectory],
    recovered: &[Trajectory],
    point_tolerance: f64,
) -> RecoveryMetrics {
    assert_eq!(originals.len(), recovered.len(), "pair count mismatch");
    if originals.is_empty() {
        return RecoveryMetrics::default();
    }
    let mut acc = RecoveryMetrics::default();
    for (o, r) in originals.iter().zip(recovered) {
        let m = recovery_metrics_single(o, r, point_tolerance);
        acc.precision += m.precision;
        acc.recall += m.recall;
        acc.f_score += m.f_score;
        acc.rmf += m.rmf;
        acc.accuracy += m.accuracy;
    }
    let n = originals.len() as f64;
    RecoveryMetrics {
        precision: acc.precision / n,
        recall: acc.recall / n,
        f_score: acc.f_score / n,
        rmf: acc.rmf / n,
        accuracy: acc.accuracy / n,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use trajdp_model::{Point, Sample};

    fn traj(id: u64, pts: &[(f64, f64)]) -> Trajectory {
        Trajectory::new(
            id,
            pts.iter()
                .enumerate()
                .map(|(i, &(x, y))| Sample::new(Point::new(x, y), i as i64))
                .collect(),
        )
    }

    #[test]
    fn perfect_recovery() {
        let t = traj(0, &[(0.0, 0.0), (10.0, 0.0), (20.0, 0.0)]);
        let m = recovery_metrics_single(&t, &t, 1.0);
        assert_eq!(m.precision, 1.0);
        assert_eq!(m.recall, 1.0);
        assert_eq!(m.f_score, 1.0);
        assert_eq!(m.rmf, 0.0);
        assert_eq!(m.accuracy, 1.0);
    }

    #[test]
    fn disjoint_recovery() {
        let t = traj(0, &[(0.0, 0.0), (10.0, 0.0)]);
        let r = traj(0, &[(100.0, 100.0), (110.0, 100.0)]);
        let m = recovery_metrics_single(&t, &r, 1.0);
        assert_eq!(m.precision, 0.0);
        assert_eq!(m.recall, 0.0);
        assert_eq!(m.f_score, 0.0);
        assert_eq!(m.accuracy, 0.0);
        // d₊ = 10, d₋ = 10, d₀ = 10 → RMF = 2.
        assert!((m.rmf - 2.0).abs() < 1e-9);
    }

    #[test]
    fn partial_recovery() {
        let t = traj(0, &[(0.0, 0.0), (10.0, 0.0), (20.0, 0.0), (30.0, 0.0)]);
        let r = traj(0, &[(0.0, 0.0), (10.0, 0.0), (99.0, 99.0), (30.0, 0.0)]);
        let m = recovery_metrics_single(&t, &r, 0.5);
        assert!((m.precision - 0.75).abs() < 1e-9);
        assert!((m.recall - 0.75).abs() < 1e-9);
        assert!((m.accuracy - 0.75).abs() < 1e-9);
        assert!(m.rmf > 0.0);
    }

    #[test]
    fn rmf_can_exceed_one_for_longer_recoveries() {
        // The anonymized data made the recovered route much longer —
        // exactly the situation §V-B3 notes for the frequency models.
        let t = traj(0, &[(0.0, 0.0), (10.0, 0.0)]);
        let r = traj(0, &[(0.0, 0.0), (50.0, 50.0), (100.0, 0.0), (50.0, -50.0), (10.0, 0.0)]);
        let m = recovery_metrics_single(&t, &r, 0.5);
        assert!(m.rmf > 1.0, "RMF should exceed 1, got {}", m.rmf);
    }

    #[test]
    fn point_tolerance_matters() {
        let t = traj(0, &[(0.0, 0.0), (10.0, 0.0)]);
        let r = traj(0, &[(0.0, 3.0), (10.0, 3.0)]);
        assert_eq!(recovery_metrics_single(&t, &r, 1.0).accuracy, 0.0);
        assert_eq!(recovery_metrics_single(&t, &r, 5.0).accuracy, 1.0);
    }

    #[test]
    fn aggregation_averages() {
        let t1 = traj(0, &[(0.0, 0.0), (10.0, 0.0)]);
        let t2 = traj(1, &[(0.0, 50.0), (10.0, 50.0)]);
        let r1 = t1.clone(); // perfect
        let r2 = traj(1, &[(100.0, 0.0), (110.0, 0.0)]); // disjoint
        let m = recovery_metrics(&[t1, t2], &[r1, r2], 1.0);
        assert!((m.precision - 0.5).abs() < 1e-9);
        assert!((m.accuracy - 0.5).abs() < 1e-9);
    }

    #[test]
    fn empty_inputs() {
        let m = recovery_metrics(&[], &[], 1.0);
        assert_eq!(m, RecoveryMetrics::default());
    }

    #[test]
    #[should_panic(expected = "pair count mismatch")]
    fn mismatched_pairs_panic() {
        recovery_metrics(&[traj(0, &[(0.0, 0.0)])], &[], 1.0);
    }
}

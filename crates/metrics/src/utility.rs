//! Utility-preservation metrics (§V-A): INF, DE, TE, FFP.

use std::collections::{HashMap, HashSet};
use trajdp_model::stats::{histogram, jensen_shannon};
use trajdp_model::{Dataset, GridLevel, PointKey};

/// Point-based information loss (INF, after Han & Tsai '15): the
/// fraction of original sample occurrences that no longer appear in the
/// anonymized counterpart of the same trajectory. 0 = every original
/// point retained, 1 = everything lost. Lower is better.
pub fn information_loss(original: &Dataset, anonymized: &Dataset) -> f64 {
    assert_eq!(original.len(), anonymized.len(), "datasets must contain the same objects");
    let mut total = 0usize;
    let mut lost = 0usize;
    for (o, a) in original.trajectories.iter().zip(&anonymized.trajectories) {
        let mut remaining: HashMap<PointKey, usize> = HashMap::new();
        for s in &a.samples {
            *remaining.entry(s.loc.key()).or_insert(0) += 1;
        }
        for s in &o.samples {
            total += 1;
            match remaining.get_mut(&s.loc.key()) {
                Some(c) if *c > 0 => *c -= 1,
                _ => lost += 1,
            }
        }
    }
    if total == 0 {
        0.0
    } else {
        lost as f64 / total as f64
    }
}

/// Divergence of the trajectory-diameter distribution (DE, after Gursoy
/// et al.): Jensen–Shannon divergence between histograms of per-
/// trajectory diameters. Lower is better.
pub fn diameter_divergence(original: &Dataset, anonymized: &Dataset, bins: usize) -> f64 {
    let dia = |ds: &Dataset| -> Vec<f64> {
        ds.trajectories.iter().map(|t| t.diameter_approx()).collect()
    };
    let d_o = dia(original);
    let d_a = dia(anonymized);
    let hi = d_o.iter().chain(&d_a).fold(0.0f64, |m, &v| m.max(v)).max(1e-9);
    let h_o = histogram(&d_o, 0.0, hi, bins);
    let h_a = histogram(&d_a, 0.0, hi, bins);
    jensen_shannon(&h_o, &h_a) / std::f64::consts::LN_2 // normalize to [0,1]
}

/// Divergence of the trip (start-cell → end-cell) distribution (TE):
/// Jensen–Shannon divergence between categorical distributions over
/// `granularity × granularity` origin/destination cell pairs. Lower is
/// better.
pub fn trip_divergence(original: &Dataset, anonymized: &Dataset, granularity: u32) -> f64 {
    let grid = GridLevel::new(original.domain, granularity, 0);
    let key = |ds: &Dataset| -> HashMap<(u32, u32, u32, u32), f64> {
        let mut h = HashMap::new();
        for t in &ds.trajectories {
            if let Some((s, e)) = t.trip() {
                let cs = grid.locate(&s);
                let ce = grid.locate(&e);
                *h.entry((cs.col, cs.row, ce.col, ce.row)).or_insert(0.0) += 1.0;
            }
        }
        h
    };
    let h_o = key(original);
    let h_a = key(anonymized);
    // Union support, aligned vectors.
    let support: HashSet<_> = h_o.keys().chain(h_a.keys()).copied().collect();
    if support.is_empty() {
        return 0.0;
    }
    let mut p = Vec::with_capacity(support.len());
    let mut q = Vec::with_capacity(support.len());
    for k in support {
        p.push(*h_o.get(&k).unwrap_or(&0.0));
        q.push(*h_a.get(&k).unwrap_or(&0.0));
    }
    jensen_shannon(&p, &q) / std::f64::consts::LN_2
}

/// Mines the `top_n` most frequent length-`len` cell sequences
/// (consecutive, de-duplicated cell transitions) of a dataset.
fn frequent_patterns(
    ds: &Dataset,
    grid: &GridLevel,
    len: usize,
    top_n: usize,
) -> HashSet<Vec<(u32, u32)>> {
    let mut counts: HashMap<Vec<(u32, u32)>, usize> = HashMap::new();
    for t in &ds.trajectories {
        // Collapse consecutive samples in the same cell first.
        let mut cells: Vec<(u32, u32)> = Vec::with_capacity(t.len());
        for s in &t.samples {
            let c = grid.locate(&s.loc);
            if cells.last() != Some(&(c.col, c.row)) {
                cells.push((c.col, c.row));
            }
        }
        // Count each distinct n-gram once per trajectory (support-based
        // frequent-pattern semantics).
        let mut seen: HashSet<&[(u32, u32)]> = HashSet::new();
        for w in cells.windows(len) {
            if seen.insert(w) {
                *counts.entry(w.to_vec()).or_insert(0) += 1;
            }
        }
    }
    let mut v: Vec<(Vec<(u32, u32)>, usize)> = counts.into_iter().collect();
    v.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
    v.into_iter().take(top_n).map(|(k, _)| k).collect()
}

/// F-measure of frequent pattern mining (FFP, after Gurung et al.):
/// mine the `top_n` most frequent length-`pattern_len` cell sequences
/// from both datasets and report the F1 overlap. Higher is better.
pub fn frequent_pattern_f1(
    original: &Dataset,
    anonymized: &Dataset,
    granularity: u32,
    pattern_len: usize,
    top_n: usize,
) -> f64 {
    assert!(pattern_len >= 1 && top_n >= 1, "degenerate pattern mining parameters");
    let grid = GridLevel::new(original.domain, granularity, 0);
    let p_o = frequent_patterns(original, &grid, pattern_len, top_n);
    let p_a = frequent_patterns(anonymized, &grid, pattern_len, top_n);
    if p_o.is_empty() && p_a.is_empty() {
        return 1.0;
    }
    if p_o.is_empty() || p_a.is_empty() {
        return 0.0;
    }
    let inter = p_o.intersection(&p_a).count() as f64;
    let precision = inter / p_a.len() as f64;
    let recall = inter / p_o.len() as f64;
    if precision + recall == 0.0 {
        0.0
    } else {
        2.0 * precision * recall / (precision + recall)
    }
}

/// Average relative error of spatial count queries (AvRE, after Gursoy
/// et al.): for each grid cell, compare the number of trajectories
/// passing through it in the original vs the anonymized dataset,
/// `|orig − anon| / max(orig, sanity_bound)`. Lower is better. Cells
/// empty in both datasets are skipped; the sanity bound (a fraction of
/// `|D|`, conventionally 1%) keeps near-empty cells from dominating.
pub fn query_avre(original: &Dataset, anonymized: &Dataset, granularity: u32) -> f64 {
    let grid = GridLevel::new(original.domain, granularity, 0);
    let counts = |ds: &Dataset| -> HashMap<(u32, u32), f64> {
        let mut h: HashMap<(u32, u32), f64> = HashMap::new();
        let mut seen: HashSet<(u32, u32)> = HashSet::new();
        for t in &ds.trajectories {
            seen.clear();
            for s in &t.samples {
                let c = grid.locate(&s.loc);
                if seen.insert((c.col, c.row)) {
                    *h.entry((c.col, c.row)).or_insert(0.0) += 1.0;
                }
            }
        }
        h
    };
    let h_o = counts(original);
    let h_a = counts(anonymized);
    let sanity = (original.len() as f64 * 0.01).max(1.0);
    let support: HashSet<_> = h_o.keys().chain(h_a.keys()).copied().collect();
    if support.is_empty() {
        return 0.0;
    }
    let total: f64 = support
        .iter()
        .map(|c| {
            let o = *h_o.get(c).unwrap_or(&0.0);
            let a = *h_a.get(c).unwrap_or(&0.0);
            (o - a).abs() / o.max(sanity)
        })
        .sum();
    total / support.len() as f64
}

/// Hotspot preservation: the Jaccard overlap between the `top_n` most
/// visited cells of the original and the anonymized dataset. 1 = all
/// hotspots preserved; higher is better.
pub fn hotspot_preservation(
    original: &Dataset,
    anonymized: &Dataset,
    granularity: u32,
    top_n: usize,
) -> f64 {
    assert!(top_n >= 1, "top_n must be positive");
    let grid = GridLevel::new(original.domain, granularity, 0);
    let top_cells = |ds: &Dataset| -> HashSet<(u32, u32)> {
        let mut h: HashMap<(u32, u32), usize> = HashMap::new();
        for t in &ds.trajectories {
            for s in &t.samples {
                let c = grid.locate(&s.loc);
                *h.entry((c.col, c.row)).or_insert(0) += 1;
            }
        }
        let mut v: Vec<((u32, u32), usize)> = h.into_iter().collect();
        v.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        v.into_iter().take(top_n).map(|(c, _)| c).collect()
    };
    let a = top_cells(original);
    let b = top_cells(anonymized);
    if a.is_empty() && b.is_empty() {
        return 1.0;
    }
    let inter = a.intersection(&b).count() as f64;
    let union = a.union(&b).count() as f64;
    inter / union
}

#[cfg(test)]
mod tests {
    use super::*;
    use trajdp_model::{Point, Rect, Sample, Trajectory};

    fn traj(id: u64, pts: &[(f64, f64)]) -> Trajectory {
        Trajectory::new(
            id,
            pts.iter()
                .enumerate()
                .map(|(i, &(x, y))| Sample::new(Point::new(x, y), i as i64))
                .collect(),
        )
    }

    fn base() -> Dataset {
        Dataset::new(
            Rect::new(0.0, 0.0, 100.0, 100.0),
            vec![
                traj(0, &[(10.0, 10.0), (20.0, 10.0), (30.0, 10.0), (40.0, 10.0)]),
                traj(1, &[(10.0, 90.0), (20.0, 90.0), (30.0, 90.0)]),
            ],
        )
    }

    #[test]
    fn inf_zero_for_identity() {
        let d = base();
        assert_eq!(information_loss(&d, &d), 0.0);
    }

    #[test]
    fn inf_counts_missing_occurrences() {
        let d = base();
        let mut anon = d.clone();
        anon.trajectories[0].samples.truncate(2); // lose 2 of 7 points
        assert!((information_loss(&d, &anon) - 2.0 / 7.0).abs() < 1e-12);
    }

    #[test]
    fn inf_is_multiset_aware() {
        // Original has the point twice; anonymized only once → one lost.
        let d =
            Dataset::new(Rect::new(0.0, 0.0, 10.0, 10.0), vec![traj(0, &[(1.0, 1.0), (1.0, 1.0)])]);
        let anon =
            Dataset::new(Rect::new(0.0, 0.0, 10.0, 10.0), vec![traj(0, &[(1.0, 1.0), (2.0, 2.0)])]);
        assert!((information_loss(&d, &anon) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn inf_ignores_extra_inserted_points() {
        let d = base();
        let mut anon = d.clone();
        anon.trajectories[0].samples.push(Sample::new(Point::new(99.0, 99.0), 100));
        assert_eq!(information_loss(&d, &anon), 0.0);
    }

    #[test]
    fn de_zero_for_identity_and_positive_for_shrunk() {
        let d = base();
        assert!(diameter_divergence(&d, &d, 20) < 1e-12);
        let mut anon = d.clone();
        for t in &mut anon.trajectories {
            t.samples.truncate(1); // diameters collapse to zero
        }
        assert!(diameter_divergence(&d, &anon, 20) > 0.5);
    }

    #[test]
    fn te_zero_for_identity_and_positive_for_moved_trips() {
        let d = base();
        assert!(trip_divergence(&d, &d, 8) < 1e-12);
        let mut anon = d.clone();
        // Move trajectory 0's endpoint across the domain.
        let last = anon.trajectories[0].samples.last_mut().unwrap();
        last.loc = Point::new(95.0, 95.0);
        let te = trip_divergence(&d, &anon, 8);
        assert!(te > 0.2, "moving a trip endpoint must register, got {te}");
    }

    #[test]
    fn ffp_one_for_identity() {
        let d = base();
        assert_eq!(frequent_pattern_f1(&d, &d, 16, 2, 10), 1.0);
    }

    #[test]
    fn ffp_drops_when_patterns_destroyed() {
        let d = base();
        // Reverse every trajectory spatially: transitions flip direction.
        let anon = Dataset::new(
            d.domain,
            d.trajectories
                .iter()
                .map(|t| {
                    let mut pts: Vec<_> = t.samples.iter().map(|s| s.loc).collect();
                    pts.reverse();
                    Trajectory::new(
                        t.id,
                        pts.into_iter()
                            .enumerate()
                            .map(|(i, p)| Sample::new(p, i as i64))
                            .collect(),
                    )
                })
                .collect(),
        );
        let f1 = frequent_pattern_f1(&d, &anon, 16, 2, 10);
        assert!(f1 < 1.0, "reversed transitions should lower FFP, got {f1}");
    }

    #[test]
    fn ffp_empty_datasets() {
        let e = Dataset::new(Rect::new(0.0, 0.0, 1.0, 1.0), vec![]);
        assert_eq!(frequent_pattern_f1(&e, &e, 8, 2, 5), 1.0);
    }

    #[test]
    fn avre_zero_for_identity() {
        let d = base();
        assert_eq!(query_avre(&d, &d, 16), 0.0);
    }

    #[test]
    fn avre_registers_removed_mass() {
        let d = base();
        let empty = Dataset::new(
            d.domain,
            d.trajectories.iter().map(|t| Trajectory::new(t.id, vec![])).collect(),
        );
        let e = query_avre(&d, &empty, 16);
        assert!(e > 0.9, "emptying the dataset should max the query error, got {e}");
    }

    #[test]
    fn avre_counts_trajectories_not_occurrences() {
        // Doubling every sample within the same trajectories does not
        // change per-cell trajectory counts → error stays 0.
        let d = base();
        let doubled = Dataset::new(
            d.domain,
            d.trajectories
                .iter()
                .map(|t| {
                    let mut samples = t.samples.clone();
                    samples.extend(t.samples.iter().map(|s| Sample::new(s.loc, s.t + 1000)));
                    Trajectory::new(t.id, samples)
                })
                .collect(),
        );
        assert_eq!(query_avre(&d, &doubled, 16), 0.0);
    }

    #[test]
    fn hotspots_identity_and_destroyed() {
        let d = base();
        assert_eq!(hotspot_preservation(&d, &d, 16, 5), 1.0);
        // Move everything into one far corner: the original hotspots
        // disappear from the release.
        let moved = Dataset::new(
            d.domain,
            d.trajectories
                .iter()
                .map(|t| {
                    Trajectory::new(
                        t.id,
                        t.samples
                            .iter()
                            .map(|s| Sample::new(Point::new(99.0, 99.0), s.t))
                            .collect(),
                    )
                })
                .collect(),
        );
        let h = hotspot_preservation(&d, &moved, 16, 5);
        assert!(h < 0.5, "relocated data should lose hotspots, got {h}");
    }

    #[test]
    fn hotspots_empty_inputs() {
        let e = Dataset::new(Rect::new(0.0, 0.0, 1.0, 1.0), vec![]);
        assert_eq!(hotspot_preservation(&e, &e, 8, 3), 1.0);
    }
}

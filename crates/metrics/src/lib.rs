//! # trajdp-metrics
//!
//! Evaluation metrics of the paper's experimental study (§V-A):
//!
//! * [`privacy`] — mutual information (MI) between original and
//!   anonymized datasets: lower = better protection.
//! * [`utility`] — point-based information loss (INF), diameter-
//!   distribution divergence (DE), trip-distribution divergence (TE),
//!   and the F-measure of frequent pattern mining (FFP): lower INF/DE/TE
//!   and higher FFP = better utility preservation.
//! * [`recovery`] — route-based precision/recall/F-score, the
//!   length-based route-mismatch fraction (RMF), and point-based
//!   accuracy of a recovery attack's output against the ground truth.
//!
//! Linking accuracy (LA) lives in `trajdp-attacks`, since it is the
//! success rate of the re-identification attack itself.

#![forbid(unsafe_code)]

pub mod privacy;
pub mod recovery;
pub mod utility;

pub use privacy::mutual_information;
pub use recovery::{recovery_metrics, RecoveryMetrics};
pub use utility::{
    diameter_divergence, frequent_pattern_f1, hotspot_preservation, information_loss, query_avre,
    trip_divergence,
};

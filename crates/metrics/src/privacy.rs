//! Mutual information between original and anonymized datasets.
//!
//! Following the usage in the paper (after Yang et al., CCS'12 and Li et
//! al., Inf. Sci.'17): discretize locations into grid cells, pair the
//! i-th sample of each original trajectory with the i-th sample of its
//! anonymized counterpart, and measure how much information the
//! anonymized location reveals about the original one. The value is
//! normalized by the joint entropy so it lies in `[0, 1]`; smaller
//! means better protection.

use std::collections::HashMap;
use trajdp_model::{Dataset, GridLevel};

/// Normalized mutual information between paired samples of `original`
/// and `anonymized`, discretized on a `granularity × granularity` grid
/// over the original's domain.
///
/// Trajectories are paired by position in the dataset (the anonymized
/// dataset preserves object order); samples are paired by index up to
/// the shorter length. Returns 0 when no pairs exist.
pub fn mutual_information(original: &Dataset, anonymized: &Dataset, granularity: u32) -> f64 {
    assert_eq!(original.len(), anonymized.len(), "datasets must contain the same objects");
    let grid = GridLevel::new(original.domain, granularity, 0);
    let mut joint: HashMap<(u64, u64), f64> = HashMap::new();
    let mut total = 0.0f64;
    for (o, a) in original.trajectories.iter().zip(&anonymized.trajectories) {
        for (so, sa) in o.samples.iter().zip(&a.samples) {
            let co = grid.locate(&so.loc);
            let ca = grid.locate(&sa.loc);
            let key = (
                u64::from(co.col) << 32 | u64::from(co.row),
                u64::from(ca.col) << 32 | u64::from(ca.row),
            );
            *joint.entry(key).or_insert(0.0) += 1.0;
            total += 1.0;
        }
    }
    if total == 0.0 {
        return 0.0;
    }
    let mut px: HashMap<u64, f64> = HashMap::new();
    let mut py: HashMap<u64, f64> = HashMap::new();
    for (&(x, y), &c) in &joint {
        *px.entry(x).or_insert(0.0) += c / total;
        *py.entry(y).or_insert(0.0) += c / total;
    }
    let mut mi = 0.0;
    let mut h_joint = 0.0;
    for (&(x, y), &c) in &joint {
        let pxy = c / total;
        mi += pxy * (pxy / (px[&x] * py[&y])).ln();
        h_joint -= pxy * pxy.ln();
    }
    if h_joint <= 0.0 {
        // Degenerate: a single joint cell. X and Y are then constants and
        // reveal nothing about each other.
        return 0.0;
    }
    (mi / h_joint).clamp(0.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use trajdp_model::{Point, Rect, Sample, Trajectory};

    fn random_dataset(seed: u64, n: usize, len: usize) -> Dataset {
        let mut rng = StdRng::seed_from_u64(seed);
        let trajs = (0..n)
            .map(|id| {
                Trajectory::new(
                    id as u64,
                    (0..len)
                        .map(|i| {
                            Sample::new(
                                Point::new(rng.gen_range(0.0..1000.0), rng.gen_range(0.0..1000.0)),
                                i as i64,
                            )
                        })
                        .collect(),
                )
            })
            .collect();
        Dataset::new(Rect::new(0.0, 0.0, 1000.0, 1000.0), trajs)
    }

    #[test]
    fn identity_gives_maximal_dependence() {
        let d = random_dataset(1, 10, 50);
        let mi = mutual_information(&d, &d, 32);
        // Identical data: MI equals the entropy → normalized value 1.
        assert!(mi > 0.99, "identity MI should be ≈1, got {mi}");
    }

    #[test]
    fn independent_data_gives_low_mi() {
        let a = random_dataset(2, 20, 80);
        let b = random_dataset(999, 20, 80);
        let mi = mutual_information(&a, &b, 16);
        assert!(mi < 0.5, "independent data should have low MI, got {mi}");
    }

    #[test]
    fn partial_anonymization_lies_between() {
        let d = random_dataset(3, 10, 60);
        // Replace half of every trajectory with unrelated noise.
        let mut rng = StdRng::seed_from_u64(4);
        let mut anon = d.clone();
        for t in &mut anon.trajectories {
            for s in t.samples.iter_mut().skip(30) {
                s.loc = Point::new(rng.gen_range(0.0..1000.0), rng.gen_range(0.0..1000.0));
            }
        }
        let full = mutual_information(&d, &d, 16);
        let half = mutual_information(&d, &anon, 16);
        let none = mutual_information(&d, &random_dataset(55, 10, 60), 16);
        assert!(half < full);
        assert!(half > none);
    }

    #[test]
    fn empty_pairs_give_zero() {
        let d = Dataset::new(Rect::new(0.0, 0.0, 1.0, 1.0), vec![]);
        assert_eq!(mutual_information(&d, &d, 8), 0.0);
    }

    #[test]
    fn constant_location_gives_zero() {
        let t = Trajectory::new(0, (0..10).map(|i| Sample::new(Point::new(5.0, 5.0), i)).collect());
        let d = Dataset::new(Rect::new(0.0, 0.0, 10.0, 10.0), vec![t]);
        assert_eq!(mutual_information(&d, &d, 8), 0.0);
    }

    #[test]
    #[should_panic(expected = "same objects")]
    fn mismatched_sizes_panic() {
        let a = random_dataset(1, 3, 5);
        let b = random_dataset(1, 4, 5);
        mutual_information(&a, &b, 8);
    }
}

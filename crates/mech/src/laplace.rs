//! The Laplace distribution and the (generalized) Laplace mechanism.
//!
//! The classical mechanism adds `Lap(0, ∆φ/ε)` noise to a query answer.
//! The paper's local mechanism (Algorithm 2) deliberately shifts the mean
//! — `Lap(−f_k, 1/ε_L)` in stage 1 and `Lap(−µ̄, 1/ε_L)` in stage 2 — to
//! bias noise towards *reducing* signature frequencies. Theorem 2 shows
//! the privacy guarantee only depends on the scale, so any mean is
//! admissible; this module implements both.

use rand::Rng;
use std::fmt;

/// Errors raised when constructing a mechanism with invalid parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum MechError {
    /// Scale (and hence ε or sensitivity) must be strictly positive.
    NonPositiveScale {
        /// The offending scale value.
        scale: f64,
    },
    /// Privacy budget must be strictly positive.
    NonPositiveEpsilon {
        /// The offending ε value.
        epsilon: f64,
    },
}

impl fmt::Display for MechError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MechError::NonPositiveScale { scale } => {
                write!(f, "Laplace scale must be positive, got {scale}")
            }
            MechError::NonPositiveEpsilon { epsilon } => {
                write!(f, "privacy budget must be positive, got {epsilon}")
            }
        }
    }
}

impl std::error::Error for MechError {}

/// A Laplace distribution `Lap(µ, λ)` with density
/// `f(x) = exp(−|x − µ|/λ) / (2λ)`.
///
/// # Examples
///
/// ```
/// use rand::SeedableRng;
/// use trajdp_mech::Laplace;
///
/// // The paper's stage-1 distribution: centred at −f so the sampled
/// // noise usually cancels the original frequency f.
/// let f = 12.0;
/// let d = Laplace::new(-f, 2.0).unwrap();
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let noisy = f + d.sample(&mut rng);
/// assert!(noisy.abs() < 20.0); // concentrated near zero
/// assert!((d.cdf(-f) - 0.5).abs() < 1e-12); // median at µ
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Laplace {
    mu: f64,
    scale: f64,
}

impl Laplace {
    /// Creates a distribution; the scale must be strictly positive and
    /// both parameters finite.
    pub fn new(mu: f64, scale: f64) -> Result<Self, MechError> {
        if scale <= 0.0 || !scale.is_finite() || !mu.is_finite() {
            return Err(MechError::NonPositiveScale { scale });
        }
        Ok(Self { mu, scale })
    }

    /// The mean µ.
    #[inline]
    pub fn mu(&self) -> f64 {
        self.mu
    }

    /// The scale λ.
    #[inline]
    pub fn scale(&self) -> f64 {
        self.scale
    }

    /// Draws one sample by inverse-CDF: with `u ~ U(−½, ½)`,
    /// `x = µ − λ·sgn(u)·ln(1 − 2|u|)`.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        // Guard against u = ±0.5 producing ln(0) = −∞.
        let u: f64 = loop {
            let u = rng.gen::<f64>() - 0.5;
            if u.abs() < 0.5 {
                break u;
            }
        };
        self.mu - self.scale * u.signum() * (1.0 - 2.0 * u.abs()).ln()
    }

    /// Probability density at `x`.
    pub fn pdf(&self, x: f64) -> f64 {
        (-(x - self.mu).abs() / self.scale).exp() / (2.0 * self.scale)
    }

    /// Cumulative distribution at `x`.
    pub fn cdf(&self, x: f64) -> f64 {
        let z = (x - self.mu) / self.scale;
        if z < 0.0 {
            0.5 * z.exp()
        } else {
            1.0 - 0.5 * (-z).exp()
        }
    }

    /// Variance, `2λ²`.
    pub fn variance(&self) -> f64 {
        2.0 * self.scale * self.scale
    }
}

/// An ε-differentially-private Laplace mechanism for queries of known
/// L1 sensitivity.
///
/// `randomize` implements the classical zero-mean release;
/// `randomize_shifted` implements the paper's generalized release with an
/// arbitrary mean shift (Theorem 2), used by the local PF mechanism.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LaplaceMechanism {
    epsilon: f64,
    sensitivity: f64,
}

impl LaplaceMechanism {
    /// Creates a mechanism with privacy budget `epsilon` for a query of
    /// the given L1 `sensitivity`.
    pub fn new(epsilon: f64, sensitivity: f64) -> Result<Self, MechError> {
        if epsilon <= 0.0 || !epsilon.is_finite() {
            return Err(MechError::NonPositiveEpsilon { epsilon });
        }
        if sensitivity <= 0.0 || !sensitivity.is_finite() {
            return Err(MechError::NonPositiveScale { scale: sensitivity });
        }
        Ok(Self { epsilon, sensitivity })
    }

    /// The privacy budget ε of each release.
    #[inline]
    pub fn epsilon(&self) -> f64 {
        self.epsilon
    }

    /// The noise scale `λ = ∆φ/ε`.
    #[inline]
    pub fn noise_scale(&self) -> f64 {
        self.sensitivity / self.epsilon
    }

    /// Classical release: `value + Lap(0, ∆φ/ε)`.
    pub fn randomize<R: Rng + ?Sized>(&self, value: f64, rng: &mut R) -> f64 {
        let d = Laplace::new(0.0, self.noise_scale()).expect("validated at construction");
        value + d.sample(rng)
    }

    /// Generalized release with a mean shift: `value + Lap(shift, ∆φ/ε)`.
    ///
    /// With `shift = −value` (stage 1 of Algorithm 2) the noisy frequency
    /// is centred on zero, i.e. the signature point's occurrences are
    /// suppressed with high probability while ε-DP is preserved.
    pub fn randomize_shifted<R: Rng + ?Sized>(&self, value: f64, shift: f64, rng: &mut R) -> f64 {
        let d = Laplace::new(shift, self.noise_scale()).expect("validated at construction");
        value + d.sample(rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn rejects_invalid_parameters() {
        assert!(Laplace::new(0.0, 0.0).is_err());
        assert!(Laplace::new(0.0, -1.0).is_err());
        assert!(Laplace::new(f64::NAN, 1.0).is_err());
        assert!(Laplace::new(0.0, f64::INFINITY).is_err());
        assert!(LaplaceMechanism::new(0.0, 1.0).is_err());
        assert!(LaplaceMechanism::new(-1.0, 1.0).is_err());
        assert!(LaplaceMechanism::new(1.0, 0.0).is_err());
        assert!(LaplaceMechanism::new(f64::NAN, 1.0).is_err());
    }

    #[test]
    fn pdf_integrates_to_one() {
        let d = Laplace::new(2.0, 1.5).unwrap();
        // Trapezoidal integration over a wide support.
        let (lo, hi, n) = (-40.0, 44.0, 200_000);
        let h = (hi - lo) / n as f64;
        let mut sum = 0.0;
        for i in 0..=n {
            let x = lo + h * i as f64;
            let w = if i == 0 || i == n { 0.5 } else { 1.0 };
            sum += w * d.pdf(x);
        }
        assert!((sum * h - 1.0).abs() < 1e-6);
    }

    #[test]
    fn cdf_is_monotone_and_consistent_with_pdf() {
        let d = Laplace::new(-1.0, 0.7).unwrap();
        assert!((d.cdf(-1.0) - 0.5).abs() < 1e-12);
        let mut prev = 0.0;
        for i in 0..200 {
            let x = -10.0 + i as f64 * 0.1;
            let c = d.cdf(x);
            assert!(c >= prev, "CDF must be monotone");
            prev = c;
        }
        // Numerical derivative of the CDF ≈ PDF.
        let eps = 1e-6;
        for x in [-3.0, -1.0, 0.0, 2.5] {
            let deriv = (d.cdf(x + eps) - d.cdf(x - eps)) / (2.0 * eps);
            assert!((deriv - d.pdf(x)).abs() < 1e-5, "pdf/cdf mismatch at {x}");
        }
    }

    #[test]
    fn sample_mean_and_variance_converge() {
        let mut rng = StdRng::seed_from_u64(42);
        let d = Laplace::new(3.0, 2.0).unwrap();
        let n = 200_000;
        let samples: Vec<f64> = (0..n).map(|_| d.sample(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!((mean - 3.0).abs() < 0.05, "mean {mean} far from 3.0");
        assert!((var - d.variance()).abs() < 0.3, "variance {var} far from {}", d.variance());
    }

    #[test]
    fn sample_median_is_mu() {
        let mut rng = StdRng::seed_from_u64(7);
        let d = Laplace::new(-5.0, 1.0).unwrap();
        let n = 100_000;
        let below = (0..n).filter(|_| d.sample(&mut rng) < -5.0).count();
        let frac = below as f64 / n as f64;
        assert!((frac - 0.5).abs() < 0.01, "median fraction {frac}");
    }

    #[test]
    fn negative_mean_biases_noise_negative() {
        // Stage-1 rationale: Lap(−f, λ) makes noise ≤ −? negative with
        // probability > 1/2 so frequencies shrink.
        let mut rng = StdRng::seed_from_u64(11);
        let d = Laplace::new(-4.0, 1.0).unwrap();
        let n = 50_000;
        let negative = (0..n).filter(|_| d.sample(&mut rng) < 0.0).count();
        assert!(negative as f64 / n as f64 > 0.9);
    }

    /// Analytic check of the ε-DP bound (Theorem 2): for adjacent counts
    /// `c`, `c'` with |c − c'| ≤ ∆φ and any output `z`, the density ratio
    /// of the *shifted* mechanism is at most `exp(ε)`.
    #[test]
    fn density_ratio_bound_holds_for_nonzero_mean() {
        let eps = 0.8;
        let sensitivity = 1.0;
        let scale = sensitivity / eps;
        for shift in [-10.0, -3.0, 0.0, 2.0] {
            for (c, c_adj) in [(5.0, 6.0), (5.0, 4.0), (0.0, 1.0)] {
                // Output density of mechanism on input c at point z is
                // Lap(c + shift, scale).pdf(z).
                let da = Laplace::new(c + shift, scale).unwrap();
                let db = Laplace::new(c_adj + shift, scale).unwrap();
                for i in -100..=100 {
                    let z = i as f64 * 0.25;
                    let ratio = da.pdf(z) / db.pdf(z);
                    assert!(
                        ratio <= (eps * (c - c_adj).abs() / sensitivity).exp() + 1e-9,
                        "ratio {ratio} exceeds bound at z={z}, shift={shift}"
                    );
                }
            }
        }
    }

    #[test]
    fn mechanism_noise_scale() {
        let m = LaplaceMechanism::new(0.5, 1.0).unwrap();
        assert_eq!(m.noise_scale(), 2.0);
        assert_eq!(m.epsilon(), 0.5);
    }

    #[test]
    fn randomize_shifted_centres_on_value_plus_shift() {
        let mut rng = StdRng::seed_from_u64(99);
        let m = LaplaceMechanism::new(1.0, 1.0).unwrap();
        let n = 100_000;
        let mean: f64 =
            (0..n).map(|_| m.randomize_shifted(10.0, -10.0, &mut rng)).sum::<f64>() / n as f64;
        // Lap(−10, 1) noise on value 10 centres the output at 0.
        assert!(mean.abs() < 0.05, "mean {mean}");
    }

    #[test]
    fn randomize_is_unbiased() {
        let mut rng = StdRng::seed_from_u64(1234);
        let m = LaplaceMechanism::new(2.0, 1.0).unwrap();
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| m.randomize(7.0, &mut rng)).sum::<f64>() / n as f64;
        assert!((mean - 7.0).abs() < 0.05);
    }
}

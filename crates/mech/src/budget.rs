//! Privacy-budget accounting under sequential composition.
//!
//! Theorem 1 (sequential composition): running mechanisms with budgets
//! ε₁, …, εₙ on the same data yields an (Σᵢ εᵢ)-DP pipeline. The
//! accountant tracks the total budget and refuses to overspend, so a
//! pipeline can assert its end-to-end guarantee.

use std::fmt;

/// Error returned when a spend would exceed the remaining budget.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BudgetError {
    /// The ε that was requested.
    pub requested: f64,
    /// The ε still available.
    pub remaining: f64,
}

impl fmt::Display for BudgetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "privacy budget exhausted: requested ε = {}, remaining ε = {}",
            self.requested, self.remaining
        )
    }
}

impl std::error::Error for BudgetError {}

/// Tracks ε spending across sequentially composed mechanisms.
///
/// # Examples
///
/// ```
/// use trajdp_mech::BudgetAccountant;
///
/// let mut budget = BudgetAccountant::new(1.0);
/// budget.spend("global TF", 0.5).unwrap();
/// budget.spend("local PF", 0.5).unwrap();
/// assert!(budget.is_exhausted());
/// assert!(budget.spend("anything else", 0.1).is_err());
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct BudgetAccountant {
    total: f64,
    spent: f64,
    ledger: Vec<(String, f64)>,
}

impl BudgetAccountant {
    /// Creates an accountant with the given total budget. Panics if the
    /// budget is not strictly positive and finite.
    pub fn new(total: f64) -> Self {
        assert!(total > 0.0 && total.is_finite(), "total budget must be positive and finite");
        Self { total, spent: 0.0, ledger: Vec::new() }
    }

    /// Total budget ε.
    #[inline]
    pub fn total(&self) -> f64 {
        self.total
    }

    /// Budget consumed so far.
    #[inline]
    pub fn spent(&self) -> f64 {
        self.spent
    }

    /// Budget still available.
    #[inline]
    pub fn remaining(&self) -> f64 {
        (self.total - self.spent).max(0.0)
    }

    /// Records a mechanism invocation consuming `epsilon`, labelled for
    /// auditability. Fails without mutating state when the spend would
    /// exceed the total (beyond a small float tolerance).
    pub fn spend(&mut self, label: impl Into<String>, epsilon: f64) -> Result<(), BudgetError> {
        assert!(epsilon > 0.0 && epsilon.is_finite(), "spend must be positive and finite");
        const TOL: f64 = 1e-9;
        if self.spent + epsilon > self.total + TOL {
            return Err(BudgetError { requested: epsilon, remaining: self.remaining() });
        }
        self.spent += epsilon;
        self.ledger.push((label.into(), epsilon));
        Ok(())
    }

    /// The audit ledger: every spend with its label, in order.
    pub fn ledger(&self) -> &[(String, f64)] {
        &self.ledger
    }

    /// Whether the whole budget has been consumed (within tolerance).
    pub fn is_exhausted(&self) -> bool {
        self.remaining() < 1e-9
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spend_accumulates_sequentially() {
        let mut b = BudgetAccountant::new(1.0);
        b.spend("global TF", 0.5).unwrap();
        b.spend("local PF", 0.5).unwrap();
        assert_eq!(b.spent(), 1.0);
        assert!(b.is_exhausted());
        assert_eq!(b.ledger().len(), 2);
        assert_eq!(b.ledger()[0].0, "global TF");
    }

    #[test]
    fn overspend_is_rejected_without_mutation() {
        let mut b = BudgetAccountant::new(1.0);
        b.spend("first", 0.8).unwrap();
        let err = b.spend("second", 0.3).unwrap_err();
        assert_eq!(err.requested, 0.3);
        assert!((err.remaining - 0.2).abs() < 1e-12);
        // State unchanged by the failed spend.
        assert!((b.spent() - 0.8).abs() < 1e-12);
        assert_eq!(b.ledger().len(), 1);
    }

    #[test]
    fn exact_exhaustion_allowed_with_float_tolerance() {
        let mut b = BudgetAccountant::new(1.0);
        for _ in 0..10 {
            b.spend("slice", 0.1).unwrap();
        }
        assert!(b.is_exhausted());
    }

    #[test]
    #[should_panic(expected = "total budget must be positive")]
    fn zero_total_panics() {
        BudgetAccountant::new(0.0);
    }

    #[test]
    #[should_panic(expected = "spend must be positive")]
    fn negative_spend_panics() {
        BudgetAccountant::new(1.0).spend("bad", -0.1).unwrap();
    }

    #[test]
    fn huge_spends_never_overflow_to_infinity() {
        // Near-f64::MAX budgets: a second huge spend must be rejected
        // cleanly (spent + eps overflows to +inf, which compares greater
        // than any finite total) and must not corrupt the accountant.
        let mut b = BudgetAccountant::new(1e308);
        b.spend("first half", 9e307).unwrap();
        let err = b.spend("overflowing", 9e307).unwrap_err();
        assert_eq!(err.requested, 9e307);
        assert!(b.spent().is_finite(), "spent must stay finite after rejection");
        assert_eq!(b.spent(), 9e307);
        assert!(b.remaining().is_finite());
        assert_eq!(b.ledger().len(), 1);
    }

    #[test]
    fn spend_after_exhaustion_keeps_failing() {
        let mut b = BudgetAccountant::new(0.5);
        b.spend("all of it", 0.5).unwrap();
        assert!(b.is_exhausted());
        for _ in 0..3 {
            assert!(b.spend("more", 1e-6).is_err(), "exhausted budget must stay closed");
        }
        assert_eq!(b.spent(), 0.5);
    }

    #[test]
    fn many_tiny_spends_respect_total_within_tolerance() {
        // 10_000 spends of 1e-4 sum to exactly the budget up to float
        // error; the accountant's tolerance admits them all, and the
        // very next spend fails.
        let mut b = BudgetAccountant::new(1.0);
        for i in 0..10_000 {
            b.spend(format!("slice {i}"), 1e-4).unwrap();
        }
        assert!(b.is_exhausted());
        assert!(b.spend("one too many", 1e-4).is_err());
        assert!((b.spent() - 1.0).abs() < 1e-6);
    }

    #[test]
    fn error_display() {
        let e = BudgetError { requested: 0.5, remaining: 0.2 };
        let s = e.to_string();
        assert!(s.contains("0.5") && s.contains("0.2"));
    }
}

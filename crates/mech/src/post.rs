//! Post-processing of noisy frequencies.
//!
//! Frequencies are semantically non-negative integers, so both algorithms
//! round their noisy values: Algorithm 1 rounds the noisy TF into
//! `[0, |D|]` (line 5) and Algorithm 2 rounds the noisy PF to the nearest
//! non-negative integer (lines 8–9). Post-processing never weakens a DP
//! guarantee (Dwork & Roth, Prop. 2.1).

/// Rounds a noisy count to the nearest integer and clamps it to
/// `[lo, hi]` — the `Round(l*, [0, |D|])` operation of Algorithm 1.
pub fn round_to_range(value: f64, lo: u64, hi: u64) -> u64 {
    assert!(lo <= hi, "empty clamp range");
    if value.is_nan() {
        return lo;
    }
    let r = value.round();
    if r <= lo as f64 {
        lo
    } else if r >= hi as f64 {
        hi
    } else {
        r as u64
    }
}

/// Rounds a noisy count to the nearest non-negative integer — the
/// `RoundInt` + `max(·, 0)` post-processing of Algorithm 2.
pub fn round_count(value: f64) -> u64 {
    if value.is_nan() {
        return 0;
    }
    value.round().max(0.0) as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn round_to_range_basics() {
        assert_eq!(round_to_range(4.4, 0, 10), 4);
        assert_eq!(round_to_range(4.5, 0, 10), 5);
        assert_eq!(round_to_range(-3.2, 0, 10), 0);
        assert_eq!(round_to_range(99.0, 0, 10), 10);
        assert_eq!(round_to_range(f64::NAN, 2, 10), 2);
        assert_eq!(round_to_range(f64::INFINITY, 0, 10), 10);
        assert_eq!(round_to_range(f64::NEG_INFINITY, 0, 10), 0);
    }

    #[test]
    fn round_count_basics() {
        assert_eq!(round_count(2.49), 2);
        assert_eq!(round_count(2.5), 3);
        assert_eq!(round_count(-7.0), 0);
        assert_eq!(round_count(-0.4), 0);
        assert_eq!(round_count(f64::NAN), 0);
        assert_eq!(round_count(0.0), 0);
    }

    #[test]
    #[should_panic(expected = "empty clamp range")]
    fn inverted_range_panics() {
        round_to_range(1.0, 5, 2);
    }

    /// Output always lies in the clamp range, for any input (including
    /// non-finite values mixed into the sweep).
    #[test]
    fn prop_round_in_range() {
        let mut rng = StdRng::seed_from_u64(0x90511);
        let specials = [f64::NAN, f64::INFINITY, f64::NEG_INFINITY, 0.0, -0.0];
        for case in 0..512 {
            let v = if case < specials.len() { specials[case] } else { rng.gen_range(-1e12..1e12) };
            let lo = rng.gen_range(0u64..100);
            let hi = lo + rng.gen_range(0u64..100);
            let r = round_to_range(v, lo, hi);
            assert!(r >= lo && r <= hi, "case {case}: {v} -> {r} outside [{lo}, {hi}]");
        }
    }

    /// Rounding is monotone on ordinary (finite) inputs.
    #[test]
    fn prop_round_monotone() {
        let mut rng = StdRng::seed_from_u64(0x90512);
        for case in 0..512 {
            let a = rng.gen_range(-1e6f64..1e6);
            let b = rng.gen_range(-1e6f64..1e6);
            let (x, y) = if a <= b { (a, b) } else { (b, a) };
            assert!(round_count(x) <= round_count(y), "case {case}: {x} vs {y}");
            assert!(
                round_to_range(x, 0, 1_000_000) <= round_to_range(y, 0, 1_000_000),
                "case {case}: {x} vs {y}"
            );
        }
    }

    /// round_count agrees with round_to_range on an unbounded-top range.
    #[test]
    fn prop_round_count_consistent() {
        let mut rng = StdRng::seed_from_u64(0x90513);
        for case in 0..512 {
            let v = rng.gen_range(-1e6f64..1e6);
            assert_eq!(round_count(v), round_to_range(v, 0, u64::MAX), "case {case}: {v}");
        }
    }
}

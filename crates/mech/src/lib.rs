//! # trajdp-mech
//!
//! Differential-privacy machinery used by the frequency-based
//! randomization model:
//!
//! * [`laplace`] — the Laplace distribution with arbitrary mean, sampled
//!   by inverse-CDF, including the paper's *non-trivial* non-zero-mean
//!   variant (Theorem 2 proves it still yields ε-DP when the scale is
//!   `∆φ/ε`).
//! * [`budget`] — a privacy-budget accountant implementing the sequential
//!   composition theorem (Theorem 1): spending ε₁, …, εₙ consumes
//!   `Σᵢ εᵢ` of the total budget.
//! * [`post`] — the post-processing operations the algorithms apply to
//!   noisy frequencies (integer rounding, clamping to `[0, |D|]`), which
//!   are DP-invariant.

#![forbid(unsafe_code)]

pub mod budget;
pub mod laplace;
pub mod post;

pub use budget::{BudgetAccountant, BudgetError};
pub use laplace::{Laplace, LaplaceMechanism, MechError};
pub use post::{round_count, round_to_range};

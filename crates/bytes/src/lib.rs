//! Vendored, dependency-free stand-in for the `bytes` crate.
//!
//! The build environment is offline, so this workspace ships the subset
//! of the bytes 1.x API its binary codec uses: [`BytesMut`] with
//! little-endian `put_*` writers and [`freeze`](BytesMut::freeze),
//! [`Bytes`] as an immutable buffer, and the [`Buf`] reader trait with
//! little-endian `get_*` accessors. Backed by a plain `Vec<u8>` — no
//! refcounted zero-copy slicing, which the codec does not need.

#![forbid(unsafe_code)]

/// Read access to a contiguous byte buffer with a moving cursor.
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;

    /// The unread bytes.
    fn chunk(&self) -> &[u8];

    /// Advances the cursor. Panics if `cnt > remaining()`.
    fn advance(&mut self, cnt: usize);

    /// Reads `N` bytes into an array, advancing. Panics when short.
    fn take_array<const N: usize>(&mut self) -> [u8; N] {
        assert!(self.remaining() >= N, "buffer underflow");
        let mut out = [0u8; N];
        out.copy_from_slice(&self.chunk()[..N]);
        self.advance(N);
        out
    }

    /// Reads a little-endian `u32`.
    fn get_u32_le(&mut self) -> u32 {
        u32::from_le_bytes(self.take_array())
    }

    /// Reads a little-endian `u64`.
    fn get_u64_le(&mut self) -> u64 {
        u64::from_le_bytes(self.take_array())
    }

    /// Reads a little-endian `i64`.
    fn get_i64_le(&mut self) -> i64 {
        i64::from_le_bytes(self.take_array())
    }

    /// Reads a little-endian `f64`.
    fn get_f64_le(&mut self) -> f64 {
        f64::from_le_bytes(self.take_array())
    }
}

/// Append access to a growable byte buffer.
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Writes a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Writes a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Writes a little-endian `i64`.
    fn put_i64_le(&mut self, v: i64) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Writes a little-endian `f64`.
    fn put_f64_le(&mut self, v: f64) {
        self.put_slice(&v.to_le_bytes());
    }
}

/// An immutable byte buffer with a read cursor.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Bytes {
    data: Vec<u8>,
    pos: usize,
}

impl Bytes {
    /// Total length of the underlying buffer (including consumed bytes).
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the underlying buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Copies the full underlying buffer into a `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.data.clone()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(data: Vec<u8>) -> Self {
        Self { data, pos: 0 }
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.data.len() - self.pos
    }

    fn chunk(&self) -> &[u8] {
        &self.data[self.pos..]
    }

    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.remaining(), "advance past end of buffer");
        self.pos += cnt;
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self
    }

    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "advance past end of buffer");
        *self = &self[cnt..];
    }
}

/// A growable byte buffer for encoding.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// An empty buffer with reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        Self { data: Vec::with_capacity(cap) }
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Converts into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.data)
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_all_le_types() {
        let mut buf = BytesMut::with_capacity(32);
        buf.put_u32_le(0xDEAD_BEEF);
        buf.put_u64_le(42);
        buf.put_i64_le(-7);
        buf.put_f64_le(3.5);
        let mut b = buf.freeze();
        assert_eq!(b.len(), 4 + 8 + 8 + 8);
        assert_eq!(b.get_u32_le(), 0xDEAD_BEEF);
        assert_eq!(b.get_u64_le(), 42);
        assert_eq!(b.get_i64_le(), -7);
        assert_eq!(b.get_f64_le(), 3.5);
        assert_eq!(b.remaining(), 0);
    }

    #[test]
    fn slice_buf_advances() {
        let data = 7u64.to_le_bytes();
        let mut s: &[u8] = &data;
        assert_eq!(s.remaining(), 8);
        assert_eq!(s.get_u64_le(), 7);
        assert_eq!(s.remaining(), 0);
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn short_read_panics() {
        let mut b = Bytes::from(vec![1, 2]);
        let _ = b.get_u32_le();
    }
}

//! Signature closure (SC) and its radius-based variant (RSC-α).
//!
//! SC (Jin et al., TKDE'20) deletes every occurrence of each
//! trajectory's top-`m` signature points — the minimal intervention that
//! defeats signature-based linking. RSC-α extends the deletion to every
//! sample within `α` metres of a signature point, trading extra utility
//! for a larger safety margin. The paper's §V-B3 shows both remain
//! vulnerable to map-matching recovery, which motivates the
//! frequency-based DP model.

use std::collections::HashSet;
use trajdp_core::freq::FrequencyAnalysis;
use trajdp_model::{Dataset, PointKey, Trajectory};

/// Signature closure: removes all occurrences of each trajectory's
/// top-`m` signature points.
pub fn sc(ds: &Dataset, m: usize) -> Dataset {
    rsc(ds, m, 0.0)
}

/// Radius-based signature closure: removes every sample within `alpha`
/// metres of any of the trajectory's top-`m` signature points
/// (`alpha = 0` reduces to plain SC).
pub fn rsc(ds: &Dataset, m: usize, alpha: f64) -> Dataset {
    assert!(alpha >= 0.0, "radius must be non-negative");
    let analysis = FrequencyAnalysis::compute(ds, m);
    let trajectories = ds
        .trajectories
        .iter()
        .enumerate()
        .map(|(slot, traj)| {
            let sig: HashSet<PointKey> = analysis.signature_points(slot).into_iter().collect();
            let sig_points: Vec<_> = sig.iter().map(|k| k.to_point()).collect();
            let samples = traj
                .samples
                .iter()
                .filter(|s| {
                    if sig.contains(&s.loc.key()) {
                        return false;
                    }
                    if alpha > 0.0 {
                        !sig_points.iter().any(|p| p.dist(&s.loc) <= alpha)
                    } else {
                        true
                    }
                })
                .copied()
                .collect();
            Trajectory::new(traj.id, samples)
        })
        .collect();
    Dataset::new(ds.domain, trajectories)
}

#[cfg(test)]
mod tests {
    use super::*;
    use trajdp_model::{Point, Rect, Sample};

    fn traj(id: u64, pts: &[(f64, f64)]) -> Trajectory {
        Trajectory::new(
            id,
            pts.iter()
                .enumerate()
                .map(|(i, &(x, y))| Sample::new(Point::new(x, y), i as i64))
                .collect(),
        )
    }

    fn ds() -> Dataset {
        Dataset::new(
            Rect::new(0.0, 0.0, 1000.0, 1000.0),
            vec![
                // (10,10) is object 0's haunt: high PF, unique → signature.
                traj(
                    0,
                    &[(10.0, 10.0), (500.0, 500.0), (10.0, 10.0), (600.0, 500.0), (10.0, 10.0)],
                ),
                traj(1, &[(500.0, 500.0), (800.0, 800.0), (600.0, 500.0)]),
            ],
        )
    }

    #[test]
    fn sc_removes_signature_occurrences() {
        let d = ds();
        let out = sc(&d, 1);
        let k = Point::new(10.0, 10.0).key();
        assert_eq!(out.trajectories[0].count_point(k), 0);
        // Non-signature points survive.
        assert!(out.trajectories[0].passes_through(Point::new(500.0, 500.0).key()));
        assert_eq!(out.len(), d.len());
        assert_eq!(out.trajectories[0].id, 0);
    }

    #[test]
    fn sc_keeps_chronological_order() {
        let out = sc(&ds(), 2);
        for t in &out.trajectories {
            assert!(t.samples.windows(2).all(|w| w[0].t <= w[1].t));
        }
    }

    #[test]
    fn rsc_widens_the_deletion() {
        // Put a bystander sample 50 m from the signature point.
        let d = Dataset::new(
            Rect::new(0.0, 0.0, 1000.0, 1000.0),
            vec![
                traj(0, &[(10.0, 10.0), (60.0, 10.0), (10.0, 10.0), (500.0, 500.0)]),
                traj(1, &[(500.0, 500.0), (700.0, 700.0)]),
            ],
        );
        let plain = sc(&d, 1);
        let wide = rsc(&d, 1, 100.0);
        let bystander = Point::new(60.0, 10.0).key();
        assert!(plain.trajectories[0].passes_through(bystander));
        assert!(!wide.trajectories[0].passes_through(bystander));
        // Larger α ⇒ never more points than smaller α.
        assert!(wide.total_points() <= plain.total_points());
    }

    #[test]
    fn rsc_zero_alpha_equals_sc() {
        let d = ds();
        assert_eq!(sc(&d, 2), rsc(&d, 2, 0.0));
    }

    #[test]
    fn monotone_in_alpha() {
        let d = ds();
        let mut prev = usize::MAX;
        for alpha in [0.0, 100.0, 500.0, 5000.0] {
            let n = rsc(&d, 1, alpha).total_points();
            assert!(n <= prev, "point count must shrink as α grows");
            prev = n;
        }
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_alpha_panics() {
        rsc(&ds(), 1, -1.0);
    }
}

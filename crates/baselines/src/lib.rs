//! # trajdp-baselines
//!
//! Reimplementations of the comparison methods of the paper's Table II
//! (§V-A). Each is faithful to the *comparison axes the paper evaluates*
//! (privacy / utility / recoverability); simplifications relative to the
//! original systems are documented per module.
//!
//! * [`signature_closure`] — SC (Jin et al., TKDE'20): discard all
//!   top-`m` signature points; RSC-α additionally drops points within a
//!   radius α of each signature point.
//! * [`kanon`] — the k-anonymity family: W4M (`(k, δ)`-anonymity via
//!   clustering + spatial editing), GLOVE (spatiotemporal
//!   generalization), and KLT (GLOVE + `l`-diversity over location
//!   categories).
//! * [`generative`] — the generative DP family: DPT (noisy prefix-tree
//!   synthesis) and AdaTrace (utility-aware grid/Markov synthesis).

#![forbid(unsafe_code)]

pub mod generative;
pub mod kanon;
pub mod signature_closure;

pub use generative::{adatrace, dpt, AdaTraceConfig, DptConfig};
pub use kanon::{glove, klt, w4m, GloveConfig, KltConfig, W4mConfig};
pub use signature_closure::{rsc, sc};
